//! `parqp-lint` — in-tree static analysis for the parqp workspace.
//!
//! Every theorem this repo reproduces is a statement about the
//! deterministic `(L, r, C)` accounting of the MPC simulator: load
//! bounds like the HyperCube `IN/p^{1/τ*}` check in
//! `tests/hypercube_load_bounds.rs` are only meaningful if (a) runs are
//! bit-reproducible and (b) every message an algorithm sends is charged
//! through `parqp_mpc::Cluster::exchange`. This crate enforces those
//! invariants lexically, with zero dependencies, so the check runs in CI
//! before anything is even compiled:
//!
//! - **determinism** (`PQ001`–`PQ004`, [`rules`]) — no seed-dependent
//!   hash containers, wall-clock reads, or threads in production code;
//! - **layering** (`PQ101`–`PQ104`, [`rules`], [`manifest`]) — the crate
//!   DAG matches DESIGN.md, `parqp-testkit` stays dev-only outside the
//!   RNG whitelist, and only `parqp-mpc` constructs accounting;
//! - **panic ratchet** (`PQ201`, [`ratchet`]) — the per-crate count of
//!   `.unwrap()`/`.expect(`/`panic!`/index sites never grows past the
//!   committed `lint/baseline.toml`;
//! - **offline guard** (`PQ301`/`PQ302`, [`manifest`]) — every
//!   dependency resolves inside the repo, and `rand`/`proptest`/
//!   `criterion` never return.
//!
//! Run it with `cargo run -p parqp-lint`; suppress a finding with an
//! inline `// parqp-lint: allow(PQxxx)` comment (same line, or a lone
//! comment on the line above); regenerate the ratchet with
//! `cargo run -p parqp-lint -- --fix-baseline`.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

pub mod callgraph;
pub mod effects;
pub mod items;
pub mod manifest;
pub mod ratchet;
pub mod rules;
pub mod tokenize;

use ratchet::{Baseline, PanicCounts};

/// One finding, with a machine-readable rule ID and a clickable location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule ID, e.g. `"PQ001"`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line, or 0 for whole-crate findings (the ratchet).
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{} {}: {}", self.rule, self.path, self.message)
        } else {
            write!(
                f,
                "{} {}:{}: {}",
                self.rule, self.path, self.line, self.message
            )
        }
    }
}

/// Everything one lint run produced.
pub struct LintReport {
    /// Hard failures, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Ratchet counters that shrank below the baseline (nudge, not failure).
    pub stale_baseline: Vec<String>,
    /// Actual per-crate panic counts (what `--fix-baseline` would write).
    pub panic_counts: BTreeMap<String, PanicCounts>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Worker-context roots the effect analysis found (PQ401–PQ404).
    /// Non-empty on a healthy workspace — the self-check test asserts
    /// the analysis actually saw the mpc/join/sort/matmul worker phases
    /// rather than vacuously passing.
    pub worker_roots: Vec<effects::RootInfo>,
}

/// Locate the workspace root from this crate's manifest dir (two levels
/// up), for use by in-tree tests and the binary.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint lives two levels under the workspace root")
        .to_path_buf()
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

/// The workspace's member crate directories (`crates/*`), sorted by name.
pub fn member_dirs(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates_dir = root.join("crates");
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("{}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    dirs.sort();
    Ok(dirs)
}

/// All `.rs` files under `dir`, recursively, sorted for deterministic
/// diagnostic order.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.filter_map(Result::ok) {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// One loaded and sanitized workspace source file.
pub struct LoadedFile {
    pub crate_name: String,
    pub rel_path: String,
    pub file: tokenize::SourceFile,
}

impl LoadedFile {
    /// Sanitize `src` into a loadable file (used by fixture tests to
    /// run [`lint_files`] on in-memory sources).
    pub fn from_source(crate_name: &str, rel_path: &str, src: &str) -> LoadedFile {
        LoadedFile {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            file: tokenize::sanitize(src),
        }
    }
}

/// What [`lint_files`] produced for a file set: source-level
/// diagnostics (token rules, effect analysis, PQ408) plus the raw
/// panic counts and detected worker roots.
pub struct SourceOutcome {
    pub diagnostics: Vec<Diagnostic>,
    pub panic_counts: BTreeMap<String, PanicCounts>,
    pub worker_roots: Vec<effects::RootInfo>,
}

/// Phases B–E of the lint over an already-loaded file set: per-file
/// token rules and panic counting, workspace-global effect analysis,
/// central `allow(...)` suppression with usage tracking, and the PQ408
/// dead-suppression pass. [`lint_workspace`] wraps this with manifest
/// rules and the ratchet comparison; fixture tests call it directly.
pub fn lint_files(loaded: &[LoadedFile]) -> SourceOutcome {
    let mut diagnostics = Vec::new();
    let mut panic_counts: BTreeMap<String, PanicCounts> = BTreeMap::new();

    // Phase B: per-file token rules + ratchet counts, tracking which
    // allow annotations actually suppressed a finding.
    let mut used_allows: BTreeSet<(usize, usize, String)> = BTreeSet::new();
    for (fi, lf) in loaded.iter().enumerate() {
        let src = rules::lint_source_tracked(&lf.crate_name, &lf.rel_path, &lf.file);
        diagnostics.extend(src.diagnostics);
        for (line, rule) in src.used_allows {
            used_allows.insert((fi, line, rule.to_string()));
        }
        let (counts, used_201) = ratchet::count_file_tracked(&lf.file);
        panic_counts
            .entry(lf.crate_name.clone())
            .or_default()
            .add(counts);
        for line in used_201 {
            used_allows.insert((fi, line, "PQ201".to_string()));
        }
    }

    // Phase C: workspace-global effect analysis (PQ401–PQ404).
    let inputs: Vec<effects::FileInput> = loaded
        .iter()
        .map(|lf| effects::FileInput {
            crate_name: &lf.crate_name,
            path: &lf.rel_path,
            file: &lf.file,
        })
        .collect();
    let effect_report = effects::analyze(&inputs);
    drop(inputs);

    // Phase D: central suppression for the effect family (its
    // diagnostics can anchor in *other* files than the root's, so the
    // per-file rule loop cannot do this).
    let path_to_idx: BTreeMap<&str, usize> = loaded
        .iter()
        .enumerate()
        .map(|(i, lf)| (lf.rel_path.as_str(), i))
        .collect();
    for d in effect_report.diagnostics {
        let allowed = path_to_idx.get(d.path.as_str()).copied().and_then(|fi| {
            let line = loaded[fi].file.lines.get(d.line.wrapping_sub(1))?;
            line.allows(d.rule).then_some((fi, d.line))
        });
        match allowed {
            Some((fi, line)) => {
                used_allows.insert((fi, line, d.rule.to_string()));
            }
            None => diagnostics.push(d),
        }
    }

    // Phase E: PQ408 — allow annotations that suppressed nothing.
    // An `allow(PQ408)` on the same line vets its stale neighbours
    // (one level only: a dead PQ408 allow is always reported).
    let mut dead: Vec<(usize, usize, String)> = Vec::new();
    for (fi, lf) in loaded.iter().enumerate() {
        for line in &lf.file.lines {
            for id in &line.allows {
                // Malformed IDs are PQ000's business, not PQ408's.
                if !rules::is_valid_rule_id(id) || id == "PQ408" {
                    continue;
                }
                if !used_allows.contains(&(fi, line.number, id.clone())) {
                    dead.push((fi, line.number, id.clone()));
                }
            }
        }
    }
    for (fi, lf) in loaded.iter().enumerate() {
        for line in &lf.file.lines {
            if !line.allows("PQ408") {
                continue;
            }
            let before = dead.len();
            dead.retain(|(dfi, dline, _)| !(*dfi == fi && *dline == line.number));
            if dead.len() == before {
                // Nothing to vet: the PQ408 allow is itself stale.
                dead.push((fi, line.number, "PQ408".to_string()));
            }
        }
    }
    for (fi, line, id) in dead {
        diagnostics.push(Diagnostic {
            rule: "PQ408",
            path: loaded[fi].rel_path.clone(),
            line,
            message: format!(
                "`allow({id})` suppresses nothing on this line; remove the stale annotation \
                 so the escape-hatch surface ratchets down"
            ),
        });
    }

    SourceOutcome {
        diagnostics,
        panic_counts,
        worker_roots: effect_report.roots,
    }
}

/// Run every rule family over the workspace at `root`.
///
/// `baseline` governs the PQ201 ratchet: `Some` compares against it,
/// `None` skips the comparison (used by `--fix-baseline`, which only
/// wants the counts back).
///
/// Structure: load *every* source file first (phase A), run the
/// per-file token rules and panic counting (phase B), then the
/// workspace-global effect analysis (phase C — PQ401–PQ404 need the
/// whole call graph at once), apply `allow(...)` suppression centrally
/// while recording which annotations earned their keep (phase D), and
/// finally flag the annotations that suppressed nothing as PQ408
/// (phase E) before the baseline comparison.
pub fn lint_workspace(root: &Path, baseline: Option<&Baseline>) -> Result<LintReport, String> {
    let mut diagnostics = Vec::new();
    let mut panic_counts: BTreeMap<String, PanicCounts> = BTreeMap::new();

    // Workspace-root manifest (offline rules).
    let ws_manifest_path = root.join("Cargo.toml");
    let ws_manifest = read(&ws_manifest_path)?;
    diagnostics.extend(manifest::lint_workspace_manifest(
        &rel(root, &ws_manifest_path),
        &ws_manifest,
    ));

    // Phase A: manifests + load all member sources.
    let mut loaded: Vec<LoadedFile> = Vec::new();
    for dir in member_dirs(root)? {
        let crate_name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| format!("unreadable crate dir name under {}", dir.display()))?
            .to_string();

        let manifest_path = dir.join("Cargo.toml");
        let toml = read(&manifest_path)?;
        diagnostics.extend(manifest::lint_manifest(
            &crate_name,
            &rel(root, &manifest_path),
            &toml,
        ));

        panic_counts.entry(crate_name.clone()).or_default();
        for file in rust_files(&dir.join("src")) {
            let text = read(&file)?;
            loaded.push(LoadedFile {
                crate_name: crate_name.clone(),
                rel_path: rel(root, &file),
                file: tokenize::sanitize(&text),
            });
        }
    }
    let files_scanned = loaded.len();

    // Phases B–E over the loaded set.
    let outcome = lint_files(&loaded);
    diagnostics.extend(outcome.diagnostics);
    for (name, counts) in outcome.panic_counts {
        panic_counts.entry(name).or_default().add(counts);
    }

    let mut stale_baseline = Vec::new();
    if let Some(baseline) = baseline {
        let outcome = baseline.compare(&panic_counts);
        diagnostics.extend(outcome.diagnostics);
        stale_baseline = outcome.stale;
    }

    diagnostics
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(LintReport {
        diagnostics,
        stale_baseline,
        panic_counts,
        files_scanned,
        worker_roots: outcome.worker_roots,
    })
}

/// Render a report as deterministic machine-readable JSON (the
/// `--format json` output CI archives as an artifact). Hand-rolled —
/// the crate stays zero-dependency — and stable: maps are BTree-backed
/// and vectors arrive pre-sorted.
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!(
        "  \"clean\": {},\n",
        report.diagnostics.is_empty()
    ));
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));

    out.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            d.rule,
            json_escape(&d.path),
            d.line,
            json_escape(&d.message)
        ));
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");

    out.push_str("  \"stale_baseline\": [");
    for (i, s) in report.stale_baseline.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", json_escape(s)));
    }
    out.push_str("],\n");

    out.push_str("  \"worker_roots\": [");
    for (i, r) in report.worker_roots.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"line\": {}, \"crate\": \"{}\", \"closure\": {}, \
             \"reachable_fns\": {}}}",
            json_escape(&r.path),
            r.line,
            json_escape(&r.crate_name),
            r.closure,
            r.reachable_fns
        ));
    }
    if !report.worker_roots.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");

    out.push_str("  \"panic_counts\": {");
    for (i, (name, c)) in report.panic_counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    \"{}\": {{\"unwrap\": {}, \"expect\": {}, \"panic\": {}, \"index\": {}}}",
            json_escape(name),
            c.unwrap,
            c.expect,
            c.panic,
            c.index
        ));
    }
    if !report.panic_counts.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The default baseline location: `lint/baseline.toml` under `root`.
pub fn baseline_path(root: &Path) -> PathBuf {
    root.join("lint").join("baseline.toml")
}

/// Load the committed ratchet baseline.
pub fn load_baseline(root: &Path) -> Result<Baseline, String> {
    Baseline::parse(&read(&baseline_path(root))?)
}

/// Run only the offline rules (`PQ301`/`PQ302`) over every manifest —
/// the original `offline_guard` check, now callable as a library so the
/// testkit guard test and the full lint share one implementation.
pub fn check_offline(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let ws_manifest_path = root.join("Cargo.toml");
    let mut out =
        manifest::lint_workspace_manifest(&rel(root, &ws_manifest_path), &read(&ws_manifest_path)?);
    for dir in member_dirs(root)? {
        let crate_name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let manifest_path = dir.join("Cargo.toml");
        out.extend(
            manifest::lint_manifest(
                &crate_name,
                &rel(root, &manifest_path),
                &read(&manifest_path)?,
            )
            .into_iter()
            .filter(|d| d.rule == "PQ301" || d.rule == "PQ302"),
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_display_with_and_without_line() {
        let d = Diagnostic {
            rule: "PQ001",
            path: "crates/mpc/src/hash.rs".into(),
            line: 141,
            message: "msg".into(),
        };
        assert_eq!(d.to_string(), "PQ001 crates/mpc/src/hash.rs:141: msg");
        let d0 = Diagnostic { line: 0, ..d };
        assert_eq!(d0.to_string(), "PQ001 crates/mpc/src/hash.rs: msg");
    }

    #[test]
    fn workspace_root_is_a_workspace() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn member_dirs_sorted_and_complete() {
        let dirs = member_dirs(&workspace_root()).expect("members");
        let names: Vec<String> = dirs
            .iter()
            .map(|d| d.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(names.iter().any(|n| n == "mpc"));
        assert!(names.iter().any(|n| n == "lint"));
    }
}
