//! E05 — the triangle query in one round (slides 34–36).
//!
//! HyperCube load `Θ(N/p^{2/3})` versus the iterative binary-join plan,
//! sweeping `p`. The log-log slope of load against `p` is the shape the
//! theorem predicts: ≈ −2/3 for the HyperCube, ≈ −1-with-blowup for the
//! plan (whose intermediate `R ⋈ S` can far exceed the input).

use crate::table::fmt;
use crate::Table;
use parqp::data::generate;
use parqp::join::{multiway, plans};
use parqp::prelude::*;

/// Least-squares slope of `ln y` against `ln x`.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (sx, sy): (f64, f64) = points
        .iter()
        .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x.ln(), b + y.ln()));
    let (sxx, sxy): (f64, f64) = points.iter().fold((0.0, 0.0), |(a, b), &(x, y)| {
        (a + x.ln() * x.ln(), b + x.ln() * y.ln())
    });
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Run E05.
pub fn run() -> Vec<Table> {
    // A graph with real density: average degree ~20, so the binary plan's
    // intermediate R ⋈ S (all length-2 paths ≈ Σ deg²) far exceeds IN —
    // the blow-up the one-round algorithm avoids (slide 63).
    let n = 30_000;
    let g = generate::random_symmetric_graph(1500, n, 21);
    let n = g.len();
    let q = Query::triangle();
    let rels = vec![g.clone(), g.clone(), g];
    let paths = plans::max_intermediate_size(&q, &rels, None);

    let mut t = Table::new(
        format!(
            "E05 (slide 36): triangle on a graph, N = {n} edges per relation, \
             plan intermediate = {paths} — L vs p"
        ),
        &[
            "p",
            "HyperCube L",
            "paper N/p^(2/3)",
            "plan L",
            "plan rounds",
        ],
    );
    let mut hc_points = Vec::new();
    for p in [8usize, 27, 64, 216, 512] {
        let hc = multiway::hypercube(&q, &rels, p, 5);
        let plan = plans::binary_join_plan(&q, &rels, p, 5, None);
        let paper = n as f64 / (p as f64).powf(2.0 / 3.0);
        hc_points.push((p as f64, hc.report.max_load_tuples() as f64));
        t.row(vec![
            p.to_string(),
            hc.report.max_load_tuples().to_string(),
            fmt(paper),
            plan.report.max_load_tuples().to_string(),
            plan.report.num_rounds().to_string(),
        ]);
    }
    let slope = loglog_slope(&hc_points);
    let mut s = Table::new(
        "E05 summary: fitted log-log slope of HyperCube load vs p",
        &["quantity", "value", "paper"],
    );
    s.row(vec![
        "slope".into(),
        format!("{slope:.3}"),
        "-2/3 ≈ -0.667".into(),
    ]);
    vec![t, s]
}

#[cfg(test)]
mod tests {
    #[test]
    fn hypercube_slope_is_two_thirds() {
        let tables = super::run();
        let slope: f64 = tables[1].rows[0][1].parse().expect("slope");
        assert!(
            (-0.80..=-0.55).contains(&slope),
            "triangle load slope {slope} not ≈ -2/3"
        );
    }

    #[test]
    fn loglog_slope_exact_on_powerlaw() {
        let pts: Vec<(f64, f64)> = [1.0f64, 2.0, 4.0, 8.0]
            .iter()
            .map(|&x| (x, 100.0 * x.powf(-0.5)))
            .collect();
        assert!((super::loglog_slope(&pts) + 0.5).abs() < 1e-9);
    }
}
