//! Fault-injection invariants: recovery must be transparent to the
//! algorithm and honest to the ledger.
//!
//! Three guarantees, asserted across every `observe` experiment:
//!
//! 1. **A crash-free plan is invisible.** Installing an empty
//!    `FaultPlan` leaves the `LoadReport` and the output digest
//!    bit-identical to an uninstrumented run.
//! 2. **Recovered output is byte-identical to fault-free output.**
//!    Under any plan (explicit round-0 faults of every kind, and
//!    seeded random plans with ≤ 2 crashes) and either recovery
//!    strategy, the output digest equals the clean run's. Injection
//!    only ever inflates the ledger, never the data.
//! 3. **The trace stays consistent with the ledger.** Recovery rounds
//!    are emitted as ordinary round blocks, so `analyze::totals`
//!    (tuples, words) equals the `LoadReport`'s totals even mid-fault,
//!    and fixed seeds export byte-identical fault-annotated JSONL.

use parqp::faults::{capture, FaultKind, FaultPlan, FaultSpec, RecoveryStrategy};
use parqp::observe::{run_experiment_full, ExperimentRun, EXPERIMENTS};
use parqp::trace::{analyze, export};

const SERVERS: usize = 8;
const SEED: u64 = 7;

fn clean(name: &str) -> ExperimentRun {
    run_experiment_full(name, SERVERS, SEED).expect("known experiment")
}

fn faulty(
    name: &str,
    plan: FaultPlan,
    strategy: RecoveryStrategy,
) -> (parqp::faults::FaultLog, ExperimentRun) {
    let (log, run) = capture(plan, strategy, || {
        run_experiment_full(name, SERVERS, SEED).expect("known experiment")
    });
    (log, run)
}

/// Both recovery strategies every scenario is exercised under.
fn strategies() -> [RecoveryStrategy; 2] {
    [
        RecoveryStrategy::Checkpoint { every: 2 },
        RecoveryStrategy::Replication { replicas: 3 },
    ]
}

/// One fault of every kind, all in round 0 so they are guaranteed to
/// fire on every experiment (each records at least one round at p = 8).
fn round_zero_plan() -> FaultPlan {
    FaultPlan::new()
        .with_fault(0, 0, FaultKind::Crash)
        .with_fault(0, 1, FaultKind::Drop { msgs: 2 })
        .with_fault(0, 2, FaultKind::Duplicate { msgs: 2 })
        .with_fault(0, 3, FaultKind::Straggle)
}

#[test]
fn crash_free_plan_is_invisible() {
    for e in EXPERIMENTS {
        let bare = clean(e.name);
        let (log, run) = faulty(e.name, FaultPlan::new(), RecoveryStrategy::default());
        assert_eq!(log.fired(), 0, "{}: empty plan fired", e.name);
        assert_eq!(log.recovery_rounds, 0, "{}: phantom recovery", e.name);
        assert_eq!(log.recovery_tuples, 0, "{}: phantom tuples", e.name);
        assert_eq!(log.recovery_words, 0, "{}: phantom words", e.name);
        assert_eq!(run.digest, bare.digest, "{}: output changed", e.name);
        assert_eq!(
            run.report.total_tuples(),
            bare.report.total_tuples(),
            "{}: Σ tuples changed",
            e.name
        );
        assert_eq!(
            run.report.total_words(),
            bare.report.total_words(),
            "{}: Σ words changed",
            e.name
        );
        assert_eq!(
            run.report.num_rounds(),
            bare.report.num_rounds(),
            "{}: rounds changed",
            e.name
        );
        assert_eq!(
            run.report.max_load_tuples(),
            bare.report.max_load_tuples(),
            "{}: L changed",
            e.name
        );
    }
}

#[test]
fn recovered_output_is_byte_identical_under_explicit_plans() {
    for e in EXPERIMENTS {
        let bare = clean(e.name);
        for strategy in strategies() {
            let (log, run) = faulty(e.name, round_zero_plan(), strategy);
            assert!(
                log.fired() >= 1,
                "{} ({}): round-0 plan must fire",
                e.name,
                strategy.name()
            );
            assert_eq!(
                run.digest,
                bare.digest,
                "{} ({}): recovered output diverged",
                e.name,
                strategy.name()
            );
            // A crash always fires in round 0, so some recovery was
            // charged — and only *added* to the clean ledger.
            assert!(
                log.recovery_tuples > 0 || log.recovery_rounds > 0,
                "{} ({}): crash recovered for free",
                e.name,
                strategy.name()
            );
            assert!(
                run.report.total_tuples() >= bare.report.total_tuples(),
                "{} ({}): faulty ledger below clean",
                e.name,
                strategy.name()
            );
        }
    }
}

#[test]
fn recovered_output_is_byte_identical_under_random_plans() {
    // Seeded plans with at most 2 crashes (the acceptance bound),
    // dense enough over (8 servers × 4 rounds) to fire on every
    // experiment's early rounds.
    let spec = FaultSpec {
        crashes: 2,
        drops: 2,
        duplicates: 2,
        stragglers: 2,
        max_batch: 4,
    };
    for e in EXPERIMENTS {
        let bare = clean(e.name);
        for (i, strategy) in strategies().into_iter().enumerate() {
            let plan = FaultPlan::random(0xFA17 + i as u64, SERVERS, 4, &spec);
            assert!(plan.crashes() <= 2, "spec bounds crashes");
            let (_, run) = faulty(e.name, plan, strategy);
            assert_eq!(
                run.digest,
                bare.digest,
                "{} ({}): recovered output diverged",
                e.name,
                strategy.name()
            );
        }
    }
}

#[test]
fn trace_totals_match_ledger_under_faults() {
    for e in EXPERIMENTS {
        for strategy in strategies() {
            let (_, run) = faulty(e.name, round_zero_plan(), strategy);
            let totals = analyze::totals(&run.recorder);
            assert_eq!(
                totals.tuples,
                run.report.total_tuples(),
                "{} ({}): trace/ledger Σ tuples",
                e.name,
                strategy.name()
            );
            assert_eq!(
                totals.words,
                run.report.total_words(),
                "{} ({}): trace/ledger Σ words",
                e.name,
                strategy.name()
            );
        }
    }
}

#[test]
fn fault_annotated_jsonl_is_byte_identical_across_invocations() {
    let export_once = || {
        let (_, run) = faulty(
            "multiround-sort",
            round_zero_plan(),
            RecoveryStrategy::Checkpoint { every: 2 },
        );
        export::jsonl(&run.recorder)
    };
    let first = export_once();
    let second = export_once();
    assert!(first.contains("\"ev\":\"fault_injected\""));
    assert!(first.contains("\"ev\":\"recovery_begin\""));
    assert!(first.contains("\"ev\":\"recovery_end\""));
    assert_eq!(first, second);
}
