//! Fixed-size pages of encoded rows and the in-memory page store.
//!
//! A [`Page`] is a bounded buffer of `u64` words. Row encoding is the
//! caller's contract (parqp-data packs fixed-arity tuples row-major and
//! never lets a row straddle a page boundary); the page itself only
//! enforces its word capacity. [`MemStore`] is the one [`PageStore`]
//! implementation: a `BTreeMap` from [`PageId`] to page, so iteration
//! and lookup order are deterministic by construction.

use std::collections::BTreeMap;

/// Globally unique page identifier, allocated monotonically by the
/// [`runtime`](crate::runtime) (or locally by an uninstalled owner).
pub type PageId = u64;

/// A fixed-capacity buffer of `u64` words holding encoded rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    capacity: usize,
    words: Vec<u64>,
}

impl Page {
    /// An empty page able to hold `capacity` words.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pages must hold at least one word");
        Self {
            capacity,
            words: Vec::new(),
        }
    }

    /// Word capacity of the page.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Words currently stored.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the page holds no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Whether `n` more words still fit.
    pub fn fits(&self, n: usize) -> bool {
        self.words.len() + n <= self.capacity
    }

    /// Append an encoded row. Returns `false` (and stores nothing) when
    /// the row does not fit — the caller then opens a fresh page. Rows
    /// wider than the capacity of an *empty* page are accepted whole so
    /// that oversized tuples occupy one dedicated page rather than
    /// straddling two.
    pub fn push_row(&mut self, row: &[u64]) -> bool {
        if !self.fits(row.len()) && !self.words.is_empty() {
            return false;
        }
        self.words.extend_from_slice(row);
        true
    }

    /// The stored words, in insertion order.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Where pages live. The simulator only ever needs the in-memory
/// [`MemStore`], but the trait keeps the paged layer honest: everything
/// above it (paged relations, scans) goes through page handles, never
/// through a relation's flat vector.
pub trait PageStore {
    /// Store `page` under `id`, replacing any previous page with it.
    fn insert(&mut self, id: PageId, page: Page);
    /// The page stored under `id`, if any.
    fn page(&self, id: PageId) -> Option<&Page>;
    /// Number of pages stored.
    fn num_pages(&self) -> usize;
    /// Total words across all pages.
    fn total_words(&self) -> u64;
}

/// The in-memory page store: a deterministic `BTreeMap` of pages.
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    pages: BTreeMap<PageId, Page>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stored `(id, page)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, &Page)> + '_ {
        self.pages.iter().map(|(&id, p)| (id, p))
    }
}

impl PageStore for MemStore {
    fn insert(&mut self, id: PageId, page: Page) {
        self.pages.insert(id, page);
    }

    fn page(&self, id: PageId) -> Option<&Page> {
        self.pages.get(&id)
    }

    fn num_pages(&self) -> usize {
        self.pages.len()
    }

    fn total_words(&self) -> u64 {
        self.pages.values().map(|p| p.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_respects_capacity() {
        let mut p = Page::new(4);
        assert!(p.push_row(&[1, 2]));
        assert!(p.push_row(&[3, 4]));
        assert!(!p.push_row(&[5, 6]), "full page rejects the row");
        assert_eq!(p.words(), &[1, 2, 3, 4]);
        assert_eq!(p.len(), 4);
        assert!(p.fits(0) && !p.fits(1));
    }

    #[test]
    fn oversized_row_gets_a_dedicated_page() {
        let mut p = Page::new(2);
        assert!(p.push_row(&[1, 2, 3]), "empty page takes an oversized row");
        assert!(!p.push_row(&[4]), "…and then nothing else");
        assert_eq!(p.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_capacity_rejected() {
        Page::new(0);
    }

    #[test]
    fn memstore_roundtrip() {
        let mut s = MemStore::new();
        let mut a = Page::new(8);
        a.push_row(&[1, 2]);
        let mut b = Page::new(8);
        b.push_row(&[3]);
        s.insert(7, a.clone());
        s.insert(3, b);
        assert_eq!(s.num_pages(), 2);
        assert_eq!(s.total_words(), 3);
        assert_eq!(s.page(7), Some(&a));
        assert!(s.page(99).is_none());
        let ids: Vec<PageId> = s.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![3, 7], "iteration is id-ordered");
    }
}
