//! Serial reference evaluation.
//!
//! Two oracles, both exact and both single-machine:
//!
//! * [`evaluate`] — a binding-table hash join that processes atoms left to
//!   right. Worst-case exponential like any join, but it is the ground
//!   truth every distributed algorithm in this workspace is tested
//!   against, so clarity beats cleverness.
//! * [`yannakakis_serial`] — the Yannakakis algorithm over a width-1 GHD
//!   (slides 64–77): upward semijoin phase, downward semijoin phase, then
//!   a bottom-up join phase, running in `O(IN + OUT)`.
//!
//! Both produce the full natural join with output schema `x₀ … x_{k-1}`
//! under **bag semantics** (tests compare canonical set forms when an
//! algorithm is only set-equivalent).

use crate::ghd::Ghd;
use crate::query::{Query, Var};
use parqp_data::{FastMap, Relation, Value};

/// Evaluate `q` over `rels` (one relation per atom, positionally).
///
/// # Panics
/// Panics if `rels.len() != q.num_atoms()` or an atom's arity disagrees
/// with its relation.
pub fn evaluate(q: &Query, rels: &[Relation]) -> Relation {
    check_inputs(q, rels);
    // Bindings over the variables bound so far, in `bound` order.
    let mut bound: Vec<Var> = Vec::new();
    let mut bindings: Vec<Vec<Value>> = vec![Vec::new()];

    for (atom, rel) in q.atoms().iter().zip(rels) {
        let shared: Vec<usize> = atom
            .vars
            .iter()
            .enumerate()
            .filter_map(|(pos, v)| bound.contains(v).then_some(pos))
            .collect();
        let fresh: Vec<usize> = atom
            .vars
            .iter()
            .enumerate()
            .filter_map(|(pos, v)| (!bound.contains(v)).then_some(pos))
            .collect();
        let bound_idx_of_shared: Vec<usize> = shared
            .iter()
            .map(|&pos| {
                bound
                    .iter()
                    .position(|&b| b == atom.vars[pos])
                    .expect("shared is bound")
            })
            .collect();

        // Build: key = shared positions (in `shared` order) → fresh values.
        let mut table: FastMap<Vec<Value>, Vec<Vec<Value>>> = FastMap::default();
        for row in rel.iter() {
            let key: Vec<Value> = shared.iter().map(|&p| row[p]).collect();
            let val: Vec<Value> = fresh.iter().map(|&p| row[p]).collect();
            table.entry(key).or_default().push(val);
        }

        let mut next = Vec::new();
        for b in &bindings {
            let key: Vec<Value> = bound_idx_of_shared.iter().map(|&i| b[i]).collect();
            if let Some(matches) = table.get(&key) {
                for m in matches {
                    let mut nb = b.clone();
                    nb.extend_from_slice(m);
                    next.push(nb);
                }
            }
        }
        bindings = next;
        bound.extend(fresh.iter().map(|&p| atom.vars[p]));
        if bindings.is_empty() {
            return Relation::new(q.num_vars());
        }
    }

    bindings_to_relation(q.num_vars(), &bound, bindings)
}

/// The Yannakakis algorithm over a width-1 GHD whose bags each carry
/// exactly one atom (a join tree). `O(IN + OUT)`.
///
/// # Panics
/// Panics if the GHD is not a width-1 join tree of `q`, or input shapes
/// disagree with the query.
pub fn yannakakis_serial(q: &Query, rels: &[Relation], tree: &Ghd) -> Relation {
    check_inputs(q, rels);
    tree.validate(q).expect("invalid GHD");
    assert!(
        tree.width() == 1,
        "serial Yannakakis requires a width-1 join tree"
    );
    let n = tree.bags.len();
    assert_eq!(n, q.num_atoms(), "join tree must have one bag per atom");

    // Working copies, one per bag (bag b covers exactly atom λ[0]).
    let atom_of_bag: Vec<usize> = tree.bags.iter().map(|b| b.atoms[0]).collect();
    let mut work: Vec<Relation> = atom_of_bag.iter().map(|&a| rels[a].clone()).collect();

    let order = tree.topological_order(); // parents before children
                                          // Upward semijoin phase: leaves to root.
    for &b in order.iter().rev() {
        if let Some(parent) = tree.parent[b] {
            let filtered = semijoin(
                &work[parent],
                &q.atoms()[atom_of_bag[parent]].vars,
                &work[b],
                &q.atoms()[atom_of_bag[b]].vars,
            );
            work[parent] = filtered;
        }
    }
    // Downward semijoin phase: root to leaves.
    for &b in &order {
        if let Some(parent) = tree.parent[b] {
            let filtered = semijoin(
                &work[b],
                &q.atoms()[atom_of_bag[b]].vars,
                &work[parent],
                &q.atoms()[atom_of_bag[parent]].vars,
            );
            work[b] = filtered;
        }
    }

    // Join phase: fold children into parents, bottom-up. Track the
    // variable schema of each partial result.
    let mut schema: Vec<Vec<Var>> = atom_of_bag
        .iter()
        .map(|&a| q.atoms()[a].vars.clone())
        .collect();
    let mut partial: Vec<Option<Relation>> = work.into_iter().map(Some).collect();
    for &b in order.iter().rev() {
        if let Some(parent) = tree.parent[b] {
            let child_rel = partial[b].take().expect("child joined once");
            let parent_rel = partial[parent].take().expect("parent present");
            let (joined, joined_schema) =
                join_on_schemas(&parent_rel, &schema[parent], &child_rel, &schema[b]);
            partial[parent] = Some(joined);
            schema[parent] = joined_schema;
        }
    }

    // Combine roots (forest ⇒ Cartesian product across components).
    let mut acc: Option<(Relation, Vec<Var>)> = None;
    for &b in &order {
        if tree.parent[b].is_none() {
            let rel = partial[b].take().expect("root present");
            let sch = schema[b].clone();
            acc = Some(match acc {
                None => (rel, sch),
                Some((a_rel, a_sch)) => join_on_schemas(&a_rel, &a_sch, &rel, &sch),
            });
        }
    }
    let (rel, sch) = acc.expect("at least one root");
    let rows: Vec<Vec<Value>> = rel.iter().map(<[Value]>::to_vec).collect();
    bindings_to_relation(q.num_vars(), &sch, rows)
}

/// `left ⋉ right`: keep the tuples of `left` whose shared variables with
/// `right` (per the two schemas) match some tuple of `right`.
pub fn semijoin(
    left: &Relation,
    left_vars: &[Var],
    right: &Relation,
    right_vars: &[Var],
) -> Relation {
    let shared: Vec<(usize, usize)> = left_vars
        .iter()
        .enumerate()
        .filter_map(|(lp, v)| right_vars.iter().position(|rv| rv == v).map(|rp| (lp, rp)))
        .collect();
    if shared.is_empty() {
        return if right.is_empty() {
            Relation::new(left.arity())
        } else {
            left.clone()
        };
    }
    let mut keys: parqp_data::FastSet<Vec<Value>> = parqp_data::FastSet::default();
    for row in right.iter() {
        keys.insert(shared.iter().map(|&(_, rp)| row[rp]).collect());
    }
    left.filter(|row| keys.contains(&shared.iter().map(|&(lp, _)| row[lp]).collect::<Vec<_>>()))
}

/// Natural join of two relations with explicit variable schemas; returns
/// the joined relation and its schema (left schema ++ fresh right vars).
fn join_on_schemas(
    left: &Relation,
    left_vars: &[Var],
    right: &Relation,
    right_vars: &[Var],
) -> (Relation, Vec<Var>) {
    let shared: Vec<(usize, usize)> = left_vars
        .iter()
        .enumerate()
        .filter_map(|(lp, v)| right_vars.iter().position(|rv| rv == v).map(|rp| (lp, rp)))
        .collect();
    let fresh: Vec<usize> = (0..right_vars.len())
        .filter(|&rp| !left_vars.contains(&right_vars[rp]))
        .collect();

    let mut table: FastMap<Vec<Value>, Vec<Vec<Value>>> = FastMap::default();
    for row in right.iter() {
        let key: Vec<Value> = shared.iter().map(|&(_, rp)| row[rp]).collect();
        let val: Vec<Value> = fresh.iter().map(|&p| row[p]).collect();
        table.entry(key).or_default().push(val);
    }

    let mut schema = left_vars.to_vec();
    schema.extend(fresh.iter().map(|&p| right_vars[p]));
    let mut out = Relation::new(schema.len());
    let mut buf = Vec::with_capacity(schema.len());
    for row in left.iter() {
        let key: Vec<Value> = shared.iter().map(|&(lp, _)| row[lp]).collect();
        if let Some(matches) = table.get(&key) {
            for m in matches {
                buf.clear();
                buf.extend_from_slice(row);
                buf.extend_from_slice(m);
                out.push(&buf);
            }
        }
    }
    (out, schema)
}

fn check_inputs(q: &Query, rels: &[Relation]) {
    assert_eq!(rels.len(), q.num_atoms(), "one relation per atom required");
    for (a, r) in q.atoms().iter().zip(rels) {
        assert_eq!(a.arity(), r.arity(), "arity mismatch for atom {}", a.name);
    }
}

fn bindings_to_relation(num_vars: usize, schema: &[Var], rows: Vec<Vec<Value>>) -> Relation {
    assert_eq!(schema.len(), num_vars, "result must bind every variable");
    let mut order = vec![0usize; num_vars];
    for (i, &v) in schema.iter().enumerate() {
        order[v] = i;
    }
    let mut out = Relation::with_capacity(num_vars, rows.len());
    let mut buf = vec![0; num_vars];
    for r in rows {
        for (v, slot) in buf.iter_mut().enumerate() {
            *slot = r[order[v]];
        }
        out.push(&buf);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ghd::Ghd;

    #[test]
    fn two_way_join_basic() {
        let q = Query::two_way();
        let r = Relation::from_rows(2, [[1, 10], [2, 10], [3, 20]]);
        let s = Relation::from_rows(2, [[10, 100], [20, 200], [20, 201]]);
        let out = evaluate(&q, &[r, s]);
        let mut rows = out.to_rows();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![1, 10, 100],
                vec![2, 10, 100],
                vec![3, 20, 200],
                vec![3, 20, 201]
            ]
        );
    }

    #[test]
    fn triangle_finds_triangles() {
        let q = Query::triangle();
        // Triangle on 1-2-3 plus a stray edge.
        let r = Relation::from_rows(2, [[1, 2], [1, 9]]);
        let s = Relation::from_rows(2, [[2, 3]]);
        let t = Relation::from_rows(2, [[3, 1]]);
        let out = evaluate(&q, &[r, s, t]);
        assert_eq!(out.to_rows(), vec![vec![1, 2, 3]]);
    }

    #[test]
    fn product_is_cartesian() {
        let q = Query::product();
        let r = Relation::from_rows(1, [[1], [2]]);
        let s = Relation::from_rows(1, [[7], [8], [9]]);
        let out = evaluate(&q, &[r, s]);
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn bag_semantics_multiplicities() {
        let q = Query::two_way();
        let r = Relation::from_rows(2, [[1, 5], [1, 5]]);
        let s = Relation::from_rows(2, [[5, 9]]);
        assert_eq!(evaluate(&q, &[r, s]).len(), 2);
    }

    #[test]
    fn empty_input_empty_output() {
        let q = Query::triangle();
        let e = Relation::new(2);
        let out = evaluate(&q, &[e.clone(), e.clone(), e]);
        assert!(out.is_empty());
        assert_eq!(out.arity(), 3);
    }

    #[test]
    fn semijoin_filters() {
        let l = Relation::from_rows(2, [[1, 2], [3, 4]]);
        let r = Relation::from_rows(2, [[2, 7]]);
        let out = semijoin(&l, &[0, 1], &r, &[1, 5]);
        assert_eq!(out.to_rows(), vec![vec![1, 2]]);
    }

    #[test]
    fn semijoin_disjoint_schemas_checks_emptiness() {
        let l = Relation::from_rows(1, [[1], [2]]);
        let nonempty = Relation::from_rows(1, [[9]]);
        let empty = Relation::new(1);
        assert_eq!(semijoin(&l, &[0], &nonempty, &[1]).len(), 2);
        assert_eq!(semijoin(&l, &[0], &empty, &[1]).len(), 0);
    }

    #[test]
    fn yannakakis_matches_evaluate_on_chain() {
        let q = Query::chain(3);
        let rels: Vec<Relation> = (0..3)
            .map(|i| parqp_data::generate::uniform(2, 60, 12, i as u64))
            .collect();
        let tree = Ghd::join_tree(&q).expect("chains are acyclic");
        let fast = yannakakis_serial(&q, &rels, &tree);
        let slow = evaluate(&q, &rels);
        assert_eq!(fast.canonical(), slow.canonical());
    }

    #[test]
    fn yannakakis_matches_evaluate_on_slide64() {
        let q = Query::slide64_tree();
        let rels: Vec<Relation> = (0..5)
            .map(|i| parqp_data::generate::uniform(2, 40, 8, 100 + i as u64))
            .collect();
        let tree = Ghd::join_tree(&q).expect("tree query is acyclic");
        let fast = yannakakis_serial(&q, &rels, &tree);
        let slow = evaluate(&q, &rels);
        assert_eq!(fast.canonical(), slow.canonical());
    }

    #[test]
    fn yannakakis_star_with_dangling_tuples() {
        let q = Query::star(3);
        // Center value 1 joins everywhere; 2 dangles (absent from R3).
        let r1 = Relation::from_rows(2, [[1, 10], [2, 20]]);
        let r2 = Relation::from_rows(2, [[1, 30], [2, 40]]);
        let r3 = Relation::from_rows(2, [[1, 50]]);
        let tree = Ghd::join_tree(&q).expect("stars are acyclic");
        let out = yannakakis_serial(&q, &[r1.clone(), r2.clone(), r3.clone()], &tree);
        let expect = evaluate(&q, &[r1, r2, r3]);
        assert_eq!(out.canonical(), expect.canonical());
        assert_eq!(out.len(), 1);
    }
}
