//! Fixture: observation-clean code — replays an observed stream and
//! reads the resulting series; emission and window recording stay
//! inside parqp-serve / parqp-obs.

use parqp_obs::SloRules;
use parqp_serve::{replay_observed, ServeConfig};

pub fn series_summary(cfg: &ServeConfig) -> Result<(u64, String), String> {
    let (report, series) = replay_observed(cfg, 8)?;
    let _ = report.served();
    Ok((series.p99_l_worst(), series.dashboard()))
}

pub fn slo_verdict(cfg: &ServeConfig, rules_text: &str) -> Result<bool, String> {
    let rules = SloRules::parse(rules_text)?;
    let (_, series) = replay_observed(cfg, 8)?;
    Ok(rules.evaluate(&series).pass())
}
