//! E08 — SkewHC: the residual-query table and the τ\*/ψ\* summary
//! (slides 48–51).
//!
//! Table 1 reproduces slides 48–50: for each heavy/light combination of
//! the triangle's variables, the residual query, its τ\*, the
//! theoretical load `N/p^{1/τ*}`, and the shares SkewHC actually plans.
//!
//! Table 2 reproduces slide 51: per query, τ\*, ψ\*, the skew-free
//! one-round load and the skewed one-round load — with measured loads on
//! matching workloads next to each formula.

use crate::table::fmt;
use crate::Table;
use parqp::data::generate;
use parqp::join::{multiway, skewhc};
use parqp::model;
use parqp::prelude::*;
use parqp::query::{all_residuals, psi_star};

fn residual_to_string(q: &Query, heavy_mask: usize) -> String {
    let heavy: Vec<usize> = (0..q.num_vars())
        .filter(|&v| heavy_mask & (1 << v) != 0)
        .collect();
    let res = parqp::query::residual(q, &heavy);
    match &res.query {
        None => "(empty)".into(),
        Some(rq) => rq.to_string(),
    }
}

/// Run E08.
pub fn run() -> Vec<Table> {
    let q = Query::triangle();
    let p = 64usize;
    let n = 20_000usize;

    // Table 1: residual queries of the triangle (slides 48–50).
    // Workload with heavy values on every variable so all combinations
    // are exercised.
    let mut g = generate::uniform(2, n, 1 << 40, 41);
    for i in 0..(n / 8) as u64 {
        g.push(&[3, 1_000_000 + i]); // x-heavy and y-heavy rows
        g.push(&[1_000_000 + i, 3]);
    }
    let rels = vec![g.clone(), g.clone(), g.clone()];
    let (run_skew, plans) = skewhc::skewhc_with_plans(&q, &rels, p, 5);

    let names = ["x", "y", "z"];
    let mut t1 = Table::new(
        format!("E08a (slides 48–50): triangle residual queries, p = {p}"),
        &[
            "x",
            "y",
            "z",
            "residual query",
            "τ*",
            "paper L = N/p^(1/τ*)",
            "planned shares",
        ],
    );
    for res in all_residuals(&q) {
        let mask: usize = res.heavy_vars.iter().map(|&v| 1usize << v).sum();
        let tau = res.tau_star();
        let status = |v: usize| {
            if mask & (1 << v) != 0 {
                "heavy"
            } else {
                "light"
            }
        };
        let plan = plans
            .iter()
            .find(|c| c.mask == mask)
            .expect("plan per mask");
        let paper = if tau > 0.0 {
            fmt(model::one_round_load(g.len() as f64, p as f64, tau))
        } else {
            "-".into()
        };
        t1.row(vec![
            status(0).into(),
            status(1).into(),
            status(2).into(),
            residual_to_string(&q, mask),
            fmt(tau),
            paper,
            plan.shares
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("x"),
        ]);
        let _ = names;
    }

    // Table 2: slide 51 summary with measured loads.
    let mut t2 = Table::new(
        format!("E08b (slide 51): one-round loads with and without skew, p = {p}"),
        &[
            "query",
            "τ*",
            "ψ*",
            "paper no-skew L",
            "measured HC (uniform)",
            "paper skew L",
            "measured SkewHC (skewed)",
        ],
    );
    // Triangle row: uniform workload for HC, the skewed one for SkewHC.
    let uni = generate::uniform(2, n, 1 << 40, 43);
    let uni_rels = vec![uni.clone(), uni.clone(), uni];
    let hc = multiway::hypercube(&q, &uni_rels, p, 5);
    let tau = model::tau_star(&q);
    let psi = psi_star(&q);
    t2.row(vec![
        "triangle".into(),
        fmt(tau),
        fmt(psi),
        fmt(model::one_round_load(3.0 * n as f64, p as f64, tau)),
        hc.report.max_load_tuples().to_string(),
        fmt(model::one_round_load_skewed(
            g.len() as f64 * 3.0,
            p as f64,
            psi,
        )),
        run_skew.report.max_load_tuples().to_string(),
    ]);
    // Two-way join row (the "x—y—z" row of slide 51).
    let q2 = Query::two_way();
    let r = generate::key_unique_pairs(n, 1, 1 << 40, 44);
    let s = generate::key_unique_pairs(n, 0, 1 << 40, 45);
    let hc2 = multiway::hypercube(&q2, &[r, s], p, 5);
    let rs = generate::constant_key_pairs(n / 4, 7, 1);
    let ss = generate::constant_key_pairs(n / 4, 7, 0);
    let sk2 = skewhc::skewhc(&q2, &[rs.clone(), ss.clone()], p, 5);
    let tau2 = model::tau_star(&q2);
    let psi2 = psi_star(&q2);
    t2.row(vec![
        "R(x,y) ⋈ S(y,z)".into(),
        fmt(tau2),
        fmt(psi2),
        fmt(model::one_round_load(2.0 * n as f64, p as f64, tau2)),
        hc2.report.max_load_tuples().to_string(),
        fmt(model::one_round_load_skewed(
            (rs.len() + ss.len()) as f64,
            p as f64,
            psi2,
        )),
        sk2.report.max_load_tuples().to_string(),
    ]);
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    #[test]
    fn residual_table_matches_slides() {
        let tables = super::run();
        let t1 = &tables[0];
        assert_eq!(t1.rows.len(), 8);
        // Find the all-light row: τ* = 1.5; the z-heavy row: τ* = 2;
        // the y,z-heavy row: τ* = 1 (slides 48–50).
        let tau_of = |x: &str, y: &str, z: &str| -> f64 {
            t1.rows
                .iter()
                .find(|r| r[0] == x && r[1] == y && r[2] == z)
                .expect("row")[4]
                .parse()
                .expect("τ*")
        };
        assert!((tau_of("light", "light", "light") - 1.5).abs() < 1e-6);
        assert!((tau_of("light", "light", "heavy") - 2.0).abs() < 1e-6);
        assert!((tau_of("light", "heavy", "heavy") - 1.0).abs() < 1e-6);
    }

    #[test]
    fn summary_psi_values() {
        let tables = super::run();
        let t2 = &tables[1];
        for row in &t2.rows {
            let psi: f64 = row[2].parse().expect("ψ*");
            assert!(
                (psi - 2.0).abs() < 1e-6,
                "slide 51: ψ* = 2 for both queries"
            );
        }
    }
}
