//! ABL — ablations of this implementation's own design choices.
//!
//! Not a paper table; these justify decisions DESIGN.md calls out:
//!
//! 1. **Share rounding** — our greedy integer rounding (max-load primary,
//!    total-load tiebreak) versus naive `⌊p^{eᵢ}⌋` rounding;
//! 2. **Aggregation strategy** — raw hash shuffle vs combiner vs
//!    reduction tree across a skew sweep;
//! 3. **Semijoin style** — the request/reply semijoin (keys travel, data
//!    stays) versus the co-hash binary plan on the slide 58 query under
//!    skew;
//! 4. **Sort oversampling** — splitter sample size vs final load balance
//!    in the multi-round sort.

use crate::table::fmt;
use crate::Table;
use parqp::data::generate;
use parqp::join::{aggregate, hl, plans};
use parqp::prelude::*;
use parqp_lp::{optimal_share_exponents, predicted_load, Hypergraph};

/// Naive rounding: `max(1, ⌊p^{eᵢ}⌋)`, then shrink the largest share
/// until the product fits.
fn naive_shares(h: &Hypergraph, p: usize, exponents: &[f64]) -> Vec<usize> {
    let mut shares: Vec<usize> = exponents
        .iter()
        .map(|&e| ((p as f64).powf(e).floor() as usize).max(1))
        .collect();
    while shares.iter().product::<usize>() > p {
        let i = (0..shares.len())
            .max_by_key(|&i| shares[i])
            .expect("nonempty");
        shares[i] = (shares[i] - 1).max(1);
        let _ = h;
    }
    shares
}

/// Run the ablation tables.
pub fn run() -> Vec<Table> {
    // 1. Share rounding.
    let mut t1 = Table::new(
        "ABL-1: integer share rounding — greedy (ours) vs naive floor",
        &[
            "query",
            "p",
            "greedy shares",
            "greedy L",
            "naive shares",
            "naive L",
        ],
    );
    for (name, h) in [
        ("triangle", Hypergraph::triangle()),
        ("chain-8", Hypergraph::chain(8)),
        ("chain-20", Hypergraph::chain(20)),
        ("cycle-5", Hypergraph::cycle(5)),
    ] {
        let sizes = vec![100_000u64; h.num_edges()];
        for p in [17usize, 100, 1024] {
            let (e, _) = optimal_share_exponents(&h, &sizes, p);
            let greedy = parqp_lp::integer_shares(&h, &sizes, p, &e);
            let naive = naive_shares(&h, p, &e);
            t1.row(vec![
                name.into(),
                p.to_string(),
                compact(&greedy),
                fmt(predicted_load(&h, &sizes, &greedy)),
                compact(&naive),
                fmt(predicted_load(&h, &sizes, &naive)),
            ]);
        }
    }

    // 2. Aggregation strategies across skew.
    let mut t2 = Table::new(
        "ABL-2: GROUP BY strategies — L across a skew sweep (N = 40000, p = 32)",
        &[
            "zipf α",
            "groups",
            "hash L",
            "combiner L",
            "tree f=4 L",
            "tree rounds",
        ],
    );
    let n = 40_000;
    let p = 32;
    for alpha in [0.0, 1.0, 1.5] {
        let rel = generate::zipf_pairs(n, 2000, alpha, 0, 7);
        let groups = parqp::data::stats::distinct_count(&rel, 0);
        let hash = aggregate::hash_group_sum(&rel, 0, 1, p, 3);
        let comb = aggregate::combiner_group_sum(&rel, 0, 1, p, 3);
        let tree = aggregate::tree_group_sum(&rel, 0, 1, p, 4);
        t2.row(vec![
            alpha.to_string(),
            groups.to_string(),
            hash.report.max_load_tuples().to_string(),
            comb.report.max_load_tuples().to_string(),
            tree.report.max_load_tuples().to_string(),
            tree.report.num_rounds().to_string(),
        ]);
    }

    // 4. Sort splitter oversampling: sample load vs final balance.
    let mut t4 = Table::new(
        "ABL-4: multi-round sort oversampling (N = 64000, p = 64, f = 4)",
        &["oversample", "max final partition", "ideal N/p", "sort L"],
    );
    {
        use parqp_testkit::Rng;
        let n = 64_000usize;
        let ps = 64usize;
        let mut rng = Rng::seed_from_u64(11);
        let items: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        for oversample in [1usize, 2, 8, 32] {
            let mut cluster = parqp::mpc::Cluster::new(ps);
            let local = cluster.scatter(items.clone());
            let parts =
                parqp::sort::multiround_sort_with_oversample(&mut cluster, local, 4, oversample);
            let max_part = parts.iter().map(Vec::len).max().unwrap_or(0);
            t4.row(vec![
                oversample.to_string(),
                max_part.to_string(),
                (n / ps).to_string(),
                cluster.report().max_load_tuples().to_string(),
            ]);
        }
    }

    // 3. Semijoin style under skew (slide 58's query).
    let mut t3 = Table::new(
        "ABL-3: semijoin style on R(x)⋈S(x,y)⋈T(y), heavy x (N = 8000, p = 64)",
        &["engine", "L", "rounds"],
    );
    let q = Query::semijoin_pair();
    let r = generate::unary_range(10);
    let s = generate::constant_key_pairs(8000, 5, 0);
    let t = generate::unary_range(8000);
    let rels = vec![r.clone(), s.clone(), t.clone()];
    let reqrep = hl::semijoin_pair_hl(&r, &s, &t, 64, 7);
    let cohash = plans::binary_join_plan(&q, &rels, 64, 7, None);
    assert_eq!(reqrep.gathered().canonical(), cohash.gathered().canonical());
    for (name, run) in [
        ("request/reply semijoins", &reqrep),
        ("co-hash binary plan", &cohash),
    ] {
        t3.row(vec![
            name.into(),
            run.report.max_load_tuples().to_string(),
            run.report.num_rounds().to_string(),
        ]);
    }
    vec![t1, t2, t3, t4]
}

fn compact(shares: &[usize]) -> String {
    shares
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("x")
}

#[cfg(test)]
mod tests {
    #[test]
    fn greedy_never_worse_than_naive() {
        let tables = super::run();
        for row in &tables[0].rows {
            let greedy: f64 = row[3].parse().expect("greedy L");
            let naive: f64 = row[5].parse().expect("naive L");
            assert!(
                greedy <= naive * 1.0001,
                "{} p={}: greedy {greedy} worse than naive {naive}",
                row[0],
                row[1]
            );
        }
    }

    #[test]
    fn combiner_dominates_hash_under_heavy_skew() {
        let tables = super::run();
        let skewed = tables[1].rows.last().expect("rows");
        let hash: f64 = skewed[2].parse().expect("hash L");
        let comb: f64 = skewed[3].parse().expect("combiner L");
        assert!(comb < hash, "combiner {comb} vs hash {hash}");
    }

    #[test]
    fn request_reply_beats_cohash_under_skew() {
        let tables = super::run();
        let l_req: f64 = tables[2].rows[0][1].parse().expect("L");
        let l_hash: f64 = tables[2].rows[1][1].parse().expect("L");
        assert!(
            l_req * 2.0 < l_hash,
            "req/reply {l_req} vs co-hash {l_hash}"
        );
    }
}
