//! Fixture: feeding the metrics registry from an algorithm crate (PQ107).

use parqp_mpc::{metrics, trace};

pub fn forge_ledger(round: u64, tuples: u64) {
    metrics::emit(&trace::TraceEvent::RoundEnd {
        round,
        tuples,
        words: tuples,
    });
}
