//! E14 — matrix multiplication: the cost table and the `C`-vs-`L`
//! frontier (slides 122, 126).
//!
//! Table 1 reproduces slide 122: measured communication and rounds of
//! the rectangle-block and square-block algorithms against their closed
//! forms. Table 2 regenerates the slide 126 figure as a series: for a
//! grid of loads `L`, the 1-round frontier `n⁴/L`, the multi-round
//! frontier `n³/√L`, and the minimum rounds each load admits. Table 3
//! cross-checks the SQL formulation.

use crate::table::fmt;
use crate::Table;
use parqp::matmul::{cost, rect_block, sql_matmul, square_block, Matrix};

/// Run E14.
pub fn run() -> Vec<Table> {
    let n = 64usize;
    let a = Matrix::random(n, 1);
    let b = Matrix::random(n, 2);
    let oracle = a.multiply(&b);

    let mut t1 = Table::new(
        format!("E14a (slide 122): measured vs formula, n = {n}"),
        &[
            "algorithm",
            "L (words)",
            "rounds",
            "C measured",
            "C formula",
            "r formula",
        ],
    );
    for t in [4usize, 8, 16] {
        let run = rect_block(&a, &b, t);
        assert!(run.c.max_abs_diff(&oracle) < 1e-9);
        let l = (2 * t * n) as u64;
        t1.row(vec![
            format!("rect t={t}"),
            run.report.max_load_words().to_string(),
            run.report.num_rounds().to_string(),
            run.report.total_words().to_string(),
            fmt(cost::rect_comm(n as u64, l)),
            "1".into(),
        ]);
    }
    for (h, p) in [(4usize, 16usize), (8, 64), (8, 128), (16, 64)] {
        let run = square_block(&a, &b, h, p);
        assert!(run.c.max_abs_diff(&oracle) < 1e-9);
        let nb = n / h;
        let l = (2 * nb * nb) as u64;
        t1.row(vec![
            format!("square H={h} p={p}"),
            run.report.max_load_words().to_string(),
            run.report.num_rounds().to_string(),
            run.report.total_words().to_string(),
            fmt(cost::square_comm(n as u64, l)),
            fmt(cost::square_rounds(n as u64, l, p as u64)),
        ]);
    }

    let big_n = 1u64 << 10;
    let p = 1u64 << 6;
    let mut t2 = Table::new(
        format!("E14b (slide 126): the C-vs-L frontier, n = {big_n}, p = {p}"),
        &[
            "L",
            "1-round C = n⁴/L",
            "multi-round C = n³/√L",
            "min rounds at L",
        ],
    );
    // The frontier sweep stays below L = n² (= 2^20), where the 1-round
    // and multi-round curves cross and a single round becomes optimal.
    for log_l in [11u32, 13, 15, 17, 19] {
        let l = 1u64 << log_l;
        t2.row(vec![
            format!("2^{log_l}"),
            fmt(cost::lb_comm_one_round(big_n, l)),
            fmt(cost::lb_comm_multi_round(big_n, l)),
            cost::min_rounds_on_frontier(big_n, l, p).to_string(),
        ]);
    }

    let ai = Matrix::random_int(32, 8, 3);
    let bi = Matrix::random_int(32, 8, 4);
    let sql = sql_matmul(&ai, &bi, 16, 5);
    let rect = rect_block(&ai, &bi, 8);
    let square = square_block(&ai, &bi, 4, 16);
    assert!(sql.c.max_abs_diff(&rect.c) < 1e-9);
    assert!(sql.c.max_abs_diff(&square.c) < 1e-9);
    let mut t3 = Table::new(
        "E14c (slide 108): SQL join+group-by cross-check, n = 32, p = 16",
        &["engine", "L (words)", "rounds", "C (words)"],
    );
    for (name, run) in [("SQL", &sql), ("rect t=8", &rect), ("square H=4", &square)] {
        t3.row(vec![
            name.into(),
            run.report.max_load_words().to_string(),
            run.report.num_rounds().to_string(),
            run.report.total_words().to_string(),
        ]);
    }
    vec![t1, t2, t3]
}

#[cfg(test)]
mod tests {
    #[test]
    fn formulas_match_measured_exactly_for_rect() {
        let tables = super::run();
        let t1 = &tables[0];
        for row in t1.rows.iter().filter(|r| r[0].starts_with("rect")) {
            let measured: f64 = row[3].parse().expect("C");
            let formula: f64 = row[4].parse().expect("formula");
            assert!((measured - formula).abs() < 1e-6, "{row:?}");
        }
    }

    #[test]
    fn frontier_monotone_and_ordered() {
        let tables = super::run();
        let t2 = &tables[1];
        let mut last_rounds = u64::MAX;
        for row in &t2.rows {
            let one: f64 = row[1].parse().expect("1-round C");
            let multi: f64 = row[2].parse().expect("multi C");
            assert!(
                multi < one,
                "multi-round frontier sits below 1-round: {row:?}"
            );
            let r: u64 = row[3].parse().expect("rounds");
            assert!(r <= last_rounds);
            last_rounds = r;
        }
    }
}
