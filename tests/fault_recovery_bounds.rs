//! Analytic bounds on replication-recovery cost.
//!
//! With r-way replication, recovering one crashed server costs a single
//! redistribution round in which the victim re-receives the cumulative
//! inbound of its replica group — `r` consecutive servers. For a
//! load-balanced algorithm that inbound is `r` times the per-server
//! load, so the charge must sit within `r × slack × L_ideal`:
//!
//! * hash join distributes `IN` tuples evenly, `L_ideal = IN / p`;
//! * HyperCube on the triangle query replicates each edge to `p^(1/3)`
//!   servers, `L_ideal = IN / p^(2/3)` (slides 42–44).
//!
//! The slack factor absorbs hash imbalance; `1.5` is generous for the
//! instance sizes here yet tight enough to catch a mis-charged group
//! (charging all `p` servers, or double-counting rounds, blows past it
//! immediately at `p = 27` and `p = 64`).

use parqp::data::generate;
use parqp::faults::{capture, FaultKind, FaultPlan, RecoveryStrategy};
use parqp::join::{multiway, twoway};
use parqp::query::Query;

const REPLICAS: usize = 3;
const SLACK: f64 = 1.5;
const SEED: u64 = 11;

/// Charge one round-0 crash on server 0 under r-way replication and
/// return the recovery tuples the ledger was billed.
fn replication_recovery_tuples(f: impl FnOnce()) -> u64 {
    let plan = FaultPlan::new().with_fault(0, 0, FaultKind::Crash);
    let (log, ()) = capture(
        plan,
        RecoveryStrategy::Replication { replicas: REPLICAS },
        f,
    );
    assert_eq!(log.injected.len(), 1, "crash must fire");
    assert_eq!(log.recovery_rounds, 1, "replication recovers in one round");
    log.recovery_tuples
}

#[test]
fn hash_join_replication_recovery_within_in_over_p() {
    let r = generate::uniform(2, 4000, 500, SEED);
    let t = generate::uniform(2, 4000, 500, SEED.wrapping_add(1));
    let input = (r.len() + t.len()) as f64; // IN = 8000
    for p in [8usize, 27, 64] {
        let measured = replication_recovery_tuples(|| {
            twoway::hash_join(&r, 1, &t, 0, p, SEED);
        });
        let bound = REPLICAS as f64 * SLACK * input / p as f64;
        assert!(measured > 0, "p = {p}: crash on server 0 recovered nothing");
        assert!(
            (measured as f64) <= bound,
            "p = {p}: recovery charge {measured} exceeds {REPLICAS} × {SLACK} × IN/p = {bound}"
        );
    }
}

#[test]
fn hypercube_replication_recovery_within_in_over_p_two_thirds() {
    let q = Query::triangle();
    let g = generate::random_symmetric_graph(120, 900, SEED);
    let rels = [g.clone(), g.clone(), g.clone()];
    let input = (3 * g.len()) as f64; // IN = 2700
    for p in [8usize, 27, 64] {
        let measured = replication_recovery_tuples(|| {
            multiway::hypercube(&q, &rels, p, SEED);
        });
        let bound = REPLICAS as f64 * SLACK * input / (p as f64).powf(2.0 / 3.0);
        assert!(measured > 0, "p = {p}: crash on server 0 recovered nothing");
        assert!(
            (measured as f64) <= bound,
            "p = {p}: recovery charge {measured} exceeds \
             {REPLICAS} × {SLACK} × IN/p^(2/3) = {bound}"
        );
    }
}
