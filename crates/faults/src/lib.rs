//! # parqp-faults — deterministic fault injection for the MPC simulator
//!
//! The MPC model assumes every server survives every round; real
//! clusters do not. This crate injects faults into simulated runs —
//! **deterministically**, from a seed — and pairs them with recovery
//! strategies whose overhead is charged honestly to the same
//! `LoadReport` ledger the fault-free algorithms are measured by. That
//! makes fault-tolerance overhead directly comparable against the
//! paper's fault-free `(L, r, C)` lower bounds, with zero noise.
//!
//! ## Model
//!
//! A [`FaultPlan`] maps `(round, server)` slots to a [`FaultKind`]:
//! crashes, message drops, message duplications, and stragglers.
//! [`install`]ing a plan (or wrapping a run in [`capture`]) arms a
//! thread-local runtime — the same guard pattern as
//! `parqp_trace::Recorder` — that `parqp-mpc` consults once per
//! recorded round. Injection is **transparent to the algorithm**: the
//! inboxes it receives are the post-recovery view, identical to the
//! fault-free run, so recovered output is byte-identical by
//! construction. What changes is the *ledger*: duplicate deliveries
//! and speculative re-execution inflate the faulty round, drops append
//! a retransmission round, and crashes append replayed rounds
//! (checkpoint-and-restart) or a redistribution round (r-way
//! replication), per the installed [`RecoveryStrategy`].
//!
//! ## Example
//!
//! ```
//! use parqp_faults::{capture, FaultKind, FaultPlan, RecoveryStrategy};
//!
//! let plan = FaultPlan::new().with_fault(0, 1, FaultKind::Crash);
//! let (log, out) = capture(plan, RecoveryStrategy::Checkpoint { every: 2 }, || {
//!     // ... run any algorithm on a `parqp_mpc::Cluster` here ...
//!     "output"
//! });
//! assert_eq!(out, "output");
//! assert_eq!(log.fired(), 0); // no cluster ran a round in this doc test
//! ```
//!
//! This crate is dependency-free by design (it sits *below*
//! `parqp-mpc` in the crate DAG); `FaultPlan::random` inlines the same
//! SplitMix64 generator `parqp-testkit` uses so schedules stay
//! bit-reproducible.

mod plan;
mod recovery;
mod runtime;

pub use plan::{FaultKind, FaultPlan, FaultSpec};
pub use recovery::RecoveryStrategy;
pub use runtime::{
    active_strategy, capture, install, is_enabled, next_round_faults, note_injected, note_recovery,
    reset_round_clock, FaultGuard, FaultLog, InjectedFault,
};
