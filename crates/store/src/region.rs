//! Paged views over flat word buffers: [`IoRegion`] for random access
//! (matrix blocks) and [`IoCursor`] for append-order streams (sort
//! routing).
//!
//! Both are *accounting overlays*: the actual words stay wherever the
//! caller keeps them (a `Matrix`, a routed `Vec<T>`); the region or
//! cursor maps word offsets onto allocated page IDs and charges the
//! owning server's buffer pool for every access. When no store runtime
//! is installed neither allocates nor touches anything, so the unpaged
//! path is untouched.
//!
//! Read semantics: one call to [`IoRegion::read_at`] or
//! [`IoCursor::read`] is **one logical read**, however many pages it
//! spans — the first page touched is charged `reads = 1` and any
//! further pages of the same access `reads = 0` (still counting their
//! misses). This matches the paged-relation convention where a row is
//! one logical read, so `io_reads` stays comparable across scan kinds.

use crate::page::PageId;
use crate::runtime;

/// A paged view over a flat buffer of `total_words` words, for random
/// (offset-addressed) access patterns such as matrix blocks.
#[derive(Debug, Clone)]
pub struct IoRegion {
    base: Option<PageId>,
    page_size: usize,
}

impl IoRegion {
    /// Map `total_words` words onto freshly allocated pages. Inert when
    /// no store runtime is installed.
    pub fn new(total_words: u64) -> Self {
        match runtime::config() {
            Some(cfg) => {
                let ps = cfg.page_size as u64;
                let pages = total_words.div_ceil(ps).max(1);
                Self {
                    base: runtime::alloc_pages(pages),
                    page_size: cfg.page_size,
                }
            }
            None => Self {
                base: None,
                page_size: 1,
            },
        }
    }

    /// Charge `server` one logical read covering the word span
    /// `[offset, offset + len)`. `len == 0` accesses are free.
    pub fn read_at(&self, server: usize, offset: u64, len: u64) {
        let Some(base) = self.base else { return };
        if len == 0 {
            return;
        }
        let ps = self.page_size as u64;
        let first = offset / ps;
        let last = (offset + len - 1) / ps;
        for (i, page) in (first..=last).enumerate() {
            runtime::touch_page(server, base + page, u64::from(i == 0));
        }
    }
}

/// A paged append cursor for one server's stream of variable-width
/// records: each [`read`](IoCursor::read) charges one logical read and
/// lazily allocates pages as the stream crosses page boundaries.
/// Records may straddle pages (streams carry arbitrary `Weight` items,
/// unlike fixed-arity relation rows).
#[derive(Debug)]
pub struct IoCursor {
    server: usize,
    page_size: usize,
    current: Option<PageId>,
    used: usize,
    enabled: bool,
}

impl IoCursor {
    /// A cursor charging `server`'s pool. Inert when no store runtime
    /// is installed.
    pub fn new(server: usize) -> Self {
        match runtime::config() {
            Some(cfg) => Self {
                server,
                page_size: cfg.page_size,
                current: None,
                used: 0,
                enabled: true,
            },
            None => Self {
                server,
                page_size: 1,
                current: None,
                used: 0,
                enabled: false,
            },
        }
    }

    /// Charge one logical read for the next record of `words` words,
    /// touching (and allocating, at boundaries) every page it covers.
    pub fn read(&mut self, words: usize) {
        if !self.enabled {
            return;
        }
        let mut remaining = words.max(1);
        let mut charge = 1u64;
        while remaining > 0 {
            let page = match self.current {
                Some(p) if self.used < self.page_size => p,
                _ => {
                    let p = runtime::alloc_pages(1).expect("cursor built while store was enabled");
                    self.current = Some(p);
                    self.used = 0;
                    p
                }
            };
            let take = remaining.min(self.page_size - self.used);
            self.used += take;
            remaining -= take;
            runtime::touch_page(self.server, page, charge);
            charge = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{capture, StoreConfig};

    fn cfg(page_size: usize, pool_pages: usize) -> StoreConfig {
        StoreConfig {
            page_size,
            pool_pages,
        }
    }

    #[test]
    fn region_charges_one_read_per_access() {
        let (totals, ()) = capture(cfg(4, 16), || {
            let r = IoRegion::new(10); // 3 pages
            r.read_at(0, 0, 4); // page 0
            r.read_at(0, 2, 4); // pages 0–1: one read, one extra miss
            r.read_at(0, 9, 1); // page 2
            r.read_at(0, 0, 0); // free
        });
        assert_eq!((totals[0].reads, totals[0].misses), (3, 3));
    }

    #[test]
    fn region_is_inert_when_disabled() {
        let r = IoRegion::new(1000);
        r.read_at(0, 500, 10); // must not panic, charges nothing
        let (totals, ()) = capture(StoreConfig::default(), || {
            r.read_at(0, 0, 10); // region predates the install: still inert
        });
        assert!(totals.is_empty());
    }

    #[test]
    fn cursor_allocates_lazily_and_straddles_pages() {
        let (totals, ()) = capture(cfg(4, 16), || {
            let mut c = IoCursor::new(1);
            c.read(3); // page A, 3/4 used
            c.read(3); // straddles A → B: 1 read, 1 new miss
            c.read(0); // zero-width records still cost one read
        });
        assert_eq!((totals[1].reads, totals[1].misses), (3, 2));
    }

    #[test]
    fn cursor_eviction_pressure_shows_up_in_the_ledger() {
        let (totals, ()) = capture(cfg(2, 1), || {
            let mut c = IoCursor::new(0);
            for _ in 0..4 {
                c.read(2); // each record fills a fresh page in a 1-page pool
            }
        });
        assert_eq!(totals[0].misses, 4);
        assert_eq!(totals[0].evictions, 3);
    }

    #[test]
    fn cursor_is_inert_when_disabled() {
        let mut c = IoCursor::new(0);
        c.read(100);
        assert!(!runtime::is_enabled());
    }
}
