//! Deterministic fault schedules: [`FaultKind`], [`FaultSpec`], and
//! [`FaultPlan`].
//!
//! A plan is a map from `(round, server)` slots to the single fault
//! that fires there. Slots are ordered (a `BTreeMap`), so iterating a
//! plan — and therefore everything the runtime and the simulator do
//! with it — is deterministic regardless of how it was built.
//! [`FaultPlan::random`] derives a schedule from a seed with the same
//! SplitMix64 generator `parqp-testkit` uses, so equal seeds always
//! yield byte-identical schedules.

use std::collections::BTreeMap;
use std::fmt;

// The schedule generator draws through the testkit's SplitMix64 — a
// single shared source instead of a bit-identical inline copy (the
// `generator_matches_testkit_splitmix64` property test pins the
// schedule to the testkit's first draws). The runtime dependency is
// sanctioned by the lint's testkit whitelist.
use parqp_testkit::splitmix64;

/// One scheduled fault at a `(round, server)` slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The server loses its in-memory partition state at the end of
    /// the round. Recovery is governed by the installed
    /// [`RecoveryStrategy`](crate::RecoveryStrategy).
    Crash,
    /// The last `msgs` messages delivered to the server this round are
    /// lost in transit; the senders retransmit them in one extra
    /// recovery round.
    Drop {
        /// Number of messages lost (capped at the inbox size).
        msgs: u64,
    },
    /// The first `msgs` messages delivered to the server this round
    /// arrive twice. The duplicate copies are charged to the round's
    /// load, then deduplicated locally at zero communication cost.
    Duplicate {
        /// Number of messages duplicated (capped at the inbox size).
        msgs: u64,
    },
    /// The server straggles this round; a backup server speculatively
    /// re-executes its work, receiving a copy of its inbound load in
    /// the same round.
    Straggle,
}

impl FaultKind {
    /// Stable lowercase name used in trace events and CLI output.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Drop { .. } => "drop",
            FaultKind::Duplicate { .. } => "duplicate",
            FaultKind::Straggle => "straggle",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Drop { msgs } => write!(f, "drop({msgs})"),
            FaultKind::Duplicate { msgs } => write!(f, "duplicate({msgs})"),
            other => f.write_str(other.name()),
        }
    }
}

/// How many faults of each kind [`FaultPlan::random`] schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Server crashes to schedule.
    pub crashes: usize,
    /// Message-drop faults to schedule.
    pub drops: usize,
    /// Message-duplication faults to schedule.
    pub duplicates: usize,
    /// Straggler slowdowns to schedule.
    pub stragglers: usize,
    /// Upper bound on the batch size of each drop/duplicate fault
    /// (the drawn size is in `1..=max_batch`).
    pub max_batch: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            crashes: 1,
            drops: 1,
            duplicates: 1,
            stragglers: 1,
            max_batch: 8,
        }
    }
}

impl FaultSpec {
    /// Total number of faults the spec asks for.
    pub fn total(&self) -> usize {
        self.crashes + self.drops + self.duplicates + self.stragglers
    }
}

/// A deterministic schedule of faults keyed by `(round, server)`.
///
/// Rounds are counted on the runtime's logical clock: one tick per
/// *algorithm* round (ledger rounds appended by recovery do not tick,
/// so injected recovery overhead never shifts the schedule).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<(usize, usize), FaultKind>,
}

/// Draw a value in `0..n` via the multiply-shift reduction (tiny,
/// deterministic bias — fine for scheduling).
fn draw_below(state: &mut u64, n: u64) -> u64 {
    ((u128::from(splitmix64(state)) * u128::from(n)) >> 64) as u64
}

impl FaultPlan {
    /// An empty (fault-free) plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: schedule `kind` at `(round, server)`, replacing any
    /// fault already at that slot.
    pub fn with_fault(mut self, round: usize, server: usize, kind: FaultKind) -> Self {
        self.faults.insert((round, server), kind);
        self
    }

    /// Derive a schedule from `seed` over a `rounds × p` slot grid.
    ///
    /// Faults are placed kind by kind (crashes, then drops, duplicates,
    /// stragglers), each into a uniformly drawn free slot. If the grid
    /// is too small to hold every requested fault the surplus is
    /// dropped deterministically.
    pub fn random(seed: u64, p: usize, rounds: usize, spec: &FaultSpec) -> Self {
        let mut plan = Self::new();
        if p == 0 || rounds == 0 {
            return plan;
        }
        let mut state = seed;
        let max_batch = spec.max_batch.max(1);
        let kinds = [
            (spec.crashes, 0u8),
            (spec.drops, 1),
            (spec.duplicates, 2),
            (spec.stragglers, 3),
        ];
        for (count, tag) in kinds {
            for _ in 0..count {
                if plan.faults.len() >= p * rounds {
                    break;
                }
                // Bounded rejection sampling keeps placement uniform
                // over the free slots while staying deterministic.
                let slot = (0..64)
                    .map(|_| {
                        let round = draw_below(&mut state, rounds as u64) as usize;
                        let server = draw_below(&mut state, p as u64) as usize;
                        (round, server)
                    })
                    .find(|slot| !plan.faults.contains_key(slot));
                let Some(slot) = slot else { continue };
                let kind = match tag {
                    0 => FaultKind::Crash,
                    1 => FaultKind::Drop {
                        msgs: 1 + draw_below(&mut state, max_batch),
                    },
                    2 => FaultKind::Duplicate {
                        msgs: 1 + draw_below(&mut state, max_batch),
                    },
                    _ => FaultKind::Straggle,
                };
                plan.faults.insert(slot, kind);
            }
        }
        plan
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled crashes.
    pub fn crashes(&self) -> usize {
        self.faults
            .values()
            .filter(|k| matches!(k, FaultKind::Crash))
            .count()
    }

    /// All scheduled faults in `(round, server)` order.
    pub fn schedule(&self) -> impl Iterator<Item = (usize, usize, FaultKind)> + '_ {
        self.faults.iter().map(|(&(r, s), &k)| (r, s, k))
    }

    /// Faults scheduled for `round`, in ascending server order.
    pub fn faults_at(&self, round: usize) -> Vec<(usize, FaultKind)> {
        self.faults
            .range((round, 0)..=(round, usize::MAX))
            .map(|(&(_, s), &k)| (s, k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_orders_and_replaces() {
        let plan = FaultPlan::new()
            .with_fault(2, 1, FaultKind::Crash)
            .with_fault(0, 3, FaultKind::Straggle)
            .with_fault(2, 1, FaultKind::Drop { msgs: 2 });
        assert_eq!(plan.len(), 2);
        let sched: Vec<_> = plan.schedule().collect();
        assert_eq!(sched[0], (0, 3, FaultKind::Straggle));
        assert_eq!(sched[1], (2, 1, FaultKind::Drop { msgs: 2 }));
        assert_eq!(plan.crashes(), 0);
    }

    #[test]
    fn faults_at_filters_by_round() {
        let plan = FaultPlan::new()
            .with_fault(1, 0, FaultKind::Crash)
            .with_fault(1, 4, FaultKind::Straggle)
            .with_fault(3, 2, FaultKind::Crash);
        assert_eq!(
            plan.faults_at(1),
            vec![(0, FaultKind::Crash), (4, FaultKind::Straggle)]
        );
        assert!(plan.faults_at(0).is_empty());
        assert_eq!(plan.faults_at(3).len(), 1);
    }

    #[test]
    fn random_respects_spec_counts() {
        let spec = FaultSpec {
            crashes: 2,
            drops: 3,
            duplicates: 1,
            stragglers: 2,
            max_batch: 4,
        };
        let plan = FaultPlan::random(7, 16, 8, &spec);
        assert_eq!(plan.len(), spec.total());
        assert_eq!(plan.crashes(), 2);
        for (round, server, kind) in plan.schedule() {
            assert!(round < 8 && server < 16);
            if let FaultKind::Drop { msgs } | FaultKind::Duplicate { msgs } = kind {
                assert!((1..=4).contains(&msgs));
            }
        }
    }

    #[test]
    fn random_saturates_small_grids() {
        let spec = FaultSpec {
            crashes: 10,
            drops: 10,
            duplicates: 0,
            stragglers: 0,
            max_batch: 1,
        };
        let plan = FaultPlan::random(1, 2, 2, &spec);
        assert!(plan.len() <= 4);
        assert!(FaultPlan::random(1, 0, 4, &spec).is_empty());
    }

    #[test]
    fn display_names() {
        assert_eq!(FaultKind::Crash.to_string(), "crash");
        assert_eq!(FaultKind::Drop { msgs: 3 }.to_string(), "drop(3)");
        assert_eq!(FaultKind::Duplicate { msgs: 1 }.to_string(), "duplicate(1)");
        assert_eq!(FaultKind::Straggle.name(), "straggle");
    }
}
