//! Fixed-width windows on the logical tick clock.
//!
//! The serving driver emits one [`QueryObs`] per served query — the
//! query's exact ledger delta (`Cluster::report_since`), its cache
//! outcome, and its page-IO delta. The [`SeriesRecorder`] folds each
//! observation into the window its arrival tick belongs to, so every
//! counter *tiles*: summing any field across windows reproduces the
//! whole-run ledger exactly (`tests/obs_invariants.rs` reconciles them
//! against `LoadReport`, `CacheStats` and the IO ledger).
//!
//! Round accounting separates steady work from recovery: a cache hit is
//! probe-only (1 round) and a miss/off query builds then probes (2
//! rounds), so a window's *expected* rounds are `2·served − hits` and
//! anything above that is recovery overhead appended by a fault plan —
//! exactly 0 on a fault-free replay, and summing to the fault log's
//! `recovery_rounds` on a faulted one.

use crate::sketch::LogHistogram;

/// Shape of a recorded series: window width and run horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Window width in ticks (≥ 1).
    pub window_ticks: u64,
    /// Length of the replay's tick clock; fixes the window count up
    /// front so trailing quiet windows still appear in the series.
    pub ticks: u64,
    /// Cluster width `p` (per-server load vectors are this long).
    pub servers: usize,
}

/// One served query, as the serving driver observed it. Fabricating
/// one of these outside `parqp-serve`/`parqp-obs` is a layering
/// violation (lint rule PQ111): observations must come out of the
/// cluster's ledger deltas, never be invented.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryObs {
    /// Stream serial (replay order).
    pub serial: u64,
    /// Arrival tick (selects the window).
    pub tick: u64,
    /// Issuing tenant.
    pub tenant: usize,
    /// Whether the plan cache was consulted (false when disabled).
    pub lookup: bool,
    /// Whether the lookup hit.
    pub hit: bool,
    /// The query's load `L` in tuples (max over its rounds).
    pub l: u64,
    /// The skew-free line for this query: its heaviest round's total
    /// spread evenly over `p` servers (≥ 1). `l / predicted_l` is the
    /// query's bound ratio.
    pub predicted_l: u64,
    /// Ledger rounds attributed to this query (including recovery).
    pub rounds: u64,
    /// Total tuples this query's rounds moved.
    pub tuples: u64,
    /// Total words this query's rounds moved.
    pub words: u64,
    /// Output rows produced.
    pub out_rows: u64,
    /// Page-IO delta while this query ran: logical reads.
    pub io_reads: u64,
    /// Page-IO delta: pool misses.
    pub io_misses: u64,
    /// Page-IO delta: evictions.
    pub io_evictions: u64,
    /// Tuples received per server across this query's rounds
    /// (length = `p`; sums to `tuples`).
    pub per_server_tuples: Vec<u64>,
}

/// Everything one window of the series accumulated.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Window index (0-based).
    pub index: usize,
    /// First tick in the window.
    pub start_tick: u64,
    /// One past the last tick in the window.
    pub end_tick: u64,
    /// Queries served.
    pub served: u64,
    /// Cache hits / misses among them (`lookup`-true queries only).
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Output rows produced.
    pub out_rows: u64,
    /// Ledger rounds (including recovery).
    pub rounds: u64,
    /// Tuples moved.
    pub tuples: u64,
    /// Words moved.
    pub words: u64,
    /// Worst single-query load in the window.
    pub max_l: u64,
    /// Log₂ sketch of per-query loads (p50/p99 come from here).
    pub l_hist: LogHistogram,
    /// The window's worst bound-ratio query, as an exact
    /// `(l, predicted_l)` pair (compared by cross-multiplication, so
    /// no float ever enters recorder state).
    pub worst_l: u64,
    /// Denominator of the worst bound ratio (0 until a query lands).
    pub worst_predicted_l: u64,
    /// Page-IO reads.
    pub io_reads: u64,
    /// Page-IO pool misses.
    pub io_misses: u64,
    /// Page-IO evictions.
    pub io_evictions: u64,
    /// Tuples received per server over the window (length = `p`).
    pub per_server_tuples: Vec<u64>,
}

impl WindowStats {
    fn new(index: usize, cfg: &ObsConfig) -> Self {
        let start = index as u64 * cfg.window_ticks;
        Self {
            index,
            start_tick: start,
            end_tick: (start + cfg.window_ticks).min(cfg.ticks),
            served: 0,
            hits: 0,
            misses: 0,
            out_rows: 0,
            rounds: 0,
            tuples: 0,
            words: 0,
            max_l: 0,
            l_hist: LogHistogram::new(),
            worst_l: 0,
            worst_predicted_l: 0,
            io_reads: 0,
            io_misses: 0,
            io_evictions: 0,
            per_server_tuples: vec![0; cfg.servers],
        }
    }

    fn absorb(&mut self, q: &QueryObs) {
        self.served += 1;
        if q.lookup {
            if q.hit {
                self.hits += 1;
            } else {
                self.misses += 1;
            }
        }
        self.out_rows += q.out_rows;
        self.rounds += q.rounds;
        self.tuples += q.tuples;
        self.words += q.words;
        self.max_l = self.max_l.max(q.l);
        self.l_hist.record(q.l);
        // worst l/pred < q.l/q.pred  ⇔  worst_l · q.pred < q.l · worst_pred
        let pred = q.predicted_l.max(1);
        if u128::from(self.worst_l) * u128::from(pred)
            < u128::from(q.l) * u128::from(self.worst_predicted_l.max(1))
            || self.worst_predicted_l == 0
        {
            self.worst_l = q.l;
            self.worst_predicted_l = pred;
        }
        self.io_reads += q.io_reads;
        self.io_misses += q.io_misses;
        self.io_evictions += q.io_evictions;
        for (acc, t) in self.per_server_tuples.iter_mut().zip(&q.per_server_tuples) {
            *acc += t;
        }
    }

    /// Window width in ticks (the last window may be short).
    pub fn width_ticks(&self) -> u64 {
        (self.end_tick - self.start_tick).max(1)
    }

    /// Queries served per 1000 ticks of this window.
    pub fn throughput_per_kticks(&self) -> u64 {
        self.served * 1000 / self.width_ticks()
    }

    /// `hits / (hits + misses)`; 0 when the cache saw no lookup.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// `1 − io_misses/io_reads`; 0 when nothing was read.
    pub fn io_hit_rate(&self) -> f64 {
        if self.io_reads == 0 {
            0.0
        } else {
            1.0 - self.io_misses as f64 / self.io_reads as f64
        }
    }

    /// Sketch percentile of per-query load (within one log₂ bucket of
    /// the exact nearest rank).
    pub fn l_percentile(&self, pct: u64) -> u64 {
        self.l_hist.percentile(pct)
    }

    /// Window-aggregate skew: the hottest server's window total over
    /// the balanced line `tuples / p`. 1.0 for a perfectly balanced
    /// (or empty) window.
    pub fn skew(&self) -> f64 {
        let p = self.per_server_tuples.len().max(1) as f64;
        let max = self.per_server_tuples.iter().copied().max().unwrap_or(0);
        if self.tuples == 0 {
            1.0
        } else {
            max as f64 / (self.tuples as f64 / p)
        }
    }

    /// Worst per-query `L / predicted_L` in the window; 1.0 when empty.
    pub fn bound_ratio(&self) -> f64 {
        if self.worst_predicted_l == 0 {
            1.0
        } else {
            self.worst_l as f64 / self.worst_predicted_l as f64
        }
    }

    /// Steady rounds this window's query mix explains: probe-only for
    /// hits, build+probe for everything else.
    pub fn expected_rounds(&self) -> u64 {
        2 * self.served - self.hits
    }

    /// Rounds above the steady expectation — the window's share of
    /// recovery overhead. Exactly 0 on a fault-free replay.
    pub fn recovery_rounds(&self) -> u64 {
        self.rounds.saturating_sub(self.expected_rounds())
    }

    /// `recovery_rounds / expected_rounds`; 0 when the window is empty.
    pub fn recovery_overhead(&self) -> f64 {
        let expected = self.expected_rounds();
        if expected == 0 {
            0.0
        } else {
            self.recovery_rounds() as f64 / expected as f64
        }
    }
}

/// Folds per-query observations into windows. Install one through
/// [`crate::runtime`] and the serving driver feeds it.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesRecorder {
    config: ObsConfig,
    windows: Vec<WindowStats>,
}

impl SeriesRecorder {
    /// A recorder with every window of the horizon pre-allocated (so
    /// quiet windows still appear, and tiling is total).
    pub fn new(mut config: ObsConfig) -> Self {
        config.window_ticks = config.window_ticks.max(1);
        config.ticks = config.ticks.max(1);
        let n = config.ticks.div_ceil(config.window_ticks) as usize;
        let windows = (0..n).map(|i| WindowStats::new(i, &config)).collect();
        Self { config, windows }
    }

    /// Fold one observation into its arrival window (ticks past the
    /// horizon clamp to the last window).
    pub fn record(&mut self, q: &QueryObs) {
        let i = ((q.tick / self.config.window_ticks) as usize).min(self.windows.len() - 1);
        self.windows[i].absorb(q);
    }

    /// Close the series.
    pub fn finish(self) -> SeriesReport {
        SeriesReport {
            config: self.config,
            windows: self.windows,
        }
    }
}

/// A finished series: the windows plus the shape they were cut with.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesReport {
    /// The shape the series was recorded under.
    pub config: ObsConfig,
    /// One entry per window, in tick order.
    pub windows: Vec<WindowStats>,
}

impl SeriesReport {
    /// Queries served across all windows.
    pub fn served(&self) -> u64 {
        self.windows.iter().map(|w| w.served).sum()
    }

    /// Ledger rounds across all windows.
    pub fn rounds(&self) -> u64 {
        self.windows.iter().map(|w| w.rounds).sum()
    }

    /// Tuples moved across all windows.
    pub fn tuples(&self) -> u64 {
        self.windows.iter().map(|w| w.tuples).sum()
    }

    /// Words moved across all windows.
    pub fn words(&self) -> u64 {
        self.windows.iter().map(|w| w.words).sum()
    }

    /// Recovery rounds across all windows.
    pub fn recovery_rounds(&self) -> u64 {
        self.windows.iter().map(WindowStats::recovery_rounds).sum()
    }

    /// Worst per-window p99 load over the series.
    pub fn p99_l_worst(&self) -> u64 {
        self.windows
            .iter()
            .map(|w| w.l_percentile(99))
            .max()
            .unwrap_or(0)
    }

    /// Lowest hit rate over windows that saw a cache lookup; 1.0 when
    /// none did (an uncached run has no hit-rate signal).
    pub fn hit_rate_min(&self) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.hits + w.misses > 0)
            .map(WindowStats::hit_rate)
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(tick: u64, l: u64, hit: bool) -> QueryObs {
        QueryObs {
            serial: 0,
            tick,
            tenant: 0,
            lookup: true,
            hit,
            l,
            predicted_l: l.div_ceil(2).max(1),
            rounds: if hit { 1 } else { 2 },
            tuples: 2 * l,
            words: 4 * l,
            out_rows: 1,
            io_reads: 10,
            io_misses: 2,
            io_evictions: 1,
            per_server_tuples: vec![l, l],
        }
    }

    fn cfg() -> ObsConfig {
        ObsConfig {
            window_ticks: 4,
            ticks: 12,
            servers: 2,
        }
    }

    #[test]
    fn windows_tile_the_horizon() {
        let r = SeriesRecorder::new(cfg()).finish();
        assert_eq!(r.windows.len(), 3);
        assert_eq!(r.windows[0].start_tick, 0);
        for w in r.windows.windows(2) {
            assert_eq!(w[0].end_tick, w[1].start_tick, "windows must abut");
        }
        assert_eq!(r.windows.last().expect("non-empty").end_tick, 12);
    }

    #[test]
    fn ragged_last_window_is_short() {
        let r = SeriesRecorder::new(ObsConfig {
            window_ticks: 5,
            ticks: 12,
            servers: 1,
        })
        .finish();
        assert_eq!(r.windows.len(), 3);
        assert_eq!(r.windows[2].width_ticks(), 2);
    }

    #[test]
    fn observations_land_in_their_tick_window() {
        let mut rec = SeriesRecorder::new(cfg());
        rec.record(&obs(0, 8, false));
        rec.record(&obs(3, 16, true));
        rec.record(&obs(4, 32, true));
        rec.record(&obs(11, 64, false));
        let r = rec.finish();
        assert_eq!(r.windows[0].served, 2);
        assert_eq!(r.windows[1].served, 1);
        assert_eq!(r.windows[2].served, 1);
        assert_eq!(r.windows[0].hits, 1);
        assert_eq!(r.windows[0].misses, 1);
        assert_eq!(r.windows[0].max_l, 16);
        assert_eq!(r.windows[0].per_server_tuples, vec![24, 24]);
        assert_eq!(r.served(), 4);
        assert_eq!(r.tuples(), 2 * (8 + 16 + 32 + 64));
    }

    #[test]
    fn derived_rates_are_sane() {
        let mut rec = SeriesRecorder::new(cfg());
        rec.record(&obs(0, 8, false));
        rec.record(&obs(1, 8, true));
        let w = &rec.finish().windows[0];
        assert_eq!(w.hit_rate(), 0.5);
        assert_eq!(w.io_reads, 20);
        assert!((w.io_hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(w.skew(), 1.0, "equal per-server loads are balanced");
        assert_eq!(w.bound_ratio(), 2.0, "pred = l/2 → ratio 2");
        assert_eq!(w.expected_rounds(), 3);
        assert_eq!(w.recovery_rounds(), 0);
    }

    #[test]
    fn recovery_rounds_are_the_excess_over_the_query_mix() {
        let mut rec = SeriesRecorder::new(cfg());
        let mut q = obs(0, 8, false);
        q.rounds = 5; // build + probe + 3 recovery rounds
        rec.record(&q);
        let w = &rec.finish().windows[0];
        assert_eq!(w.recovery_rounds(), 3);
        assert!((w.recovery_overhead() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_windows_read_as_neutral() {
        let r = SeriesRecorder::new(cfg()).finish();
        let w = &r.windows[1];
        assert_eq!(w.hit_rate(), 0.0);
        assert_eq!(w.skew(), 1.0);
        assert_eq!(w.bound_ratio(), 1.0);
        assert_eq!(w.recovery_rounds(), 0);
        assert_eq!(w.l_percentile(99), 0);
        assert_eq!(r.hit_rate_min(), 1.0, "no lookups → no hit-rate signal");
    }

    #[test]
    fn zero_width_config_is_clamped() {
        let r = SeriesRecorder::new(ObsConfig {
            window_ticks: 0,
            ticks: 0,
            servers: 1,
        })
        .finish();
        assert_eq!(r.windows.len(), 1);
    }
}
