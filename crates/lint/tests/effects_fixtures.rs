//! Fixture tests for the effect-analysis rule family (PQ401–PQ404),
//! the dead-suppression pass (PQ408), and tokenizer regressions.
//!
//! The mutation fixtures plant exactly the bugs the analysis exists to
//! catch — an observable effect inside a worker closure, shared state
//! captured across pool threads — and assert the diagnostic carries the
//! propagation chain back to the concrete site. The negative fixture
//! asserts a pure phase passes *and* that the analysis recorded the
//! root (it looked, it didn't vacuously succeed).

use parqp_lint::effects::{analyze, FileInput, RootInfo};
use parqp_lint::rules::lint_source;
use parqp_lint::tokenize::sanitize;
use parqp_lint::{lint_files, Diagnostic, LoadedFile};

/// Reduce diagnostics to comparable `(rule, line)` pairs.
fn hits(diags: &[Diagnostic]) -> Vec<(&'static str, usize)> {
    let mut out: Vec<(&'static str, usize)> = diags.iter().map(|d| (d.rule, d.line)).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Run only the effect analysis (no token rules) over one fixture.
fn effect_report(crate_name: &str, path: &str, src: &str) -> (Vec<Diagnostic>, Vec<RootInfo>) {
    let file = sanitize(src);
    let report = analyze(&[FileInput {
        crate_name,
        path,
        file: &file,
    }]);
    (report.diagnostics, report.roots)
}

// --------------------------------------------------------------------- PQ401

#[test]
fn worker_closure_emitting_trace_is_flagged_at_the_root() {
    let src = include_str!("fixtures/worker_bad_trace.rs");
    let (diags, roots) = effect_report("join", "fixtures/worker_bad_trace.rs", src);
    assert_eq!(
        hits(&diags),
        vec![("PQ401", 6)],
        "anchored at the root line"
    );
    let msg = &diags[0].message;
    assert!(msg.contains("directly"), "direct effect, no chain: {msg}");
    assert!(msg.contains("`trace::emit`"), "names the effect: {msg}");
    assert!(
        msg.contains("fixtures/worker_bad_trace.rs:7"),
        "points at the concrete site: {msg}"
    );
    assert_eq!(roots.len(), 1);
    assert!(roots[0].closure);
}

#[test]
fn effect_reached_through_helpers_carries_the_propagation_chain() {
    let src = include_str!("fixtures/worker_bad_chain.rs");
    let (diags, roots) = effect_report("join", "fixtures/worker_bad_chain.rs", src);
    assert_eq!(hits(&diags), vec![("PQ401", 6)]);
    let msg = &diags[0].message;
    assert!(
        msg.contains("via `tally` (fixtures/worker_bad_chain.rs:11)"),
        "chain shows the hop and its call line: {msg}"
    );
    assert!(
        msg.contains("`announce`"),
        "chain reaches the emitter: {msg}"
    );
    assert!(
        msg.contains("`metrics::emit` at fixtures/worker_bad_chain.rs:16"),
        "chain ends at the concrete site: {msg}"
    );
    assert_eq!(roots[0].reachable_fns, 2, "tally and announce");
}

// --------------------------------------------------------------------- PQ402

#[test]
fn worker_closure_capturing_refcell_is_flagged() {
    let src = include_str!("fixtures/worker_bad_refcell.rs");
    let (diags, roots) = effect_report("join", "fixtures/worker_bad_refcell.rs", src);
    assert_eq!(
        hits(&diags),
        vec![("PQ402", 9)],
        "anchored at the root line"
    );
    let msg = &diags[0].message;
    assert!(msg.contains("borrow_mut"), "names the mutation: {msg}");
    assert_eq!(roots.len(), 1);
}

// ----------------------------------------------------- negative + end-to-end

#[test]
fn pure_worker_phase_passes_and_the_root_is_still_recorded() {
    let src = include_str!("fixtures/worker_ok.rs");
    let (diags, roots) = effect_report("join", "fixtures/worker_ok.rs", src);
    assert_eq!(hits(&diags), vec![], "pure phase is clean");
    assert_eq!(roots.len(), 1, "the analysis saw the root");
    assert_eq!((roots[0].line, roots[0].closure), (7, true));
    assert_eq!(roots[0].reachable_fns, 1, "weigh is reachable");
}

#[test]
fn mutation_fixtures_fail_through_the_full_pipeline() {
    // `trace` is exempt from the PQ105 token rule, so the only finding
    // the full pipeline reports is the effect-analysis PQ401.
    let out = lint_files(&[LoadedFile::from_source(
        "trace",
        "fixtures/worker_bad_trace.rs",
        include_str!("fixtures/worker_bad_trace.rs"),
    )]);
    assert_eq!(hits(&out.diagnostics), vec![("PQ401", 6)]);
    assert_eq!(out.worker_roots.len(), 1);
}

#[test]
fn effect_allow_on_the_root_line_suppresses_and_is_not_dead() {
    let src = include_str!("fixtures/worker_bad_refcell.rs").replace(
        "cluster.map(parts, |_sid, part| {",
        "cluster.map(parts, |_sid, part| { // parqp-lint: allow(PQ402) scratch is per-call, single-threaded here",
    );
    let out = lint_files(&[LoadedFile::from_source(
        "join",
        "fixtures/worker_bad_refcell.rs",
        &src,
    )]);
    assert_eq!(
        hits(&out.diagnostics),
        vec![],
        "allow(PQ402) suppresses the finding and is counted as used (no PQ408)"
    );
}

// --------------------------------------------------------------------- PQ403

#[test]
fn callgraph_edge_cases_resolve_to_the_effectful_definitions() {
    let src = include_str!("fixtures/callgraph_edges.rs");
    let (diags, roots) = effect_report("join", "fixtures/callgraph_edges.rs", src);
    assert_eq!(
        hits(&diags),
        vec![("PQ401", 28), ("PQ403", 28)],
        "same-name method union finds Gauge::tick; local swap shadows std"
    );
    let pq401 = diags.iter().find(|d| d.rule == "PQ401").expect("PQ401");
    assert!(
        pq401.message.contains("`Gauge::tick`"),
        "method call binds to the union incl. the effectful type: {}",
        pq401.message
    );
    assert!(pq401.message.contains("fixtures/callgraph_edges.rs:9"));
    let pq403 = diags.iter().find(|d| d.rule == "PQ403").expect("PQ403");
    assert!(
        pq403.message.contains("`swap`"),
        "free fn binds locally, not to an assumed-pure std name: {}",
        pq403.message
    );
    assert!(
        pq403
            .message
            .contains("`trace::span` at fixtures/callgraph_edges.rs:23"),
        "{}",
        pq403.message
    );
    assert_eq!(
        roots[0].reachable_fns, 3,
        "Gauge::tick, Counter::tick, swap"
    );
}

// --------------------------------------------------------------------- PQ408

#[test]
fn dead_allow_annotations_are_flagged_and_vetted_ones_are_not() {
    let out = lint_files(&[LoadedFile::from_source(
        "join",
        "fixtures/dead_allow.rs",
        include_str!("fixtures/dead_allow.rs"),
    )]);
    assert_eq!(
        hits(&out.diagnostics),
        vec![
            ("PQ000", 24), // allow(PQ99): malformed ID, PQ000's business not PQ408's
            ("PQ408", 4),  // allow(PQ001) on a BTreeMap import suppresses nothing
            ("PQ408", 7),  // allow(PQ201) on a panic-free line
            ("PQ408", 20), // a lone allow(PQ408) vets nothing → itself stale
        ]
    );
    // Line 11's allow(PQ201) earned its keep (v[0] is an index site) and
    // line 15's dead allow(PQ201) is vetted by its same-line allow(PQ408).
    assert!(!hits(&out.diagnostics)
        .iter()
        .any(|h| h.1 == 11 || h.1 == 15));
}

// --------------------------------------------------------- tokenizer edges

#[test]
fn tokenizer_hides_raw_strings_comments_and_continuations_not_code() {
    let src = include_str!("fixtures/tokenizer_edge.rs");
    let f = sanitize(src);
    assert_eq!(f.lines.len(), 14);
    assert!(
        !f.lines[6].code.contains("HashMap"),
        "raw string contents dropped: {}",
        f.lines[6].code
    );
    assert!(
        !f.lines[7].code.contains('#') || f.lines[7].code.starts_with("#["),
        "byte raw string with hashes dropped: {}",
        f.lines[7].code
    );
    assert!(
        !f.lines[8].code.contains("HashMap"),
        "nested block comment dropped: {}",
        f.lines[8].code
    );
    assert!(
        !f.lines[10].code.contains("HashMap"),
        "escaped-newline continuation stays string: {}",
        f.lines[10].code
    );
    // The one *real* HashMap::new() is flagged at exactly line 12 — the
    // string continuation above must not shift later line numbers.
    let diags = lint_source("join", "fixtures/tokenizer_edge.rs", &f);
    assert_eq!(hits(&diags), vec![("PQ001", 12)]);
}
