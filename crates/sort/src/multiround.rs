//! Multi-round splitter-tree distribution sort.
//!
//! Goodrich's BSP sorting algorithm achieves `O(log_L N)` rounds at load
//! `L = N/p` for arbitrary `p`, but "the algorithm is very complex"
//! (slide 104). This module implements the standard *splitter tree*
//! simplification that exhibits the same round/fan-out trade-off the
//! lower bound of slide 105 is about:
//!
//! * servers are organized into groups, initially one group of `p`;
//! * each level costs 3 rounds — (1) every member sends an evenly spaced
//!   key sample to the group leader, (2) the leader broadcasts `f−1`
//!   splitters, (3) members route items into the `f` subgroups;
//! * after `⌈log_f p⌉` levels every group is a single server, which sorts
//!   locally; group ranges are ordered, so the result is globally sorted.
//!
//! Rounds are `3·⌈log_f p⌉` — exactly the `Θ(log_L N)` shape when the
//! fan-out is what a load budget `L` admits. Larger fan-out `f` = fewer
//! rounds but a larger per-round splitter/sample load; E13 sweeps this.

use parqp_mpc::{metrics, trace, Cluster};

/// Default oversampling factor: samples collected per subgroup boundary.
const OVERSAMPLE: usize = 8;

/// Sort `u64` keys with a splitter tree of the given fan-out, using the
/// default oversampling factor (8 samples per subgroup boundary).
///
/// Returns per-server partitions, globally sorted (all keys on server `i`
/// ≤ all keys on server `i+1`, each partition sorted). Costs
/// `3·⌈log_f p⌉` communication rounds on `cluster`.
///
/// # Panics
/// Panics if `fanout < 2` or `local.len() != cluster.p()`.
pub fn multiround_sort(
    cluster: &mut Cluster,
    local: Vec<Vec<u64>>,
    fanout: usize,
) -> Vec<Vec<u64>> {
    multiround_sort_with_oversample(cluster, local, fanout, OVERSAMPLE)
}

/// As [`multiround_sort`], with an explicit oversampling factor: each
/// splitting step collects `fanout · oversample` sample keys per group.
/// Larger factors buy better splitter quality (tighter load balance) at
/// a larger sample-round load — the ablation `tables abl` sweeps this.
///
/// # Panics
/// Panics if `fanout < 2`, `oversample == 0`, or
/// `local.len() != cluster.p()`.
pub fn multiround_sort_with_oversample(
    cluster: &mut Cluster,
    local: Vec<Vec<u64>>,
    fanout: usize,
    oversample: usize,
) -> Vec<Vec<u64>> {
    let p = cluster.p();
    assert!(fanout >= 2, "fan-out must be at least 2");
    assert!(oversample >= 1, "oversample must be positive");
    assert_eq!(local.len(), p, "one input partition per server required");

    if metrics::is_enabled() {
        // Slide 105's trade-off: 3 rounds per level, ⌈log_f p⌉ levels,
        // at ideal load N/p per routing round (splitter quality governs
        // the measured overshoot; `tables abl` sweeps the oversample).
        let n: usize = local.iter().map(Vec::len).sum();
        let mut levels = 0usize;
        let mut g = p;
        while g > 1 {
            g = g.div_ceil(fanout);
            levels += 1;
        }
        metrics::announce(&metrics::PaperBound::tuples(
            "multiround_sort",
            (n as f64 / p as f64).max((fanout * oversample) as f64),
            3 * levels,
        ));
    }

    let mut data = local;
    // Groups as half-open server ranges; invariant: item keys on a group's
    // servers fall in the group's (implicit) key range, and groups are
    // ordered by key range.
    let mut groups: Vec<(usize, usize)> = vec![(0, p)];

    let _span = trace::span("multiround_sort/levels");
    while groups.iter().any(|&(lo, hi)| hi - lo > 1) {
        // Round A: members send evenly spaced samples to group leaders.
        let sample_span = trace::span("multiround_sort/sample");
        let mut ex = cluster.exchange::<u64>();
        for &(lo, hi) in &groups {
            let g = hi - lo;
            if g <= 1 {
                continue;
            }
            let subgroups = fanout.min(g);
            let want = subgroups * oversample;
            let per_member = want.div_ceil(g);
            for (m, member) in data[lo..hi].iter().enumerate() {
                ex.set_sender(lo + m);
                for k in sample_keys(member, per_member) {
                    ex.send(lo, k);
                }
            }
        }
        let sample_boxes = ex.finish();
        drop(sample_span);

        // Leaders pick splitters; Round B: broadcast them to the group.
        let splitter_span = trace::span("multiround_sort/splitters");
        let mut ex = cluster.exchange::<u64>();
        let mut group_splitters: Vec<Vec<u64>> = Vec::with_capacity(groups.len());
        for &(lo, hi) in &groups {
            ex.set_sender(lo);
            let g = hi - lo;
            if g <= 1 {
                group_splitters.push(Vec::new());
                continue;
            }
            let subgroups = fanout.min(g);
            let mut sample = sample_boxes[lo].clone();
            sample.sort_unstable();
            let splitters: Vec<u64> = (1..subgroups)
                .map(|i| {
                    let idx = i * sample.len() / subgroups;
                    sample
                        .get(idx.min(sample.len().saturating_sub(1)))
                        .copied()
                        .unwrap_or(0)
                })
                .collect();
            for s in lo..hi {
                for &sp in &splitters {
                    ex.send(s, sp);
                }
            }
            group_splitters.push(splitters);
        }
        ex.finish();
        drop(splitter_span);

        // Round C: members route items into subgroups (round-robin within
        // a subgroup's servers for balance); groups subdivide. Servers in
        // singleton groups keep their data in place — the model charges
        // only for data that actually moves.
        let route_span = trace::span("multiround_sort/route");
        let mut next_groups = Vec::new();
        let mut kept: Vec<Vec<u64>> = vec![Vec::new(); p];
        let mut ex = cluster.exchange::<u64>();
        for (gi, &(lo, hi)) in groups.iter().enumerate() {
            let g = hi - lo;
            if g <= 1 {
                next_groups.push((lo, hi));
                kept[lo] = std::mem::take(&mut data[lo]);
                continue;
            }
            let splitters = &group_splitters[gi];
            let subgroups = splitters.len() + 1;
            // Partition the server range into `subgroups` contiguous runs.
            let bounds: Vec<usize> = (0..=subgroups).map(|i| lo + i * g / subgroups).collect();
            for i in 0..subgroups {
                next_groups.push((bounds[i], bounds[i + 1].max(bounds[i] + 1).min(hi)));
            }
            for (m, member) in data[lo..hi].iter().enumerate() {
                ex.set_sender(lo + m);
                // Each level re-scans the member's run; a paged store
                // charges every key as one logical read.
                let mut io = parqp_data::paged::IoCursor::new(lo + m);
                for (idx, &k) in member.iter().enumerate() {
                    io.read(1);
                    let sub = splitters.partition_point(|&sp| sp < k);
                    let (slo, shi) = (bounds[sub], bounds[sub + 1].max(bounds[sub] + 1).min(hi));
                    let dest = slo + idx % (shi - slo);
                    ex.send(dest, k);
                }
            }
        }
        data = ex.finish();
        drop(route_span);
        for (s, k) in kept.into_iter().enumerate() {
            if !k.is_empty() {
                data[s] = k;
            }
        }
        // Normalize: drop empty/degenerate ranges produced by rounding.
        next_groups.retain(|&(lo, hi)| hi > lo);
        groups = next_groups;
    }

    for part in &mut data {
        part.sort_unstable();
    }
    data
}

/// `count` evenly spaced keys from (an unsorted copy of) `items`.
fn sample_keys(items: &[u64], count: usize) -> Vec<u64> {
    if items.is_empty() || count == 0 {
        return Vec::new();
    }
    let mut sorted = items.to_vec();
    sorted.sort_unstable();
    (1..=count)
        .map(|i| sorted[(i * sorted.len() / (count + 1)).min(sorted.len() - 1)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parqp_testkit::Rng;

    fn run(p: usize, fanout: usize, items: Vec<u64>) -> (Vec<Vec<u64>>, parqp_mpc::LoadReport) {
        let mut cluster = Cluster::new(p);
        let local = cluster.scatter(items);
        let parts = multiround_sort(&mut cluster, local, fanout);
        (parts, cluster.report())
    }

    fn assert_sorted_permutation(items: &[u64], parts: &[Vec<u64>]) {
        let flat: Vec<u64> = parts.concat();
        let mut expect = items.to_vec();
        expect.sort_unstable();
        assert_eq!(flat, expect);
    }

    #[test]
    fn sorts_random_input() {
        let mut rng = Rng::seed_from_u64(5);
        let items: Vec<u64> = (0..8000).map(|_| rng.gen_range(0..100_000u64)).collect();
        let (parts, _) = run(16, 2, items.clone());
        assert_sorted_permutation(&items, &parts);
    }

    #[test]
    fn fanout_controls_rounds() {
        // 3 rounds per level, ⌈log_f p⌉ levels (slide 105's trade-off).
        let items: Vec<u64> = (0..4096).rev().collect();
        let (_, r2) = run(16, 2, items.clone());
        let (_, r4) = run(16, 4, items.clone());
        let (_, r16) = run(16, 16, items);
        assert_eq!(r2.num_rounds(), 3 * 4); // log2(16) = 4 levels
        assert_eq!(r4.num_rounds(), 3 * 2); // log4(16) = 2 levels
        assert_eq!(r16.num_rounds(), 3); // one level
    }

    #[test]
    fn single_server_trivial() {
        let (parts, report) = run(1, 2, vec![3, 1, 2]);
        assert_eq!(parts[0], vec![1, 2, 3]);
        assert_eq!(report.num_rounds(), 0);
    }

    #[test]
    fn non_power_of_two_servers() {
        let mut rng = Rng::seed_from_u64(6);
        let items: Vec<u64> = (0..5000).map(|_| rng.gen_range(0..10_000u64)).collect();
        for p in [3, 5, 7, 13] {
            let (parts, _) = run(p, 3, items.clone());
            assert_sorted_permutation(&items, &parts);
        }
    }

    #[test]
    fn heavy_duplicates_still_sorted() {
        let mut items = vec![7u64; 3000];
        items.extend(0..1000u64);
        let (parts, _) = run(8, 2, items.clone());
        assert_sorted_permutation(&items, &parts);
    }

    #[test]
    fn empty_input() {
        let (parts, _) = run(4, 2, vec![]);
        assert!(parts.iter().all(Vec::is_empty));
    }
}
