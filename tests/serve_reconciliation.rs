//! Per-tenant metrics reconciliation: the serving layer invents no
//! numbers. Tenant stats are folded from per-query ledger deltas
//! (`Cluster::report_since`), so their sums must equal the whole-replay
//! `(L, r, C)` ledger *exactly*; the captured `MetricsRegistry` counts
//! the same event stream, so its counters must match both; and the
//! `serve.*` gauges must mirror the tenant stats they annotate.

use parqp::serve::{replay, FaultSetup, ServeConfig, ServeReport};

fn stream() -> ServeConfig {
    ServeConfig {
        servers: 4,
        tenants: 3,
        templates: 3,
        groups: 5,
        ticks: 24,
        seed: 42,
        cache_budget: 60_000,
        ..ServeConfig::default()
    }
}

/// Sum one per-tenant field across all tenants.
fn tenant_sum(r: &ServeReport, f: impl Fn(&parqp::serve::TenantStats) -> u64) -> u64 {
    r.tenants.iter().map(f).sum()
}

#[test]
fn tenant_sums_equal_the_cluster_ledger_exactly() {
    let r = replay(&stream()).expect("valid config");
    assert_eq!(tenant_sum(&r, |t| t.served), r.served());
    assert_eq!(tenant_sum(&r, |t| t.rounds), r.totals.num_rounds() as u64);
    assert_eq!(tenant_sum(&r, |t| t.tuples), r.totals.total_tuples());
    assert_eq!(tenant_sum(&r, |t| t.words), r.totals.total_words());
    // Every tenant actually served something in this stream.
    assert!(r.tenants.iter().all(|t| t.served > 0));
}

#[test]
fn tenant_cache_counters_equal_the_cache_ledger_exactly() {
    let r = replay(&stream()).expect("valid config");
    assert!(r.cache.hits > 0, "stream must exercise the cache");
    assert_eq!(tenant_sum(&r, |t| t.hits), r.cache.hits);
    assert_eq!(tenant_sum(&r, |t| t.misses), r.cache.misses);
}

#[test]
fn tenant_sums_equal_the_query_records_exactly() {
    let r = replay(&stream()).expect("valid config");
    for t in &r.tenants {
        let records: Vec<_> = r.records.iter().filter(|q| q.tenant == t.tenant).collect();
        assert_eq!(t.served, records.len() as u64);
        assert_eq!(t.rounds, records.iter().map(|q| q.rounds).sum::<u64>());
        assert_eq!(t.tuples, records.iter().map(|q| q.tuples).sum::<u64>());
        assert_eq!(t.words, records.iter().map(|q| q.words).sum::<u64>());
        // Percentiles come from the same per-query L samples.
        let mut l: Vec<u64> = records.iter().map(|q| q.l).collect();
        l.sort_unstable();
        assert!(t.l_p50 <= t.l_p99);
        assert!(l.contains(&t.l_p50) && l.contains(&t.l_p99));
    }
}

#[test]
fn registry_counters_match_the_report_ledgers() {
    let r = replay(&stream()).expect("valid config");
    // The registry counted the same event stream the LoadReport sums.
    assert_eq!(r.registry.rounds(), r.totals.num_rounds() as u64);
    assert_eq!(r.registry.counter("tuples"), r.totals.total_tuples());
    assert_eq!(r.registry.counter("words"), r.totals.total_words());
    // And the same drained page-IO ledger the paged capture summed.
    assert_eq!(r.registry.io_reads(), r.io.reads);
    assert_eq!(r.registry.counter("io_misses"), r.io.misses);
    assert_eq!(r.registry.counter("io_evictions"), r.io.evictions);
}

#[test]
fn registry_gauges_mirror_tenant_stats() {
    let r = replay(&stream()).expect("valid config");
    let gauge = |name: &str| {
        r.registry
            .gauge(name)
            .unwrap_or_else(|| panic!("gauge {name}"))
    };
    for t in &r.tenants {
        let base = format!("serve.tenant.{}", t.tenant);
        assert_eq!(gauge(&format!("{base}.served")), t.served as f64);
        assert_eq!(gauge(&format!("{base}.rounds")), t.rounds as f64);
        assert_eq!(gauge(&format!("{base}.p50_l")), t.l_p50 as f64);
        assert_eq!(gauge(&format!("{base}.p99_l")), t.l_p99 as f64);
        assert_eq!(gauge(&format!("{base}.cache_hit_rate")), t.hit_rate());
        assert_eq!(
            gauge(&format!("{base}.throughput_per_kticks")),
            t.throughput_per_kticks as f64
        );
    }
    assert_eq!(gauge("serve.queries_served"), r.served() as f64);
    assert_eq!(gauge("serve.cache.hits"), r.cache.hits as f64);
    assert_eq!(gauge("serve.cache.misses"), r.cache.misses as f64);
    assert_eq!(gauge("serve.cache.evictions"), r.cache.evictions as f64);
    assert_eq!(gauge("serve.cache.hit_rate"), r.cache.hit_rate());
}

#[test]
fn reconciliation_holds_under_injected_faults() {
    let r = replay(&ServeConfig {
        faults: Some(FaultSetup::default()),
        ..stream()
    })
    .expect("valid config");
    let log = r.fault_log.as_ref().expect("fault log present");
    assert!(log.fired() > 0, "plan must fire under load");
    // Recovery rounds land inside some query's report_since window, so
    // the tenant sums still tile the inflated ledger exactly.
    assert_eq!(tenant_sum(&r, |t| t.rounds), r.totals.num_rounds() as u64);
    assert_eq!(tenant_sum(&r, |t| t.tuples), r.totals.total_tuples());
    assert_eq!(tenant_sum(&r, |t| t.words), r.totals.total_words());
    // The registry saw the recovery events the fault log tallied.
    assert_eq!(
        r.registry.counter("recovery_rounds"),
        log.recovery_rounds as u64
    );
    assert_eq!(r.registry.counter("recovery_tuples"), log.recovery_tuples);
    assert_eq!(r.registry.counter("recovery_words"), log.recovery_words);
}
