//! Paged-vs-unpaged differential: the buffer pool must be purely
//! observational. Running any experiment under an installed paged store
//! — at any page size, any pool size, including pools small enough to
//! thrash — must reproduce the unpaged run exactly: same output digest,
//! same `(L, r, C)` ledger, byte-identical trace JSONL. The *only*
//! observable difference paging may introduce is the page-IO ledger
//! itself, which these tests also pin (per-row logical reads, forced
//! evictions under a tiny pool).

use parqp::data::paged::{self, IoStats, StoreConfig};
use parqp::mpc::LoadReport;
use parqp::trace::export;

const SEED: u64 = 42;

/// Everything observable about one experiment run, plus the summed
/// page-IO ledger (zero for unpaged runs).
struct Observed {
    digest: u64,
    report: LoadReport,
    jsonl: String,
    io: IoStats,
}

fn observe(name: &str, p: usize, cfg: Option<StoreConfig>) -> Observed {
    let run = || parqp::observe::run_experiment_full(name, p, SEED).expect("known experiment");
    let (io, run) = match cfg {
        None => (IoStats::default(), run()),
        Some(cfg) => {
            let (totals, run) = paged::capture(cfg, run);
            let mut io = IoStats::default();
            for t in &totals {
                io.merge(t);
            }
            (io, run)
        }
    };
    Observed {
        digest: run.digest,
        report: run.report,
        jsonl: export::jsonl(&run.recorder),
        io,
    }
}

fn assert_identical(name: &str, p: usize, base: &Observed, paged: &Observed, mode: &str) {
    assert_eq!(
        base.digest, paged.digest,
        "{name}/p{p} [{mode}]: output digest diverged under paging"
    );
    assert_eq!(
        base.report, paged.report,
        "{name}/p{p} [{mode}]: (L, r, C) ledger diverged under paging"
    );
    assert_eq!(
        base.jsonl, paged.jsonl,
        "{name}/p{p} [{mode}]: trace JSONL diverged under paging"
    );
}

/// A pool small enough that every experiment's scans cycle it: 2
/// resident pages of 256 words per server.
fn tiny() -> StoreConfig {
    StoreConfig {
        page_size: 256,
        pool_pages: 2,
    }
}

#[test]
fn every_experiment_identical_under_default_and_tiny_pools_at_p8() {
    for e in parqp::observe::EXPERIMENTS {
        let base = observe(e.name, 8, None);
        assert!(base.io.is_zero(), "{}: unpaged run charged page IO", e.name);
        let default = observe(e.name, 8, Some(StoreConfig::default()));
        assert_identical(e.name, 8, &base, &default, "default pool");
        assert!(
            default.io.reads > 0,
            "{}: paged run measured no logical reads",
            e.name
        );
        let thrashed = observe(e.name, 8, Some(tiny()));
        assert_identical(e.name, 8, &base, &thrashed, "tiny pool");
        // Logical reads are a property of the scan sequence, not of the
        // pool: shrinking the pool changes misses/evictions only.
        assert_eq!(
            default.io.reads, thrashed.io.reads,
            "{}: pool size leaked into logical-read accounting",
            e.name
        );
        assert!(
            thrashed.io.misses >= default.io.misses,
            "{}: a smaller pool cannot miss less",
            e.name
        );
    }
}

#[test]
fn every_experiment_identical_under_a_thrashing_pool_at_p27_and_p64() {
    for &p in &[27usize, 64] {
        for e in parqp::observe::EXPERIMENTS {
            let base = observe(e.name, p, None);
            let paged = observe(e.name, p, Some(tiny()));
            assert_identical(e.name, p, &base, &paged, "tiny pool");
            assert!(paged.io.reads > 0, "{}/p{p}: no logical reads", e.name);
        }
    }
}

#[test]
fn tiny_pool_forces_evictions_on_the_big_scans() {
    // The acceptance scenario: bigjoin (IN = 320k) and twoway-hash both
    // stream far more pages than 2 × 256 words fit, so the clock hand
    // must actually evict — and the runs above prove it never shows.
    for name in ["bigjoin", "twoway-hash"] {
        let run = observe(name, 8, Some(tiny()));
        assert!(
            run.io.evictions > 0,
            "{name}: a 2-page pool over these inputs must evict, got {:?}",
            run.io
        );
        assert!(
            run.io.misses > run.io.evictions,
            "{name}: every eviction follows a miss, plus cold-start misses"
        );
        assert!(
            run.io.hit_rate() < 1.0,
            "{name}: thrashing pool cannot have a perfect hit rate"
        );
    }
}

#[test]
fn bigjoin_scales_the_io_ledger_with_its_input() {
    // bigjoin is 10× twoway-hash's input; its logical reads must scale
    // accordingly (they count scanned rows, not resident pages).
    let small = observe("twoway-hash", 8, Some(StoreConfig::default()));
    let big = observe("bigjoin", 8, Some(StoreConfig::default()));
    assert!(
        big.io.reads >= 5 * small.io.reads,
        "bigjoin reads {} not clearly above twoway-hash reads {}",
        big.io.reads,
        small.io.reads
    );
}

#[test]
fn repeated_paged_runs_are_deterministic() {
    // Same seed, same config ⇒ identical IO ledger, byte for byte the
    // same trace: the clock replacement sequence is a pure function of
    // the touch sequence.
    let a = observe("bigjoin", 8, Some(tiny()));
    let b = observe("bigjoin", 8, Some(tiny()));
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.jsonl, b.jsonl);
    assert_eq!(a.io, b.io);
}
