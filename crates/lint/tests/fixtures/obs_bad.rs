//! Fixture: feeding the observation runtime and fabricating query
//! observations from outside serve/obs (PQ111).

use parqp_obs as obs;
use parqp_obs::{ObsConfig, QueryObs, SeriesRecorder};

pub fn forge_series() -> u64 {
    let cfg = ObsConfig {
        window_ticks: 8,
        ticks: 64,
        servers: 4,
    };
    let mut rec = SeriesRecorder::new(cfg);
    let q = QueryObs {
        serial: 0,
        tick: 0,
        tenant: 0,
        lookup: true,
        hit: true,
        l: 9000,
        predicted_l: 1,
        rounds: 1,
        tuples: 9000,
        words: 18000,
        out_rows: 0,
        io_reads: 0,
        io_misses: 0,
        io_evictions: 0,
        per_server_tuples: vec![9000, 0, 0, 0],
    };
    rec.record(&q);
    obs::emit(&q);
    let _guard = obs::install(rec);
    let (series, ()) = obs::capture(cfg, || ());
    series.served()
}
