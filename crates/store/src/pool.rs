//! The bounded buffer pool with deterministic clock replacement.
//!
//! Frames are a dense vector swept by a clock hand; the resident index
//! is a `BTreeMap`. Replacement is the textbook clock (second-chance)
//! policy: a hit sets the frame's reference bit, a miss sweeps the hand
//! forward clearing reference bits until it finds an unreferenced frame
//! to evict. Ties never arise — the hand visits frames in index order —
//! so the eviction sequence is a pure function of the touch sequence,
//! which is itself deterministic (PQ001/PQ003: no hashing, no clock).
//!
//! "IO" here is logical: an evicted page loses only *residency*. The
//! next touch of it is a counted miss, exactly the signal a real
//! out-of-core engine would pay a disk read for.

use std::collections::BTreeMap;

use crate::page::PageId;

/// The page-IO ledger of one pool (or one drained delta of it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Logical reads: one per row for paged relation scans, one per
    /// record/block access for cursor and region reads.
    pub reads: u64,
    /// Pool misses: touches of a page that was not resident.
    pub misses: u64,
    /// Evictions performed to admit missed pages into a full pool.
    pub evictions: u64,
}

impl IoStats {
    /// `1 − misses/reads`; 0 when nothing was read.
    pub fn hit_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            1.0 - self.misses as f64 / self.reads as f64
        }
    }

    /// Component-wise difference (`self − earlier`), used by the
    /// runtime to turn cumulative totals into drained deltas.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            reads: self.reads - earlier.reads,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
        }
    }

    /// Component-wise sum.
    pub fn merge(&mut self, other: &IoStats) {
        self.reads += other.reads;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == IoStats::default()
    }
}

#[derive(Debug, Clone)]
struct Frame {
    page: PageId,
    referenced: bool,
}

/// A bounded buffer pool over page IDs with clock replacement.
#[derive(Debug, Clone)]
pub struct BufferPool {
    capacity: usize,
    frames: Vec<Frame>,
    resident: BTreeMap<PageId, usize>,
    hand: usize,
    stats: IoStats,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            frames: Vec::new(),
            resident: BTreeMap::new(),
            hand: 0,
            stats: IoStats::default(),
        }
    }

    /// Touch `page`, charging `reads` logical reads. Returns `true` on
    /// a hit. A miss admits the page, evicting the clock victim when
    /// the pool is full.
    pub fn touch(&mut self, page: PageId, reads: u64) -> bool {
        self.stats.reads += reads;
        if let Some(&idx) = self.resident.get(&page) {
            self.frames[idx].referenced = true;
            return true;
        }
        self.stats.misses += 1;
        if self.frames.len() < self.capacity {
            self.resident.insert(page, self.frames.len());
            self.frames.push(Frame {
                page,
                referenced: true,
            });
            return false;
        }
        // Clock sweep: clear reference bits until an unreferenced frame
        // comes under the hand; that frame is the victim. Terminates
        // within two sweeps because every cleared bit stays cleared.
        loop {
            let frame = &mut self.frames[self.hand];
            if frame.referenced {
                frame.referenced = false;
                self.hand = (self.hand + 1) % self.capacity;
            } else {
                break;
            }
        }
        let victim = self.hand;
        let evicted = self.frames[victim].page;
        self.resident.remove(&evicted);
        self.stats.evictions += 1;
        self.resident.insert(page, victim);
        self.frames[victim] = Frame {
            page,
            referenced: true,
        };
        self.hand = (self.hand + 1) % self.capacity;
        false
    }

    /// Cumulative ledger since construction (or the last [`reset`]).
    ///
    /// [`reset`]: BufferPool::reset
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `page` is resident right now.
    pub fn is_resident(&self, page: PageId) -> bool {
        self.resident.contains_key(&page)
    }

    /// Zero the ledger and drop all residency, as if freshly built —
    /// the rewind `Cluster::reset` performs for recovery replays.
    pub fn reset(&mut self) {
        self.frames.clear();
        self.resident.clear();
        self.hand = 0;
        self.stats = IoStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses_are_counted() {
        let mut pool = BufferPool::new(4);
        assert!(!pool.touch(1, 1), "cold touch misses");
        assert!(pool.touch(1, 1), "warm touch hits");
        assert!(!pool.touch(2, 3));
        let s = pool.stats();
        assert_eq!((s.reads, s.misses, s.evictions), (5, 2, 0));
        assert!((s.hit_rate() - 0.6).abs() < 1e-12);
        assert_eq!(pool.resident_pages(), 2);
    }

    #[test]
    fn full_pool_evicts_deterministically() {
        let mut pool = BufferPool::new(2);
        pool.touch(10, 1);
        pool.touch(11, 1);
        // Both referenced: the sweep clears 10 then 11, wraps, and
        // evicts frame 0 (page 10).
        pool.touch(12, 1);
        assert_eq!(pool.stats().evictions, 1);
        assert!(!pool.is_resident(10));
        assert!(pool.is_resident(11) && pool.is_resident(12));
        // Re-touching the evicted page is a miss that now evicts 11
        // (frame 1, its bit was cleared by the previous sweep).
        assert!(!pool.touch(10, 1));
        assert!(!pool.is_resident(11));
    }

    #[test]
    fn second_chance_spares_rereferenced_pages() {
        let mut pool = BufferPool::new(3);
        pool.touch(1, 1);
        pool.touch(2, 1);
        pool.touch(3, 1);
        pool.touch(4, 1); // full sweep clears all bits, evicts 1; hand at frame 1
        assert!(pool.touch(2, 1), "page 2 survived and is re-referenced");
        // The hand reaches page 2 first, but its reference bit buys the
        // second chance: the sweep clears it and evicts page 3 instead.
        pool.touch(5, 1);
        assert!(!pool.is_resident(3));
        assert!(pool.is_resident(2) && pool.is_resident(4) && pool.is_resident(5));
        assert_eq!(pool.stats().evictions, 2);
    }

    #[test]
    fn identical_touch_sequences_yield_identical_ledgers() {
        let run = || {
            let mut pool = BufferPool::new(3);
            for page in [5u64, 9, 5, 7, 1, 9, 5, 2, 7, 7, 1] {
                pool.touch(page, 2);
            }
            pool.stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_rewinds_ledger_and_residency() {
        let mut pool = BufferPool::new(2);
        pool.touch(1, 1);
        pool.touch(2, 1);
        pool.touch(3, 1);
        pool.reset();
        assert!(pool.stats().is_zero());
        assert_eq!(pool.resident_pages(), 0);
        assert!(!pool.touch(3, 1), "post-reset touches start cold");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut pool = BufferPool::new(0);
        assert_eq!(pool.capacity(), 1);
        pool.touch(1, 1);
        pool.touch(2, 1);
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn stats_algebra() {
        let a = IoStats {
            reads: 10,
            misses: 4,
            evictions: 1,
        };
        let b = IoStats {
            reads: 6,
            misses: 1,
            evictions: 0,
        };
        assert_eq!(
            a.since(&b),
            IoStats {
                reads: 4,
                misses: 3,
                evictions: 1
            }
        );
        let mut c = b;
        c.merge(&a);
        assert_eq!(c.reads, 16);
        assert!(IoStats::default().is_zero());
        assert_eq!(IoStats::default().hit_rate(), 0.0);
    }
}
