//! Wall-clock benches (parqp-testkit harness) for the multiway one-round experiments (E05–E10):
//! HyperCube, share planning, and SkewHC.

use parqp::data::generate;
use parqp::join::{multiway, skewhc};
use parqp::prelude::*;
use parqp_testkit::bench::{BenchmarkId, Criterion};
use parqp_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_e05_triangle(c: &mut Criterion) {
    let q = Query::triangle();
    let g = generate::uniform(2, 10_000, 1 << 40, 21);
    let rels = vec![g.clone(), g.clone(), g];
    let mut grp = c.benchmark_group("e05_triangle");
    grp.sample_size(10);
    for p in [27usize, 64, 216] {
        grp.bench_with_input(BenchmarkId::new("hypercube", p), &p, |b, &p| {
            b.iter(|| black_box(multiway::hypercube(&q, &rels, p, 5)))
        });
    }
    grp.finish();
}

fn bench_e06_e07_share_planning(c: &mut Criterion) {
    let mut grp = c.benchmark_group("e06_e07_shares");
    for (name, h) in [
        ("triangle", parqp::lp::Hypergraph::triangle()),
        ("chain8", parqp::lp::Hypergraph::chain(8)),
        ("cycle6", parqp::lp::Hypergraph::cycle(6)),
    ] {
        let sizes = vec![100_000u64; h.num_edges()];
        grp.bench_function(BenchmarkId::new("plan_shares", name), |b| {
            b.iter(|| black_box(parqp::lp::plan_shares(&h, &sizes, 512)))
        });
        grp.bench_function(BenchmarkId::new("edge_packing_lp", name), |b| {
            b.iter(|| black_box(parqp::lp::fractional_edge_packing(&h)))
        });
    }
    grp.finish();
}

fn bench_e08_skewhc(c: &mut Criterion) {
    let q = Query::triangle();
    let mut g = generate::uniform(2, 8000, 1 << 40, 41);
    for i in 0..1000u64 {
        g.push(&[3, 1_000_000 + i]);
    }
    let rels = vec![g.clone(), g.clone(), g];
    let mut grp = c.benchmark_group("e08_skewhc");
    grp.sample_size(10);
    grp.bench_function("skewhc_triangle_p64", |b| {
        b.iter(|| black_box(skewhc::skewhc(&q, &rels, 64, 5)))
    });
    grp.bench_function("hypercube_triangle_p64", |b| {
        b.iter(|| black_box(multiway::hypercube(&q, &rels, 64, 5)))
    });
    grp.finish();
}

fn bench_e09_e10_residuals(c: &mut Criterion) {
    let mut grp = c.benchmark_group("e09_e10_model");
    grp.bench_function("psi_star_triangle", |b| {
        b.iter(|| black_box(parqp::query::psi_star(&Query::triangle())))
    });
    grp.bench_function("psi_star_chain6", |b| {
        b.iter(|| black_box(parqp::query::psi_star(&Query::chain(6))))
    });
    grp.bench_function("tau_star_chain20", |b| {
        b.iter(|| black_box(parqp::model::tau_star(&Query::chain(20))))
    });
    grp.finish();
}

criterion_group!(
    benches,
    bench_e05_triangle,
    bench_e06_e07_share_planning,
    bench_e08_skewhc,
    bench_e09_e10_residuals
);
criterion_main!(benches);
