//! Dense square matrices and the serial oracle.

use parqp_testkit::Rng;

/// A dense `n × n` matrix of `f64`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// The zero matrix.
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "matrices must be non-empty");
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Build from row-major data.
    ///
    /// # Panics
    /// Panics unless `data.len() == n²`.
    pub fn from_data(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "row-major data must have n² entries");
        Self { n, data }
    }

    /// A random matrix with entries uniform in `[0, 1)`.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        Self {
            n,
            data: (0..n * n).map(|_| rng.gen_f64()).collect(),
        }
    }

    /// A random matrix with small *integer* entries (exact arithmetic,
    /// used by the SQL cross-check).
    pub fn random_int(n: usize, max: u32, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        Self {
            n,
            data: (0..n * n)
                .map(|_| f64::from(rng.gen_range(0..max)))
                .collect(),
        }
    }

    /// Side length `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Set element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Add `v` to element `(i, j)`.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] += v;
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Column `j` as an owned vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.n).map(|i| self.get(i, j)).collect()
    }

    /// Serial conventional multiplication (the oracle): all `n³` products.
    pub fn multiply(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let n = self.n;
        let mut c = Matrix::zeros(n);
        // i-k-j loop order for cache-friendly row access.
        for i in 0..n {
            for k in 0..n {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let crow = &mut c.data[i * n..(i + 1) * n];
                for (cv, bv) in crow.iter_mut().zip(brow) {
                    *cv += a * bv;
                }
            }
        }
        c
    }

    /// Max absolute element difference.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.n, other.n, "dimension mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication() {
        let mut i3 = Matrix::zeros(3);
        for i in 0..3 {
            i3.set(i, i, 1.0);
        }
        let a = Matrix::random(3, 1);
        assert!(a.multiply(&i3).max_abs_diff(&a) < 1e-12);
        assert!(i3.multiply(&a).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn hand_computed_2x2() {
        let a = Matrix::from_data(2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_data(2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.multiply(&b);
        assert_eq!(c, Matrix::from_data(2, vec![19.0, 22.0, 43.0, 50.0]));
    }

    #[test]
    fn rows_and_cols() {
        let a = Matrix::from_data(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn random_deterministic() {
        assert_eq!(Matrix::random(4, 9), Matrix::random(4, 9));
        assert_ne!(Matrix::random(4, 9), Matrix::random(4, 10));
    }

    #[test]
    fn add_accumulates() {
        let mut a = Matrix::zeros(2);
        a.add(0, 1, 2.5);
        a.add(0, 1, 0.5);
        assert_eq!(a.get(0, 1), 3.0);
    }
}
