//! Fixture: the PQ004 relaxation for the sanctioned worker pool.
//!
//! The same source is linted twice — once under the real pool's path
//! (`crates/testkit/src/pool.rs`, where spawning is sanctioned) and once
//! under any other path (where both PQ004 tokens must still fire).

pub fn spawn_worker() {
    std::thread::spawn(|| {});
}

pub fn spawn_scoped(x: &mut u64) {
    std::thread::scope(|s| {
        s.spawn(|| *x += 1);
    });
}
