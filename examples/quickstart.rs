//! Quickstart: join two relations on a simulated MPC cluster and read
//! the costs the paper's theorems are about — load `L`, rounds `r`, and
//! total communication `C`.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use parqp::model;
use parqp::planner::{plan_and_run, Strategy};
use parqp::prelude::*;

fn main() {
    let p = 64; // simulated servers
    let n = 100_000; // tuples per relation

    // R(x, y) ⋈ S(y, z) with skew-free keys.
    let query = Query::two_way();
    let r = parqp::data::generate::key_unique_pairs(n, 1, 1 << 40, 1);
    let s = parqp::data::generate::key_unique_pairs(n, 0, 1 << 40, 2);

    let (decision, run) = plan_and_run(&query, &[r, s], p, 42);
    println!("query      : {query}");
    println!("planner    : {:?} — {}", decision.strategy, decision.reason);
    println!("output     : {} tuples", run.output_size());
    println!(
        "cost       : L = {} tuples, r = {}, C = {} tuples",
        run.report.max_load_tuples(),
        run.report.num_rounds(),
        run.report.total_tuples()
    );
    println!(
        "paper says : L = IN/p = {:.0} (slide 23, no skew)",
        model::one_round_load(2.0 * n as f64, p as f64, 1.0)
    );
    assert_eq!(decision.strategy, Strategy::HashJoin);

    // Now the same join under extreme skew: every key is the same.
    let r = parqp::data::generate::constant_key_pairs(n / 10, 7, 1);
    let s = parqp::data::generate::constant_key_pairs(n / 10, 7, 0);
    let (decision, run) = plan_and_run(&query, &[r, s], p, 42);
    println!("\nunder extreme skew:");
    println!("planner    : {:?} — {}", decision.strategy, decision.reason);
    println!(
        "cost       : L = {} tuples, r = {} (hash join would pay L = {})",
        run.report.max_load_tuples(),
        run.report.num_rounds(),
        2 * (n / 10)
    );
    println!(
        "paper says : L = O(√(OUT/p) + IN/p) ≈ {:.0} (slide 30)",
        ((n / 10) as f64 * (n / 10) as f64 / p as f64).sqrt()
    );
    assert_eq!(decision.strategy, Strategy::SkewJoin);
}
