//! The 1-round rectangle-block algorithm (slides 109–110).
//!
//! With a load budget `L = 2tn` each processor can hold `t` full rows of
//! `A` and `t` full columns of `B`, computing a `t × t` block of `C` with
//! `t²n` elementary products. Dividing the rows and columns into
//! `K = ⌈n/t⌉ groups` needs `p = K²` processors and total communication
//! `C = K²·L = Θ(n⁴/L)` — the 1-round lower bound (slide 126), met with
//! equality.

use crate::dense::Matrix;
use crate::MatMulRun;
use parqp_mpc::{metrics, trace, Cluster, Grid, Weight};

/// A contiguous vector of matrix elements on the wire, tagged with the
/// row/column index it came from. Each element is one word; the tag is
/// routing metadata, matching the slides' element counting.
#[derive(Debug, Clone)]
struct Strip {
    id: u64,
    vals: Vec<f64>,
}

impl Weight for Strip {
    fn words(&self) -> u64 {
        self.vals.len() as u64
    }
}

/// Multiply with the rectangle-block algorithm at row/column group size
/// `t` (so the load is `L = 2tn` and `p = ⌈n/t⌉²`).
///
/// ```
/// use parqp_matmul::{rect_block, Matrix};
///
/// let a = Matrix::random(8, 1);
/// let b = Matrix::random(8, 2);
/// let run = rect_block(&a, &b, 2);
/// assert!(run.c.max_abs_diff(&a.multiply(&b)) < 1e-9);
/// assert_eq!(run.report.num_rounds(), 1);
/// ```
///
/// # Panics
/// Panics if `t == 0` or `t > n`.
pub fn rect_block(a: &Matrix, b: &Matrix, t: usize) -> MatMulRun {
    let n = a.n();
    assert_eq!(n, b.n(), "dimension mismatch");
    assert!(t >= 1 && t <= n, "group size must be in 1..=n");
    let k = n.div_ceil(t);
    let grid = Grid::new(vec![k, k]);
    let mut cluster = Cluster::new(grid.len());
    if metrics::is_enabled() {
        // Slides 109–110: L = 2tn words (t rows of A + t columns of B),
        // one round, meeting the 1-round lower bound with equality.
        metrics::announce(&metrics::PaperBound::words(
            "matmul_rect",
            2.0 * (t * n) as f64,
            1,
        ));
    }

    // One round: row i of A goes to every processor in row-group i/t;
    // column j of B to every processor in column-group j/t. Ids ≥ n mark
    // columns so receivers can split their inbox.
    let scatter_span = trace::span("matmul_rect/scatter");
    let mut ex = cluster.exchange::<Strip>();
    for i in 0..n {
        let strip = Strip {
            id: i as u64,
            vals: a.row(i).to_vec(),
        };
        ex.send_matching(&grid, &[Some(i / t), None], strip);
    }
    for j in 0..n {
        let strip = Strip {
            id: (n + j) as u64,
            vals: b.col(j),
        };
        ex.send_matching(&grid, &[None, Some(j / t)], strip);
    }
    let inboxes = ex.finish();
    drop(scatter_span);

    // Local: each processor multiplies its rows × columns block.
    let _span = trace::span("matmul_rect/multiply");
    let mut c = Matrix::zeros(n);
    for (rank, inbox) in inboxes.into_iter().enumerate() {
        let coords = grid.coords(rank);
        let (bi, bj) = (coords[0], coords[1]);
        let mut rows: Vec<(usize, Vec<f64>)> = Vec::new();
        let mut cols: Vec<(usize, Vec<f64>)> = Vec::new();
        for strip in inbox {
            let id = strip.id as usize;
            if id < n {
                rows.push((id, strip.vals));
            } else {
                cols.push((id - n, strip.vals));
            }
        }
        debug_assert!(rows.iter().all(|&(i, _)| i / t == bi));
        debug_assert!(cols.iter().all(|&(j, _)| j / t == bj));
        for (i, arow) in &rows {
            for (j, bcol) in &cols {
                let dot: f64 = arow.iter().zip(bcol).map(|(x, y)| x * y).sum();
                c.set(*i, *j, dot);
            }
        }
    }
    MatMulRun {
        c,
        report: cluster.report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_product() {
        let a = Matrix::random(12, 1);
        let b = Matrix::random(12, 2);
        let expect = a.multiply(&b);
        for t in [1, 2, 3, 4, 6, 12] {
            let run = rect_block(&a, &b, t);
            assert!(run.c.max_abs_diff(&expect) < 1e-9, "t = {t} wrong product");
        }
    }

    #[test]
    fn one_round_and_load_2tn() {
        let n = 16;
        let a = Matrix::random(n, 3);
        let b = Matrix::random(n, 4);
        let t = 4;
        let run = rect_block(&a, &b, t);
        assert_eq!(run.report.num_rounds(), 1);
        // Every processor receives exactly t rows + t cols = 2tn words.
        assert_eq!(run.report.max_load_words(), (2 * t * n) as u64);
        assert_eq!(run.report.servers, (n / t) * (n / t));
    }

    #[test]
    fn total_communication_n4_over_l() {
        let n = 16;
        let a = Matrix::random(n, 5);
        let b = Matrix::random(n, 6);
        let t = 4;
        let run = rect_block(&a, &b, t);
        let l = (2 * t * n) as u64;
        // C = K²·L = (n/t)²·2tn = 2n³/t = 4n⁴/L exactly.
        assert_eq!(run.report.total_words(), 4 * (n as u64).pow(4) / l);
    }

    #[test]
    fn ragged_group_size() {
        let a = Matrix::random(10, 7);
        let b = Matrix::random(10, 8);
        let run = rect_block(&a, &b, 3); // K = ⌈10/3⌉ = 4
        assert!(run.c.max_abs_diff(&a.multiply(&b)) < 1e-9);
        assert_eq!(run.report.servers, 16);
    }

    #[test]
    fn t_equals_n_single_server() {
        let a = Matrix::random(6, 9);
        let b = Matrix::random(6, 10);
        let run = rect_block(&a, &b, 6);
        assert_eq!(run.report.servers, 1);
        assert!(run.c.max_abs_diff(&a.multiply(&b)) < 1e-9);
    }
}
