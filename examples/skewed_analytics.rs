//! A warehouse-style analytics join under realistic skew — the
//! `Orders ⋈ Customers` shape of slide 52, with Zipf-distributed
//! customer keys (a few customers place most orders).
//!
//! Shows the slide 24–31 story end to end: hash join degrades as skew
//! grows, while the skew-resilient join and the sort-based join hold the
//! `O(√(OUT/p) + IN/p)` line.
//!
//! ```text
//! cargo run --release --example skewed_analytics
//! ```

use parqp::data::generate;
use parqp::join::twoway;
use parqp::model;

fn main() {
    let p = 64;
    let n_orders = 200_000;
    let n_customers = 50_000;

    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "zipf α", "OUT", "hash L", "skew L", "sort L", "√(OUT/p)+IN/p"
    );
    for alpha in [0.0, 0.6, 1.0, 1.4] {
        // Orders(customer, amount): customer keys Zipf(α).
        let orders = generate::zipf_pairs(n_orders, n_customers, alpha, 0, 11);
        // Customers(key, region): one row per customer.
        let customers = generate::key_unique_pairs(n_customers, 0, 64, 12);

        let out = twoway::output_size(&orders, 0, &customers, 0);
        let hash = twoway::hash_join(&orders, 0, &customers, 0, p, 42);
        let skew = twoway::skew_join(&orders, 0, &customers, 0, p, 42);
        let sort = twoway::sort_merge_join(&orders, 0, &customers, 0, p, 42);
        assert_eq!(hash.gathered().canonical(), skew.gathered().canonical());
        assert_eq!(hash.gathered().canonical(), sort.gathered().canonical());

        let input = (n_orders + n_customers) as f64;
        let bound = (out as f64 / p as f64).sqrt() + input / p as f64;
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>12} {:>14.0}",
            alpha,
            out,
            hash.report.max_load_tuples(),
            skew.report.max_load_tuples(),
            sort.report.max_load_tuples(),
            bound,
        );
    }

    println!(
        "\nslide 26: with IN = 10¹¹ and p = 100, hash partitioning tolerates \
         degree ≤ {:.0} before skew bites (30% over mean, 95% confidence)",
        model::degree_threshold(1e11, 100.0, 0.3, 0.05)
    );
    println!(
        "at p = 1000 the tolerance is only {:.0} — more servers, more skew pain",
        model::degree_threshold(1e11, 1000.0, 0.3, 0.05)
    );
}
