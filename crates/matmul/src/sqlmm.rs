//! The SQL formulation of matrix multiplication (slide 108):
//!
//! ```sql
//! SELECT A.i, B.k, SUM(A.v * B.v)
//! FROM A, B WHERE A.j = B.j
//! GROUP BY A.i, B.k
//! ```
//!
//! Executed as two MPC rounds: a parallel hash join on `j` (the *join
//! part*), then a repartition of the partial sums by `(i, k)` (the
//! *aggregation part*). This is the query-processing view of matmul the
//! tutorial uses to connect the two worlds: the join part is exactly a
//! two-way join with τ\* = 1, and the aggregation part is what the
//! multi-round lower bound's `log_L n` term is about. It is a
//! correctness cross-check, not a communication-optimal algorithm — the
//! block algorithms of [`crate::rect`] and [`crate::square`] beat it.

use crate::dense::Matrix;
use crate::MatMulRun;
use parqp_data::FastMap;
use parqp_mpc::{Cluster, HashFamily, Weight};

/// A sparse matrix entry or partial sum on the wire.
#[derive(Debug, Clone)]
struct Entry {
    /// 0 = A entry, 1 = B entry, 2 = partial sum.
    kind: u8,
    r: usize,
    c: usize,
    v: f64,
}

impl Weight for Entry {
    fn words(&self) -> u64 {
        3 // (row, col, value) — the relational tuple of slide 108
    }
}

/// Multiply via the SQL plan: hash join on `j`, then group-by `(i, k)`.
pub fn sql_matmul(a: &Matrix, b: &Matrix, p: usize, seed: u64) -> MatMulRun {
    let n = a.n();
    assert_eq!(n, b.n(), "dimension mismatch");
    let mut cluster = Cluster::new(p);
    let h = HashFamily::new(seed, 2);

    // Round 1: repartition both relations by the join attribute j.
    let mut ex = cluster.exchange::<Entry>();
    for i in 0..n {
        for j in 0..n {
            let v = a.get(i, j);
            if v != 0.0 {
                ex.send(
                    h.hash(0, j as u64, p),
                    Entry {
                        kind: 0,
                        r: i,
                        c: j,
                        v,
                    },
                );
            }
        }
    }
    for j in 0..n {
        for k in 0..n {
            let v = b.get(j, k);
            if v != 0.0 {
                ex.send(
                    h.hash(0, j as u64, p),
                    Entry {
                        kind: 1,
                        r: j,
                        c: k,
                        v,
                    },
                );
            }
        }
    }
    let inboxes = ex.finish();

    // Local join + partial aggregation (the SUM pushed below the shuffle).
    let partials: Vec<FastMap<(usize, usize), f64>> = inboxes
        .into_iter()
        .map(|inbox| {
            let mut a_by_j: FastMap<usize, Vec<(usize, f64)>> = FastMap::default();
            let mut b_by_j: FastMap<usize, Vec<(usize, f64)>> = FastMap::default();
            for e in inbox {
                if e.kind == 0 {
                    a_by_j.entry(e.c).or_default().push((e.r, e.v));
                } else {
                    b_by_j.entry(e.r).or_default().push((e.c, e.v));
                }
            }
            let mut acc: FastMap<(usize, usize), f64> = FastMap::default();
            for (j, avs) in &a_by_j {
                if let Some(bvs) = b_by_j.get(j) {
                    for &(i, av) in avs {
                        for &(k, bv) in bvs {
                            *acc.entry((i, k)).or_insert(0.0) += av * bv;
                        }
                    }
                }
            }
            acc
        })
        .collect();

    // Round 2: group by (i, k) — route partial sums to the group owner.
    let mut ex = cluster.exchange::<Entry>();
    for acc in &partials {
        for (&(i, k), &v) in acc {
            let dest = h.hash(1, (i * n + k) as u64, p);
            ex.send(
                dest,
                Entry {
                    kind: 2,
                    r: i,
                    c: k,
                    v,
                },
            );
        }
    }
    let inboxes = ex.finish();

    let mut c = Matrix::zeros(n);
    for inbox in inboxes {
        for e in inbox {
            c.add(e.r, e.c, e.v);
        }
    }
    MatMulRun {
        c,
        report: cluster.report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_dense_oracle() {
        let a = Matrix::random_int(10, 5, 1);
        let b = Matrix::random_int(10, 5, 2);
        let run = sql_matmul(&a, &b, 8, 7);
        assert_eq!(run.c, a.multiply(&b), "integer matrices are exact");
        assert_eq!(run.report.num_rounds(), 2);
    }

    #[test]
    fn matches_block_algorithms() {
        let a = Matrix::random_int(12, 4, 3);
        let b = Matrix::random_int(12, 4, 4);
        let sql = sql_matmul(&a, &b, 6, 9);
        let rect = crate::rect_block(&a, &b, 4);
        let square = crate::square_block(&a, &b, 3, 9);
        assert!(sql.c.max_abs_diff(&rect.c) < 1e-9);
        assert!(sql.c.max_abs_diff(&square.c) < 1e-9);
    }

    #[test]
    fn float_matrices_approximately_equal() {
        let a = Matrix::random(8, 5);
        let b = Matrix::random(8, 6);
        let run = sql_matmul(&a, &b, 4, 11);
        // Different summation order ⇒ tolerance, not equality.
        assert!(run.c.max_abs_diff(&a.multiply(&b)) < 1e-9);
    }

    #[test]
    fn sparse_inputs_send_less() {
        let mut a = Matrix::zeros(10);
        a.set(0, 0, 1.0);
        a.set(3, 7, 2.0);
        let b = Matrix::random_int(10, 3, 8);
        let run = sql_matmul(&a, &b, 4, 13);
        assert!(run.c.max_abs_diff(&a.multiply(&b)) < 1e-9);
        // Round 1 ships only 2 + 100 entries ≤ 102 tuples.
        assert!(run.report.rounds[0].total_tuples() <= 102);
    }

    #[test]
    fn single_processor() {
        let a = Matrix::random_int(6, 4, 21);
        let b = Matrix::random_int(6, 4, 22);
        let run = sql_matmul(&a, &b, 1, 1);
        assert_eq!(run.c, a.multiply(&b));
    }
}
