//! A seeded family of independent hash functions.
//!
//! The HyperCube algorithm (slide 35) requires `k` *independent* hash
//! functions `h₁ … h_k`, one per join variable. This module provides a
//! deterministic family derived from a single seed via splitmix64, which
//! passes the avalanche tests required for the per-coordinate placement
//! `(h_x(a), h_y(b), h_z(c))` to behave like independent uniform choices.

/// The splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
///
/// This is the finalization step of the splitmix64 generator; it is a
/// bijection on `u64` with full avalanche, which makes it a good building
/// block for hashing integer keys.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A family of `k` independent seeded hash functions over `u64` keys.
///
/// Function `i` of the family maps a key `v` to a bucket in `0..m` via
/// `splitmix64(seed_i ⊕ mix(v)) mod m`, where the per-function seeds are
/// themselves derived from the family seed by splitmix64 — so two families
/// with different seeds, and two functions within a family, are
/// statistically independent for all practical purposes.
#[derive(Debug, Clone)]
pub struct HashFamily {
    seeds: Vec<u64>,
}

impl HashFamily {
    /// Create a family of `k` functions derived from `seed`.
    pub fn new(seed: u64, k: usize) -> Self {
        let mut state = splitmix64(seed ^ 0xa076_1d64_78bd_642f);
        let mut seeds = Vec::with_capacity(k);
        for _ in 0..k {
            state = splitmix64(state);
            seeds.push(state);
        }
        Self { seeds }
    }

    /// Number of functions in the family.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether the family is empty.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Hash `value` with function `i` into `0..buckets`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()` or `buckets == 0`.
    #[inline]
    pub fn hash(&self, i: usize, value: u64, buckets: usize) -> usize {
        assert!(buckets > 0, "hash into zero buckets");
        let h = splitmix64(self.seeds[i] ^ splitmix64(value));
        // Lemire's multiply-shift range reduction avoids the modulo bias
        // and is faster than `%` for arbitrary bucket counts.
        ((h as u128 * buckets as u128) >> 64) as usize
    }

    /// Hash `value` with function `i` to a full 64-bit digest.
    #[inline]
    pub fn digest(&self, i: usize, value: u64) -> u64 {
        splitmix64(self.seeds[i] ^ splitmix64(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = HashFamily::new(42, 3);
        let b = HashFamily::new(42, 3);
        for v in 0..100 {
            assert_eq!(a.hash(0, v, 17), b.hash(0, v, 17));
            assert_eq!(a.hash(2, v, 5), b.hash(2, v, 5));
        }
    }

    #[test]
    fn functions_differ() {
        let f = HashFamily::new(7, 2);
        let same = (0..1000)
            .filter(|&v| f.hash(0, v, 64) == f.hash(1, v, 64))
            .count();
        // Two independent functions into 64 buckets collide ~1/64 of the time.
        assert!(same < 60, "functions look identical: {same} collisions");
    }

    #[test]
    fn seeds_differ() {
        let f = HashFamily::new(1, 1);
        let g = HashFamily::new(2, 1);
        let same = (0..1000)
            .filter(|&v| f.hash(0, v, 64) == g.hash(0, v, 64))
            .count();
        assert!(
            same < 60,
            "different seeds look identical: {same} collisions"
        );
    }

    #[test]
    fn in_range() {
        let f = HashFamily::new(3, 1);
        for v in 0..10_000 {
            let h = f.hash(0, v, 7);
            assert!(h < 7);
        }
    }

    #[test]
    fn roughly_uniform() {
        let f = HashFamily::new(11, 1);
        let buckets = 10;
        let n = 100_000u64;
        let mut counts = vec![0u64; buckets];
        for v in 0..n {
            counts[f.hash(0, v, buckets)] += 1;
        }
        let expected = n / buckets as u64;
        for (b, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected as f64).abs() / expected as f64;
            assert!(dev < 0.05, "bucket {b} holds {c}, expected ~{expected}");
        }
    }

    #[test]
    fn splitmix_bijection_smoke() {
        // splitmix64 must not map two nearby values to the same digest.
        // (BTreeSet, not std HashSet: the determinism lint PQ001 and
        // clippy's disallowed-types ban seed-dependent containers.)
        let mut seen = std::collections::BTreeSet::new();
        for v in 0..10_000u64 {
            assert!(seen.insert(splitmix64(v)));
        }
    }

    #[test]
    #[should_panic(expected = "zero buckets")]
    fn zero_buckets_panics() {
        HashFamily::new(0, 1).hash(0, 1, 0);
    }
}
