//! # parqp-bench — the experiment harness
//!
//! One module per experiment (`e01` … `e14`), each regenerating a table
//! or figure of the paper as plain text rows plus CSV-ready series. The
//! `tables` binary prints any subset:
//!
//! ```text
//! cargo run --release -p parqp-bench --bin tables            # everything
//! cargo run --release -p parqp-bench --bin tables -- e05 e08 # a subset
//! ```
//!
//! Criterion wall-clock benches live in `benches/` (one group per
//! experiment family); the *numbers the paper is about* — loads, rounds,
//! communication — come from this module, deterministically.

pub mod experiments;
pub mod table;

pub use table::Table;
