//! Flat row-major relation storage.
//!
//! A [`Relation`] is a bag of fixed-arity tuples over [`Value`]s stored in
//! a single contiguous `Vec<u64>`: row `i` occupies
//! `data[i*arity .. (i+1)*arity]`. This keeps scans cache-friendly and
//! makes the "load in tuples / words" accounting of the MPC simulator
//! exact (one word per attribute value).

/// An attribute value. All data in the system is integer-encoded.
pub type Value = u64;

/// A bag (multiset) of fixed-arity tuples, stored row-major in one flat
/// vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    arity: usize,
    data: Vec<Value>,
}

impl Relation {
    /// Create an empty relation of the given arity.
    ///
    /// # Panics
    /// Panics if `arity == 0`; nullary relations are not supported as data.
    pub fn new(arity: usize) -> Self {
        assert!(arity > 0, "relations must have positive arity");
        Self {
            arity,
            data: Vec::new(),
        }
    }

    /// Create an empty relation with room for `rows` tuples.
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        assert!(arity > 0, "relations must have positive arity");
        Self {
            arity,
            data: Vec::with_capacity(arity * rows),
        }
    }

    /// Build a relation from an iterator of rows.
    ///
    /// # Panics
    /// Panics if a row's length differs from `arity`.
    pub fn from_rows<I, R>(arity: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[Value]>,
    {
        let mut rel = Self::new(arity);
        for r in rows {
            rel.push(r.as_ref());
        }
        rel
    }

    /// Arity (number of attributes).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.data.len() / self.arity
    }

    /// Whether the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append one tuple.
    ///
    /// # Panics
    /// Panics if `row.len() != self.arity()`.
    #[inline]
    pub fn push(&mut self, row: &[Value]) {
        assert_eq!(row.len(), self.arity, "row arity mismatch");
        self.data.extend_from_slice(row);
    }

    /// The `i`-th tuple.
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterate over tuples.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> + '_ {
        self.data.chunks_exact(self.arity)
    }

    /// The underlying flat storage (row-major).
    pub fn raw(&self) -> &[Value] {
        &self.data
    }

    /// Project onto the given columns (in the given order, repeats allowed).
    ///
    /// # Panics
    /// Panics if a column index is out of range or `cols` is empty.
    pub fn project(&self, cols: &[usize]) -> Relation {
        assert!(!cols.is_empty(), "projection needs at least one column");
        assert!(
            cols.iter().all(|&c| c < self.arity),
            "projection column out of range"
        );
        let mut out = Relation::with_capacity(cols.len(), self.len());
        let mut buf = vec![0; cols.len()];
        for row in self.iter() {
            for (b, &c) in buf.iter_mut().zip(cols) {
                *b = row[c];
            }
            out.push(&buf);
        }
        out
    }

    /// Keep only tuples satisfying the predicate.
    pub fn filter(&self, mut pred: impl FnMut(&[Value]) -> bool) -> Relation {
        let mut out = Relation::new(self.arity);
        for row in self.iter() {
            if pred(row) {
                out.push(row);
            }
        }
        out
    }

    /// Append all tuples of `other`.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn extend_from(&mut self, other: &Relation) {
        assert_eq!(self.arity, other.arity, "arity mismatch in extend");
        self.data.extend_from_slice(&other.data);
    }

    /// Sort tuples lexicographically (in place).
    pub fn sort(&mut self) {
        let arity = self.arity;
        let mut rows: Vec<&[Value]> = self.data.chunks_exact(arity).collect();
        rows.sort_unstable();
        let mut sorted = Vec::with_capacity(self.data.len());
        for r in rows {
            sorted.extend_from_slice(r);
        }
        self.data = sorted;
    }

    /// Sort tuples by one column (stable within equal keys by full tuple).
    pub fn sort_by_col(&mut self, col: usize) {
        assert!(col < self.arity, "sort column out of range");
        let arity = self.arity;
        let mut rows: Vec<&[Value]> = self.data.chunks_exact(arity).collect();
        rows.sort_unstable_by(|a, b| a[col].cmp(&b[col]).then_with(|| a.cmp(b)));
        let mut sorted = Vec::with_capacity(self.data.len());
        for r in rows {
            sorted.extend_from_slice(r);
        }
        self.data = sorted;
    }

    /// Sorted-and-deduplicated copy: the canonical *set* form, used to
    /// compare algorithm outputs under set semantics in tests.
    pub fn canonical(&self) -> Relation {
        let mut rows: Vec<&[Value]> = self.data.chunks_exact(self.arity).collect();
        rows.sort_unstable();
        rows.dedup();
        let mut out = Relation::with_capacity(self.arity, rows.len());
        for r in rows {
            out.push(r);
        }
        out
    }

    /// Convert to a vector of owned rows (test convenience).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        self.iter().map(<[Value]>::to_vec).collect()
    }

    /// Take the rows out as owned boxed slices (the message type used on
    /// the simulated wire).
    pub fn into_messages(self) -> Vec<Vec<Value>> {
        self.data
            .chunks_exact(self.arity)
            .map(<[Value]>::to_vec)
            .collect()
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a [Value];
    type IntoIter = std::slice::ChunksExact<'a, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.chunks_exact(self.arity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r3() -> Relation {
        Relation::from_rows(2, [[3, 1], [1, 2], [2, 2]])
    }

    #[test]
    fn push_and_access() {
        let r = r3();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 3);
        assert_eq!(r.row(1), &[1, 2]);
        assert!(!r.is_empty());
    }

    #[test]
    fn iterate() {
        let r = r3();
        let rows: Vec<&[Value]> = r.iter().collect();
        assert_eq!(rows, vec![&[3, 1][..], &[1, 2], &[2, 2]]);
        let via_into: Vec<&[Value]> = (&r).into_iter().collect();
        assert_eq!(rows, via_into);
    }

    #[test]
    fn project_reorders_and_repeats() {
        let r = r3();
        let p = r.project(&[1, 0, 1]);
        assert_eq!(p.arity(), 3);
        assert_eq!(p.row(0), &[1, 3, 1]);
    }

    #[test]
    fn filter_keeps_matching() {
        let r = r3();
        let f = r.filter(|row| row[1] == 2);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn sort_lexicographic() {
        let mut r = r3();
        r.sort();
        assert_eq!(r.to_rows(), vec![vec![1, 2], vec![2, 2], vec![3, 1]]);
    }

    #[test]
    fn sort_by_column() {
        let mut r = r3();
        r.sort_by_col(1);
        assert_eq!(r.row(0), &[3, 1]);
    }

    #[test]
    fn canonical_dedups() {
        let r = Relation::from_rows(1, [[2], [1], [2], [1], [3]]);
        assert_eq!(r.canonical().to_rows(), vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn extend_concats() {
        let mut a = r3();
        let b = Relation::from_rows(2, [[9, 9]]);
        a.extend_from(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.row(3), &[9, 9]);
    }

    #[test]
    fn into_messages_roundtrip() {
        let r = r3();
        let msgs = r.clone().into_messages();
        let back = Relation::from_rows(2, msgs);
        assert_eq!(back, r);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut r = Relation::new(2);
        r.push(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "positive arity")]
    fn zero_arity_rejected() {
        Relation::new(0);
    }
}
