//! The bound-provider contract: how an algorithm tells the metrics
//! layer what load the paper predicts for the run it is about to do.
//!
//! Each algorithm computes its closed-form bound from the quantities
//! the tutorial uses — τ\* (fractional edge quasi-packing), ρ\*
//! (fractional edge cover / AGM), ψ\* (the skew exponent), or the
//! explicit per-round formulas of the sorting and matrix chapters —
//! and announces it via [`crate::announce`] right before running. The
//! registry then reports `measured_L / predicted_L` as the run's
//! *bound-adherence ratio*: a value in `[1, 1 + ε]` means the
//! implementation runs as close to the bound as the input's balance
//! allows, while a drifting ratio flags a regression.

/// The unit a predicted load is stated in.
///
/// Join and sort bounds count *tuples* (the tutorial's `L` is tuples
/// per server per round); the matrix-multiplication bounds count
/// *words* (matrix entries), matching how the simulator weighs block
/// messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadUnit {
    /// Load measured in tuples received per server per round.
    #[default]
    Tuples,
    /// Load measured in words received per server per round.
    Words,
}

impl LoadUnit {
    /// Stable lowercase name (`"tuples"` / `"words"`).
    pub fn name(self) -> &'static str {
        match self {
            LoadUnit::Tuples => "tuples",
            LoadUnit::Words => "words",
        }
    }
}

/// A source of paper-predicted cost for one algorithm run.
///
/// The contract: `predicted_load` is the per-server per-round load the
/// analysis promises (up to constant factors the implementation is
/// expected to keep ≤ 1.5 on the calibrated experiments), stated in
/// [`unit`](BoundProvider::unit); `predicted_rounds` is the round
/// count the paper charges the algorithm. Implementations must be
/// deterministic and side-effect free — announcing happens on the hot
/// path, gated only by [`crate::is_enabled`].
pub trait BoundProvider {
    /// Stable algorithm name (`"hash_join"`, `"hypercube"`, …), used
    /// as the gauge-key prefix and the summary-table row label.
    fn algorithm(&self) -> &'static str;
    /// The load the paper predicts for this run, in [`unit`](Self::unit).
    fn predicted_load(&self) -> f64;
    /// The round count the paper charges this run.
    fn predicted_rounds(&self) -> usize;
    /// The unit `predicted_load` is stated in.
    fn unit(&self) -> LoadUnit {
        LoadUnit::Tuples
    }
}

/// The ready-made [`BoundProvider`]: a closed-form bound computed at
/// the announce site.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperBound {
    /// Stable algorithm name.
    pub algorithm: &'static str,
    /// Predicted per-server per-round load in `unit`.
    pub load: f64,
    /// Predicted round count.
    pub rounds: usize,
    /// Unit of `load`.
    pub unit: LoadUnit,
}

impl PaperBound {
    /// A tuple-denominated bound (the common case).
    pub fn tuples(algorithm: &'static str, load: f64, rounds: usize) -> Self {
        PaperBound {
            algorithm,
            load,
            rounds,
            unit: LoadUnit::Tuples,
        }
    }

    /// A word-denominated bound (matrix multiplication).
    pub fn words(algorithm: &'static str, load: f64, rounds: usize) -> Self {
        PaperBound {
            algorithm,
            load,
            rounds,
            unit: LoadUnit::Words,
        }
    }
}

impl BoundProvider for PaperBound {
    fn algorithm(&self) -> &'static str {
        self.algorithm
    }

    fn predicted_load(&self) -> f64 {
        self.load
    }

    fn predicted_rounds(&self) -> usize {
        self.rounds
    }

    fn unit(&self) -> LoadUnit {
        self.unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fix_the_unit() {
        let t = PaperBound::tuples("hash_join", 125.0, 1);
        assert_eq!(t.unit(), LoadUnit::Tuples);
        assert_eq!(t.algorithm(), "hash_join");
        assert_eq!(t.predicted_load(), 125.0);
        assert_eq!(t.predicted_rounds(), 1);
        let w = PaperBound::words("matmul_square", 72.0, 9);
        assert_eq!(w.unit(), LoadUnit::Words);
        assert_eq!(w.unit().name(), "words");
    }
}
