//! Declarative SLO rules with multi-window burn-rate alerting.
//!
//! A rule is a threshold on one per-window series; a window *burns*
//! when it is eligible (has the signal the rule reads) and violates
//! the threshold. Burns alone never fail a gate — alerting is
//! burn-rate-based on the tick clock, the way production SLO monitors
//! alert on error budgets:
//!
//! * **fast burn** — at least `fast_burn_windows` *consecutive*
//!   burning windows (a sustained episode, e.g. a skew spike that does
//!   not clear);
//! * **slow burn** — more than `slow_burn_fraction` of eligible
//!   windows burned over the whole run (chronic budget exhaustion).
//!
//! A single cold-start window (empty cache → hit rate 0) therefore
//! cannot trip the gate, while a regression that keeps the cache cold
//! all run (`tests/obs_invariants.rs` slashes the cache budget) must.
//!
//! Rules parse from a `key = value` text (the committed
//! `slo/serve_steady.slo` the CI gate runs) — the parser lives here,
//! file IO stays in `parqp` (this crate is PQ103 side-channel scoped).

use std::fmt::Write as _;

use crate::series::{SeriesReport, WindowStats};

/// Thresholds on the window series; `None` disables a rule.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRules {
    /// p99 per-query load budget (tuples) per window.
    pub p99_l_budget: Option<u64>,
    /// Minimum cache hit rate per window with lookups.
    pub hit_rate_floor: Option<f64>,
    /// Maximum per-window bound ratio (worst `L / predicted_L`).
    pub bound_ratio_ceiling: Option<f64>,
    /// Maximum per-window `recovery_rounds / expected_rounds`.
    pub recovery_overhead_cap: Option<f64>,
    /// Consecutive burning windows that raise a fast-burn alert.
    pub fast_burn_windows: usize,
    /// Fraction of eligible windows burned that raises a slow-burn
    /// alert.
    pub slow_burn_fraction: f64,
}

impl Default for SloRules {
    fn default() -> Self {
        Self {
            p99_l_budget: None,
            hit_rate_floor: None,
            bound_ratio_ceiling: None,
            recovery_overhead_cap: None,
            fast_burn_windows: 2,
            slow_burn_fraction: 0.5,
        }
    }
}

impl SloRules {
    /// The committed objectives for the steady serve preset — the same
    /// thresholds as `slo/serve_steady.slo`, which the CI gate replays
    /// (`parqp serve --obs --slo slo/serve_steady.slo`) and the BENCH
    /// `slo` section is measured against.
    pub fn serve_steady() -> Self {
        Self {
            p99_l_budget: Some(4096),
            hit_rate_floor: Some(0.25),
            bound_ratio_ceiling: Some(4.0),
            recovery_overhead_cap: Some(1.0),
            fast_burn_windows: 2,
            slow_burn_fraction: 0.5,
        }
    }

    /// Parse rules from `key = value` lines (`#` comments and blank
    /// lines skipped). Unknown keys and malformed values are errors —
    /// a typo in an SLO file must not silently disable a gate.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut rules = Self::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("slo: line {}: expected `key = value`", idx + 1));
            };
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| format!("slo: line {}: bad {what} `{value}`", idx + 1);
            match key {
                "p99_l_budget" => {
                    rules.p99_l_budget = Some(value.parse().map_err(|_| bad("integer"))?);
                }
                "hit_rate_floor" => {
                    rules.hit_rate_floor = Some(parse_fraction(value).ok_or_else(|| bad("rate"))?);
                }
                "bound_ratio_ceiling" => {
                    rules.bound_ratio_ceiling =
                        Some(parse_ratio(value).ok_or_else(|| bad("ratio"))?);
                }
                "recovery_overhead_cap" => {
                    rules.recovery_overhead_cap =
                        Some(parse_ratio(value).ok_or_else(|| bad("ratio"))?);
                }
                "fast_burn_windows" => {
                    let n: usize = value.parse().map_err(|_| bad("integer"))?;
                    if n == 0 {
                        return Err(bad("integer (must be >= 1)"));
                    }
                    rules.fast_burn_windows = n;
                }
                "slow_burn_fraction" => {
                    rules.slow_burn_fraction = parse_fraction(value).ok_or_else(|| bad("rate"))?;
                }
                _ => return Err(format!("slo: line {}: unknown rule `{key}`", idx + 1)),
            }
        }
        Ok(rules)
    }

    /// Render rules back to the parseable `key = value` form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(v) = self.p99_l_budget {
            let _ = writeln!(out, "p99_l_budget = {v}");
        }
        if let Some(v) = self.hit_rate_floor {
            let _ = writeln!(out, "hit_rate_floor = {v:.4}");
        }
        if let Some(v) = self.bound_ratio_ceiling {
            let _ = writeln!(out, "bound_ratio_ceiling = {v:.4}");
        }
        if let Some(v) = self.recovery_overhead_cap {
            let _ = writeln!(out, "recovery_overhead_cap = {v:.4}");
        }
        let _ = writeln!(out, "fast_burn_windows = {}", self.fast_burn_windows);
        let _ = writeln!(out, "slow_burn_fraction = {:.4}", self.slow_burn_fraction);
        out
    }
}

fn parse_ratio(value: &str) -> Option<f64> {
    let v: f64 = value.parse().ok()?;
    (v.is_finite() && v >= 0.0).then_some(v)
}

fn parse_fraction(value: &str) -> Option<f64> {
    parse_ratio(value).filter(|v| *v <= 1.0)
}

/// Why an alert fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlertKind {
    /// `len` consecutive windows burned, starting at window `start`.
    FastBurn {
        /// First window of the episode.
        start: usize,
        /// Length of the episode in windows.
        len: usize,
    },
    /// `burned` of `eligible` windows burned across the run.
    SlowBurn {
        /// Burning windows over the whole run.
        burned: usize,
        /// Windows that carried the rule's signal.
        eligible: usize,
    },
}

/// One burn-rate alert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloAlert {
    /// The rule that alerted.
    pub rule: &'static str,
    /// What kind of burn raised it.
    pub kind: AlertKind,
}

/// How one rule fared across the series.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleOutcome {
    /// Rule name (the `key` in the rules file).
    pub rule: &'static str,
    /// Rendered threshold.
    pub threshold: String,
    /// Indices of burning windows.
    pub burned: Vec<usize>,
    /// Windows that carried the rule's signal.
    pub eligible: usize,
    /// Alerts this rule raised.
    pub alerts: Vec<SloAlert>,
}

/// The typed result of evaluating rules against a series.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// One outcome per enabled rule, in declaration order.
    pub outcomes: Vec<RuleOutcome>,
    /// Windows in the evaluated series.
    pub windows: usize,
}

impl SloReport {
    /// All alerts across rules.
    pub fn alerts(&self) -> Vec<&SloAlert> {
        self.outcomes.iter().flat_map(|o| o.alerts.iter()).collect()
    }

    /// Whether no rule alerted.
    pub fn pass(&self) -> bool {
        self.outcomes.iter().all(|o| o.alerts.is_empty())
    }

    /// CI entry point: `Err` describing every alert when any rule
    /// burned through its budget.
    pub fn gate(&self) -> Result<(), String> {
        if self.pass() {
            return Ok(());
        }
        let mut msg = String::from("slo: burn-rate gate failed:");
        for a in self.alerts() {
            match &a.kind {
                AlertKind::FastBurn { start, len } => {
                    let _ = write!(
                        msg,
                        "\n  {}: fast burn, {len} consecutive windows from window {start}",
                        a.rule
                    );
                }
                AlertKind::SlowBurn { burned, eligible } => {
                    let _ = write!(
                        msg,
                        "\n  {}: slow burn, {burned}/{eligible} windows over budget",
                        a.rule
                    );
                }
            }
        }
        Err(msg)
    }

    /// Human-readable summary (one line per rule plus a verdict).
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "slo: {} windows", self.windows);
        for o in &self.outcomes {
            let _ = writeln!(
                out,
                "  {:<22} {:<12} burned={}/{} alerts={}",
                o.rule,
                o.threshold,
                o.burned.len(),
                o.eligible,
                o.alerts.len(),
            );
        }
        let _ = writeln!(
            out,
            "verdict: {}",
            if self.pass() { "PASS" } else { "BURN" }
        );
        out
    }
}

impl SloRules {
    /// Evaluate these rules against a recorded series.
    ///
    /// (A method rather than a free `evaluate` so the name cannot be
    /// confused with the query oracle's `evaluate` — by readers or by
    /// the lint call-graph's name-scoped resolution.)
    pub fn evaluate(&self, series: &SeriesReport) -> SloReport {
        let mut outcomes = Vec::new();
        if let Some(budget) = self.p99_l_budget {
            outcomes.push(run_rule(
                self,
                series,
                "p99_l_budget",
                format!("<= {budget}"),
                |w| (w.served > 0).then(|| w.l_percentile(99) > budget),
            ));
        }
        if let Some(floor) = self.hit_rate_floor {
            outcomes.push(run_rule(
                self,
                series,
                "hit_rate_floor",
                format!(">= {floor:.4}"),
                |w| (w.hits + w.misses > 0).then(|| w.hit_rate() < floor),
            ));
        }
        if let Some(ceiling) = self.bound_ratio_ceiling {
            outcomes.push(run_rule(
                self,
                series,
                "bound_ratio_ceiling",
                format!("<= {ceiling:.4}"),
                |w| (w.served > 0).then(|| w.bound_ratio() > ceiling),
            ));
        }
        if let Some(cap) = self.recovery_overhead_cap {
            outcomes.push(run_rule(
                self,
                series,
                "recovery_overhead_cap",
                format!("<= {cap:.4}"),
                |w| (w.served > 0).then(|| w.recovery_overhead() > cap),
            ));
        }
        SloReport {
            outcomes,
            windows: series.windows.len(),
        }
    }
}

/// Evaluate one rule: `check` returns `None` for ineligible windows
/// (no signal — they break fast-burn streaks without burning),
/// `Some(true)` for a burn.
fn run_rule(
    rules: &SloRules,
    series: &SeriesReport,
    name: &'static str,
    threshold: String,
    check: impl Fn(&WindowStats) -> Option<bool>,
) -> RuleOutcome {
    let mut burned = Vec::new();
    let mut eligible = 0usize;
    let mut alerts = Vec::new();
    let mut streak = 0usize;
    let mut streak_start = 0usize;
    let mut fast: Option<(usize, usize)> = None;
    for w in &series.windows {
        match check(w) {
            None => streak = 0,
            Some(false) => {
                eligible += 1;
                streak = 0;
            }
            Some(true) => {
                eligible += 1;
                if streak == 0 {
                    streak_start = w.index;
                }
                streak += 1;
                burned.push(w.index);
                if streak >= rules.fast_burn_windows {
                    // Keep the longest episode; extend in place.
                    fast = Some(match fast {
                        Some((start, len)) if start == streak_start => (start, len.max(streak)),
                        Some((start, len)) if len >= streak => (start, len),
                        _ => (streak_start, streak),
                    });
                }
            }
        }
    }
    if let Some((start, len)) = fast {
        alerts.push(SloAlert {
            rule: name,
            kind: AlertKind::FastBurn { start, len },
        });
    }
    if eligible > 0 && burned.len() as f64 > rules.slow_burn_fraction * eligible as f64 {
        alerts.push(SloAlert {
            rule: name,
            kind: AlertKind::SlowBurn {
                burned: burned.len(),
                eligible,
            },
        });
    }
    RuleOutcome {
        rule: name,
        threshold,
        burned,
        eligible,
        alerts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{ObsConfig, QueryObs, SeriesRecorder};

    /// A series of one query per tick with the given loads; hit flags
    /// alternate by `hit_every`.
    fn series(loads: &[u64], hit_every: usize) -> SeriesReport {
        let mut rec = SeriesRecorder::new(ObsConfig {
            window_ticks: 1,
            ticks: loads.len() as u64,
            servers: 2,
        });
        for (tick, &l) in loads.iter().enumerate() {
            let hit = hit_every > 0 && tick % hit_every == 0;
            rec.record(&QueryObs {
                serial: tick as u64,
                tick: tick as u64,
                tenant: 0,
                lookup: true,
                hit,
                l,
                predicted_l: l.max(1),
                rounds: if hit { 1 } else { 2 },
                tuples: 2 * l,
                words: 4 * l,
                out_rows: 0,
                io_reads: 0,
                io_misses: 0,
                io_evictions: 0,
                per_server_tuples: vec![l, l],
            });
        }
        rec.finish()
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        let rules = SloRules::serve_steady();
        let parsed = SloRules::parse(&rules.render()).expect("render must parse");
        assert_eq!(parsed, rules);
        let commented = "# steady objectives\np99_l_budget = 10\n\nhit_rate_floor = 0.5\n";
        let r = SloRules::parse(commented).expect("valid");
        assert_eq!(r.p99_l_budget, Some(10));
        assert_eq!(r.hit_rate_floor, Some(0.5));
        for bad in [
            "p99_l_budget = soon",
            "hit_rate_floor = 1.5",
            "bound_ratio_ceiling = -1",
            "fast_burn_windows = 0",
            "latency_budget = 9",
            "no equals sign",
        ] {
            assert!(SloRules::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn single_burning_window_does_not_alert() {
        // One p99 spike among healthy windows: burn recorded, no alert.
        let s = series(&[10, 10, 500, 10, 10, 10], 2);
        let rules = SloRules {
            p99_l_budget: Some(100),
            ..SloRules::default()
        };
        let report = rules.evaluate(&s);
        assert_eq!(report.outcomes[0].burned, vec![2]);
        assert!(report.pass(), "{report:?}");
        report.gate().expect("no alert, gate must pass");
    }

    #[test]
    fn consecutive_burns_raise_fast_burn() {
        let s = series(&[10, 500, 600, 700, 10, 10], 2);
        let rules = SloRules {
            p99_l_budget: Some(100),
            ..SloRules::default()
        };
        let report = rules.evaluate(&s);
        assert!(!report.pass());
        let alerts = report.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(
            alerts[0].kind,
            AlertKind::FastBurn { start: 1, len: 3 },
            "{report:?}"
        );
        assert!(report.gate().expect_err("must fail").contains("fast burn"));
    }

    #[test]
    fn chronic_burns_raise_slow_burn() {
        // Burn every other window: never 2 consecutive, but 3/6 > 0.4.
        let s = series(&[500, 10, 500, 10, 500, 10], 2);
        let rules = SloRules {
            p99_l_budget: Some(100),
            slow_burn_fraction: 0.4,
            ..SloRules::default()
        };
        let report = rules.evaluate(&s);
        let alerts = report.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(
            alerts[0].kind,
            AlertKind::SlowBurn {
                burned: 3,
                eligible: 6
            }
        );
    }

    #[test]
    fn hit_rate_floor_ignores_lookupless_windows() {
        let mut rec = SeriesRecorder::new(ObsConfig {
            window_ticks: 1,
            ticks: 3,
            servers: 1,
        });
        // Only tick 1 sees a (missing) lookup; ticks 0/2 are cache-off.
        for tick in 0..3u64 {
            rec.record(&QueryObs {
                serial: tick,
                tick,
                tenant: 0,
                lookup: tick == 1,
                hit: false,
                l: 1,
                predicted_l: 1,
                rounds: 2,
                tuples: 2,
                words: 4,
                out_rows: 0,
                io_reads: 0,
                io_misses: 0,
                io_evictions: 0,
                per_server_tuples: vec![2],
            });
        }
        let rules = SloRules {
            hit_rate_floor: Some(0.9),
            slow_burn_fraction: 1.0,
            ..SloRules::default()
        };
        let report = rules.evaluate(&rec.finish());
        assert_eq!(report.outcomes[0].eligible, 1);
        assert_eq!(report.outcomes[0].burned, vec![1]);
        assert!(
            report.pass(),
            "a lone burn cannot fast-burn, and 1/1 is not > 1.0: {report:?}"
        );
    }

    #[test]
    fn slow_burn_counts_only_eligible_windows() {
        // All three windows eligible and burning → slow burn at 0.5.
        let s = series(&[500, 500, 10], 0);
        let rules = SloRules {
            p99_l_budget: Some(100),
            fast_burn_windows: 5,
            slow_burn_fraction: 0.5,
            ..SloRules::default()
        };
        let report = rules.evaluate(&s);
        assert_eq!(
            report.alerts()[0].kind,
            AlertKind::SlowBurn {
                burned: 2,
                eligible: 3
            }
        );
    }

    #[test]
    fn recovery_overhead_rule_reads_excess_rounds() {
        let mut rec = SeriesRecorder::new(ObsConfig {
            window_ticks: 1,
            ticks: 2,
            servers: 1,
        });
        for (tick, rounds) in [(0u64, 2u64), (1, 6)] {
            rec.record(&QueryObs {
                serial: tick,
                tick,
                tenant: 0,
                lookup: false,
                hit: false,
                l: 1,
                predicted_l: 1,
                rounds,
                tuples: 2,
                words: 4,
                out_rows: 0,
                io_reads: 0,
                io_misses: 0,
                io_evictions: 0,
                per_server_tuples: vec![2],
            });
        }
        let rules = SloRules {
            recovery_overhead_cap: Some(1.0),
            fast_burn_windows: 1,
            ..SloRules::default()
        };
        let report = rules.evaluate(&rec.finish());
        // Window 1: expected 2, got 6 → overhead 2.0 > 1.0 → burn, and
        // fast_burn_windows=1 promotes it to an alert.
        assert_eq!(report.outcomes[0].burned, vec![1]);
        assert!(!report.pass());
    }

    #[test]
    fn table_is_deterministic_and_labelled() {
        let s = series(&[10, 10], 2);
        let report = SloRules::serve_steady().evaluate(&s);
        let t = report.table();
        assert_eq!(t, SloRules::serve_steady().evaluate(&s).table());
        assert!(t.contains("p99_l_budget"));
        assert!(t.contains("verdict:"));
    }
}
