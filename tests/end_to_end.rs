//! End-to-end integration: every distributed algorithm against the
//! serial oracle across query shapes, data classes and cluster sizes,
//! plus global invariants of the cost ledger.

use parqp::data::generate;
use parqp::join::{gym, multiway, plans, skewhc, twoway};
use parqp::prelude::*;
use parqp::query::evaluate;
use parqp_data::Relation;

fn datasets(seed: u64) -> Vec<(&'static str, Relation)> {
    vec![
        ("uniform", generate::uniform(2, 600, 80, seed)),
        (
            "key-unique",
            generate::key_unique_pairs(600, 1, 1 << 30, seed),
        ),
        ("zipf", generate::zipf_pairs(600, 200, 1.1, 1, seed)),
        (
            "planted-heavy",
            generate::planted_heavy_pairs(600, &[1, 2], 150, 1, 500, seed),
        ),
    ]
}

#[test]
fn two_way_algorithms_match_oracle_across_data_classes() {
    for (name, r) in datasets(1) {
        for (sname, s) in datasets(2) {
            let expect = parqp::join::common::twoway_oracle(&r, 1, &s, 0).canonical();
            for p in [1, 4, 16] {
                let runs = [
                    ("hash", twoway::hash_join(&r, 1, &s, 0, p, 9)),
                    ("skew", twoway::skew_join(&r, 1, &s, 0, p, 9)),
                    ("sort", twoway::sort_merge_join(&r, 1, &s, 0, p, 9)),
                    ("broadcast", twoway::broadcast_join(&r, 1, &s, 0, p)),
                ];
                for (alg, run) in runs {
                    assert_eq!(
                        run.gathered().canonical(),
                        expect,
                        "{alg} wrong on {name} ⋈ {sname} at p={p}"
                    );
                }
            }
        }
    }
}

#[test]
fn multiway_algorithms_match_oracle_on_triangle() {
    let mut g = generate::random_symmetric_graph(60, 500, 5);
    for i in 0..80 {
        g.push(&[0, 200 + i]);
        g.push(&[200 + i, 0]);
    }
    let q = Query::triangle();
    let rels = vec![g.clone(), g.clone(), g];
    let expect = evaluate(&q, &rels).canonical();
    for p in [4, 27, 64] {
        let hc = multiway::hypercube(&q, &rels, p, 3);
        let sk = skewhc::skewhc(&q, &rels, p, 3);
        let bp = plans::binary_join_plan(&q, &rels, p, 3, None);
        assert_eq!(hc.gathered().canonical(), expect, "hypercube p={p}");
        assert_eq!(sk.gathered().canonical(), expect, "skewhc p={p}");
        assert_eq!(bp.gathered().canonical(), expect, "binary plan p={p}");
    }
}

#[test]
fn acyclic_pipeline_gym_vs_oracle_vs_plan() {
    for q in [Query::chain(4), Query::star(4), Query::slide64_tree()] {
        let rels: Vec<Relation> = (0..q.num_atoms())
            .map(|i| generate::uniform(2, 250, 50, 20 + i as u64))
            .collect();
        let expect = evaluate(&q, &rels).canonical();
        let tree = Ghd::join_tree(&q).expect("acyclic");
        for optimized in [false, true] {
            let run = gym::gym(&q, &rels, &tree, 8, 7, optimized);
            assert_eq!(
                run.gathered().canonical(),
                expect,
                "{q} optimized={optimized}"
            );
        }
        let plan = plans::binary_join_plan(&q, &rels, 8, 7, None);
        assert_eq!(plan.gathered().canonical(), expect, "{q} binary plan");
    }
}

#[test]
fn load_ledger_conserves_messages() {
    // Σ over servers of received tuples each round equals what was sent;
    // gathering the per-round totals must equal report.total.
    let q = Query::triangle();
    let g = generate::uniform(2, 400, 1 << 20, 9);
    let rels = vec![g.clone(), g.clone(), g];
    let run = multiway::hypercube(&q, &rels, 27, 5);
    let per_round: u64 = run.report.rounds.iter().map(|r| r.total_tuples()).sum();
    assert_eq!(per_round, run.report.total_tuples());
    // HyperCube on the triangle replicates each tuple exactly `share`
    // times: total = Σ_j |S_j| · p^{1/3} for a 3×3×3 cube.
    assert_eq!(run.report.total_tuples(), 3 * 400 * 3);
}

#[test]
fn one_round_algorithms_use_one_round() {
    let q = Query::triangle();
    let g = generate::uniform(2, 200, 100, 11);
    let rels = vec![g.clone(), g.clone(), g];
    assert_eq!(multiway::hypercube(&q, &rels, 8, 1).report.num_rounds(), 1);
    assert_eq!(skewhc::skewhc(&q, &rels, 8, 1).report.num_rounds(), 1);
    let r = generate::uniform(2, 200, 50, 12);
    let s = generate::uniform(2, 200, 50, 13);
    assert_eq!(twoway::hash_join(&r, 1, &s, 0, 8, 1).report.num_rounds(), 1);
    assert_eq!(
        twoway::broadcast_join(&r, 1, &s, 0, 8).report.num_rounds(),
        1
    );
}

#[test]
fn sort_crate_composes_with_join_outputs() {
    // Sort the projection of a distributed join's output — exercises the
    // public APIs of three crates together.
    let r = generate::uniform(2, 500, 60, 14);
    let s = generate::uniform(2, 500, 60, 15);
    let run = twoway::hash_join(&r, 1, &s, 0, 8, 3);
    let keys: Vec<u64> = run.gathered().project(&[2]).raw().to_vec();
    let mut cluster = Cluster::new(8);
    let local = cluster.scatter(keys.clone());
    let parts = parqp::sort::psrs(&mut cluster, local);
    let sorted: Vec<u64> = parts.concat();
    let mut expect = keys;
    expect.sort_unstable();
    assert_eq!(sorted, expect);
}

#[test]
fn runs_are_deterministic() {
    // Same seed ⇒ bit-identical outputs *and* identical cost ledgers;
    // a different seed keeps the answer but may shuffle the loads.
    let q = Query::triangle();
    let g = generate::random_symmetric_graph(50, 400, 21);
    let rels = vec![g.clone(), g.clone(), g];
    let a = multiway::hypercube(&q, &rels, 27, 5);
    let b = multiway::hypercube(&q, &rels, 27, 5);
    assert_eq!(a.report, b.report);
    assert_eq!(a.gathered(), b.gathered());
    let c = multiway::hypercube(&q, &rels, 27, 6);
    assert_eq!(a.gathered().canonical(), c.gathered().canonical());

    let s1 = skewhc::skewhc(&q, &rels, 16, 9);
    let s2 = skewhc::skewhc(&q, &rels, 16, 9);
    assert_eq!(s1.report, s2.report);
}

#[test]
fn load_bounds_hold_across_seeds() {
    // Statistical robustness: the HyperCube triangle load stays within
    // 2× of 3N/p^{2/3} for every hash seed we try — no adversarial-seed
    // blowups.
    let q = Query::triangle();
    let n = 4000;
    let g = generate::uniform(2, n, 1 << 40, 33);
    let rels = vec![g.clone(), g.clone(), g];
    let p = 64;
    let bound = 3.0 * n as f64 / (p as f64).powf(2.0 / 3.0);
    for seed in 0..12 {
        let run = multiway::hypercube(&q, &rels, p, seed);
        let l = run.report.max_load_tuples() as f64;
        assert!(l < 2.0 * bound, "seed {seed}: L = {l} vs bound {bound}");
    }
}

#[test]
fn empty_inputs_everywhere() {
    let q = Query::two_way();
    let e = Relation::new(2);
    let r = generate::uniform(2, 50, 10, 16);
    for run in [
        twoway::hash_join(&e, 1, &r, 0, 4, 1),
        twoway::skew_join(&e, 1, &r, 0, 4, 1),
        twoway::sort_merge_join(&e, 1, &r, 0, 4, 1),
    ] {
        assert_eq!(run.output_size(), 0);
    }
    let tree = Ghd::join_tree(&q).expect("acyclic");
    let run = gym::gym(&q, &[e.clone(), r.clone()], &tree, 4, 1, true);
    assert_eq!(run.output_size(), 0);
}
