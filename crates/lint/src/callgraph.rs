//! Pass 2 of the effect analyzer: call extraction and best-effort
//! binding.
//!
//! From sanitized source lines this pass extracts every syntactic call
//! site ([`calls_in_line`]) and binds each one to workspace functions
//! where it can ([`Index::resolve`]). Binding is *textual*, not
//! semantic: there is no type inference, so method calls bind to every
//! workspace method of that name (a union over candidates — sound for
//! effect propagation, at the cost of precision) and free calls bind by
//! scoped name lookup (same file, then same crate, then workspace).
//!
//! Three escape categories keep the textual scheme honest:
//!
//! - **Pure**: calls the resolver is confident cannot reach workspace
//!   effect APIs — `std`/`core`/`alloc` paths, constructors
//!   (uppercase identifiers), derive-shaped methods (`clone`, `fmt`,
//!   …), and method names with *no* workspace definition (assumed to
//!   be std methods; std cannot call back into this workspace).
//! - **Edges**: calls bound to one or more workspace items.
//! - **Unresolved**: everything else — calls through function-typed
//!   parameters, names that exist nowhere in the workspace, methods
//!   missing from a known workspace type. In worker-reachable code
//!   these surface as PQ404 unless explicitly allowed.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::FnItem;

/// One syntactic call site on a line.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub callee: Callee,
}

#[derive(Debug, Clone)]
pub enum Callee {
    /// `name(...)` — a free call.
    Free { name: String },
    /// `recv.name(...)` — a method call; `recv` is the identifier
    /// immediately before the dot, when there is one (`self`, a local,
    /// …; `None` for chained calls like `x.a().b()`).
    Method { name: String, recv: Option<String> },
    /// `a::b::name(...)` — a path call (turbofish stripped).
    Path { segs: Vec<String> },
    /// `name!(...)` — a macro invocation.
    Macro { name: String },
}

impl Callee {
    /// Human-readable spelling for diagnostics.
    pub fn display(&self) -> String {
        match self {
            Callee::Free { name } => format!("{name}()"),
            Callee::Method { name, .. } => format!(".{name}()"),
            Callee::Path { segs } => format!("{}()", segs.join("::")),
            Callee::Macro { name } => format!("{name}!"),
        }
    }
}

fn is_keyword(w: &str) -> bool {
    matches!(
        w,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "let"
            | "fn"
            | "pub"
            | "use"
            | "mod"
            | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "type"
            | "const"
            | "static"
            | "mut"
            | "ref"
            | "move"
            | "in"
            | "as"
            | "where"
            | "unsafe"
            | "dyn"
            | "break"
            | "continue"
            | "crate"
            | "super"
            | "async"
            | "await"
            | "true"
            | "false"
    )
}

#[derive(Debug, PartialEq)]
enum Tok {
    Ident(String),
    Punct(char),
}

fn lex(code: &str) -> Vec<Tok> {
    let bytes = code.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            toks.push(Tok::Ident(code[start..i].to_string()));
        } else if c.is_ascii_digit() {
            // Numeric literal (incl. suffixes like 0u64, 1.5f32): skip
            // so `u64` is not lexed as an identifier.
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
            {
                i += 1;
            }
        } else if c.is_whitespace() {
            i += 1;
        } else {
            toks.push(Tok::Punct(c));
            i += 1;
        }
    }
    toks
}

/// Extract every call site from one sanitized line.
pub fn calls_in_line(code: &str) -> Vec<CallSite> {
    let toks = lex(code);
    let mut out = Vec::new();
    let mut j = 0;
    while j < toks.len() {
        let Tok::Ident(name) = &toks[j] else {
            j += 1;
            continue;
        };
        if is_keyword(name) {
            j += 1;
            continue;
        }
        // `fn name(` is a definition, not a call.
        if j > 0 && toks[j - 1] == Tok::Ident("fn".to_string()) {
            j += 1;
            continue;
        }
        // Build the longest `a::b::c` path starting here.
        let mut segs = vec![name.clone()];
        let mut k = j;
        loop {
            if toks.get(k + 1) == Some(&Tok::Punct(':'))
                && toks.get(k + 2) == Some(&Tok::Punct(':'))
            {
                match toks.get(k + 3) {
                    Some(Tok::Ident(seg)) => {
                        segs.push(seg.clone());
                        k += 3;
                    }
                    Some(Tok::Punct('<')) => {
                        // Turbofish: skip to the matching `>`.
                        let mut angle = 0usize;
                        let mut m = k + 3;
                        while m < toks.len() {
                            match toks[m] {
                                Tok::Punct('<') => angle += 1,
                                Tok::Punct('>') => {
                                    // `->` inside a turbofish fn type.
                                    let arrow = m > 0 && toks[m - 1] == Tok::Punct('-');
                                    if !arrow {
                                        angle -= 1;
                                        if angle == 0 {
                                            break;
                                        }
                                    }
                                }
                                _ => {}
                            }
                            m += 1;
                        }
                        k = m;
                        break;
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        let next = toks.get(k + 1);
        let prev_dot = j > 0 && toks[j - 1] == Tok::Punct('.');
        if next == Some(&Tok::Punct('!')) {
            let after = toks.get(k + 2);
            if segs.len() == 1
                && (after == Some(&Tok::Punct('('))
                    || after == Some(&Tok::Punct('['))
                    || after == Some(&Tok::Punct('{')))
            {
                out.push(CallSite {
                    callee: Callee::Macro { name: name.clone() },
                });
            }
        } else if next == Some(&Tok::Punct('(')) {
            if prev_dot {
                let recv = if j >= 2 {
                    match &toks[j - 2] {
                        Tok::Ident(r) => Some(r.clone()),
                        _ => None,
                    }
                } else {
                    None
                };
                out.push(CallSite {
                    callee: Callee::Method {
                        name: name.clone(),
                        recv,
                    },
                });
            } else if segs.len() > 1 {
                out.push(CallSite {
                    callee: Callee::Path { segs },
                });
            } else {
                out.push(CallSite {
                    callee: Callee::Free { name: name.clone() },
                });
            }
        }
        j = k + 1;
    }
    out
}

/// Method names whose std meaning is overwhelmingly more common than
/// any workspace homonym. Binding these by bare name would poison
/// every iterator chain with the workspace homonym's effects (e.g.
/// `.map(` would union in `WorkerPool::map`, whose body takes a
/// `Mutex`), so they resolve as std-pure. `Cluster::map` roots are
/// recognized *before* resolution by receiver shape, so this loses no
/// soundness for the worker-purity rules.
const STD_SHADOW_METHODS: &[&str] = &[
    "map",
    "clone",
    "fmt",
    "next",
    "len",
    "is_empty",
    "eq",
    "cmp",
    "partial_cmp",
    "hash",
    "default",
    "get",
    "push",
    "sort",
    "contains",
    "insert",
    "extend",
    "clear",
    "iter",
    "drain",
    // Iterator adapters: binding these by bare name would make every
    // iterator chain inherit a workspace homonym's params and effects
    // (e.g. `.filter(` would bind to `Relation::filter`).
    "filter",
    "filter_map",
    "flat_map",
    "for_each",
    "fold",
    "retain",
    "any",
    "all",
    "find",
    "position",
    "count",
    "enumerate",
    "zip",
    "rev",
    "take",
    "skip",
    "chain",
    "sum",
    "min",
    "max",
    "last",
];

/// Std prelude/collection types: `Type::method(...)` on these is always
/// std, even when the workspace implements a *trait* for them (which
/// would otherwise register them as known owners). Trait methods on
/// these types still bind through the bare-name method table.
const STD_TYPES: &[&str] = &[
    "Vec",
    "VecDeque",
    "String",
    "Box",
    "Rc",
    "Arc",
    "Option",
    "Result",
    "BTreeMap",
    "BTreeSet",
    "HashMap",
    "HashSet",
    "BinaryHeap",
    "Cow",
    "Path",
    "PathBuf",
    "Iterator",
    "Ord",
    "Ordering",
    "Some",
    "None",
    "Ok",
    "Err",
    "Default",
    "Clone",
    "Copy",
    "Duration",
];

/// Method names treated as derive-generated / std-trait implementations
/// when called as `Type::method(...)` on a known workspace type that
/// has no explicit definition.
const DERIVED_PURE_METHODS: &[&str] = &[
    "clone",
    "default",
    "from",
    "fmt",
    "to_string",
    "eq",
    "cmp",
    "partial_cmp",
    "hash",
    "into",
];

/// What a call site binds to.
#[derive(Debug, Clone)]
pub enum Resolution {
    /// Bound to these items (global indices into [`Index::items`]).
    Edges(Vec<usize>),
    /// Confidently outside the workspace effect surface.
    Pure,
    /// Cannot be bound; `reason` explains why (shown in PQ404).
    Unresolved { reason: &'static str },
}

/// The calling context a resolution happens in.
pub struct ResolveCtx<'a> {
    pub crate_name: &'a str,
    pub file_idx: usize,
    /// Enclosing `impl`/`trait` owner of the calling fn.
    pub owner: Option<&'a str>,
    /// Parameter names of the calling fn (higher-order detection).
    pub params: &'a [String],
    pub is_test: bool,
}

/// A workspace-wide item index for name-based binding.
pub struct Index {
    /// Flattened `(file_idx, item)` across all files, in file order.
    pub items: Vec<(usize, FnItem)>,
    /// Crate name per file index.
    pub file_crates: Vec<String>,
    free_by_name: BTreeMap<String, Vec<usize>>,
    methods_by_name: BTreeMap<String, Vec<usize>>,
    methods_by_owner: BTreeMap<(String, String), Vec<usize>>,
    owners: BTreeSet<String>,
}

impl Index {
    pub fn build(per_file: Vec<(String, Vec<FnItem>)>) -> Index {
        let mut items = Vec::new();
        let mut file_crates = Vec::new();
        for (crate_name, fns) in per_file {
            let file_idx = file_crates.len();
            file_crates.push(crate_name);
            for item in fns {
                items.push((file_idx, item));
            }
        }
        let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut methods_by_owner: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut owners = BTreeSet::new();
        for (idx, (_, item)) in items.iter().enumerate() {
            match &item.owner {
                Some(owner) => {
                    owners.insert(owner.clone());
                    methods_by_name
                        .entry(item.name.clone())
                        .or_default()
                        .push(idx);
                    methods_by_owner
                        .entry((owner.clone(), item.name.clone()))
                        .or_default()
                        .push(idx);
                }
                None => {
                    free_by_name.entry(item.name.clone()).or_default().push(idx);
                }
            }
        }
        Index {
            items,
            file_crates,
            free_by_name,
            methods_by_name,
            methods_by_owner,
            owners,
        }
    }

    /// Candidates visible from `ctx` (prod code never binds into
    /// `#[cfg(test)]` items).
    fn visible<'s>(&'s self, ids: &'s [usize], ctx: &ResolveCtx) -> Vec<usize> {
        ids.iter()
            .copied()
            .filter(|&i| ctx.is_test || !self.items[i].1.is_test)
            .filter(|&i| self.items[i].1.has_body)
            .collect()
    }

    fn free_scoped(&self, name: &str, ctx: &ResolveCtx) -> Option<Vec<usize>> {
        let all = self.free_by_name.get(name)?;
        let all = self.visible(all, ctx);
        if all.is_empty() {
            return None;
        }
        // Innermost scope wins: same file, then same crate, then all.
        let same_file: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| self.items[i].0 == ctx.file_idx)
            .collect();
        if !same_file.is_empty() {
            return Some(same_file);
        }
        let same_crate: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| self.file_crates[self.items[i].0] == ctx.crate_name)
            .collect();
        if !same_crate.is_empty() {
            return Some(same_crate);
        }
        Some(all)
    }

    /// Bind one call site. See the module docs for the scheme.
    pub fn resolve(&self, callee: &Callee, ctx: &ResolveCtx) -> Resolution {
        match callee {
            Callee::Macro { .. } => Resolution::Pure,
            Callee::Free { name } => {
                if name.starts_with(|c: char| c.is_ascii_uppercase()) {
                    // Tuple-struct / enum-variant constructor.
                    return Resolution::Pure;
                }
                if ctx.params.iter().any(|p| p == name) {
                    return Resolution::Unresolved {
                        reason: "higher-order call through a function parameter",
                    };
                }
                match self.free_scoped(name, ctx) {
                    Some(ids) => Resolution::Edges(ids),
                    None => Resolution::Unresolved {
                        reason: "no function of this name in the workspace",
                    },
                }
            }
            Callee::Method { name, recv } => {
                // `self.m()` binds exactly within the enclosing impl.
                if recv.as_deref() == Some("self") {
                    if let Some(owner) = ctx.owner {
                        if let Some(ids) = self
                            .methods_by_owner
                            .get(&(owner.to_string(), name.clone()))
                        {
                            let ids = self.visible(ids, ctx);
                            if !ids.is_empty() {
                                return Resolution::Edges(ids);
                            }
                        }
                    }
                }
                if STD_SHADOW_METHODS.contains(&name.as_str()) {
                    return Resolution::Pure;
                }
                match self.methods_by_name.get(name) {
                    Some(ids) => {
                        let ids = self.visible(ids, ctx);
                        if ids.is_empty() {
                            Resolution::Pure
                        } else {
                            Resolution::Edges(ids)
                        }
                    }
                    // No workspace definition: a std/alias method, which
                    // cannot call back into workspace effect APIs.
                    None => Resolution::Pure,
                }
            }
            Callee::Path { segs } => self.resolve_path(segs, ctx),
        }
    }

    fn resolve_path(&self, segs: &[String], ctx: &ResolveCtx) -> Resolution {
        let mut segs: Vec<&str> = segs.iter().map(|s| s.as_str()).collect();
        match segs[0] {
            "std" | "core" | "alloc" => return Resolution::Pure,
            "crate" | "self" | "super" => {
                segs.remove(0);
                while !segs.is_empty() && segs[0] == "super" {
                    segs.remove(0);
                }
                if segs.len() < 2 {
                    if segs.len() == 1 {
                        return self.resolve(
                            &Callee::Free {
                                name: segs[0].to_string(),
                            },
                            ctx,
                        );
                    }
                    return Resolution::Unresolved {
                        reason: "bare crate-relative path",
                    };
                }
            }
            _ => {}
        }
        let last = segs[segs.len() - 1].to_string();
        let qual = segs[segs.len() - 2];
        if qual.starts_with(|c: char| c.is_ascii_uppercase()) {
            // `Type::method(...)` — an associated call.
            if STD_TYPES.contains(&qual) {
                return Resolution::Pure;
            }
            let type_name = if qual == "Self" {
                match ctx.owner {
                    Some(o) => o.to_string(),
                    None => {
                        return Resolution::Unresolved {
                            reason: "Self:: path outside an impl block",
                        }
                    }
                }
            } else {
                qual.to_string()
            };
            if self.owners.contains(&type_name) {
                if let Some(ids) = self.methods_by_owner.get(&(type_name, last.clone())) {
                    let ids = self.visible(ids, ctx);
                    if !ids.is_empty() {
                        return Resolution::Edges(ids);
                    }
                }
                if DERIVED_PURE_METHODS.contains(&last.as_str()) {
                    return Resolution::Pure;
                }
                return Resolution::Unresolved {
                    reason: "method not defined on this workspace type",
                };
            }
            // Unknown type: std or a type alias — outside the workspace
            // effect surface.
            return Resolution::Pure;
        }
        // Module path: use the leading crate segment as a scope hint.
        let crate_hint = segs[0].strip_prefix("parqp_").unwrap_or(segs[0]);
        if let Some(all) = self.free_by_name.get(&last) {
            let all = self.visible(all, ctx);
            let in_hinted: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&i| self.file_crates[self.items[i].0] == crate_hint)
                .collect();
            if !in_hinted.is_empty() {
                return Resolution::Edges(in_hinted);
            }
            let in_crate: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&i| self.file_crates[self.items[i].0] == ctx.crate_name)
                .collect();
            if !in_crate.is_empty() {
                return Resolution::Edges(in_crate);
            }
            if !all.is_empty() {
                return Resolution::Edges(all);
            }
        }
        Resolution::Unresolved {
            reason: "path does not name a workspace function",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call_names(code: &str) -> Vec<String> {
        calls_in_line(code)
            .into_iter()
            .map(|c| c.callee.display())
            .collect()
    }

    #[test]
    fn extracts_free_method_path_and_macro_calls() {
        assert_eq!(
            call_names("let x = helper(a) + obj.method(b) + mod_a::mod_b::f(c);"),
            vec!["helper()", ".method()", "mod_a::mod_b::f()"]
        );
        assert_eq!(
            call_names("vec![a, b]; assert_eq!(x, y);"),
            vec!["vec!", "assert_eq!"]
        );
    }

    #[test]
    fn turbofish_is_stripped() {
        assert_eq!(
            call_names("xs.collect::<Vec<_>>(); parse::<u64>(s);"),
            vec![".collect()", "parse()"]
        );
    }

    #[test]
    fn definitions_and_keywords_are_not_calls() {
        assert!(call_names("fn helper(x: usize) {").is_empty());
        assert!(call_names("if (a) { while (b) {} }").is_empty());
    }

    #[test]
    fn method_receiver_is_captured() {
        let calls = calls_in_line("pool.map(items, f)");
        assert_eq!(calls.len(), 1);
        match &calls[0].callee {
            Callee::Method { name, recv } => {
                assert_eq!(name, "map");
                assert_eq!(recv.as_deref(), Some("pool"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn numeric_suffixes_are_not_idents() {
        assert!(call_names("let x = 0u64 + 1.5; let y = 3usize;").is_empty());
    }

    #[test]
    fn inner_calls_inside_macro_args_are_seen() {
        assert_eq!(
            call_names("vec![make(a), other.build(b)]"),
            vec!["vec!", "make()", ".build()"]
        );
    }
}
