//! Wall-clock benches (parqp-testkit harness) for the sorting experiments (E13): PSRS and the
//! multi-round splitter-tree sort.

use parqp::prelude::*;
use parqp::sort::{multiround_sort, psrs};
use parqp_testkit::bench::{BenchmarkId, Criterion};
use parqp_testkit::Rng;
use parqp_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

fn items(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

fn bench_psrs(c: &mut Criterion) {
    let data = items(100_000, 3);
    let mut grp = c.benchmark_group("e13_psrs");
    grp.sample_size(10);
    for p in [8usize, 64] {
        grp.bench_with_input(BenchmarkId::new("psrs", p), &p, |b, &p| {
            b.iter(|| {
                let mut cluster = Cluster::new(p);
                let local = cluster.scatter(data.clone());
                black_box(psrs(&mut cluster, local))
            })
        });
    }
    grp.finish();
}

fn bench_multiround(c: &mut Criterion) {
    let data = items(50_000, 5);
    let mut grp = c.benchmark_group("e13_multiround");
    grp.sample_size(10);
    for f in [2usize, 8] {
        grp.bench_with_input(BenchmarkId::new("fanout", f), &f, |b, &f| {
            b.iter(|| {
                let mut cluster = Cluster::new(64);
                let local = cluster.scatter(data.clone());
                black_box(multiround_sort(&mut cluster, local, f))
            })
        });
    }
    grp.finish();
}

criterion_group!(benches, bench_psrs, bench_multiround);
criterion_main!(benches);
