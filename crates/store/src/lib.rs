//! # parqp-store — deterministic paged storage with a page-IO ledger
//!
//! The out-of-core substrate underneath `parqp-data`: fixed-size pages
//! of encoded tuple rows ([`page`]), a bounded per-server buffer pool
//! with deterministic clock replacement ([`pool`]), and a thread-local
//! runtime ([`runtime`]) that mirrors the exec/trace/faults/metrics
//! pattern — install a [`StoreConfig`], run, and every paged scan is
//! charged to an exact **page-IO ledger** (logical reads, pool misses,
//! evictions) that `parqp-mpc` drains into the metrics registry as a
//! second cost axis beside communication load.
//!
//! Determinism rules match the rest of the workspace: no wall clock,
//! no `HashMap` (the pool's resident index is a `BTreeMap`, frames are
//! a dense vector swept by a clock hand), and page IDs come from a
//! monotonic per-runtime counter, so a fixed seed reproduces the exact
//! same ledger. The store never changes *what* an algorithm computes —
//! paged scans yield byte-identical rows in byte-identical order — it
//! only measures *how* the data was touched, which is why paged and
//! unpaged runs produce identical digests, `(L, r)` ledgers and trace
//! exports (the `store_differential` suite pins this).
//!
//! No real files are involved: pages live in memory behind the
//! [`PageStore`] trait and eviction merely drops pool residency, so a
//! re-touch of an evicted page is a counted miss, not data loss.

pub mod page;
pub mod pool;
pub mod region;
pub mod runtime;

pub use page::{MemStore, Page, PageId, PageStore};
pub use pool::{BufferPool, IoStats};
pub use region::{IoCursor, IoRegion};
pub use runtime::{
    alloc_pages, capture, config, drain_io, ensure_servers, install, io_report, is_enabled,
    reset_io, touch_page, StoreConfig, StoreGuard, DEFAULT_PAGE_SIZE, DEFAULT_POOL_PAGES,
};
