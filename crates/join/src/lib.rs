//! # parqp-join — the MPC join algorithm suite
//!
//! Every join algorithm of the tutorial, implemented on the
//! [`parqp_mpc`] simulator. All algorithms share one calling convention:
//! they take the input relations whole, distribute them round-robin (the
//! model's free initial placement), run their communication rounds, and
//! return a [`JoinRun`] with per-server outputs plus the `(L, r, C)`
//! [`parqp_mpc::LoadReport`].
//!
//! * [`twoway`] — parallel hash join (slide 23), broadcast join
//!   (slide 32), the Cartesian-product grid (slide 28), the
//!   skew-resilient join combining them (slide 30), and the sort-based
//!   join over PSRS (slide 31);
//! * [`multiway`] — the HyperCube / Shares one-round algorithm with
//!   LP-optimal shares (slides 34–44);
//! * [`skewhc`] — SkewHC: heavy/light residual queries, each on its own
//!   server group (slides 47–51);
//! * [`plans`] — multi-round iterative binary-join plans, the baseline
//!   "what systems do in practice" (slides 57, 97);
//! * [`gym`] — GYM, distributed Yannakakis over a join tree: vanilla
//!   `r = O(n)` and per-level-parallel `r = O(d)` variants, plus
//!   generalized width-`w` GHD execution (slides 78–95);
//! * [`hl`] — Heavy-Light + Semijoins: slide 58's skew-insensitive
//!   semijoin pipeline and slide 59's triangle decomposition;
//! * [`aggregate`] — distributed GROUP BY / SUM (hash, combiner and
//!   reduction-tree strategies, slides 52 and 125);
//! * [`subgraph`] — a BiGJoin-style vertex-at-a-time expansion join for
//!   (cyclic) subgraph queries (slide 97's practice section);
//! * [`baselines`] — the deliberately naive strategies of the slide 13
//!   cost table (ship-everything, ring rotation).

pub mod aggregate;
pub mod baselines;
pub mod common;
pub mod gym;
pub mod hl;
pub mod multiway;
pub mod plans;
pub mod skewhc;
pub mod subgraph;
pub mod twoway;

pub use common::JoinRun;
