//! Run any conjunctive query from its Datalog syntax.
//!
//! ```text
//! cargo run --release --example datalog -- "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)" 64
//! ```
//!
//! Arguments: the query (default: the triangle) and the number of
//! simulated servers (default 64). Every atom gets a fresh random
//! relation; the planner picks the algorithm; the run reports the MPC
//! costs and cross-checks against the serial oracle.

use parqp::planner::plan_and_run;
use parqp::prelude::*;
use parqp::query::parse_query;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let src = args
        .first()
        .cloned()
        .unwrap_or_else(|| "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)".into());
    let p: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(64);

    let query = match parse_query(&src) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    println!("query : {query}");
    println!(
        "τ* = {}, ψ* = {}",
        parqp::model::tau_star(&query),
        parqp::model::psi_star_of(&query)
    );

    // One random relation per atom (binary atoms get graph-like data).
    let n = 5000;
    let rels: Vec<Relation> = query
        .atoms()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            if a.arity() == 1 {
                parqp::data::generate::unary_range(n / 4)
            } else {
                parqp::data::generate::uniform(a.arity(), n, (n / 4) as u64, 7 + i as u64)
            }
        })
        .collect();

    let (decision, run) = plan_and_run(&query, &rels, p, 42);
    println!("plan  : {:?} — {}", decision.strategy, decision.reason);
    println!(
        "cost  : L = {} tuples, r = {}, C = {} tuples on p = {p}",
        run.report.max_load_tuples(),
        run.report.num_rounds(),
        run.report.total_tuples()
    );
    println!("output: {} tuples", run.output_size());

    let expect = parqp::query::evaluate(&query, &rels);
    assert_eq!(
        run.gathered().canonical(),
        expect.canonical(),
        "distributed result must match the serial oracle"
    );
    println!("verified against the serial oracle ✓");
}
