//! The thread-local store runtime: per-server buffer pools behind an
//! install/guard lifecycle.
//!
//! Mirrors `parqp_mpc::exec`, `parqp_trace::recorder`,
//! `parqp_faults::runtime` and `parqp_metrics::runtime`: the simulator
//! is single-threaded by design (PQ004), so one thread-local slot is
//! the whole "global" state. [`install`] puts a runtime built from a
//! [`StoreConfig`] in the slot and returns a [`StoreGuard`] that
//! restores the previous runtime on drop (panic-safe). When nothing is
//! installed every entry point is a no-op, so the unpaged path pays
//! nothing and — by construction — behaves identically.
//!
//! Layering (lint rule PQ109): [`alloc_pages`]/[`touch_page`] are the
//! paged layer's private wire — only `parqp-store` itself and
//! `parqp-data`'s paged scans may call them — and [`drain_io`]/
//! [`reset_io`] belong to `parqp-mpc`, which drains the ledger into the
//! metrics registry at round boundaries and rewinds it on
//! `Cluster::reset`. Everyone else installs a config and reads the
//! captured totals.
//!
//! Server IDs index one global pool vector, grown on demand: a
//! sub-cluster of `p′ < p` servers (skew joins split clusters this way)
//! shares the pools of servers `0..p′`, the same convention the fault
//! runtime uses for its per-server crash state.

use std::cell::RefCell;
use std::rc::Rc;

use crate::page::PageId;
use crate::pool::{BufferPool, IoStats};

/// Default page capacity in words (512 two-column tuples per page).
pub const DEFAULT_PAGE_SIZE: usize = 1024;

/// Default per-server pool bound in pages (¼ MiB of resident words).
pub const DEFAULT_POOL_PAGES: usize = 256;

/// Configuration of the paged store: page capacity and pool bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Page capacity in words (clamped to ≥ 1 at install).
    pub page_size: usize,
    /// Per-server buffer-pool bound in pages (clamped to ≥ 1).
    pub pool_pages: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            page_size: DEFAULT_PAGE_SIZE,
            pool_pages: DEFAULT_POOL_PAGES,
        }
    }
}

/// The installed paged-store state: config, page-ID allocator, and one
/// bounded pool per server (plus its last-drained snapshot).
#[derive(Debug)]
struct Runtime {
    config: StoreConfig,
    next_page: PageId,
    pools: Vec<BufferPool>,
    drained: Vec<IoStats>,
}

impl Runtime {
    fn new(mut config: StoreConfig) -> Self {
        config.page_size = config.page_size.max(1);
        config.pool_pages = config.pool_pages.max(1);
        Self {
            config,
            next_page: 0,
            pools: Vec::new(),
            drained: Vec::new(),
        }
    }

    fn ensure(&mut self, servers: usize) {
        while self.pools.len() < servers {
            self.pools.push(BufferPool::new(self.config.pool_pages));
            self.drained.push(IoStats::default());
        }
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Rc<RefCell<Runtime>>>> = const { RefCell::new(None) };
}

/// Restores the previously installed runtime when dropped.
#[must_use = "dropping the guard immediately uninstalls the paged store"]
pub struct StoreGuard {
    previous: Option<Rc<RefCell<Runtime>>>,
}

impl Drop for StoreGuard {
    fn drop(&mut self) {
        ACTIVE.with(|slot| {
            *slot.borrow_mut() = self.previous.take();
        });
    }
}

/// Install a paged store built from `config` until the returned guard
/// drops. Nesting is allowed; the innermost install wins and the outer
/// runtime resumes when the inner guard drops.
pub fn install(config: StoreConfig) -> StoreGuard {
    install_shared(config).0
}

fn install_shared(config: StoreConfig) -> (StoreGuard, Rc<RefCell<Runtime>>) {
    let shared = Rc::new(RefCell::new(Runtime::new(config)));
    let previous = ACTIVE.with(|slot| slot.borrow_mut().replace(shared.clone()));
    (StoreGuard { previous }, shared)
}

/// Whether a paged store is currently installed. Paged scans check
/// this once up front and fall back to plain in-memory iteration when
/// it is off.
pub fn is_enabled() -> bool {
    ACTIVE.with(|slot| slot.borrow().is_some())
}

/// The installed configuration, if any.
pub fn config() -> Option<StoreConfig> {
    with(|rt| rt.config)
}

/// Make sure pools for servers `0..p` exist. `Cluster` construction
/// calls this so every virtual server owns its pool before the first
/// round. A no-op when nothing is installed.
pub fn ensure_servers(p: usize) {
    with(|rt| rt.ensure(p));
}

/// Allocate `n` consecutive page IDs, returning the first. `None` when
/// nothing is installed (the caller then keeps its pages unaccounted).
/// Allocation order is the only source of IDs, so a deterministic run
/// assigns deterministic IDs.
pub fn alloc_pages(n: u64) -> Option<PageId> {
    with(|rt| {
        let base = rt.next_page;
        rt.next_page += n;
        base
    })
}

/// Touch `page` in `server`'s pool, charging `reads` logical reads.
/// A no-op when nothing is installed.
pub fn touch_page(server: usize, page: PageId, reads: u64) {
    with(|rt| {
        rt.ensure(server + 1);
        rt.pools[server].touch(page, reads);
    });
}

/// The ledger accumulated across **all** servers since the last drain,
/// advancing the drained snapshots. `parqp-mpc` calls this at round
/// boundaries and on `Cluster::report` to feed the metrics registry;
/// draining all servers (not just a cluster's own `p`) keeps sub-
/// cluster IO from escaping the ledger. Zero when nothing is installed.
pub fn drain_io() -> IoStats {
    with(|rt| {
        let mut delta = IoStats::default();
        for (pool, drained) in rt.pools.iter().zip(rt.drained.iter_mut()) {
            let total = pool.stats();
            delta.merge(&total.since(drained));
            *drained = total;
        }
        delta
    })
    .unwrap_or_default()
}

/// Rewind every server's ledger and pool residency to zero, so a
/// recovery replay reproduces the exact IO of the original attempt.
/// (`Cluster::reset` calls this beside the fault-clock rewind.)
pub fn reset_io() {
    with(|rt| {
        for pool in &mut rt.pools {
            pool.reset();
        }
        for drained in &mut rt.drained {
            *drained = IoStats::default();
        }
    });
}

/// Per-server cumulative totals (index = server ID) since install or
/// the last [`reset_io`]. Empty when nothing is installed.
pub fn io_report() -> Vec<IoStats> {
    with(|rt| rt.pools.iter().map(BufferPool::stats).collect()).unwrap_or_default()
}

/// Run `f` with a fresh paged store installed and return the final
/// per-server totals alongside `f`'s result. The previous runtime (if
/// any) is restored afterwards, even if `f` panics.
pub fn capture<R>(config: StoreConfig, f: impl FnOnce() -> R) -> (Vec<IoStats>, R) {
    let (guard, shared) = install_shared(config);
    let result = {
        let _guard = guard;
        f()
    };
    let runtime = Rc::try_unwrap(shared)
        .expect("capture's store runtime must not be retained past the closure")
        .into_inner();
    (
        runtime.pools.iter().map(BufferPool::stats).collect(),
        result,
    )
}

fn with<R>(f: impl FnOnce(&mut Runtime) -> R) -> Option<R> {
    ACTIVE.with(|slot| {
        let slot = slot.borrow();
        slot.as_ref().map(|rt| f(&mut rt.borrow_mut()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_runtime_is_inert() {
        assert!(!is_enabled());
        assert!(config().is_none());
        assert!(alloc_pages(4).is_none());
        touch_page(0, 9, 1); // must not panic
        ensure_servers(8);
        assert!(drain_io().is_zero());
        reset_io();
        assert!(io_report().is_empty());
    }

    #[test]
    fn capture_accounts_per_server_io() {
        let (totals, out) = capture(StoreConfig::default(), || {
            assert!(is_enabled());
            ensure_servers(2);
            let base = alloc_pages(3).expect("installed");
            touch_page(0, base, 5);
            touch_page(0, base, 5);
            touch_page(1, base + 1, 2);
            7
        });
        assert!(!is_enabled());
        assert_eq!(out, 7);
        assert_eq!(totals.len(), 2);
        assert_eq!((totals[0].reads, totals[0].misses), (10, 1));
        assert_eq!((totals[1].reads, totals[1].misses), (2, 1));
    }

    #[test]
    fn page_ids_are_monotonic_per_install() {
        let ((), ()) = {
            let _g = install(StoreConfig::default());
            assert_eq!(alloc_pages(4), Some(0));
            assert_eq!(alloc_pages(1), Some(4));
            ((), ())
        };
        let _g = install(StoreConfig::default());
        assert_eq!(alloc_pages(2), Some(0), "fresh install, fresh allocator");
    }

    #[test]
    fn drain_returns_deltas_not_totals() {
        let _g = install(StoreConfig::default());
        touch_page(0, 0, 4);
        let first = drain_io();
        assert_eq!((first.reads, first.misses), (4, 1));
        assert!(drain_io().is_zero(), "nothing new since the last drain");
        touch_page(0, 0, 1);
        assert_eq!(drain_io().reads, 1);
        let totals = io_report();
        assert_eq!(totals[0].reads, 5, "report stays cumulative");
    }

    #[test]
    fn reset_io_rewinds_ledger_and_drain_state() {
        let _g = install(StoreConfig {
            page_size: 8,
            pool_pages: 1,
        });
        touch_page(0, 0, 1);
        touch_page(0, 1, 1);
        assert_eq!(drain_io().evictions, 1);
        reset_io();
        assert!(io_report().iter().all(IoStats::is_zero));
        touch_page(0, 1, 1);
        let delta = drain_io();
        assert_eq!(
            (delta.reads, delta.misses, delta.evictions),
            (1, 1, 0),
            "post-reset touches start cold with a clean drain snapshot"
        );
    }

    #[test]
    fn nested_install_restores_outer_runtime() {
        let _outer = install(StoreConfig::default());
        alloc_pages(10);
        {
            let _inner = install(StoreConfig {
                page_size: 4,
                pool_pages: 2,
            });
            assert_eq!(config().map(|c| c.page_size), Some(4));
            assert_eq!(alloc_pages(1), Some(0), "inner allocator is fresh");
        }
        assert_eq!(config().map(|c| c.page_size), Some(DEFAULT_PAGE_SIZE));
        assert_eq!(alloc_pages(1), Some(10), "outer allocator resumed");
    }

    #[test]
    fn guard_restores_on_panic() {
        let caught = std::panic::catch_unwind(|| {
            let _ = capture(StoreConfig::default(), || panic!("boom"));
        });
        assert!(caught.is_err());
        assert!(!is_enabled(), "panic must not leave a store installed");
    }

    #[test]
    fn config_is_clamped() {
        let _g = install(StoreConfig {
            page_size: 0,
            pool_pages: 0,
        });
        let c = config().expect("installed");
        assert_eq!((c.page_size, c.pool_pages), (1, 1));
    }
}
