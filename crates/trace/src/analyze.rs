//! Analysis passes over a recorded trace: per-round load
//! reconstruction, skew summaries, histograms, and the ASCII
//! servers × rounds heatmap.
//!
//! Everything here consumes the *receive* side of the event stream —
//! `Recv` events are what the ledger charges, so they are the ground
//! truth for the load `L` the paper's theorems bound. Send fan-out
//! and topology events are carried along for display only.

use crate::event::TraceEvent;
use crate::recorder::Recorder;

/// Dense per-server load of one recorded round, reconstructed from a
/// `RoundBegin … RoundEnd` block (elided zero-load servers filled in).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundLoad {
    /// Cluster-local round index (restarts when a capture spans
    /// several clusters; the position in the returned `Vec` is the
    /// global round ordinal).
    pub round: usize,
    /// Cluster size `p` for this round.
    pub servers: usize,
    /// Tuples received per server (length `servers`).
    pub tuples: Vec<u64>,
    /// Words received per server (length `servers`).
    pub words: Vec<u64>,
    /// Grid dimensions, when the round used HyperCube addressing.
    pub dims: Option<Vec<usize>>,
}

impl RoundLoad {
    /// Maximum tuples received by any server this round.
    pub fn max_tuples(&self) -> u64 {
        self.tuples.iter().copied().max().unwrap_or(0)
    }

    /// Total tuples received this round.
    pub fn total_tuples(&self) -> u64 {
        self.tuples.iter().sum()
    }

    /// Total words received this round.
    pub fn total_words(&self) -> u64 {
        self.words.iter().sum()
    }
}

/// Reconstruct every complete round block in the trace, in order.
///
/// Events outside a `RoundBegin … RoundEnd` block (spans) are
/// ignored; a truncated leading block (its `RoundBegin` fell off the
/// ring) is discarded rather than reported with partial loads.
pub fn round_loads(rec: &Recorder) -> Vec<RoundLoad> {
    let mut out = Vec::new();
    let mut open: Option<RoundLoad> = None;
    for ev in rec.events() {
        match ev {
            TraceEvent::RoundBegin { round, servers } => {
                open = Some(RoundLoad {
                    round: *round,
                    servers: *servers,
                    tuples: vec![0; *servers],
                    words: vec![0; *servers],
                    dims: None,
                });
            }
            TraceEvent::Topology { dims, .. } => {
                if let Some(rl) = &mut open {
                    rl.dims = Some(dims.clone());
                }
            }
            TraceEvent::Recv {
                server,
                tuples,
                words,
                ..
            } => {
                if let Some(rl) = &mut open {
                    if let Some(t) = rl.tuples.get_mut(*server) {
                        *t = *tuples;
                    }
                    if let Some(w) = rl.words.get_mut(*server) {
                        *w = *words;
                    }
                }
            }
            TraceEvent::RoundEnd { .. } => {
                if let Some(rl) = open.take() {
                    out.push(rl);
                }
            }
            // Send attribution, spans, and fault/recovery markers carry
            // no receive-side load; the recovery rounds themselves
            // arrive as ordinary RoundBegin…RoundEnd blocks.
            TraceEvent::Send { .. }
            | TraceEvent::FaultInjected { .. }
            | TraceEvent::RecoveryBegin { .. }
            | TraceEvent::RecoveryEnd { .. }
            | TraceEvent::SpanBegin { .. }
            | TraceEvent::SpanEnd { .. } => {}
        }
    }
    out
}

/// Whole-trace communication totals, from the `RoundEnd` events.
///
/// Exact only when [`Recorder::dropped`] is zero — a truncated ring
/// loses the oldest rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Totals {
    /// Number of complete recorded rounds in the trace.
    pub rounds: usize,
    /// Total tuples communicated across all rounds.
    pub tuples: u64,
    /// Total words communicated across all rounds.
    pub words: u64,
}

/// Sum the `RoundEnd` totals over the retained trace.
pub fn totals(rec: &Recorder) -> Totals {
    let mut t = Totals {
        rounds: 0,
        tuples: 0,
        words: 0,
    };
    for ev in rec.events() {
        if let TraceEvent::RoundEnd { tuples, words, .. } = ev {
            t.rounds += 1;
            t.tuples += tuples;
            t.words += words;
        }
    }
    t
}

/// Skew summary of one round: the per-round statistics the tutorial's
/// load-balance arguments are about.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundSummary {
    /// Global round ordinal (position in the trace).
    pub index: usize,
    /// Cluster size `p`.
    pub servers: usize,
    /// `L_max`: maximum tuples received by any server.
    pub max_tuples: u64,
    /// 99th-percentile (nearest-rank) per-server tuple load.
    pub p99_tuples: u64,
    /// `L_mean = C_round / p`.
    pub mean_tuples: f64,
    /// Skew ratio `L_max / L_mean` (0 when the round moved nothing).
    pub skew: f64,
    /// Total tuples this round.
    pub total_tuples: u64,
    /// Total words this round.
    pub total_words: u64,
}

/// Nearest-rank percentile of an unsorted load vector.
fn percentile(values: &[u64], pct: u64) -> u64 {
    if values.is_empty() {
        return 0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = (sorted.len() as u64 * pct).div_ceil(100).max(1) as usize;
    sorted[rank - 1]
}

/// Summarize each round's load distribution.
pub fn summarize(loads: &[RoundLoad]) -> Vec<RoundSummary> {
    loads
        .iter()
        .enumerate()
        .map(|(index, rl)| {
            let total_tuples = rl.total_tuples();
            let max_tuples = rl.max_tuples();
            let mean_tuples = if rl.servers == 0 {
                0.0
            } else {
                total_tuples as f64 / rl.servers as f64
            };
            let skew = if mean_tuples > 0.0 {
                max_tuples as f64 / mean_tuples
            } else {
                0.0
            };
            RoundSummary {
                index,
                servers: rl.servers,
                max_tuples,
                p99_tuples: percentile(&rl.tuples, 99),
                mean_tuples,
                skew,
                total_tuples,
                total_words: rl.total_words(),
            }
        })
        .collect()
}

/// Render [`summarize`] as an aligned text table (one row per round).
pub fn summary_table(loads: &[RoundLoad]) -> String {
    let mut out = String::from(
        "round        p      L_max        p99       mean   skew     tuples      words\n",
    );
    for s in summarize(loads) {
        out.push_str(&format!(
            "{:>5} {:>8} {:>10} {:>10} {:>10.1} {:>6.2} {:>10} {:>10}\n",
            s.index,
            s.servers,
            s.max_tuples,
            s.p99_tuples,
            s.mean_tuples,
            s.skew,
            s.total_tuples,
            s.total_words
        ));
    }
    out
}

/// One bucket of a load histogram: servers whose tuple load fell in
/// `lo..=hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistBucket {
    /// Inclusive lower bound of the bucket.
    pub lo: u64,
    /// Inclusive upper bound of the bucket.
    pub hi: u64,
    /// Number of servers in the bucket.
    pub count: usize,
}

/// Power-of-two load histogram of one round: bucket 0 is exactly-zero
/// load, bucket `k ≥ 1` covers `[2^(k-1), 2^k - 1]`.
pub fn histogram(load: &RoundLoad) -> Vec<HistBucket> {
    let max = load.max_tuples();
    let nbuckets = if max == 0 {
        1
    } else {
        2 + max.ilog2() as usize
    };
    let mut buckets: Vec<HistBucket> = (0..nbuckets)
        .map(|k| {
            if k == 0 {
                HistBucket {
                    lo: 0,
                    hi: 0,
                    count: 0,
                }
            } else {
                HistBucket {
                    lo: 1 << (k - 1),
                    hi: (1 << k) - 1,
                    count: 0,
                }
            }
        })
        .collect();
    for &t in &load.tuples {
        let k = if t == 0 { 0 } else { 1 + t.ilog2() as usize };
        buckets[k].count += 1;
    }
    buckets
}

/// Intensity ramp for the heatmap, blank → densest.
const RAMP: &str = " .:-=+*#%@";

/// Render a servers × rounds ASCII heatmap of per-server tuple load.
///
/// Rows are servers (bucketed by taking the *maximum* load within the
/// bucket when there are more than `max_rows` servers — max is the
/// quantity the theorems bound, so bucketing never hides a hot spot);
/// columns are rounds in trace order. Intensity is scaled to the
/// whole-trace maximum, printed in the legend.
pub fn heatmap(loads: &[RoundLoad], max_rows: usize) -> String {
    let max_rows = max_rows.max(1);
    let servers = loads.iter().map(|rl| rl.servers).max().unwrap_or(0);
    if servers == 0 || loads.is_empty() {
        return String::from("(empty trace)\n");
    }
    let per_row = servers.div_ceil(max_rows);
    let nrows = servers.div_ceil(per_row);
    // cell[row][col] = max tuple load over the row's server bucket.
    let mut cells = vec![vec![0u64; loads.len()]; nrows];
    for (col, rl) in loads.iter().enumerate() {
        for (s, &t) in rl.tuples.iter().enumerate() {
            let row = s / per_row;
            if t > cells[row][col] {
                cells[row][col] = t;
            }
        }
    }
    let global_max = cells
        .iter()
        .flat_map(|r| r.iter().copied())
        .max()
        .unwrap_or(0);
    let label_of = |row: usize| {
        let lo = row * per_row;
        let hi = (lo + per_row - 1).min(servers - 1);
        if per_row == 1 {
            format!("s{lo}")
        } else {
            format!("s{lo}-{hi}")
        }
    };
    let label_width = (0..nrows).map(|r| label_of(r).len()).max().unwrap_or(2);
    let mut out = format!(
        "load heatmap: {servers} servers ({nrows} rows) x {} rounds, L_max={global_max} tuples\n",
        loads.len()
    );
    for (row, row_cells) in cells.iter().enumerate() {
        out.push_str(&format!("{:>label_width$} |", label_of(row)));
        for &v in row_cells {
            let idx = if v == 0 || global_max == 0 {
                0
            } else {
                (1 + v as usize * (RAMP.len() - 2) / global_max as usize).min(RAMP.len() - 1)
            };
            out.push(RAMP.as_bytes()[idx] as char);
        }
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "{:>label_width$} |{}|\n",
        "round",
        (0..loads.len())
            .map(|c| char::from_digit((c % 10) as u32, 10).unwrap_or('?'))
            .collect::<String>()
    ));
    out.push_str(&format!("scale: \"{RAMP}\" = 0..L_max\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceSink;

    fn record_round(rec: &mut Recorder, round: usize, servers: usize, tuples: &[(usize, u64)]) {
        rec.record(TraceEvent::RoundBegin { round, servers });
        let mut total = 0;
        for &(s, t) in tuples {
            rec.record(TraceEvent::Recv {
                round,
                server: s,
                tuples: t,
                words: 2 * t,
            });
            total += t;
        }
        rec.record(TraceEvent::RoundEnd {
            round,
            tuples: total,
            words: 2 * total,
        });
    }

    #[test]
    fn round_loads_fill_elided_zeros() {
        let mut rec = Recorder::new();
        record_round(&mut rec, 0, 4, &[(1, 5), (3, 2)]);
        let loads = round_loads(&rec);
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0].tuples, vec![0, 5, 0, 2]);
        assert_eq!(loads[0].words, vec![0, 10, 0, 4]);
        assert_eq!(loads[0].max_tuples(), 5);
    }

    #[test]
    fn truncated_leading_block_discarded() {
        let mut rec = Recorder::new();
        // Recv/RoundEnd with no RoundBegin (as if it fell off the ring).
        rec.record(TraceEvent::Recv {
            round: 0,
            server: 0,
            tuples: 9,
            words: 9,
        });
        rec.record(TraceEvent::RoundEnd {
            round: 0,
            tuples: 9,
            words: 9,
        });
        record_round(&mut rec, 1, 2, &[(0, 1)]);
        let loads = round_loads(&rec);
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0].round, 1);
    }

    #[test]
    fn totals_sum_round_ends() {
        let mut rec = Recorder::new();
        record_round(&mut rec, 0, 2, &[(0, 3)]);
        record_round(&mut rec, 1, 2, &[(1, 4)]);
        let t = totals(&rec);
        assert_eq!(t.rounds, 2);
        assert_eq!(t.tuples, 7);
        assert_eq!(t.words, 14);
    }

    #[test]
    fn summarize_computes_skew() {
        let mut rec = Recorder::new();
        record_round(&mut rec, 0, 4, &[(0, 8), (1, 4), (2, 4), (3, 0)]);
        let s = summarize(&round_loads(&rec));
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].max_tuples, 8);
        assert_eq!(s[0].total_tuples, 16);
        assert!((s[0].mean_tuples - 4.0).abs() < 1e-9);
        assert!((s[0].skew - 2.0).abs() < 1e-9);
        assert_eq!(s[0].p99_tuples, 8);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[], 99), 0);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let rl = RoundLoad {
            round: 0,
            servers: 5,
            tuples: vec![0, 1, 2, 3, 8],
            words: vec![0; 5],
            dims: None,
        };
        let h = histogram(&rl);
        // buckets: [0], [1], [2,3], [4,7], [8,15]
        assert_eq!(h.len(), 5);
        assert_eq!((h[0].lo, h[0].hi, h[0].count), (0, 0, 1));
        assert_eq!((h[1].lo, h[1].hi, h[1].count), (1, 1, 1));
        assert_eq!((h[2].lo, h[2].hi, h[2].count), (2, 3, 2));
        assert_eq!((h[3].lo, h[3].hi, h[3].count), (4, 7, 0));
        assert_eq!((h[4].lo, h[4].hi, h[4].count), (8, 15, 1));
    }

    #[test]
    fn heatmap_marks_hot_servers() {
        let mut rec = Recorder::new();
        record_round(&mut rec, 0, 3, &[(0, 10)]);
        record_round(&mut rec, 1, 3, &[(2, 1)]);
        let map = heatmap(&round_loads(&rec), 8);
        assert!(map.contains("L_max=10"));
        let rows: Vec<&str> = map.lines().collect();
        // Row s0: hot in round 0, idle in round 1.
        assert!(
            rows[1].starts_with("   s0 |@ |") || rows[1].contains("s0 |@ |"),
            "got {map}"
        );
        // Row s2: idle then minimal.
        assert!(rows[3].contains("s2 | .|"), "got {map}");
    }

    #[test]
    fn heatmap_buckets_servers() {
        let mut rec = Recorder::new();
        record_round(&mut rec, 0, 100, &[(0, 1), (99, 9)]);
        let map = heatmap(&round_loads(&rec), 4);
        assert!(map.contains("(4 rows)"), "got {map}");
        assert!(map.contains("s75-99"), "got {map}");
    }

    #[test]
    fn empty_heatmap() {
        assert_eq!(heatmap(&[], 8), "(empty trace)\n");
    }

    #[test]
    fn empty_trace_yields_no_loads_or_totals() {
        let rec = Recorder::new();
        assert!(round_loads(&rec).is_empty());
        let t = totals(&rec);
        assert_eq!((t.rounds, t.tuples, t.words), (0, 0, 0));
        assert!(summarize(&[]).is_empty());
        // The table degenerates to its header line.
        assert_eq!(summary_table(&[]).lines().count(), 1);
    }

    #[test]
    fn single_server_round_has_unit_skew() {
        let mut rec = Recorder::new();
        record_round(&mut rec, 0, 1, &[(0, 7)]);
        let loads = round_loads(&rec);
        assert_eq!(loads[0].servers, 1);
        let s = summarize(&loads);
        // With p = 1, max == mean == p99 and the skew ratio is exactly 1.
        assert_eq!(s[0].max_tuples, 7);
        assert_eq!(s[0].p99_tuples, 7);
        assert!((s[0].mean_tuples - 7.0).abs() < 1e-9);
        assert!((s[0].skew - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_load_round_has_zero_skew_and_single_bucket() {
        let mut rec = Recorder::new();
        record_round(&mut rec, 0, 3, &[]);
        let loads = round_loads(&rec);
        let s = summarize(&loads);
        assert_eq!(s[0].max_tuples, 0);
        assert!((s[0].skew - 0.0).abs() < 1e-9);
        // Histogram collapses to the exactly-zero bucket holding all p.
        let h = histogram(&loads[0]);
        assert_eq!(h.len(), 1);
        assert_eq!((h[0].lo, h[0].hi, h[0].count), (0, 0, 3));
    }

    #[test]
    fn histogram_boundary_values_split_buckets() {
        // 2^k - 1 closes bucket k; 2^k opens bucket k + 1.
        let rl = RoundLoad {
            round: 0,
            servers: 4,
            tuples: vec![3, 4, 7, 8],
            words: vec![0; 4],
            dims: None,
        };
        let h = histogram(&rl);
        assert_eq!(h.len(), 5);
        assert_eq!((h[2].lo, h[2].hi, h[2].count), (2, 3, 1));
        assert_eq!((h[3].lo, h[3].hi, h[3].count), (4, 7, 2));
        assert_eq!((h[4].lo, h[4].hi, h[4].count), (8, 15, 1));
    }

    #[test]
    fn histogram_handles_large_loads_without_overflow() {
        let big = 1u64 << 62;
        let rl = RoundLoad {
            round: 0,
            servers: 2,
            tuples: vec![big - 1, big],
            words: vec![0; 2],
            dims: None,
        };
        let h = histogram(&rl);
        assert_eq!(h.len(), 64);
        assert_eq!((h[62].lo, h[62].hi, h[62].count), (big / 2, big - 1, 1));
        assert_eq!((h[63].lo, h[63].hi, h[63].count), (big, 2 * big - 1, 1));
    }

    #[test]
    fn percentile_rank_boundaries() {
        let v: Vec<u64> = (1..=100).collect();
        // Nearest-rank: pct 100 is the max, pct 0 clamps to the min.
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&v, 0), 1);
        assert_eq!(percentile(&v, 1), 1);
        // Two values: rank ⌈2·50/100⌉ = 1 keeps the lower, 51 tips over.
        assert_eq!(percentile(&[10, 20], 50), 10);
        assert_eq!(percentile(&[10, 20], 51), 20);
    }

    #[test]
    fn summary_table_has_one_row_per_round() {
        let mut rec = Recorder::new();
        record_round(&mut rec, 0, 2, &[(0, 3)]);
        record_round(&mut rec, 1, 2, &[(1, 4)]);
        let table = summary_table(&round_loads(&rec));
        assert_eq!(table.lines().count(), 3);
        assert!(table.lines().next().unwrap().contains("skew"));
    }
}
