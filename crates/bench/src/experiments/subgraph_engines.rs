//! SUB — subgraph query engines in practice (slide 97).
//!
//! The tutorial's closing practice slide lists the BiGJoin / TwinTwig /
//! PSgL family: multi-round vertex-at-a-time engines for subgraph
//! queries. This experiment compares, on the same random graph:
//!
//! * the one-round HyperCube (optimal L, replicates input),
//! * the vertex-at-a-time expansion join (rounds = query radius,
//!   communication tracks partial-binding sizes),
//! * the iterative binary-join plan (edge-at-a-time, intermediate
//!   blow-up),
//!
//! across the triangle, the 4-cycle and the 5-cycle. No engine
//! dominates: on a sparse graph the vertex-at-a-time engines avoid the
//! HyperCube's replication (triangle), while on selective cycles their
//! path intermediates dwarf the output and the one-round algorithm wins
//! total communication.

use crate::Table;
use parqp::data::generate;
use parqp::join::{multiway, plans, subgraph};
use parqp::prelude::*;

/// Run SUB.
pub fn run() -> Vec<Table> {
    let p = 64usize;
    // A *sparse* graph (average degree ≈ 4): the vertex-at-a-time engines
    // shine when partial-binding sizes stay near the input, while the
    // one-round HyperCube must replicate by p^{1-1/τ*} regardless.
    let g = generate::random_symmetric_graph(4000, 16_000, 7);
    let n = g.len();

    let mut t = Table::new(
        format!("SUB (slide 97): subgraph engines on a graph with {n} directed edges, p = {p}"),
        &["query", "engine", "L", "rounds", "C", "matches"],
    );
    for (name, q) in [
        ("triangle", Query::triangle()),
        ("4-cycle", Query::cycle(4)),
        ("5-cycle", Query::cycle(5)),
    ] {
        let rels: Vec<Relation> = (0..q.num_atoms()).map(|_| g.clone()).collect();
        let hc = multiway::hypercube(&q, &rels, p, 5);
        let ex = subgraph::expansion_join(&q, &rels, p, 5);
        let bp = plans::binary_join_plan(&q, &rels, p, 5, None);
        // All engines agree (expansion is set-semantics; the graph has
        // distinct edges, so counts agree too).
        assert_eq!(
            hc.gathered().canonical(),
            ex.gathered().canonical(),
            "{name}"
        );
        assert_eq!(
            hc.gathered().canonical(),
            bp.gathered().canonical(),
            "{name}"
        );
        for (engine, run) in [("HyperCube", &hc), ("expansion", &ex), ("binary plan", &bp)] {
            t.row(vec![
                name.into(),
                engine.into(),
                run.report.max_load_tuples().to_string(),
                run.report.num_rounds().to_string(),
                run.report.total_tuples().to_string(),
                run.output_size().to_string(),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn engines_agree_and_the_tradeoff_goes_both_ways() {
        let t = &super::run()[0];
        // Per query, the three engines report identical match counts.
        for chunk in t.rows.chunks(3) {
            let m: Vec<&String> = chunk.iter().map(|r| &r[5]).collect();
            assert!(m.windows(2).all(|w| w[0] == w[1]), "{chunk:?}");
        }
        let get = |query: &str, engine: &str, col: usize| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == query && r[1] == engine)
                .expect("row")[col]
                .parse()
                .expect("numeric")
        };
        // Sparse triangle: the multi-round engines avoid the HyperCube's
        // p^{1/3} replication and win on load.
        assert!(get("triangle", "expansion", 2) < get("triangle", "HyperCube", 2));
        // Selective 5-cycle: intermediates (all 4-paths) dwarf the output,
        // so the one-round HyperCube wins total communication — no engine
        // dominates, which is the slide 97 story.
        assert!(get("5-cycle", "HyperCube", 4) < get("5-cycle", "expansion", 4));
    }
}
