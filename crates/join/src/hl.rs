//! Heavy-Light + Semijoins — the multi-round skew algorithms of
//! slides 57–60.
//!
//! Multi-round processing beats the one-round `IN/p^{1/ψ*}` bound by
//! using **semijoins**, which "remove potential outputs each round
//! without growing intermediate relations" (slide 58):
//!
//! * [`semijoin_pair_hl`] — slide 58's easy-hard query
//!   `R(x) ⋈ S(x,y) ⋈ T(y)`: two skew-insensitive semijoin reductions of
//!   `S` bring the load to `O(IN/p)` even when `x` or `y` is heavy
//!   (versus `IN/p^{1/2}` for any one-round algorithm). Each semijoin is
//!   a request/reply pair — `S` never moves, only *distinct keys* travel,
//!   so a value of any degree costs at most `p` messages.
//! * [`hl_triangle`] — slide 59's triangle decomposition: `z` values of
//!   degree below `IN/p^{1/3}` run the one-round HyperCube; each heavy
//!   `z = c` spawns the residual semijoin query
//!   `R(x,y) ⋉ S(y,c) ⋉ T(c,x)` on its own `~p^{2/3}`-server group,
//!   2 rounds at `L = O(IN/p^{2/3})` — worst-case optimal overall.

use crate::common::{scatter, JoinRun, Tagged};
use parqp_data::{FastMap, FastSet, Relation, Value};
use parqp_mpc::{Cluster, HashFamily, LoadReport};

/// Filter the in-place left fragments by membership of column `key_col`
/// in the unary relation `right`, without moving `left`: a request/reply
/// distributed semijoin (2 rounds on `cluster`).
///
/// Skew-insensitive: only *distinct* keys travel, so a key of any degree
/// costs at most one request per holding server and one reply each.
fn semijoin_requests(
    cluster: &mut Cluster,
    left_parts: &mut [Relation],
    key_col: usize,
    right: &Relation,
    h: &HashFamily,
    dim: usize,
) {
    let p = cluster.p();
    // Round A: distinct left keys (tagged with the asking server) and
    // right keys meet at h(key).
    let right_parts = scatter(right, p);
    let mut ex = cluster.exchange::<Tagged>();
    for (sid, part) in left_parts.iter().enumerate() {
        let mut seen: FastSet<Value> = FastSet::default();
        for row in part.iter() {
            if seen.insert(row[key_col]) {
                ex.send(
                    h.hash(dim, row[key_col], p),
                    Tagged::new(sid as u32, vec![row[key_col]]),
                );
            }
        }
    }
    for part in &right_parts {
        for row in part.iter() {
            ex.send(h.hash(dim, row[0], p), Tagged::new(u32::MAX, vec![row[0]]));
        }
    }
    let inboxes = ex.finish();

    // Round B: positive replies go back to the asking servers.
    let mut ex = cluster.exchange::<Vec<Value>>();
    for inbox in inboxes {
        let mut members: FastSet<Value> = FastSet::default();
        let mut asks: Vec<(usize, Value)> = Vec::new();
        for t in inbox {
            if t.tag == u32::MAX {
                members.insert(t.row[0]);
            } else {
                asks.push((t.tag as usize, t.row[0]));
            }
        }
        for (origin, key) in asks {
            if members.contains(&key) {
                ex.send(origin, vec![key]);
            }
        }
    }
    let replies = ex.finish();

    for (part, reply) in left_parts.iter_mut().zip(replies) {
        let keep: FastSet<Value> = reply.into_iter().map(|r| r[0]).collect();
        *part = part.filter(|row| keep.contains(&row[key_col]));
    }
}

/// Slide 58: evaluate `R(x) ⋈ S(x,y) ⋈ T(y)` by two semijoin reductions
/// of `S` (4 rounds total — each semijoin is a request/reply pair),
/// at `L = O(IN/p)` under arbitrary skew. Output schema `(x, y)`.
pub fn semijoin_pair_hl(r: &Relation, s: &Relation, t: &Relation, p: usize, seed: u64) -> JoinRun {
    assert_eq!(r.arity(), 1, "R must be unary");
    assert_eq!(s.arity(), 2, "S must be binary");
    assert_eq!(t.arity(), 1, "T must be unary");
    let mut cluster = Cluster::new(p);
    let h = HashFamily::new(seed ^ 0x51ab, 2);
    let mut s_parts = scatter(s, p);
    semijoin_requests(&mut cluster, &mut s_parts, 0, r, &h, 0);
    semijoin_requests(&mut cluster, &mut s_parts, 1, t, &h, 1);
    JoinRun {
        outputs: s_parts,
        report: cluster.report(),
    }
}

/// Slide 59: the Heavy-Light + Semijoins triangle. Output schema
/// `(x, y, z)`, set semantics for the heavy side's key sets.
pub fn hl_triangle(r: &Relation, s: &Relation, t: &Relation, p: usize, seed: u64) -> JoinRun {
    assert_eq!(r.arity(), 2, "R(x,y) must be binary");
    assert_eq!(s.arity(), 2, "S(y,z) must be binary");
    assert_eq!(t.arity(), 2, "T(z,x) must be binary");
    let input = (r.len() + s.len() + t.len()) as f64;
    let threshold = (input / (p as f64).cbrt()).max(1.0) as u64;

    // Heavy z values: degree ≥ IN/p^{1/3} in S.z or T.z.
    let mut heavy: Vec<Value> = Vec::new();
    {
        let mut deg: FastMap<Value, u64> = FastMap::default();
        for row in s.iter() {
            *deg.entry(row[1]).or_insert(0) += 1;
        }
        for row in t.iter() {
            *deg.entry(row[0]).or_insert(0) += 1;
        }
        for (v, d) in deg {
            if d >= threshold {
                heavy.push(v);
            }
        }
        heavy.sort_unstable();
    }
    let heavy_set: FastSet<Value> = heavy.iter().copied().collect();

    // Light side: one-round HyperCube on S, T restricted to light z.
    let s_light = s.filter(|row| !heavy_set.contains(&row[1]));
    let t_light = t.filter(|row| !heavy_set.contains(&row[0]));
    let p_light = if heavy.is_empty() { p } else { (p / 2).max(1) };
    let q = parqp_query::Query::triangle();
    let light_run = if s_light.is_empty() || t_light.is_empty() || r.is_empty() {
        JoinRun {
            outputs: vec![Relation::new(3); p_light],
            report: LoadReport::empty(p_light),
        }
    } else {
        crate::multiway::hypercube(&q, &[r.clone(), s_light, t_light], p_light, seed)
    };

    if heavy.is_empty() {
        return light_run;
    }

    // Heavy side: per heavy c, the residual semijoin query
    // R(x,y) ⋉ {y: S(y,c)} ⋉ {x: T(c,x)} on its own group, 2 rounds:
    // round 1 filters on y, round 2 filters on x (co-hash semijoins).
    let group = ((p / 2) / heavy.len()).max(1);
    let mut reports = vec![light_run.report.clone()];
    let mut outputs = light_run.outputs;
    for (i, &c) in heavy.iter().enumerate() {
        let sc: Vec<Value> = {
            let mut ys: Vec<Value> = s
                .iter()
                .filter(|row| row[1] == c)
                .map(|row| row[0])
                .collect();
            ys.sort_unstable();
            ys.dedup();
            ys
        };
        let tc: Vec<Value> = {
            let mut xs: Vec<Value> = t
                .iter()
                .filter(|row| row[0] == c)
                .map(|row| row[1])
                .collect();
            xs.sort_unstable();
            xs.dedup();
            xs
        };
        let mut cluster = Cluster::new(group);
        let h = HashFamily::new(seed ^ (0x7e47 + i as u64), 2);
        // Round 1: R by h(y), S_c keys by h(y); filter.
        let mut ex = cluster.exchange::<Tagged>();
        for part in scatter(r, group) {
            for row in part.iter() {
                ex.send(h.hash(0, row[1], group), Tagged::new(0, row.to_vec()));
            }
        }
        for &y in &sc {
            ex.send(h.hash(0, y, group), Tagged::new(1, vec![y]));
        }
        let inboxes = ex.finish();
        let filtered: Vec<Vec<Vec<Value>>> = inboxes
            .into_iter()
            .map(|inbox| {
                let mut keys: FastSet<Value> = FastSet::default();
                let mut rows = Vec::new();
                for m in inbox {
                    if m.tag == 1 {
                        keys.insert(m.row[0]);
                    } else {
                        rows.push(m.row);
                    }
                }
                rows.retain(|row| keys.contains(&row[1]));
                rows
            })
            .collect();
        // Round 2: survivors by h(x), T_c keys by h(x); filter; emit (x,y,c).
        let mut ex = cluster.exchange::<Tagged>();
        for rows in &filtered {
            for row in rows {
                ex.send(h.hash(1, row[0], group), Tagged::new(0, row.clone()));
            }
        }
        for &x in &tc {
            ex.send(h.hash(1, x, group), Tagged::new(1, vec![x]));
        }
        let inboxes = ex.finish();
        for inbox in inboxes {
            let mut keys: FastSet<Value> = FastSet::default();
            let mut rows = Vec::new();
            for m in inbox {
                if m.tag == 1 {
                    keys.insert(m.row[0]);
                } else {
                    rows.push(m.row);
                }
            }
            let mut out = Relation::new(3);
            for row in rows {
                if keys.contains(&row[0]) {
                    out.push(&[row[0], row[1], c]);
                }
            }
            outputs.push(out);
        }
        reports.push(cluster.report());
    }
    JoinRun {
        outputs,
        report: LoadReport::parallel(&reports),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parqp_data::generate;
    use parqp_query::{evaluate, Query};

    #[test]
    fn semijoin_pair_matches_oracle() {
        let q = Query::semijoin_pair();
        let r = generate::unary_range(60);
        let s = generate::uniform(2, 400, 100, 3);
        let t = generate::unary_range(80);
        let run = semijoin_pair_hl(&r, &s, &t, 8, 7);
        let expect = evaluate(&q, &[r, s, t]);
        assert_eq!(run.gathered().canonical(), expect.canonical());
        assert_eq!(run.report.num_rounds(), 4);
    }

    #[test]
    fn semijoin_pair_skew_insensitive_load() {
        // Heavy x in S: the one-round bound is IN/√p, but the semijoin
        // algorithm stays near IN/p because S never moves.
        let n = 8000;
        let p = 64;
        let r = generate::unary_range(10);
        let s = generate::constant_key_pairs(n, 5, 0); // all x = 5
        let t = generate::unary_range(n as u64 as usize);
        let run = semijoin_pair_hl(&r, &s, &t, p, 7);
        let q = Query::semijoin_pair();
        let expect = evaluate(&q, &[r, s, t]);
        assert_eq!(run.gathered().canonical(), expect.canonical());
        let l = run.report.max_load_tuples() as f64;
        let one_round = (n as f64 + n as f64 + 10.0) / (p as f64).sqrt();
        assert!(
            l < one_round,
            "semijoin load {l} should beat the 1-round bound {one_round}"
        );
    }

    #[test]
    fn hl_triangle_no_heavy_is_hypercube() {
        let g = generate::uniform(2, 600, 1 << 30, 5);
        let run = hl_triangle(&g, &g, &g, 27, 3);
        assert_eq!(
            run.report.num_rounds(),
            1,
            "no heavy values ⇒ pure HyperCube"
        );
        let q = Query::triangle();
        let expect = evaluate(&q, &[g.clone(), g.clone(), g]);
        assert_eq!(run.gathered().canonical(), expect.canonical());
    }

    #[test]
    fn hl_triangle_with_hub_matches_oracle() {
        // Hub degree must clear the IN/p^{1/3} threshold: here IN = 6000,
        // p = 64 ⇒ threshold 1500, and the hub touches 1600 tuples.
        let mut g = generate::random_symmetric_graph(80, 400, 9);
        for i in 0..800u64 {
            g.push(&[300 + i, 0]);
            g.push(&[0, 300 + i]);
        }
        let q = Query::triangle();
        let expect = evaluate(&q, &[g.clone(), g.clone(), g.clone()]);
        let run = hl_triangle(&g, &g, &g, 64, 11);
        assert_eq!(run.gathered().canonical(), expect.canonical());
        assert_eq!(
            run.report.num_rounds(),
            2,
            "heavy side adds the 2-round semijoins"
        );
    }

    #[test]
    fn hl_triangle_beats_plain_hypercube_under_z_skew() {
        // All of S concentrates on one z value: HyperCube's z dimension
        // collapses, HL routes that value to its own semijoin group.
        let n = 3000usize;
        let r = generate::uniform(2, n, 200, 21);
        let s = generate::constant_key_pairs(n, 9, 1); // S(y, 9) for all rows
        let mut t = generate::uniform(2, n, 200, 22);
        for i in 0..n as u64 {
            t.push(&[9, i % 200]); // T(9, x): make z = 9 heavy in T too
        }
        let q = Query::triangle();
        let rels = vec![r.clone(), s.clone(), t.clone()];
        let expect = evaluate(&q, &rels);
        let hc = crate::multiway::hypercube(&q, &rels, 64, 5);
        let hl = hl_triangle(&r, &s, &t, 64, 5);
        assert_eq!(hl.gathered().canonical(), expect.canonical());
        assert!(
            hl.report.max_load_tuples() < hc.report.max_load_tuples(),
            "HL {} vs HC {}",
            hl.report.max_load_tuples(),
            hc.report.max_load_tuples()
        );
    }

    #[test]
    fn empty_inputs() {
        let e = Relation::new(2);
        let run = hl_triangle(&e, &e, &e, 8, 1);
        assert_eq!(run.output_size(), 0);
        let run = semijoin_pair_hl(
            &Relation::new(1),
            &Relation::new(2),
            &Relation::new(1),
            4,
            1,
        );
        assert_eq!(run.output_size(), 0);
    }
}
