//! A small Datalog-style parser for conjunctive queries.
//!
//! ```
//! use parqp_query::parse_query;
//!
//! let q = parse_query("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)").expect("valid");
//! assert_eq!(q.num_atoms(), 3);
//! assert_eq!(q.to_string(), "R(x0,x1) ⋈ S(x1,x2) ⋈ T(x2,x0)");
//! ```
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query  := [ head ":-" ] body
//! head   := NAME "(" vars ")"
//! body   := atom ("," atom)*
//! atom   := NAME "(" vars ")"
//! vars   := VAR ("," VAR)*
//! ```
//!
//! Variables are identifiers starting with a lowercase letter; relation
//! names start with an uppercase letter. Variable indices are assigned
//! by the head's order when a head is present, otherwise by first
//! appearance in the body.

use crate::query::{Atom, Query, Var};

/// A parse failure, with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        message: message.into(),
    })
}

struct Scanner<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.src[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.src[self.pos..].chars().next()
    }

    fn eat(&mut self, expected: char) -> Result<(), ParseError> {
        match self.peek() {
            Some(c) if c == expected => {
                self.pos += c.len_utf8();
                Ok(())
            }
            Some(c) => err(format!(
                "expected '{expected}', found '{c}' at byte {}",
                self.pos
            )),
            None => err(format!("expected '{expected}', found end of input")),
        }
    }

    fn try_eat_str(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let rest = &self.src[start..];
        let len = rest
            .char_indices()
            .take_while(|&(i, c)| {
                if i == 0 {
                    c.is_alphabetic() || c == '_'
                } else {
                    c.is_alphanumeric() || c == '_'
                }
            })
            .count();
        if len == 0 {
            return err(format!("expected identifier at byte {start}"));
        }
        let end = start + rest.chars().take(len).map(char::len_utf8).sum::<usize>();
        self.pos = end;
        Ok(&self.src[start..end])
    }

    fn done(&mut self) -> bool {
        self.peek().is_none()
    }
}

fn parse_atom<'a>(sc: &mut Scanner<'a>) -> Result<(&'a str, Vec<&'a str>), ParseError> {
    let name = sc.ident()?;
    sc.eat('(')?;
    let mut vars = vec![sc.ident()?];
    while sc.peek() == Some(',') {
        sc.eat(',')?;
        vars.push(sc.ident()?);
    }
    sc.eat(')')?;
    Ok((name, vars))
}

/// Parse a conjunctive query. See the module docs for the grammar.
pub fn parse_query(src: &str) -> Result<Query, ParseError> {
    let mut sc = Scanner::new(src);
    // Optional head: look ahead for ":-".
    let head_vars: Option<Vec<&str>> = {
        let save = sc.pos;
        match parse_atom(&mut sc) {
            Ok((_, vars)) if sc.try_eat_str(":-") => Some(vars),
            _ => {
                sc.pos = save;
                None
            }
        }
    };

    let mut names: Vec<String> = Vec::new();
    let index_of = |name: &str, names: &mut Vec<String>| -> Var {
        match names.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                names.push(name.to_string());
                names.len() - 1
            }
        }
    };
    if let Some(hv) = &head_vars {
        for v in hv {
            let before = names.len();
            let idx = index_of(v, &mut names);
            if idx < before {
                return err(format!("head variable '{v}' repeated"));
            }
        }
    }

    let mut atoms = Vec::new();
    loop {
        let (name, vars) = parse_atom(&mut sc)?;
        if !name.starts_with(|c: char| c.is_uppercase()) {
            return err(format!("relation names start uppercase: '{name}'"));
        }
        let mut ids = Vec::with_capacity(vars.len());
        for v in &vars {
            if !v.starts_with(|c: char| c.is_lowercase() || c == '_') {
                return err(format!("variables start lowercase: '{v}'"));
            }
            ids.push(index_of(v, &mut names));
        }
        if ids.len() != ids.iter().collect::<std::collections::BTreeSet<_>>().len() {
            return err(format!(
                "atom {name} repeats a variable (rename apart first)"
            ));
        }
        atoms.push(Atom::new(name, ids));
        if sc.peek() == Some(',') {
            sc.eat(',')?;
        } else {
            break;
        }
    }
    if !sc.done() {
        return err(format!("trailing input at byte {}", sc.pos));
    }
    if let Some(hv) = &head_vars {
        if hv.len() != names.len() {
            return err(format!(
                "head binds {} variables but the body uses {} — projections are not supported",
                hv.len(),
                names.len()
            ));
        }
    }
    if atoms.is_empty() {
        return err("query has no atoms");
    }
    Ok(Query::new(names.len(), atoms))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_with_head() {
        let q = parse_query("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)").expect("valid");
        assert_eq!(q, Query::triangle());
    }

    #[test]
    fn body_only_first_appearance_order() {
        let q = parse_query("R(a, b), S(b, c)").expect("valid");
        assert_eq!(q, Query::two_way());
    }

    #[test]
    fn head_reorders_variables() {
        // Head order z, y, x flips the variable indices.
        let q = parse_query("Q(z,y,x) :- R(x,y), S(y,z)").expect("valid");
        assert_eq!(q.atoms()[0].vars, vec![2, 1]);
        assert_eq!(q.atoms()[1].vars, vec![1, 0]);
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse_query("R(x,y),S(y,z)").expect("valid");
        let b = parse_query("  R ( x , y ) ,\n S ( y , z )  ").expect("valid");
        assert_eq!(a, b);
    }

    #[test]
    fn unary_atoms() {
        let q = parse_query("R(x), S(x,y), T(y)").expect("valid");
        assert_eq!(q, Query::semijoin_pair());
    }

    #[test]
    fn underscored_and_numbered_names() {
        let q = parse_query("Edge_1(v1, v2), Edge_2(v2, v3)").expect("valid");
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.atoms()[0].name, "Edge_1");
    }

    #[test]
    fn error_cases() {
        assert!(parse_query("").is_err());
        assert!(parse_query("R(x,").is_err());
        assert!(parse_query("r(x)").is_err(), "lowercase relation");
        assert!(parse_query("R(X)").is_err(), "uppercase variable");
        assert!(parse_query("R(x, x)").is_err(), "repeated var in atom");
        assert!(
            parse_query("Q(x) :- R(x,y)").is_err(),
            "projection unsupported"
        );
        assert!(parse_query("Q(x,x) :- R(x)").is_err(), "repeated head var");
        assert!(parse_query("R(x,y) garbage").is_err(), "trailing input");
    }

    #[test]
    fn display_error() {
        let e = parse_query("").unwrap_err();
        assert!(e.to_string().contains("parse error"));
    }

    #[test]
    fn roundtrip_via_display_shape() {
        let q = parse_query("R(x,y), S(y,z), T(z,x)").expect("valid");
        assert_eq!(q.to_string(), "R(x0,x1) ⋈ S(x1,x2) ⋈ T(x2,x0)");
    }
}
