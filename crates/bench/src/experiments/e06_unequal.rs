//! E06 — triangle with unequal sizes: the edge-packing table
//! (slides 42–44).
//!
//! For `Δ = R(x,y) ⋈ S(y,z) ⋈ T(z,x)` the optimal load is the maximum
//! over edge packings `u` of `(|R|^{u_R}|S|^{u_S}|T|^{u_T}/p)^{1/Σu}`,
//! with the interesting packings being `(½,½,½)` (balanced sizes, full
//! 3-d shares) and the three unit vectors (one dominant relation,
//! `p_z = 1`). We print each packing's value, which one attains the max,
//! the LP's integer shares, and the measured HyperCube load.

use crate::table::fmt;
use crate::Table;
use parqp::data::generate;
use parqp::join::multiway;
use parqp::prelude::*;
use parqp_lp::plan_shares;

/// The four packing rows of slide 42: `(u_R, u_S, u_T)` and the load
/// value each induces.
pub fn packing_rows(sizes: [f64; 3], p: f64) -> [((f64, f64, f64), f64); 4] {
    let [r, s, t] = sizes;
    let val = |ur: f64, us: f64, ut: f64| -> f64 {
        let total = ur + us + ut;
        ((r.powf(ur) * s.powf(us) * t.powf(ut)) / p).powf(1.0 / total)
    };
    [
        ((0.5, 0.5, 0.5), val(0.5, 0.5, 0.5)),
        ((1.0, 0.0, 0.0), val(1.0, 0.0, 0.0)),
        ((0.0, 1.0, 0.0), val(0.0, 1.0, 0.0)),
        ((0.0, 0.0, 1.0), val(0.0, 0.0, 1.0)),
    ]
}

/// Run E06.
pub fn run() -> Vec<Table> {
    let p = 64usize;
    let q = Query::triangle();
    let mut tables = Vec::new();
    let cases: [(&str, [usize; 3]); 3] = [
        ("equal sizes", [8000, 8000, 8000]),
        ("R dominant", [64_000, 2000, 2000]),
        ("S dominant", [2000, 64_000, 2000]),
    ];

    let mut summary = Table::new(
        format!("E06 (slides 42–44): triangle with unequal sizes, p = {p}"),
        &[
            "case",
            "max packing",
            "packing L",
            "LP shares",
            "predicted L",
            "measured L",
        ],
    );
    for (name, sizes) in cases {
        let mut t = Table::new(
            format!(
                "E06 detail ({name}): |R|={}, |S|={}, |T|={}",
                sizes[0], sizes[1], sizes[2]
            ),
            &["u_R", "u_S", "u_T", "load value"],
        );
        let rows = packing_rows(
            [sizes[0] as f64, sizes[1] as f64, sizes[2] as f64],
            p as f64,
        );
        let mut best = (0usize, 0.0f64);
        for (i, ((ur, us, ut), v)) in rows.iter().enumerate() {
            t.row(vec![fmt(*ur), fmt(*us), fmt(*ut), fmt(*v)]);
            if *v > best.1 {
                best = (i, *v);
            }
        }
        tables.push(t);

        let szs: Vec<u64> = sizes.iter().map(|&x| x as u64).collect();
        let plan = plan_shares(&q.hypergraph(), &szs, p);
        let predicted = parqp_lp::predicted_load(&q.hypergraph(), &szs, &plan.shares);
        let rels: Vec<Relation> = sizes
            .iter()
            .enumerate()
            .map(|(i, &sz)| generate::uniform(2, sz, 1 << 40, 100 + i as u64))
            .collect();
        let run = multiway::hypercube_with_shares(&q, &rels, &plan.shares, 5);
        let label = ["(1/2,1/2,1/2)", "(1,0,0)", "(0,1,0)", "(0,0,1)"][best.0];
        summary.row(vec![
            name.to_string(),
            label.to_string(),
            fmt(best.1),
            format!("{}x{}x{}", plan.shares[0], plan.shares[1], plan.shares[2]),
            fmt(predicted),
            run.report.max_load_tuples().to_string(),
        ]);
    }
    tables.insert(0, summary);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_sizes_balanced_packing_wins() {
        let rows = packing_rows([8000.0, 8000.0, 8000.0], 64.0);
        let max = rows.iter().map(|r| r.1).fold(0.0, f64::max);
        assert!(
            (rows[0].1 - max).abs() < 1e-9,
            "(1/2,1/2,1/2) attains the max"
        );
        // Slide 41: L = N/p^{2/3}.
        assert!((rows[0].1 - 8000.0 / 16.0).abs() < 1e-6);
    }

    #[test]
    fn dominant_relation_unit_packing_wins() {
        // Slide 44: |R| huge ⇒ packing (1,0,0) attains max, L = |R|/p.
        let rows = packing_rows([64_000.0, 2000.0, 2000.0], 64.0);
        assert!((rows[1].1 - 1000.0).abs() < 1e-9);
        let max = rows.iter().map(|r| r.1).fold(0.0, f64::max);
        assert!((rows[1].1 - max).abs() < 1e-9);
    }

    #[test]
    fn measured_tracks_predicted() {
        let tables = run();
        for row in &tables[0].rows {
            let predicted: f64 = row[4].parse().expect("predicted");
            let measured: f64 = row[5].parse().expect("measured");
            // Measured counts all three relations plus hashing noise.
            assert!(
                measured < 4.0 * predicted && measured > 0.5 * predicted,
                "{}: measured {measured} vs predicted {predicted}",
                row[0]
            );
        }
    }
}
