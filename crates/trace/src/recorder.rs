//! The ring-buffered [`Recorder`] and the thread-local sink registry.
//!
//! The simulator is single-threaded by design (PQ004), so a
//! thread-local slot is the whole "global" registry: [`install`] puts
//! a sink in the slot and returns a [`SinkGuard`] that restores the
//! previous sink on drop (panic-safe), [`emit`] forwards an event to
//! the installed sink (a no-op when none is installed, so
//! instrumentation costs one thread-local read when tracing is off),
//! and [`Recorder::capture`] wraps the common install–run–collect
//! pattern.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::event::{TraceEvent, TraceSink};

/// Default ring capacity: plenty for every in-tree experiment while
/// bounding memory for adversarial event volumes.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// A bounded, in-order event buffer: the standard [`TraceSink`].
///
/// When the ring is full the *oldest* event is discarded and
/// [`dropped`](Recorder::dropped) is incremented, so the recorder
/// always holds the most recent window of the run. The sequence
/// number of the first retained event is exactly `dropped()`; totals
/// computed from a recorder are therefore only exact when
/// `dropped() == 0`.
#[derive(Debug)]
pub struct Recorder {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A recorder with the [`DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A recorder holding at most `capacity` events (at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            events: VecDeque::with_capacity(capacity.min(DEFAULT_CAPACITY)),
            capacity,
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events discarded because the ring was full. Also the
    /// logical sequence number (`seq`) of the first retained event.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Run `f` with a fresh recorder installed as the thread's sink
    /// and return the recorder alongside `f`'s result.
    ///
    /// The previous sink (if any) is restored afterwards, even if `f`
    /// panics.
    pub fn capture<R>(f: impl FnOnce() -> R) -> (Recorder, R) {
        let shared = Rc::new(RefCell::new(Recorder::new()));
        let result = {
            let _guard = install(shared.clone());
            f()
        };
        let recorder = Rc::try_unwrap(shared)
            .expect("capture's sink must not be retained past the closure")
            .into_inner();
        (recorder, result)
    }
}

impl TraceSink for Recorder {
    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

thread_local! {
    static SINK: RefCell<Option<Rc<RefCell<dyn TraceSink>>>> = const { RefCell::new(None) };
}

/// Restores the previously installed sink when dropped.
///
/// Returned by [`install`]; hold it for as long as tracing should stay
/// enabled.
#[must_use = "dropping the guard immediately uninstalls the sink"]
pub struct SinkGuard {
    previous: Option<Rc<RefCell<dyn TraceSink>>>,
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        SINK.with(|slot| {
            *slot.borrow_mut() = self.previous.take();
        });
    }
}

/// Install `sink` as this thread's trace sink until the returned guard
/// drops. Nesting is allowed; the innermost install wins and the outer
/// sink resumes when the inner guard drops.
pub fn install(sink: Rc<RefCell<dyn TraceSink>>) -> SinkGuard {
    let previous = SINK.with(|slot| slot.borrow_mut().replace(sink));
    SinkGuard { previous }
}

/// Whether a sink is currently installed. Emitters use this to skip
/// building per-event state when nobody is listening.
pub fn is_enabled() -> bool {
    SINK.with(|slot| slot.borrow().is_some())
}

/// Forward `event` to the installed sink, if any.
///
/// Communication events may only be emitted by `parqp-mpc` (lint rule
/// PQ105); algorithm crates open [`span`]s instead.
pub fn emit(event: TraceEvent) {
    let sink = SINK.with(|slot| slot.borrow().clone());
    if let Some(sink) = sink {
        sink.borrow_mut().record(event);
    }
}

/// An open algorithm phase; emits [`TraceEvent::SpanEnd`] on drop.
#[must_use = "dropping the span immediately closes it"]
pub struct Span {
    label: &'static str,
}

impl Span {
    /// The label this span was opened with.
    pub fn label(&self) -> &'static str {
        self.label
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        emit(TraceEvent::SpanEnd { label: self.label });
    }
}

/// Open an algorithm phase span (e.g. `"hypercube/shuffle"`). The
/// phase closes when the returned [`Span`] drops. A no-op (beyond the
/// guard) when no sink is installed.
pub fn span(label: &'static str) -> Span {
    emit(TraceEvent::SpanBegin { label });
    Span { label }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recv(round: usize, server: usize, n: u64) -> TraceEvent {
        TraceEvent::Recv {
            round,
            server,
            tuples: n,
            words: n,
        }
    }

    #[test]
    fn ring_drops_oldest() {
        let mut r = Recorder::with_capacity(3);
        for i in 0..5 {
            r.record(recv(0, i, 1));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let servers: Vec<usize> = r
            .events()
            .map(|e| match e {
                TraceEvent::Recv { server, .. } => *server,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(servers, vec![2, 3, 4]);
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut r = Recorder::with_capacity(0);
        r.record(recv(0, 0, 1));
        r.record(recv(0, 1, 1));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn emit_without_sink_is_noop() {
        assert!(!is_enabled());
        emit(recv(0, 0, 1)); // must not panic
    }

    #[test]
    fn capture_collects_and_uninstalls() {
        let (rec, out) = Recorder::capture(|| {
            assert!(is_enabled());
            emit(recv(0, 3, 7));
            42
        });
        assert!(!is_enabled());
        assert_eq!(out, 42);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.events().next(), Some(&recv(0, 3, 7)));
    }

    #[test]
    fn nested_install_restores_outer() {
        let (outer, ()) = Recorder::capture(|| {
            emit(recv(0, 0, 1));
            let (inner, ()) = Recorder::capture(|| emit(recv(0, 1, 1)));
            assert_eq!(inner.len(), 1);
            emit(recv(0, 2, 1));
        });
        assert_eq!(outer.len(), 2, "inner capture must not leak events");
    }

    #[test]
    fn span_emits_begin_and_end() {
        let (rec, ()) = Recorder::capture(|| {
            let s = span("test/phase");
            assert_eq!(s.label(), "test/phase");
            emit(recv(0, 0, 1));
        });
        let kinds: Vec<&TraceEvent> = rec.events().collect();
        assert_eq!(kinds.len(), 3);
        assert_eq!(
            kinds[0],
            &TraceEvent::SpanBegin {
                label: "test/phase"
            }
        );
        assert_eq!(
            kinds[2],
            &TraceEvent::SpanEnd {
                label: "test/phase"
            }
        );
    }

    #[test]
    fn guard_restores_on_panic() {
        let caught = std::panic::catch_unwind(|| {
            let _ = Recorder::capture(|| panic!("boom"));
        });
        assert!(caught.is_err());
        assert!(!is_enabled(), "panic must not leave a sink installed");
    }
}
