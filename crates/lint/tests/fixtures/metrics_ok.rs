//! Fixture: metrics-layering-clean code — announces a paper bound and
//! captures a registry; event emission stays inside parqp-mpc.

use parqp_mpc::metrics::{self, PaperBound};

pub fn announce_bound(n: u64, p: usize) {
    if metrics::is_enabled() {
        metrics::announce(&PaperBound::tuples("hash_join", n as f64 / p as f64, 1));
    }
}

pub fn measure<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let (registry, out) = metrics::capture(f);
    (registry.rounds(), out)
}
