//! E03 — the Cartesian-product grid (slide 28).
//!
//! Measured load of the `p₁ × p₂` product algorithm against the paper's
//! `L = 2√(|R|·|S|/p)`, sweeping `p` and the size ratio `|R|/|S|` —
//! including the `|R| ≪ |S|` regime where the optimal grid degenerates
//! into a broadcast of `R`.

use crate::table::fmt;
use crate::Table;
use parqp::data::generate;
use parqp::join::twoway;

/// Run E03.
pub fn run() -> Vec<Table> {
    let mut sweep = Table::new(
        "E03a (slide 28): Cartesian product, |R| = |S| = 2000 — L vs 2√(|R||S|/p)",
        &["p", "grid", "measured L", "paper 2√(RS/p)", "ratio"],
    );
    let n = 2000;
    let r = generate::uniform(1, n, 1 << 30, 1);
    let s = generate::uniform(1, n, 1 << 30, 2);
    for p in [4usize, 16, 64, 256] {
        let run = twoway::cartesian(&r, &s, p, 42);
        let (p1, p2) = twoway::product_grid(n, n, p);
        let paper = 2.0 * ((n * n) as f64 / p as f64).sqrt();
        let l = run.report.max_load_tuples() as f64;
        sweep.row(vec![
            p.to_string(),
            format!("{p1}x{p2}"),
            fmt(l),
            fmt(paper),
            format!("{:.2}", l / paper),
        ]);
        assert_eq!(run.output_size(), n * n, "product must be complete");
    }

    let mut ratio = Table::new(
        "E03b (slides 28, 32): unequal sides at p = 64 — grid shifts toward broadcast",
        &[
            "|R|",
            "|S|",
            "grid",
            "measured L",
            "paper 2√(RS/p)",
            "broadcast L = |R|+|S|/p",
        ],
    );
    let p = 64;
    for (nr, ns) in [(2000, 2000), (500, 8000), (100, 40_000), (16, 40_000)] {
        let r = generate::uniform(1, nr, 1 << 30, 3);
        let s = generate::uniform(1, ns, 1 << 30, 4);
        let run = twoway::cartesian(&r, &s, p, 7);
        let (p1, p2) = twoway::product_grid(nr, ns, p);
        let paper = 2.0 * ((nr * ns) as f64 / p as f64).sqrt();
        let bcast = nr as f64 + ns as f64 / p as f64;
        ratio.row(vec![
            nr.to_string(),
            ns.to_string(),
            format!("{p1}x{p2}"),
            fmt(run.report.max_load_tuples() as f64),
            fmt(paper),
            fmt(bcast),
        ]);
    }
    vec![sweep, ratio]
}

#[cfg(test)]
mod tests {
    #[test]
    fn load_tracks_square_root_law() {
        let tables = super::run();
        let sweep = &tables[0];
        for row in &sweep.rows {
            let ratio: f64 = row[4].parse().expect("ratio");
            assert!(
                (0.5..2.0).contains(&ratio),
                "measured/paper ratio {ratio} out of band"
            );
        }
        // 16× more servers ⇒ ~4× smaller load between first and last row.
        let l4: f64 = sweep.rows[0][2].parse().expect("L");
        let l256: f64 = sweep.rows[3][2].parse().expect("L");
        assert!(l4 / l256 > 4.0, "√p scaling violated: {l4} vs {l256}");
    }
}
