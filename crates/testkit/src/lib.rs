//! `parqp-testkit` — self-contained randomness, property testing, and
//! micro-benchmarking for the parqp workspace.
//!
//! The workspace must build and test with **zero network access**, so
//! nothing here comes from crates.io. Three modules replace the three
//! external dev-dependencies the seed tree had:
//!
//! * [`rng`] replaces `rand`: a SplitMix64-seeded xoshiro256++
//!   generator behind a small `gen_range`/`gen_f64`/`shuffle` API.
//!   Every generated relation, hash seed, and benchmark input in the
//!   workspace is a pure function of a `u64` seed.
//! * [`prop`] replaces `proptest`: seeded strategies, a `proptest!`
//!   macro, `prop_assert*!`/`prop_assume!`, and counterexample
//!   shrinking. Failures print a `PARQP_PROPTEST_SEED=… cargo test …`
//!   line that replays the exact case.
//! * [`mod@bench`] replaces `criterion`: wall-clock sampling behind the
//!   same `Criterion`/`BenchmarkGroup`/`criterion_group!` surface the
//!   bench targets already used.
//!
//! The seeding convention across the workspace: public APIs take a
//! `u64` seed and derive all internal randomness from it via
//! [`Rng::seed_from_u64`]; independent streams come from [`Rng::fork`].
//! Two runs with the same seeds are byte-identical.

pub mod bench;
pub mod pool;
pub mod prop;
pub mod rng;

pub use rng::{splitmix64, Rng};

/// One-stop imports for property tests, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop::collection;
    pub use crate::prop::{any, Arbitrary, BoxedStrategy, CaseError, CaseResult};
    pub use crate::prop::{Config, Just, ProptestConfig, Strategy, Union};
    pub use crate::rng::Rng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}
