//! A minimal seeded property-testing runner.
//!
//! This replaces the `proptest` crate for this workspace: the subset we
//! need is (a) seeded case generation from composable strategies, (b) a
//! `proptest!`-style macro so tests read the same as before, and (c)
//! failure shrinking to a small counterexample. Everything is
//! deterministic: each test derives a stable base seed from its fully
//! qualified name, and every failure report prints the case seed plus
//! the environment variable that replays exactly that case:
//!
//! ```text
//! PARQP_PROPTEST_SEED=<seed> cargo test <test_name>
//! ```
//!
//! Other knobs: `PARQP_PROPTEST_CASES` overrides the number of cases
//! globally (handy for a quick smoke run or an overnight soak).

use crate::rng::{splitmix64, Rng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Outcomes

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum CaseError {
    /// The case violated a `prop_assume!` precondition; it is discarded
    /// and does not count toward the case budget.
    Reject(String),
    /// The property failed; triggers shrinking.
    Fail(String),
}

impl CaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        CaseError::Fail(msg.into())
    }

    /// A discarded case (unmet precondition).
    pub fn reject(msg: impl Into<String>) -> Self {
        CaseError::Reject(msg.into())
    }
}

/// What a property body returns (the `proptest!` macro appends `Ok(())`).
pub type CaseResult = Result<(), CaseError>;

// ---------------------------------------------------------------------------
// Strategy

/// A composable generator of test values with optional shrinking.
///
/// `generate` must be a pure function of the RNG stream so that a case
/// seed reproduces the case. `shrink` proposes *strictly simpler*
/// candidates for a failing value; the runner keeps any candidate that
/// still fails and iterates to a local minimum. Strategies that cannot
/// shrink (e.g. mapped ones, where the pre-image is lost) just return
/// no candidates.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Draw one value from the strategy.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Propose simpler variants of a failing value.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform generated values with `f`. The mapped strategy does not
    /// shrink (the pre-image of a failing value is not recoverable).
    fn prop_map<W, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        W: Clone + Debug,
        F: Fn(Self::Value) -> W,
    {
        Map { inner: self, f }
    }

    /// Build a second strategy from each generated value and draw from
    /// it — the monadic bind. Does not shrink.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Clone + Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        (**self).shrink(value)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, W, F> Strategy for Map<S, F>
where
    S: Strategy,
    W: Clone + Debug,
    F: Fn(S::Value) -> W,
{
    type Value = W;

    fn generate(&self, rng: &mut Rng) -> W {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut Rng) -> S2::Value {
        let seed_value = self.inner.generate(rng);
        (self.f)(seed_value).generate(rng)
    }
}

/// Always produces a clone of the given value; never shrinks.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// A uniform choice among boxed strategies — the engine of `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Clone + Debug> Union<T> {
    /// Build from at least one option.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T: Clone + Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        let i = rng.gen_below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        // We do not track which branch produced the value; pool every
        // branch's proposals (wrong-branch proposals are harmless — they
        // only survive if they still fail the property).
        self.options.iter().flat_map(|o| o.shrink(value)).collect()
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: integer / float ranges, any::<T>()

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start, *value)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start(), *value)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Candidates between `lo` and a failing `value`: the floor itself, the
/// midpoint, and one step down. Works for signed types because `value`
/// is always ≥ `lo` for in-range values.
fn shrink_toward<T>(lo: T, value: T) -> Vec<T>
where
    T: Copy + PartialOrd + From<bool>, // T::from(true) is a typed `1`
    T: std::ops::Sub<Output = T> + std::ops::Add<Output = T> + std::ops::Div<Output = T>,
{
    let mut out = Vec::new();
    if value > lo {
        let one = T::from(true);
        out.push(lo);
        let mid = lo + (value - lo) / (one + one);
        if mid > lo && mid < value {
            out.push(mid);
        }
        let down = value - one;
        if down > lo {
            out.push(down);
        }
    }
    out
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> f64 {
        rng.gen_range(self.clone())
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let lo = self.start;
        let mut out = Vec::new();
        if *value > lo {
            out.push(lo);
            let mid = lo + (*value - lo) / 2.0;
            if mid > lo && mid < *value {
                out.push(mid);
            }
        }
        out
    }
}

/// Full-range values of `T` — `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-range generator and 0-directed shrinker.
pub trait Arbitrary: Clone + Debug {
    /// Draw a full-range value.
    fn arbitrary(rng: &mut Rng) -> Self;
    /// Propose values closer to the type's simplest element.
    fn shrink_value(&self) -> Vec<Self> {
        Vec::new()
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_value()
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }

            fn shrink_value(&self) -> Vec<$t> {
                let v = *self;
                let mut out = Vec::new();
                if v > 0 {
                    out.push(0);
                    if v / 2 > 0 { out.push(v / 2); }
                    out.push(v - 1);
                }
                out.dedup();
                out
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }

            fn shrink_value(&self) -> Vec<$t> {
                let v = *self;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    out.push(v / 2);
                    if v < 0 { out.push(-v); }
                }
                out.retain(|&c| c != v);
                out.dedup();
                out
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn shrink_value(&self) -> Vec<bool> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut Rng) -> f64 {
        // Full-range finite doubles are rarely what a property wants;
        // match proptest's practical default of "reasonable" magnitudes.
        let mantissa = rng.gen_f64() * 2.0 - 1.0;
        let exp = rng.gen_range(-64i32..64) as f64;
        mantissa * exp.exp2()
    }

    fn shrink_value(&self) -> Vec<f64> {
        let v = *self;
        if v == 0.0 {
            return Vec::new();
        }
        vec![0.0, v / 2.0]
    }
}

// ---------------------------------------------------------------------------
// Tuples

macro_rules! tuple_strategy {
    ($($S:ident => $i:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$i.shrink(&value.$i) {
                        let mut next = value.clone();
                        next.$i = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}
tuple_strategy!(A => 0);
tuple_strategy!(A => 0, B => 1);
tuple_strategy!(A => 0, B => 1, C => 2);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6);

// ---------------------------------------------------------------------------
// Collections

/// Strategies over collections, mirroring `proptest::collection`.
pub mod collection {
    use super::*;

    /// Number of elements a [`fn@vec`] strategy may produce (inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub(crate) min: usize,
        pub(crate) max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`fn@vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let len = value.len();
            let min = self.size.min;
            if len > min {
                // Structural shrinks first: halve, then drop single
                // elements (every position for short vectors, the ends
                // for long ones — dropping interior elements of a long
                // vector rarely beats halving).
                let half = (len / 2).max(min);
                if half < len {
                    out.push(value[..half].to_vec());
                }
                if len <= 8 {
                    for i in 0..len {
                        let mut w = value.clone();
                        w.remove(i);
                        out.push(w);
                    }
                } else {
                    out.push(value[..len - 1].to_vec());
                    out.push(value[1..].to_vec());
                }
            }
            // Then element-wise shrinks (bounded so huge vectors do not
            // explode the candidate list).
            for i in 0..len.min(32) {
                for candidate in self.elem.shrink(&value[i]) {
                    let mut w = value.clone();
                    w[i] = candidate;
                    out.push(w);
                }
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Config + runner

/// Runner configuration; `ProptestConfig` is an alias so migrated tests
/// read identically to their `proptest` originals.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of passing cases required.
    pub cases: u32,
    /// Cap on shrink attempts after a failure.
    pub max_shrink_iters: u32,
}

/// Alias matching the `proptest` name used inside `proptest!` blocks.
pub type ProptestConfig = Config;

impl Config {
    /// The default budget (overridable via `PARQP_PROPTEST_CASES`).
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            max_shrink_iters: 1024,
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::with_cases(256)
    }
}

/// Stable 64-bit hash of a test's fully qualified name: the per-test
/// base seed, so adding or reordering tests never reshuffles another
/// test's cases.
fn name_seed(name: &str) -> u64 {
    let mut state = 0x706a_7270_7170_6b74; // "parqp tk"-flavored constant
    for &b in name.as_bytes() {
        state ^= u64::from(b);
        splitmix64(&mut state);
    }
    state
}

fn case_seed(base: u64, index: u64) -> u64 {
    let mut s = base.wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    splitmix64(&mut s)
}

enum Outcome {
    Pass,
    Reject,
    Fail(String),
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "test body panicked (non-string payload)".to_string()
    }
}

/// Run `test` against `cfg.cases` generated values, shrinking the first
/// failure to a local minimum and panicking with a replayable report.
///
/// This is what the `proptest!` macro expands to; call it directly for
/// strategies or bodies too awkward for the macro form.
pub fn check<S, F>(name: &str, cfg: &Config, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> CaseResult,
{
    let run_one = |value: S::Value| -> Outcome {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value))) {
            Ok(Ok(())) => Outcome::Pass,
            Ok(Err(CaseError::Reject(_))) => Outcome::Reject,
            Ok(Err(CaseError::Fail(m))) => Outcome::Fail(m),
            Err(p) => Outcome::Fail(panic_message(p)),
        }
    };

    let env_seed = std::env::var("PARQP_PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok());
    let cases = match std::env::var("PARQP_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
    {
        _ if env_seed.is_some() => 1,
        Some(n) => n.max(1),
        None => cfg.cases,
    };
    let base = name_seed(name);
    let max_rejects = (cases as u64) * 16;

    let mut accepted: u32 = 0;
    let mut rejected: u64 = 0;
    let mut index: u64 = 0;
    while accepted < cases {
        let seed = env_seed.unwrap_or_else(|| case_seed(base, index));
        index += 1;
        let mut rng = Rng::seed_from_u64(seed);
        let value = strategy.generate(&mut rng);
        match run_one(value.clone()) {
            Outcome::Pass => accepted += 1,
            Outcome::Reject => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest '{name}': too many rejected cases \
                     ({rejected} rejects for {accepted} accepts) — \
                     loosen the prop_assume! or narrow the strategy"
                );
            }
            Outcome::Fail(first_msg) => {
                let (minimal, msg, steps) =
                    shrink_failure(&strategy, value, first_msg, cfg.max_shrink_iters, &run_one);
                let short = name.rsplit("::").next().unwrap_or(name);
                panic!(
                    "proptest '{name}' failed after {accepted} passing case(s)\n\
                     minimal failing input ({steps} shrink steps): {minimal:?}\n\
                     error: {msg}\n\
                     replay exactly this case with:\n\
                     \tPARQP_PROPTEST_SEED={seed} cargo test {short}"
                );
            }
        }
    }
}

fn shrink_failure<S, R>(
    strategy: &S,
    mut best: S::Value,
    mut best_msg: String,
    budget: u32,
    run_one: &R,
) -> (S::Value, String, u32)
where
    S: Strategy,
    R: Fn(S::Value) -> Outcome,
{
    let mut iters = 0u32;
    let mut steps = 0u32;
    'outer: loop {
        for candidate in strategy.shrink(&best) {
            if iters >= budget {
                break 'outer;
            }
            iters += 1;
            if let Outcome::Fail(m) = run_one(candidate.clone()) {
                best = candidate;
                best_msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (best, best_msg, steps)
}

// ---------------------------------------------------------------------------
// Macros

/// Declare property tests. Mirrors `proptest::proptest!`: in a test
/// module, put `#[test]` on each property so cargo's harness runs it.
///
/// ```
/// use parqp_testkit::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::prop::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::prop::Config = $cfg;
                let strategy = ($($strat,)+);
                $crate::prop::check(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    strategy,
                    |($($arg,)+)| {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// `assert!` for property bodies: fails the case (and shrinks) instead
/// of unwinding with a bare panic message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::prop::CaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::prop::CaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::prop::CaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), left, right,
            )));
        }
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::prop::CaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

/// Discard cases that violate a precondition; does not count against
/// the case budget (but too many discards fail the test loudly).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::prop::CaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::prop::Union::new(vec![
            $($crate::prop::Strategy::boxed($strat),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = collection::vec(0u64..1000, 0..50);
        let mut a = Rng::seed_from_u64(99);
        let mut b = Rng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn int_range_shrinks_toward_floor() {
        let strat = 10u64..100;
        let candidates = strat.shrink(&50);
        assert!(candidates.contains(&10));
        assert!(candidates.iter().all(|&c| (10..50).contains(&c)));
        assert!(strat.shrink(&10).is_empty());
    }

    #[test]
    fn vec_shrink_respects_min_len() {
        let strat = collection::vec(0u64..10, 2..6);
        let v = vec![5, 5, 5];
        for cand in strat.shrink(&v) {
            assert!(cand.len() >= 2, "shrunk below min length: {cand:?}");
        }
    }

    #[test]
    fn shrinking_finds_small_counterexample() {
        // Property "all values < 70" fails; the minimum over 0..100
        // reachable by our shrinker from any failing start is 70.
        let strat = 0u64..100;
        let run = |v: u64| {
            if v < 70 {
                Outcome::Pass
            } else {
                Outcome::Fail("too big".into())
            }
        };
        let (minimal, _, _) = shrink_failure(&strat, 93, "too big".into(), 1024, &run);
        assert_eq!(minimal, 70);
    }

    #[test]
    fn vec_shrinking_reaches_singleton() {
        let strat = collection::vec(0u64..1000, 0..20);
        // Fails whenever the vec contains an element >= 500.
        let run = |v: Vec<u64>| {
            if v.iter().any(|&x| x >= 500) {
                Outcome::Fail("has big".into())
            } else {
                Outcome::Pass
            }
        };
        let start = vec![3, 717, 12, 900, 4, 4, 630];
        let (minimal, _, _) = shrink_failure(&strat, start, "has big".into(), 4096, &run);
        assert_eq!(minimal, vec![500]);
    }

    #[test]
    fn runner_passes_valid_property() {
        check(
            "prop::tests::runner_passes_valid_property",
            &Config::with_cases(64),
            (0u64..1000, 0u64..1000),
            |(a, b)| {
                prop_assert_eq!(a + b, b + a);
                Ok(())
            },
        );
    }

    #[test]
    fn runner_reports_failure_with_seed() {
        let result = std::panic::catch_unwind(|| {
            check(
                "prop::tests::runner_reports_failure_with_seed",
                &Config::with_cases(256),
                0u64..1000,
                |v| {
                    prop_assert!(v < 900, "saw {v}");
                    Ok(())
                },
            );
        });
        let msg = panic_message(result.expect_err("property must fail"));
        assert!(
            msg.contains("PARQP_PROPTEST_SEED="),
            "no replay hint: {msg}"
        );
        assert!(
            msg.contains("minimal failing input"),
            "no shrink report: {msg}"
        );
        // The shrinker must reach the boundary counterexample.
        assert!(msg.contains(": 900"), "not minimal: {msg}");
    }

    #[test]
    fn assume_rejections_do_not_consume_budget() {
        let accepted = std::cell::Cell::new(0u32);
        check(
            "prop::tests::assume_rejections_do_not_consume_budget",
            &Config::with_cases(32),
            0u64..100,
            |v| {
                prop_assume!(v % 2 == 0);
                accepted.set(accepted.get() + 1);
                prop_assert!(v % 2 == 0);
                Ok(())
            },
        );
        assert_eq!(accepted.get(), 32);
    }

    #[test]
    fn oneof_and_flat_map_compose() {
        let strat = prop_oneof![Just(2usize), Just(4), Just(8)]
            .prop_flat_map(|n| collection::vec(0u64..10, n))
            .prop_map(|v| v.len());
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..200 {
            let len = strat.generate(&mut rng);
            assert!(len == 2 || len == 4 || len == 8);
        }
    }
}
