//! The simulated MPC cluster: `p` servers, rounds, and exchanges.
//!
//! An algorithm on the cluster is structured as:
//!
//! ```
//! use parqp_mpc::Cluster;
//!
//! let mut cluster = Cluster::new(4);
//! // Input starts distributed (the model assumes O(IN/p) per server).
//! let local: Vec<Vec<u64>> = cluster.scatter((0..100u64).collect());
//!
//! // One round: every server computes locally, then sends messages.
//! let mut ex = cluster.exchange::<u64>();
//! for (server, items) in local.iter().enumerate() {
//!     for &v in items {
//!         ex.send((v % 4) as usize, v); // e.g. hash partition
//!     }
//!     let _ = server;
//! }
//! let inboxes = ex.finish();
//!
//! let report = cluster.report();
//! assert_eq!(report.num_rounds(), 1);
//! assert_eq!(report.total_tuples(), 100);
//! assert_eq!(inboxes.iter().map(Vec::len).sum::<usize>(), 100);
//! ```
//!
//! The cluster does not own server state; algorithms keep it in ordinary
//! `Vec`s indexed by server rank. What the cluster owns is the *ledger*:
//! every message sent through an [`Exchange`] is charged to its destination
//! server for the current round, producing the `(L, r, C)` cost summary
//! that the paper's theorems are about.

use crate::error::MpcError;
use crate::grid::Grid;
use crate::stats::{LoadReport, RoundStats};
use crate::weight::Weight;
use parqp_faults::{self as faults, FaultKind, RecoveryStrategy};
use parqp_metrics as metrics;
use parqp_store as store;
use parqp_trace::{self as trace, TraceEvent};

/// A simulated MPC cluster of `p` shared-nothing servers.
#[derive(Debug)]
pub struct Cluster {
    p: usize,
    rounds: Vec<RoundStats>,
    /// Worker pool snapshotted from [`crate::exec`] at construction:
    /// `None` runs [`Cluster::map`] inline (serial mode).
    pool: Option<std::rc::Rc<parqp_testkit::pool::WorkerPool>>,
}

impl Cluster {
    /// Create a cluster of `p` servers.
    ///
    /// # Panics
    /// Panics if `p == 0`; use [`Cluster::try_new`] to handle that case.
    pub fn new(p: usize) -> Self {
        match Self::try_new(p) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Cluster::new`]: errors on an empty cluster instead of
    /// panicking, for callers sizing clusters from untrusted input.
    #[must_use = "the cluster (or the sizing error) must be inspected"]
    pub fn try_new(p: usize) -> Result<Self, MpcError> {
        if p == 0 {
            return Err(MpcError::EmptyTopology { what: "cluster" });
        }
        // Give every virtual server its buffer pool up front, so paged
        // scans never race pool creation (a no-op when no store runtime
        // is installed, and when a sub-cluster reuses servers 0..p).
        store::ensure_servers(p);
        Ok(Self {
            p,
            rounds: Vec::new(),
            pool: crate::exec::snapshot(),
        })
    }

    /// The execution mode this cluster snapshotted at construction.
    pub fn exec_mode(&self) -> crate::exec::ExecMode {
        match &self.pool {
            None => crate::exec::ExecMode::Serial,
            Some(pool) => crate::exec::ExecMode::Parallel {
                workers: pool.workers(),
            },
        }
    }

    /// Number of servers `p`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Start a communication round. Messages are sent through the returned
    /// [`Exchange`]; calling [`Exchange::finish`] delivers them and records
    /// the round's statistics.
    pub fn exchange<T: Weight>(&mut self) -> Exchange<'_, T> {
        Exchange {
            inboxes: (0..self.p).map(|_| Vec::new()).collect(),
            tuples: vec![0; self.p],
            words: vec![0; self.p],
            trace: (trace::is_enabled() || metrics::is_enabled())
                .then(|| Box::new(ExchangeTrace::new(self.p))),
            cluster: self,
        }
    }

    /// Distribute input items round-robin across servers *without* counting
    /// a communication round: the MPC model assumes the input starts evenly
    /// distributed (`O(IN/p)` per server, slide 6).
    pub fn scatter<T>(&self, items: Vec<T>) -> Vec<Vec<T>> {
        let mut out: Vec<Vec<T>> = (0..self.p).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            out[i % self.p].push(item);
        }
        out
    }

    /// Run one *local compute* phase: apply `f` to every server's item
    /// (typically its inbox) and return the outputs in server order,
    /// `out[s] == f(s, items[s])`.
    ///
    /// Under [`ExecMode::Serial`](crate::exec::ExecMode) this is an
    /// inline loop; under `Parallel` each server's closure runs on a
    /// pool worker and `map` blocks until the whole phase finishes (the
    /// exchange boundaries on the calling thread are the barriers).
    /// Results always merge in server order, so both modes are
    /// byte-identical. `f` must be pure with respect to the
    /// thread-local trace/metrics/faults runtimes: workers never see
    /// them installed.
    ///
    /// # Panics
    /// Re-raises the first panicking server's panic (in submit order);
    /// use [`Cluster::try_map`] for a typed error instead.
    pub fn map<I, O, F>(&self, items: Vec<I>, f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(usize, I) -> O + Sync,
    {
        match &self.pool {
            None => items
                .into_iter()
                .enumerate()
                .map(|(s, it)| f(s, it))
                .collect(),
            Some(pool) => match pool.map(items, f) {
                Ok(out) => out,
                Err(e) => std::panic::resume_unwind(Box::new(e.message)),
            },
        }
    }

    /// Fallible [`Cluster::map`]: a panic on any server (worker or
    /// inline) is caught and returned as [`MpcError::WorkerPanic`],
    /// never a hang — the rest of the phase still runs to completion.
    pub fn try_map<I, O, F>(&self, items: Vec<I>, f: F) -> Result<Vec<O>, MpcError>
    where
        I: Send,
        O: Send,
        F: Fn(usize, I) -> O + Sync,
    {
        match &self.pool {
            None => {
                let mut out = Vec::with_capacity(items.len());
                for (s, it) in items.into_iter().enumerate() {
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(s, it))) {
                        Ok(o) => out.push(o),
                        Err(payload) => {
                            return Err(MpcError::WorkerPanic {
                                server: s,
                                message: parqp_testkit::pool::panic_message(payload.as_ref()),
                            })
                        }
                    }
                }
                Ok(out)
            }
            Some(pool) => pool.map(items, f).map_err(|e| MpcError::WorkerPanic {
                server: e.job,
                message: e.message,
            }),
        }
    }

    /// Record a round in which server `s` received `tuples[s]` tuples and
    /// `words[s]` words, without routing actual messages. Used by
    /// algorithms that account for communication analytically (e.g. when a
    /// phase's messages are a deterministic permutation).
    ///
    /// # Panics
    /// Panics if either vector's length differs from `p`; use
    /// [`Cluster::try_record_round`] to handle that case.
    pub fn record_round(&mut self, tuples: Vec<u64>, words: Vec<u64>) {
        if let Err(e) = self.try_record_round(tuples, words) {
            panic!("{e}");
        }
    }

    /// Fallible [`Cluster::record_round`].
    #[must_use = "an Err means the round was NOT recorded"]
    pub fn try_record_round(&mut self, tuples: Vec<u64>, words: Vec<u64>) -> Result<(), MpcError> {
        for len in [tuples.len(), words.len()] {
            if len != self.p {
                return Err(MpcError::BadArity {
                    got: len,
                    expected: self.p,
                });
            }
        }
        let planned = if faults::is_enabled() {
            // Analytic rounds have no inboxes; drop/duplicate batch
            // words are charged proportionally to the batch's share of
            // the victim's tuples.
            let scheduled = faults::next_round_faults(self.p);
            scheduled
                .into_iter()
                .map(|(server, kind)| {
                    let batch = match kind {
                        FaultKind::Drop { msgs } | FaultKind::Duplicate { msgs } => {
                            let eff = msgs.min(tuples[server]);
                            let w = (words[server] * eff)
                                .checked_div(tuples[server])
                                .unwrap_or(0);
                            (eff, w)
                        }
                        _ => (0, 0),
                    };
                    PlannedFault {
                        server,
                        kind,
                        batch,
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        self.record_round_internal(tuples, words, None, planned);
        Ok(())
    }

    /// Record one round — the single point every recorded round flows
    /// through: applies planned fault injections, emits the round's
    /// trace block, pushes the `RoundStats`, then charges recovery to
    /// the ledger per the installed strategy.
    fn record_round_internal(
        &mut self,
        mut tuples: Vec<u64>,
        mut words: Vec<u64>,
        xt: Option<&ExchangeTrace>,
        planned: Vec<PlannedFault>,
    ) {
        // In-round injections first: duplicate deliveries inflate the
        // victim's load, and a straggler's backup speculatively
        // re-executes its round at the same inbound load. Per-fault
        // recovery charges are collected for the log.
        let mut charges = Vec::with_capacity(planned.len());
        for f in &planned {
            let charge = match f.kind {
                FaultKind::Duplicate { .. } => {
                    tuples[f.server] += f.batch.0;
                    words[f.server] += f.batch.1;
                    f.batch
                }
                FaultKind::Straggle => {
                    let backup = (f.server + 1) % self.p;
                    let spec = (tuples[f.server], words[f.server]);
                    tuples[backup] += spec.0;
                    words[backup] += spec.1;
                    spec
                }
                _ => f.batch,
            };
            charges.push(charge);
        }
        let observed = trace::is_enabled() || metrics::is_enabled();
        let fault_round = self.rounds.len();
        if observed {
            emit_round_events(
                fault_round,
                self.p,
                &tuples,
                &words,
                xt.map(|t| (t.sent_msgs.as_slice(), t.sent_words.as_slice())),
                xt.and_then(|t| t.dims.as_deref()),
            );
        }
        self.rounds.push(RoundStats { tuples, words });

        // Recovery, charged honestly after the faulty round: drops
        // retransmit in one extra round, crashes recover per strategy,
        // duplicates/stragglers already paid their same-round charge.
        for (f, &(ct, cw)) in planned.iter().zip(&charges) {
            faults::note_injected(fault_round, f.server, f.kind.name());
            if observed {
                observe(TraceEvent::FaultInjected {
                    round: fault_round,
                    server: f.server,
                    kind: f.kind.name(),
                });
            }
            match f.kind {
                FaultKind::Duplicate { .. } | FaultKind::Straggle => {
                    let mechanism = if matches!(f.kind, FaultKind::Straggle) {
                        "speculate"
                    } else {
                        "dedup"
                    };
                    if observed {
                        observe(TraceEvent::RecoveryBegin {
                            round: fault_round,
                            server: f.server,
                            strategy: mechanism,
                        });
                        observe(TraceEvent::RecoveryEnd {
                            round: fault_round,
                            server: f.server,
                            rounds: 0,
                            tuples: ct,
                            words: cw,
                        });
                    }
                    faults::note_recovery(0, ct, cw);
                }
                FaultKind::Drop { .. } => {
                    if observed {
                        observe(TraceEvent::RecoveryBegin {
                            round: fault_round,
                            server: f.server,
                            strategy: "retransmit",
                        });
                    }
                    let mut t = vec![0; self.p];
                    let mut w = vec![0; self.p];
                    t[f.server] = ct;
                    w[f.server] = cw;
                    let idx = self.push_recovery_round(t, w, observed);
                    if observed {
                        observe(TraceEvent::RecoveryEnd {
                            round: idx,
                            server: f.server,
                            rounds: 1,
                            tuples: ct,
                            words: cw,
                        });
                    }
                    faults::note_recovery(1, ct, cw);
                }
                FaultKind::Crash => self.recover_crash(fault_round, f.server, observed),
            }
        }
        flush_io();
    }

    /// Charge crash recovery to the ledger per the installed strategy.
    fn recover_crash(&mut self, fault_round: usize, server: usize, observed: bool) {
        match faults::active_strategy().unwrap_or_default() {
            RecoveryStrategy::Checkpoint { every } => {
                // Roll back to the last checkpoint and replay every
                // ledger round since, at its original loads.
                let every = every.max(1);
                let first = fault_round - (fault_round % every);
                if observed {
                    observe(TraceEvent::RecoveryBegin {
                        round: fault_round,
                        server,
                        strategy: "checkpoint",
                    });
                }
                let replay: Vec<RoundStats> = self.rounds[first..=fault_round].to_vec();
                let n = replay.len();
                let (mut t, mut w) = (0u64, 0u64);
                for rs in replay {
                    t += rs.total_tuples();
                    w += rs.total_words();
                    self.push_recovery_round(rs.tuples, rs.words, observed);
                }
                if observed {
                    observe(TraceEvent::RecoveryEnd {
                        round: self.rounds.len() - 1,
                        server,
                        rounds: n,
                        tuples: t,
                        words: w,
                    });
                }
                faults::note_recovery(n, t, w);
            }
            RecoveryStrategy::Replication { replicas } => {
                // One redistribution round: the replacement server
                // re-fetches the cumulative partitions of the victim's
                // replica group (the victim plus the `replicas − 1`
                // partitions it mirrored), ≈ replicas × IN/p.
                let replicas = replicas.clamp(1, self.p);
                if observed {
                    observe(TraceEvent::RecoveryBegin {
                        round: fault_round,
                        server,
                        strategy: "replication",
                    });
                }
                let mut t = vec![0u64; self.p];
                let mut w = vec![0u64; self.p];
                for i in 0..replicas {
                    let member = (server + i) % self.p;
                    for rs in &self.rounds {
                        t[server] += rs.tuples[member];
                        w[server] += rs.words[member];
                    }
                }
                let (ct, cw) = (t[server], w[server]);
                let idx = self.push_recovery_round(t, w, observed);
                if observed {
                    observe(TraceEvent::RecoveryEnd {
                        round: idx,
                        server,
                        rounds: 1,
                        tuples: ct,
                        words: cw,
                    });
                }
                faults::note_recovery(1, ct, cw);
            }
        }
    }

    /// Append a recovery round to the ledger (with its trace block).
    /// Recovery rounds do not tick the fault runtime's logical clock,
    /// so injected overhead never shifts the fault schedule.
    fn push_recovery_round(&mut self, tuples: Vec<u64>, words: Vec<u64>, observed: bool) -> usize {
        let round = self.rounds.len();
        if observed {
            emit_round_events(round, self.p, &tuples, &words, None, None);
        }
        self.rounds.push(RoundStats { tuples, words });
        round
    }

    /// The `(L, r, C)` summary of all rounds recorded so far.
    pub fn report(&self) -> LoadReport {
        // Final IO flush: paged scans after the last exchange (output
        // digests, result materialization) land in the registry too.
        flush_io();
        LoadReport {
            servers: self.p,
            rounds: self.rounds.clone(),
        }
    }

    /// The `(L, r, C)` summary of the rounds recorded *after* `mark`
    /// (a prior [`Cluster::rounds_so_far`] value): the per-query slice
    /// of a long-lived cluster's ledger. Serving layers mark the ledger
    /// before each admitted query and attribute the delta — including
    /// any recovery rounds faults appended during it — to exactly that
    /// query, so per-query slices sum to [`Cluster::report`] with no
    /// round counted twice or dropped. Like `report`, this flushes the
    /// page-IO ledger first, so a query's paged scans reach the metrics
    /// registry before its slice is taken. A `mark` at or beyond the
    /// current round count yields an empty report.
    pub fn report_since(&self, mark: usize) -> LoadReport {
        flush_io();
        LoadReport {
            servers: self.p,
            rounds: self.rounds.get(mark..).unwrap_or_default().to_vec(),
        }
    }

    /// Number of rounds recorded so far.
    pub fn rounds_so_far(&self) -> usize {
        self.rounds.len()
    }

    /// Forget all recorded rounds (e.g. between benchmark iterations)
    /// and rewind any installed fault plan's logical round clock, so a
    /// recovery replay starts from a clean ledger and sees the same
    /// schedule from round 0 again. In-flight exchanges cannot survive
    /// a reset — an [`Exchange`] borrows the cluster mutably — and the
    /// trace sink is left alone (it belongs to the caller's capture).
    pub fn reset(&mut self) {
        self.rounds.clear();
        faults::reset_round_clock();
        // The page-IO ledger rewinds with the communication ledger:
        // pools drop residency and zero their counters, so a replay
        // re-pays the exact cold-start IO of the original run.
        store::reset_io();
    }
}

/// One fault scheduled for the round being recorded, with the batch
/// (tuples, words) its drop/duplicate injection affects — resolved
/// from real inboxes by [`Exchange::finish`], proportionally by
/// [`Cluster::try_record_round`].
#[derive(Debug, Clone, Copy)]
struct PlannedFault {
    server: usize,
    kind: FaultKind,
    batch: (u64, u64),
}

/// Per-exchange trace state, allocated only while a sink is installed
/// (see [`parqp_trace::install`]): send-side attribution and the grid
/// the round routed over. Boxed so the untraced hot path pays one
/// `Option` discriminant, not three vectors.
#[derive(Debug)]
struct ExchangeTrace {
    /// Server whose sends are currently being attributed, set by
    /// [`Exchange::set_sender`]; `None` = unattributed.
    sender: Option<usize>,
    sent_msgs: Vec<u64>,
    sent_words: Vec<u64>,
    dims: Option<Vec<usize>>,
}

impl ExchangeTrace {
    fn new(p: usize) -> Self {
        Self {
            sender: None,
            sent_msgs: vec![0; p],
            sent_words: vec![0; p],
            dims: None,
        }
    }
}

/// Forward one event to both observability sinks: the installed
/// metrics registry (lint rule PQ107) and the installed trace sink
/// (PQ105). Each is a no-op when its side is uninstalled.
fn observe(event: TraceEvent) {
    if metrics::is_enabled() {
        metrics::emit(&event);
    }
    trace::emit(event);
}

/// Drain the store runtime's page-IO delta into the installed metrics
/// registry. `parqp-mpc` is the only bridge between the two runtimes
/// (lint rule PQ109, the IO twin of PQ107's event monopoly), called at
/// every round boundary and once more from [`Cluster::report`]. The
/// drain itself advances the store's snapshots only when a registry is
/// listening, so unobserved runs keep their cumulative per-server
/// totals intact for `io_report`.
fn flush_io() {
    if metrics::is_enabled() {
        let delta = store::drain_io();
        if !delta.is_zero() {
            metrics::emit_io(delta.reads, delta.misses, delta.evictions);
        }
    }
}

/// Emit one round's trace block: `RoundBegin`, optional `Topology`,
/// per-server `Send`s (attributed fan-out) and `Recv`s (nonzero loads
/// only — `RoundBegin.servers` reconstructs the zeros), `RoundEnd`
/// with the round totals. This free function is the single place
/// communication events are born; everything downstream of it only
/// *reads* the stream (lint rule PQ105).
fn emit_round_events(
    round: usize,
    servers: usize,
    tuples: &[u64],
    words: &[u64],
    sent: Option<(&[u64], &[u64])>,
    dims: Option<&[usize]>,
) {
    observe(TraceEvent::RoundBegin { round, servers });
    if let Some(dims) = dims {
        observe(TraceEvent::Topology {
            round,
            dims: dims.to_vec(),
        });
    }
    if let Some((msgs, sent_words)) = sent {
        for (server, (&m, &w)) in msgs.iter().zip(sent_words).enumerate() {
            if m > 0 {
                observe(TraceEvent::Send {
                    round,
                    server,
                    msgs: m,
                    words: w,
                });
            }
        }
    }
    let mut total_tuples = 0;
    let mut total_words = 0;
    for (server, (&t, &w)) in tuples.iter().zip(words).enumerate() {
        total_tuples += t;
        total_words += w;
        if t > 0 || w > 0 {
            observe(TraceEvent::Recv {
                round,
                server,
                tuples: t,
                words: w,
            });
        }
    }
    observe(TraceEvent::RoundEnd {
        round,
        tuples: total_tuples,
        words: total_words,
    });
}

/// An in-progress communication round on a [`Cluster`].
///
/// Created by [`Cluster::exchange`]; every `send` charges the destination
/// server. Dropping an `Exchange` without calling [`Exchange::finish`]
/// discards the round (no statistics are recorded).
#[derive(Debug)]
pub struct Exchange<'c, T: Weight> {
    cluster: &'c mut Cluster,
    inboxes: Vec<Vec<T>>,
    tuples: Vec<u64>,
    words: Vec<u64>,
    /// `Some` iff a trace sink was installed when the exchange began.
    trace: Option<Box<ExchangeTrace>>,
}

impl<T: Weight> Exchange<'_, T> {
    /// Number of servers in the underlying cluster.
    pub fn p(&self) -> usize {
        self.cluster.p
    }

    /// Send `msg` to server `dest`.
    ///
    /// # Panics
    /// Panics if `dest` is not a valid server rank; use
    /// [`Exchange::try_send`] to handle that case.
    #[inline]
    pub fn send(&mut self, dest: usize, msg: T) {
        if let Err(e) = self.try_send(dest, msg) {
            panic!("{e}");
        }
    }

    /// Fallible [`Exchange::send`]: errors on an out-of-range destination
    /// instead of panicking. This is the simulator's hottest path — the
    /// single bounds probe below is the only check, and the two charged
    /// counters are in-bounds by construction (all three vectors share
    /// length `p`). The trace branch costs one predictable-`None` test
    /// when no sink is installed.
    #[inline]
    #[must_use = "an Err means the message was NOT sent or charged"]
    pub fn try_send(&mut self, dest: usize, msg: T) -> Result<(), MpcError> {
        let Some(inbox) = self.inboxes.get_mut(dest) else {
            return Err(MpcError::BadServer {
                dest,
                p: self.cluster.p,
            });
        };
        let w = msg.words();
        self.tuples[dest] += 1;
        self.words[dest] += w;
        inbox.push(msg);
        if let Some(tr) = &mut self.trace {
            if let Some(s) = tr.sender {
                tr.sent_msgs[s] += 1;
                tr.sent_words[s] += w;
            }
        }
        Ok(())
    }

    /// Declare that subsequent sends originate from server `sender`, for
    /// the trace's per-server fan-out attribution. Purely observational:
    /// the ledger charges destinations regardless, and the call is a
    /// no-op when no trace sink is installed. Out-of-range senders are
    /// recorded as unattributed.
    #[inline]
    pub fn set_sender(&mut self, sender: usize) {
        if let Some(tr) = &mut self.trace {
            tr.sender = (sender < tr.sent_msgs.len()).then_some(sender);
        }
    }

    /// Send `msg` to every server (a broadcast costs `p` messages).
    pub fn broadcast(&mut self, msg: T)
    where
        T: Clone,
    {
        for dest in 0..self.inboxes.len() {
            self.send(dest, msg.clone());
        }
    }

    /// Send `msg` to every server of `grid` whose coordinates match
    /// `partial` (`None` = `*`): the HyperCube placement primitive.
    ///
    /// `grid.len()` must equal the cluster size.
    pub fn send_matching(&mut self, grid: &Grid, partial: &[Option<usize>], msg: T)
    where
        T: Clone,
    {
        debug_assert_eq!(grid.len(), self.cluster.p, "grid does not span the cluster");
        if let Some(tr) = &mut self.trace {
            if tr.dims.is_none() {
                tr.dims = Some(grid.dims().to_vec());
            }
        }
        for dest in grid.matching(partial) {
            self.send(dest, msg.clone());
        }
    }

    /// Deliver all messages, record the round, and return per-server
    /// inboxes. When a trace sink is installed this also emits the
    /// round's event block ([`TraceEvent::RoundBegin`] … `RoundEnd`),
    /// mirroring exactly what the ledger records — dropped and
    /// [`finish_untracked`](Exchange::finish_untracked) exchanges emit
    /// nothing, so trace totals always agree with the [`LoadReport`].
    ///
    /// When a fault plan is installed (see `parqp-faults`) this is
    /// where scheduled faults fire: the runtime's round clock ticks
    /// once per finished exchange, injections are charged to this
    /// round, and recovery rounds are appended to the ledger. The
    /// returned inboxes are always the *post-recovery* view — faults
    /// never alter delivered data, so a recovered run's output is
    /// byte-identical to its fault-free run by construction.
    pub fn finish(self) -> Vec<Vec<T>> {
        let Exchange {
            cluster,
            inboxes,
            tuples,
            words,
            trace: tr,
        } = self;
        let planned = if faults::is_enabled() {
            // Drop/duplicate batches resolve against real inboxes:
            // drops lose the *last* messages delivered, duplicates
            // re-deliver the *first*, each at exact message weights.
            faults::next_round_faults(cluster.p)
                .into_iter()
                .map(|(server, kind)| {
                    let inbox = &inboxes[server];
                    let batch = match kind {
                        FaultKind::Drop { msgs } => {
                            let eff = (msgs as usize).min(inbox.len());
                            let w = inbox[inbox.len() - eff..].iter().map(Weight::words).sum();
                            (eff as u64, w)
                        }
                        FaultKind::Duplicate { msgs } => {
                            let eff = (msgs as usize).min(inbox.len());
                            let w = inbox[..eff].iter().map(Weight::words).sum();
                            (eff as u64, w)
                        }
                        _ => (0, 0),
                    };
                    PlannedFault {
                        server,
                        kind,
                        batch,
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        cluster.record_round_internal(tuples, words, tr.as_deref(), planned);
        inboxes
    }

    /// Deliver all messages **without** recording a round. Used for
    /// communication the model does not charge (e.g. re-delivering data a
    /// server already holds when two logical phases are fused into one
    /// physical round).
    pub fn finish_untracked(self) -> Vec<Vec<T>> {
        self.inboxes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_accounts_per_destination() {
        let mut c = Cluster::new(3);
        let mut ex = c.exchange::<Vec<u64>>();
        ex.send(0, vec![1, 2]);
        ex.send(0, vec![3]);
        ex.send(2, vec![4, 5, 6]);
        let inboxes = ex.finish();
        assert_eq!(inboxes[0], vec![vec![1, 2], vec![3]]);
        assert!(inboxes[1].is_empty());
        assert_eq!(inboxes[2], vec![vec![4, 5, 6]]);

        let r = c.report();
        assert_eq!(r.num_rounds(), 1);
        assert_eq!(r.rounds[0].tuples, vec![2, 0, 1]);
        assert_eq!(r.rounds[0].words, vec![3, 0, 3]);
        assert_eq!(r.max_load_tuples(), 2);
        assert_eq!(r.max_load_words(), 3);
    }

    #[test]
    fn broadcast_charges_every_server() {
        let mut c = Cluster::new(4);
        let mut ex = c.exchange::<u64>();
        ex.broadcast(9);
        let inboxes = ex.finish();
        assert!(inboxes.iter().all(|b| b == &vec![9]));
        assert_eq!(c.report().total_tuples(), 4);
    }

    #[test]
    fn scatter_is_even_and_free() {
        let c = Cluster::new(4);
        let parts = c.scatter((0..10u64).collect());
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        assert_eq!(c.report().num_rounds(), 0);
    }

    #[test]
    fn dropped_exchange_records_nothing() {
        let mut c = Cluster::new(2);
        {
            let mut ex = c.exchange::<u64>();
            ex.send(0, 1);
            // dropped without finish()
        }
        assert_eq!(c.report().num_rounds(), 0);
    }

    #[test]
    fn untracked_finish_records_nothing() {
        let mut c = Cluster::new(2);
        let mut ex = c.exchange::<u64>();
        ex.send(1, 5);
        let inboxes = ex.finish_untracked();
        assert_eq!(inboxes[1], vec![5]);
        assert_eq!(c.report().num_rounds(), 0);
    }

    #[test]
    fn send_matching_uses_grid() {
        let mut c = Cluster::new(6);
        let g = Grid::new(vec![2, 3]);
        let mut ex = c.exchange::<u64>();
        ex.send_matching(&g, &[Some(1), None], 7);
        let inboxes = ex.finish();
        let received: Vec<usize> = (0..6).filter(|&s| !inboxes[s].is_empty()).collect();
        assert_eq!(received, g.matching(&[Some(1), None]));
        assert_eq!(c.report().total_tuples(), 3);
    }

    #[test]
    fn report_since_slices_the_ledger_exactly() {
        let mut c = Cluster::new(2);
        let mut ex = c.exchange::<u64>();
        ex.send(0, 1);
        ex.finish();
        let mark = c.rounds_so_far();
        let mut ex = c.exchange::<u64>();
        ex.send(1, 7);
        ex.send(1, 8);
        ex.finish();
        let delta = c.report_since(mark);
        assert_eq!(delta.num_rounds(), 1);
        assert_eq!(delta.rounds[0].tuples, vec![0, 2]);
        assert_eq!(delta.servers, 2);
        // Slices partition the full ledger: prefix + delta == report.
        let full = c.report();
        assert_eq!(full.num_rounds(), 2);
        assert_eq!(full.rounds[mark..], delta.rounds[..]);
        // Marks at or past the end are empty, not a panic.
        assert_eq!(c.report_since(2).num_rounds(), 0);
        assert_eq!(c.report_since(99).num_rounds(), 0);
    }

    #[test]
    fn rounds_accumulate() {
        let mut c = Cluster::new(2);
        for _ in 0..3 {
            let mut ex = c.exchange::<u64>();
            ex.send(0, 1);
            ex.finish();
        }
        assert_eq!(c.report().num_rounds(), 3);
        c.reset();
        assert_eq!(c.report().num_rounds(), 0);
    }

    #[test]
    fn reset_rewinds_per_server_page_io_counters() {
        let cfg = store::StoreConfig {
            page_size: 4,
            pool_pages: 2,
        };
        let (totals, ()) = store::capture(cfg, || {
            let mut c = Cluster::new(3);
            store::touch_page(0, store::alloc_pages(1).unwrap(), 4);
            store::touch_page(2, store::alloc_pages(1).unwrap(), 1);
            assert!(store::io_report().iter().any(|s| !s.is_zero()));
            c.reset();
            assert!(
                store::io_report().iter().all(|s| s.is_zero()),
                "reset must rewind every server's IO ledger"
            );
            assert_eq!(c.report().num_rounds(), 0);
        });
        assert_eq!(totals.len(), 3, "ensure_servers sized one pool per server");
        assert!(totals.iter().all(|s| s.is_zero()));
    }

    #[test]
    fn round_boundaries_drain_io_into_the_metrics_registry() {
        let cfg = store::StoreConfig {
            page_size: 4,
            pool_pages: 2,
        };
        let (reg, ()) = metrics::capture(|| {
            let (_totals, ()) = store::capture(cfg, || {
                let mut c = Cluster::new(2);
                let page = store::alloc_pages(1).unwrap();
                store::touch_page(0, page, 5);
                let mut ex = c.exchange::<u64>();
                ex.send(1, 9);
                ex.finish(); // round boundary: the delta drains here
                store::touch_page(1, page, 2);
                let _ = c.report(); // final flush catches the tail
            });
        });
        assert_eq!(reg.io_reads(), 7);
        assert_eq!(reg.counter("io_misses"), 2);
    }

    #[test]
    fn record_round_manual() {
        let mut c = Cluster::new(2);
        c.record_round(vec![3, 4], vec![6, 8]);
        let r = c.report();
        assert_eq!(r.max_load_tuples(), 4);
        assert_eq!(r.max_load_words(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        Cluster::new(0);
    }

    #[test]
    fn traced_exchange_emits_round_block() {
        use parqp_trace::{Recorder, TraceEvent};
        let (rec, report) = Recorder::capture(|| {
            let mut c = Cluster::new(3);
            let mut ex = c.exchange::<Vec<u64>>();
            ex.set_sender(1);
            ex.send(0, vec![1, 2]);
            ex.send(2, vec![3]);
            ex.finish();
            c.report()
        });
        let events: Vec<&TraceEvent> = rec.events().collect();
        assert_eq!(
            events[0],
            &TraceEvent::RoundBegin {
                round: 0,
                servers: 3
            }
        );
        assert_eq!(
            events[1],
            &TraceEvent::Send {
                round: 0,
                server: 1,
                msgs: 2,
                words: 3
            }
        );
        // Zero-load server 1 is elided from the Recv events.
        assert_eq!(
            events[2],
            &TraceEvent::Recv {
                round: 0,
                server: 0,
                tuples: 1,
                words: 2
            }
        );
        assert_eq!(
            events[3],
            &TraceEvent::Recv {
                round: 0,
                server: 2,
                tuples: 1,
                words: 1
            }
        );
        assert_eq!(
            events[4],
            &TraceEvent::RoundEnd {
                round: 0,
                tuples: 2,
                words: 3
            }
        );
        assert_eq!(events.len(), 5);
        assert_eq!(report.total_tuples(), 2);
    }

    #[test]
    fn traced_send_matching_carries_topology() {
        use parqp_trace::{Recorder, TraceEvent};
        let (rec, ()) = Recorder::capture(|| {
            let mut c = Cluster::new(6);
            let g = Grid::new(vec![2, 3]);
            let mut ex = c.exchange::<u64>();
            ex.send_matching(&g, &[Some(1), None], 7);
            ex.finish();
        });
        assert!(rec.events().any(|e| matches!(
            e,
            TraceEvent::Topology { round: 0, dims } if dims == &vec![2, 3]
        )));
    }

    #[test]
    fn untracked_and_dropped_exchanges_emit_nothing() {
        use parqp_trace::Recorder;
        let (rec, ()) = Recorder::capture(|| {
            let mut c = Cluster::new(2);
            let mut ex = c.exchange::<u64>();
            ex.send(0, 1);
            ex.finish_untracked();
            let mut ex = c.exchange::<u64>();
            ex.send(1, 2);
            drop(ex);
        });
        assert!(rec.is_empty(), "trace must mirror the ledger exactly");
    }

    #[test]
    fn traced_record_round_emits_block() {
        use parqp_trace::{Recorder, TraceEvent};
        let (rec, ()) = Recorder::capture(|| {
            let mut c = Cluster::new(2);
            c.record_round(vec![3, 0], vec![6, 0]);
        });
        let events: Vec<&TraceEvent> = rec.events().collect();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[1],
            &TraceEvent::Recv {
                round: 0,
                server: 0,
                tuples: 3,
                words: 6
            }
        );
    }

    #[test]
    fn untraced_run_allocates_no_trace_state() {
        let mut c = Cluster::new(2);
        let ex = c.exchange::<u64>();
        assert!(ex.trace.is_none());
    }

    #[test]
    fn metrics_only_run_feeds_registry() {
        // With no trace sink installed, an installed metrics registry
        // alone must still see the full event stream (including
        // send-side attribution, which needs the ExchangeTrace).
        let (reg, report) = metrics::capture(|| {
            assert!(!trace::is_enabled());
            let mut c = Cluster::new(3);
            let mut ex = c.exchange::<Vec<u64>>();
            ex.set_sender(1);
            ex.send(0, vec![1, 2]);
            ex.send(2, vec![3]);
            ex.finish();
            c.report()
        });
        assert_eq!(reg.rounds(), 1);
        assert_eq!(reg.counter("tuples"), report.total_tuples());
        assert_eq!(reg.counter("words"), report.total_words());
        assert_eq!(reg.counter("sends"), 2);
        assert_eq!(
            reg.load_max(metrics::LoadUnit::Tuples),
            report.max_load_tuples()
        );
    }

    mod faulted {
        use super::*;
        use parqp_faults::{capture, FaultLog, FaultPlan};

        /// One 2-server round: s0 gets [1,2] (3 words), s1 gets [3] (1 word).
        fn one_round(c: &mut Cluster) -> Vec<Vec<Vec<u64>>> {
            let mut ex = c.exchange::<Vec<u64>>();
            ex.send(0, vec![1, 2]);
            ex.send(1, vec![3]);
            ex.finish()
        }

        fn run_plan(plan: FaultPlan, strategy: RecoveryStrategy) -> (FaultLog, LoadReport) {
            capture(plan, strategy, || {
                let mut c = Cluster::new(2);
                one_round(&mut c);
                c.report()
            })
        }

        #[test]
        fn inboxes_are_the_post_recovery_view() {
            let plan = FaultPlan::new()
                .with_fault(0, 0, FaultKind::Drop { msgs: 9 })
                .with_fault(0, 1, FaultKind::Duplicate { msgs: 1 });
            let (log, (clean, faulty)) = capture(plan, RecoveryStrategy::default(), || {
                let mut c = Cluster::new(2);
                let faulty = one_round(&mut c);
                let mut c2 = Cluster::new(2);
                let _guard_free = (); // second run is past the plan's round 0
                let clean = one_round(&mut c2);
                (clean, faulty)
            });
            assert_eq!(clean, faulty, "faults must never alter delivered data");
            assert_eq!(log.fired(), 2);
        }

        #[test]
        fn duplicate_charges_same_round() {
            let plan = FaultPlan::new().with_fault(0, 0, FaultKind::Duplicate { msgs: 1 });
            let (log, report) = run_plan(plan, RecoveryStrategy::default());
            // s0's first message [1,2] (2 tuples? no: 1 msg, 2 words) re-delivered.
            assert_eq!(report.num_rounds(), 1);
            assert_eq!(report.rounds[0].tuples, vec![2, 1]);
            assert_eq!(report.rounds[0].words, vec![4, 1]);
            assert_eq!(log.recovery_rounds, 0);
            assert_eq!(log.recovery_tuples, 1);
            assert_eq!(log.recovery_words, 2);
        }

        #[test]
        fn duplicate_batch_caps_at_inbox() {
            let plan = FaultPlan::new().with_fault(0, 1, FaultKind::Duplicate { msgs: 50 });
            let (log, report) = run_plan(plan, RecoveryStrategy::default());
            assert_eq!(report.rounds[0].tuples, vec![1, 2]);
            assert_eq!(log.recovery_tuples, 1);
        }

        #[test]
        fn drop_appends_retransmission_round() {
            let plan = FaultPlan::new().with_fault(0, 0, FaultKind::Drop { msgs: 1 });
            let (log, report) = run_plan(plan, RecoveryStrategy::default());
            assert_eq!(report.num_rounds(), 2);
            // Faulty round is charged as sent…
            assert_eq!(report.rounds[0].tuples, vec![1, 1]);
            // …and the lost tail ([1,2], the last message to s0) again.
            assert_eq!(report.rounds[1].tuples, vec![1, 0]);
            assert_eq!(report.rounds[1].words, vec![2, 0]);
            assert_eq!(log.recovery_rounds, 1);
            assert_eq!((log.recovery_tuples, log.recovery_words), (1, 2));
        }

        #[test]
        fn straggler_gets_speculative_backup() {
            let plan = FaultPlan::new().with_fault(0, 0, FaultKind::Straggle);
            let (log, report) = run_plan(plan, RecoveryStrategy::default());
            assert_eq!(report.num_rounds(), 1);
            // Backup (s0+1)%2 = s1 re-receives s0's inbound in-round.
            assert_eq!(report.rounds[0].tuples, vec![1, 2]);
            assert_eq!(report.rounds[0].words, vec![2, 3]);
            assert_eq!(log.recovery_rounds, 0);
            assert_eq!((log.recovery_tuples, log.recovery_words), (1, 2));
        }

        #[test]
        fn crash_checkpoint_replays_since_last_checkpoint() {
            // 3 algorithm rounds, crash at round 2, checkpoints every 2:
            // replay rounds 2..=2 (1 round).
            let plan = FaultPlan::new().with_fault(2, 0, FaultKind::Crash);
            let (log, report) = capture(plan, RecoveryStrategy::Checkpoint { every: 2 }, || {
                let mut c = Cluster::new(2);
                for _ in 0..3 {
                    one_round(&mut c);
                }
                c.report()
            });
            assert_eq!(report.num_rounds(), 4);
            assert_eq!(report.rounds[3].tuples, report.rounds[2].tuples);
            assert_eq!(log.recovery_rounds, 1);
            assert_eq!(log.recovery_tuples, report.rounds[2].total_tuples());
            assert_eq!(log.injected.len(), 1);
            assert_eq!(log.injected[0].kind, "crash");
            assert_eq!(log.injected[0].round, 2);
        }

        #[test]
        fn crash_checkpoint_replays_full_interval() {
            // Crash at round 3 with every=4: replay rounds 0..=3.
            let plan = FaultPlan::new().with_fault(3, 1, FaultKind::Crash);
            let (log, report) = capture(plan, RecoveryStrategy::Checkpoint { every: 4 }, || {
                let mut c = Cluster::new(2);
                for _ in 0..4 {
                    one_round(&mut c);
                }
                c.report()
            });
            assert_eq!(report.num_rounds(), 8);
            assert_eq!(log.recovery_rounds, 4);
            assert_eq!(log.recovery_tuples, 4 * 2);
        }

        #[test]
        fn crash_replication_costs_one_redistribution_round() {
            let plan = FaultPlan::new().with_fault(1, 0, FaultKind::Crash);
            let (log, report) =
                capture(plan, RecoveryStrategy::Replication { replicas: 2 }, || {
                    let mut c = Cluster::new(2);
                    one_round(&mut c);
                    one_round(&mut c);
                    c.report()
                });
            assert_eq!(report.num_rounds(), 3);
            // Replica group of s0 on p=2, r=2 is {s0, s1}: the
            // replacement re-fetches both cumulative partitions
            // (2 rounds × 2 tuples).
            assert_eq!(report.rounds[2].tuples, vec![4, 0]);
            assert_eq!(log.recovery_rounds, 1);
            assert_eq!(log.recovery_tuples, 4);
        }

        #[test]
        fn analytic_rounds_fault_with_proportional_words() {
            let plan = FaultPlan::new().with_fault(0, 0, FaultKind::Drop { msgs: 2 });
            let (log, report) = capture(plan, RecoveryStrategy::default(), || {
                let mut c = Cluster::new(2);
                c.record_round(vec![4, 1], vec![8, 3]);
                c.report()
            });
            assert_eq!(report.num_rounds(), 2);
            // 2 of s0's 4 tuples retransmitted at 8 × 2/4 = 4 words.
            assert_eq!(report.rounds[1].tuples, vec![2, 0]);
            assert_eq!(report.rounds[1].words, vec![4, 0]);
            assert_eq!(log.recovery_rounds, 1);
        }

        #[test]
        fn fault_clock_ignores_untracked_and_recovery_rounds() {
            // A drop at logical round 1 must fire on the *second
            // recorded* round even though an untracked exchange and a
            // recovery round (from the round-0 drop) sit in between.
            let plan = FaultPlan::new()
                .with_fault(0, 0, FaultKind::Drop { msgs: 1 })
                .with_fault(1, 1, FaultKind::Drop { msgs: 1 });
            let (log, _) = capture(plan, RecoveryStrategy::default(), || {
                let mut c = Cluster::new(2);
                one_round(&mut c); // logical round 0: drop fires, +1 recovery round
                let mut ex = c.exchange::<u64>();
                ex.send(0, 7);
                ex.finish_untracked(); // no tick
                one_round(&mut c); // logical round 1: second drop fires
                c.report()
            });
            let kinds: Vec<_> = log.injected.iter().map(|f| (f.round, f.server)).collect();
            assert_eq!(
                kinds,
                vec![(0, 0), (2, 1)],
                "ledger rounds shift, logical rounds don't"
            );
        }

        #[test]
        fn reset_rewinds_fault_clock_for_recovery_replays() {
            // Regression (satellite): a replay after Cluster::reset must
            // see the schedule from round 0 again on a clean ledger.
            let plan = FaultPlan::new().with_fault(0, 0, FaultKind::Duplicate { msgs: 1 });
            let (log, (first, second)) = capture(plan, RecoveryStrategy::default(), || {
                let mut c = Cluster::new(2);
                one_round(&mut c);
                let first = c.report();
                c.reset();
                one_round(&mut c);
                (first, c.report())
            });
            assert_eq!(first, second, "replay must see identical faults");
            assert_eq!(log.fired(), 2, "the fault fired in both runs");
            assert_eq!(second.num_rounds(), 1, "reset cleared the ledger");
        }

        #[test]
        fn faulted_trace_totals_match_report() {
            use parqp_trace::Recorder;
            let plan = FaultPlan::new()
                .with_fault(0, 0, FaultKind::Duplicate { msgs: 1 })
                .with_fault(1, 1, FaultKind::Drop { msgs: 1 })
                .with_fault(2, 0, FaultKind::Crash)
                .with_fault(3, 1, FaultKind::Straggle);
            let (_, (rec, report)) =
                capture(plan, RecoveryStrategy::Checkpoint { every: 2 }, || {
                    Recorder::capture(|| {
                        let mut c = Cluster::new(2);
                        for _ in 0..4 {
                            one_round(&mut c);
                        }
                        c.report()
                    })
                });
            let totals = parqp_trace::analyze::totals(&rec);
            assert_eq!(totals.rounds, report.num_rounds());
            assert_eq!(totals.tuples, report.total_tuples());
            assert_eq!(totals.words, report.total_words());
            assert!(rec
                .events()
                .any(|e| matches!(e, TraceEvent::FaultInjected { kind: "crash", .. })));
            // Every RecoveryBegin has a matching RecoveryEnd.
            let begins = rec
                .events()
                .filter(|e| matches!(e, TraceEvent::RecoveryBegin { .. }))
                .count();
            let ends = rec
                .events()
                .filter(|e| matches!(e, TraceEvent::RecoveryEnd { .. }))
                .count();
            assert_eq!(begins, 4);
            assert_eq!(begins, ends);
        }

        #[test]
        fn fault_free_plan_is_invisible() {
            let clean = {
                let mut c = Cluster::new(2);
                one_round(&mut c);
                c.report()
            };
            let (log, faulted) = run_plan(FaultPlan::new(), RecoveryStrategy::default());
            assert_eq!(clean, faulted);
            assert_eq!(log, FaultLog::default());
        }
    }

    #[test]
    fn try_variants_return_typed_errors() {
        assert!(Cluster::try_new(0).is_err());
        assert_eq!(Cluster::try_new(3).map(|c| c.p()), Ok(3));

        let mut c = Cluster::new(2);
        let mut ex = c.exchange::<u64>();
        assert_eq!(
            ex.try_send(5, 1),
            Err(crate::error::MpcError::BadServer { dest: 5, p: 2 })
        );
        assert_eq!(ex.try_send(1, 7), Ok(()));
        let inboxes = ex.finish();
        assert_eq!(inboxes[1], vec![7]);
        // The failed send must not have been charged to the ledger.
        assert_eq!(c.report().total_tuples(), 1);

        assert!(c.try_record_round(vec![1], vec![1, 2]).is_err());
        assert_eq!(c.report().num_rounds(), 1);
    }
}
