//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p parqp-bench --bin tables             # all experiments
//! cargo run --release -p parqp-bench --bin tables -- e05 e08  # a subset
//! cargo run --release -p parqp-bench --bin tables -- --csv results/
//! ```
//!
//! With `--csv <dir>` each table is also written as a CSV file named
//! `<experiment>_<index>.csv` under the directory. With `--trace <dir>`
//! each experiment additionally runs under a trace recorder and its
//! round-level event stream is written as `<experiment>.trace.jsonl`.
//! With `--faults <seed>` each experiment runs under a seeded fault
//! plan (see `parqp-faults`): recovery overhead is charged to every
//! reported load, a `# faults:` summary line precedes each experiment,
//! and with `--trace <dir>` the fault-annotated stream is written as
//! `<experiment>.faults.trace.jsonl` instead.
//!
//! With `--metrics <path>` the bound-adherence metrics of every observe
//! experiment (wall-clock included — this binary owns the workspace's
//! sanctioned timer) are written as a `parqp-bench-metrics/v1` JSON
//! document, e.g. `BENCH_parqp.json`. Every point is run twice — once
//! serial, once under the parallel execution backend with all cores —
//! so the document carries `wall_ns` and `wall_par_ns` side by side
//! (the parallel pass must reproduce `L`/`rounds`/`bound_ratio`
//! exactly or collection aborts). Alone, `--metrics` skips the tables;
//! combine it with experiment ids to get both.

use parqp_bench::experiments;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv_dir: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut fault_seed: Option<u64> = None;
    let mut metrics_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--csv" {
            csv_dir = Some(it.next().unwrap_or_else(|| {
                eprintln!("--csv requires a directory argument");
                std::process::exit(2);
            }));
        } else if a == "--trace" {
            trace_dir = Some(it.next().unwrap_or_else(|| {
                eprintln!("--trace requires a directory argument");
                std::process::exit(2);
            }));
        } else if a == "--faults" {
            let seed = it.next().unwrap_or_else(|| {
                eprintln!("--faults requires a seed argument");
                std::process::exit(2);
            });
            fault_seed = Some(seed.parse().unwrap_or_else(|e| {
                eprintln!("--faults: {e}");
                std::process::exit(2);
            }));
        } else if a == "--metrics" {
            metrics_path = Some(it.next().unwrap_or_else(|| {
                eprintln!("--metrics requires a path argument");
                std::process::exit(2);
            }));
        } else {
            ids.push(a);
        }
    }
    if let Some(path) = &metrics_path {
        let report = parqp::metrics::collect_dual(42, &parqp_testkit::bench::time_ns, 0)
            .unwrap_or_else(|e| {
                eprintln!("metrics: {e}");
                std::process::exit(2);
            });
        std::fs::write(path, parqp::metrics::to_json(&report)).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        });
        println!(
            "# metrics: wrote {} points (seed {}) to {path}",
            report.experiments.len(),
            report.seed
        );
        if ids.is_empty() {
            return;
        }
    }
    if ids.is_empty() {
        ids = experiments::ALL.iter().map(ToString::to_string).collect();
    }
    for id in &ids {
        if !experiments::ALL.contains(&id.as_str()) {
            eprintln!(
                "unknown experiment id {id:?}; expected one of: {}",
                experiments::ALL.join(", ")
            );
            std::process::exit(2);
        }
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for id in &ids {
        let tables = if let Some(seed) = fault_seed {
            let (tables, log, recorder) = parqp_bench::run_with_faults(id, seed);
            writeln!(
                out,
                "# faults: {id} seed={seed} fired={} recovery: +{} round(s), +{} tuples, +{} words",
                log.injected.len(),
                log.recovery_rounds,
                log.recovery_tuples,
                log.recovery_words,
            )
            .expect("stdout");
            if let Some(dir) = &trace_dir {
                std::fs::create_dir_all(dir).expect("create trace dir");
                let path = format!("{dir}/{id}.faults.trace.jsonl");
                std::fs::write(&path, parqp_trace::export::jsonl(&recorder)).expect("write trace");
            }
            tables
        } else if let Some(dir) = &trace_dir {
            let (tables, recorder) = parqp_bench::run_traced(id);
            std::fs::create_dir_all(dir).expect("create trace dir");
            let path = format!("{dir}/{id}.trace.jsonl");
            std::fs::write(&path, parqp_trace::export::jsonl(&recorder)).expect("write trace");
            tables
        } else {
            experiments::run(id)
        };
        for (i, t) in tables.iter().enumerate() {
            writeln!(out, "{}", t.render()).expect("stdout");
            if let Some(dir) = &csv_dir {
                std::fs::create_dir_all(dir).expect("create csv dir");
                let path = format!("{dir}/{id}_{i}.csv");
                std::fs::write(&path, t.to_csv()).expect("write csv");
            }
        }
    }
}
