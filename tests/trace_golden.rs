//! Golden-file test for the Chrome `trace_event` exporter.
//!
//! A fixed-seed 2-round run (a 3-atom chain query through the binary
//! join plan — two hash-join rounds) must export byte-for-byte the JSON
//! committed under `tests/golden/`. This pins the exporter's format:
//! Perfetto/`chrome://tracing` load these files, so silent format drift
//! is a regression even when every unit test passes.
//!
//! Regenerate after an *intentional* format change with:
//!
//! ```text
//! PARQP_UPDATE_GOLDEN=1 cargo test --test trace_golden
//! ```

use parqp::data::generate;
use parqp::join::plans;
use parqp::query::Query;
use parqp::trace::{export, Recorder};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/chain_binary.chrome.json")
}

#[test]
fn chrome_export_matches_golden_file() {
    let q = Query::chain(3);
    let rels: Vec<_> = (0..3)
        .map(|i| generate::uniform(2, 40, 12, 100 + i))
        .collect();
    let (rec, run) = Recorder::capture(|| plans::binary_join_plan(&q, &rels, 4, 9, None));
    assert_eq!(
        run.report.num_rounds(),
        2,
        "plan shape changed: not 2 rounds"
    );
    let chrome = export::chrome_trace(&rec);

    let path = golden_path();
    if std::env::var_os("PARQP_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &chrome).expect("write golden file");
        return;
    }
    let expect = std::fs::read_to_string(&path).expect(
        "golden file missing; regenerate with PARQP_UPDATE_GOLDEN=1 cargo test --test trace_golden",
    );
    assert_eq!(
        chrome, expect,
        "Chrome trace drifted from tests/golden/chain_binary.chrome.json; \
         if intentional, regenerate with PARQP_UPDATE_GOLDEN=1"
    );
}
