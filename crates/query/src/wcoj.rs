//! A worst-case-optimal serial join (Generic Join).
//!
//! The binding-table oracle of [`crate::oracle`] joins atom by atom and
//! can materialize intermediates far larger than the output (slide 63's
//! blow-up). Generic Join instead binds one *variable* at a time: the
//! candidates for the next variable are the intersection of what every
//! atom containing it allows, with the smallest candidate set driving
//! the intersection. Its running time is `O(AGM(Q))` — the
//! worst-case-optimal guarantee behind the AGM bound of slide 55, and
//! the serial engine underlying the BiGJoin family of slide 97.
//!
//! Inputs are treated as **sets** (duplicates are eliminated while
//! indexing); the output is duplicate-free.

use crate::query::{Query, Var};
use parqp_data::{FastMap, FastSet, Relation, Value};

/// Per-atom prefix index: after sorting the atom's variables by the
/// global elimination order, `levels[k]` maps each distinct prefix of
/// the first `k` variable values to the distinct values of variable
/// `k+1`.
struct AtomIndex {
    /// The atom's variables in elimination order.
    ordered_vars: Vec<Var>,
    /// `levels[k]`: prefix of length `k` → distinct next values.
    levels: Vec<FastMap<Vec<Value>, FastSet<Value>>>,
    /// Returned for prefixes with no extensions.
    empty: FastSet<Value>,
}

impl AtomIndex {
    fn build(vars: &[Var], rel: &Relation, order_pos: &[usize]) -> Self {
        let mut ordered: Vec<(usize, Var)> = vars.iter().map(|&v| (order_pos[v], v)).collect();
        ordered.sort_unstable();
        let ordered_vars: Vec<Var> = ordered.iter().map(|&(_, v)| v).collect();
        let col_of: Vec<usize> = ordered_vars
            .iter()
            .map(|ov| vars.iter().position(|v| v == ov).expect("own var"))
            .collect();
        let mut levels: Vec<FastMap<Vec<Value>, FastSet<Value>>> =
            vec![FastMap::default(); vars.len()];
        for row in rel.iter() {
            let mut prefix = Vec::with_capacity(vars.len());
            for (k, &c) in col_of.iter().enumerate() {
                levels[k].entry(prefix.clone()).or_default().insert(row[c]);
                prefix.push(row[c]);
            }
        }
        Self {
            ordered_vars,
            levels,
            empty: FastSet::default(),
        }
    }

    /// Candidate values of `var` under the current binding, or `None` if
    /// `var` is not this atom's next unbound variable.
    fn candidates(&self, var: Var, binding: &[Option<Value>]) -> Option<&FastSet<Value>> {
        let k = self.ordered_vars.iter().position(|&v| v == var)?;
        // All earlier variables of this atom must already be bound (they
        // precede `var` in the elimination order, so they are).
        let prefix: Vec<Value> = self.ordered_vars[..k]
            .iter()
            .map(|&v| binding[v].expect("elimination order binds prefixes first"))
            .collect();
        Some(self.levels[k].get(&prefix).unwrap_or(&self.empty))
    }
}

/// Evaluate `q` with Generic Join in the variable order `x₀ … x_{k−1}`.
/// Set semantics: the result is duplicate-free.
///
/// ```
/// use parqp_query::{generic_join, Query};
/// use parqp_data::Relation;
///
/// let g = Relation::from_rows(2, [[1, 2], [2, 3], [3, 1]]);
/// let out = generic_join(&Query::triangle(), &[g.clone(), g.clone(), g]);
/// assert_eq!(out.len(), 3); // one triangle per rotation
/// ```
///
/// # Panics
/// Panics on input shape mismatches.
pub fn generic_join(q: &Query, rels: &[Relation]) -> Relation {
    generic_join_with_order(q, rels, &(0..q.num_vars()).collect::<Vec<_>>())
}

/// Generic Join with an explicit variable elimination order.
///
/// # Panics
/// Panics if `order` is not a permutation of the variables.
pub fn generic_join_with_order(q: &Query, rels: &[Relation], order: &[Var]) -> Relation {
    assert_eq!(rels.len(), q.num_atoms(), "one relation per atom");
    for (a, r) in q.atoms().iter().zip(rels) {
        assert_eq!(a.arity(), r.arity(), "arity mismatch for atom {}", a.name);
    }
    {
        let mut sorted = order.to_vec();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..q.num_vars()).collect::<Vec<_>>(),
            "order must permute vars"
        );
    }
    let mut order_pos = vec![0usize; q.num_vars()];
    for (i, &v) in order.iter().enumerate() {
        order_pos[v] = i;
    }
    let indexes: Vec<AtomIndex> = q
        .atoms()
        .iter()
        .zip(rels)
        .map(|(a, r)| AtomIndex::build(&a.vars, r, &order_pos))
        .collect();

    let mut out = Relation::new(q.num_vars());
    let mut binding: Vec<Option<Value>> = vec![None; q.num_vars()];
    extend(q, &indexes, order, 0, &mut binding, &mut out);
    out
}

fn extend(
    q: &Query,
    indexes: &[AtomIndex],
    order: &[Var],
    depth: usize,
    binding: &mut Vec<Option<Value>>,
    out: &mut Relation,
) {
    if depth == order.len() {
        let row: Vec<Value> = (0..q.num_vars())
            .map(|v| binding[v].expect("all bound"))
            .collect();
        out.push(&row);
        return;
    }
    let v = order[depth];
    // Candidate sets from every atom containing v.
    let mut sets: Vec<&FastSet<Value>> = Vec::new();
    for idx in indexes {
        if let Some(s) = idx.candidates(v, binding) {
            sets.push(s);
        }
    }
    debug_assert!(!sets.is_empty(), "every variable appears in some atom");
    // Drive the intersection by the smallest set (the WCO trick).
    sets.sort_by_key(|s| s.len());
    let (driver, rest) = sets.split_first().expect("non-empty");
    for &val in driver.iter() {
        if rest.iter().all(|s| s.contains(&val)) {
            binding[v] = Some(val);
            extend(q, indexes, order, depth + 1, binding, out);
            binding[v] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::evaluate;
    use parqp_data::generate;

    fn check(q: &Query, rels: &[Relation]) {
        let wco = generic_join(q, rels);
        let oracle = evaluate(q, rels).canonical();
        let mut wco_sorted = wco.clone();
        wco_sorted.sort();
        assert_eq!(wco_sorted, oracle, "{q}");
        // Duplicate-free by construction.
        assert_eq!(wco.canonical().len(), wco.len());
    }

    #[test]
    fn triangle_matches_oracle() {
        let g = generate::random_symmetric_graph(50, 400, 3);
        check(&Query::triangle(), &[g.clone(), g.clone(), g]);
    }

    #[test]
    fn cycles_and_chains() {
        let g = generate::random_symmetric_graph(30, 250, 5);
        check(
            &Query::cycle(4),
            &[g.clone(), g.clone(), g.clone(), g.clone()],
        );
        let rels: Vec<Relation> = (0..4)
            .map(|i| generate::uniform(2, 150, 30, 10 + i as u64))
            .collect();
        check(&Query::chain(4), &rels);
    }

    #[test]
    fn unary_atoms() {
        let r = generate::unary_range(30);
        let s = generate::uniform(2, 200, 50, 7);
        let t = generate::unary_range(40);
        check(&Query::semijoin_pair(), &[r, s, t]);
    }

    #[test]
    fn custom_order_same_result() {
        let g = generate::random_symmetric_graph(40, 300, 9);
        let q = Query::triangle();
        let rels = vec![g.clone(), g.clone(), g];
        let a = generic_join(&q, &rels).canonical();
        let b = generic_join_with_order(&q, &rels, &[2, 0, 1]).canonical();
        let c = generic_join_with_order(&q, &rels, &[1, 2, 0]).canonical();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn no_intermediate_blowup_on_selective_cycle() {
        // A 4-cycle whose binary plan materializes Θ(m²) intermediate
        // rows (R1 ⋈ R2 pairs every x2 with itself... every (x2, x3=1))
        // while the output has only m tuples; Generic Join's work stays
        // near the output size. We assert correctness here and rely on
        // the structure for the performance claim.
        let m = 200u64;
        let r1 = Relation::from_rows(2, (0..m).map(|i| [0, i]).collect::<Vec<_>>());
        let r2 = Relation::from_rows(2, (0..m).map(|i| [i, 1]).collect::<Vec<_>>());
        let r3 = Relation::from_rows(2, (0..m).map(|i| [1, i]).collect::<Vec<_>>());
        let r4 = Relation::from_rows(2, [[5, 0]]);
        let q = Query::cycle(4);
        let out = generic_join(&q, &[r1, r2, r3, r4]);
        // Output: x1 = 0, x2 free (m choices), x3 = 1, x4 = 5.
        assert_eq!(out.len(), m as usize);
        assert!(out
            .iter()
            .all(|row| row[0] == 0 && row[2] == 1 && row[3] == 5));
    }

    #[test]
    fn duplicates_in_input_do_not_multiply() {
        let mut g = Relation::from_rows(2, [[1, 2], [2, 3], [3, 1]]);
        g.push(&[1, 2]);
        g.push(&[1, 2]);
        let q = Query::triangle();
        let out = generic_join(&q, &[g.clone(), g.clone(), g]);
        assert_eq!(out.len(), 3, "one per rotation");
    }

    #[test]
    fn empty_relation_empty_output() {
        let q = Query::two_way();
        let out = generic_join(&q, &[Relation::new(2), generate::uniform(2, 10, 5, 1)]);
        assert!(out.is_empty());
    }
}
