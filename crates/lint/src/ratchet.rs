//! PQ201 — the panic-surface ratchet.
//!
//! A panic inside an algorithm aborts the whole simulated cluster, so
//! panics are reserved for *documented invariant violations* (the typed
//! `MpcError` paths in `parqp-mpc`, `assert!`s with messages). This
//! module counts the implicit panic surface of each crate's non-test
//! `src/` code — `.unwrap()`, `.expect(`, `panic!`, and slice-index
//! expressions — and compares it against the committed
//! `lint/baseline.toml`. A crate whose count *grows* fails the lint; a
//! crate whose count shrinks prints a reminder to re-run
//! `cargo run -p parqp-lint -- --fix-baseline` so the ratchet tightens.
//!
//! The index-site counter is a lexical heuristic: a `[` immediately
//! preceded by an identifier character, `)` or `]` is an index (or
//! range-index) expression, which can panic on out-of-bounds; `vec![`,
//! attribute `#[`, array types `[u64; 2]` and slice patterns are not
//! counted. It over- and under-counts in exotic macro positions, but it
//! is deterministic, which is all a ratchet needs.

use std::collections::BTreeMap;

use crate::tokenize::SourceFile;
use crate::Diagnostic;

/// Panic-surface counters for one crate's non-test `src/` code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PanicCounts {
    pub unwrap: usize,
    pub expect: usize,
    pub panic: usize,
    pub index: usize,
}

impl PanicCounts {
    pub fn total(&self) -> usize {
        self.unwrap + self.expect + self.panic + self.index
    }

    pub fn add(&mut self, other: PanicCounts) {
        self.unwrap += other.unwrap;
        self.expect += other.expect;
        self.panic += other.panic;
        self.index += other.index;
    }
}

/// Count panic sites in one sanitized file, skipping test modules and
/// lines that allow `PQ201`.
pub fn count_file(file: &SourceFile) -> PanicCounts {
    count_file_tracked(file).0
}

/// [`count_file`], additionally reporting the lines whose
/// `allow(PQ201)` annotation actually excluded panic sites from the
/// count (fed to the PQ408 dead-suppression pass — an `allow(PQ201)`
/// on a panic-free line suppresses nothing).
pub fn count_file_tracked(file: &SourceFile) -> (PanicCounts, Vec<usize>) {
    let mut c = PanicCounts::default();
    let mut used_allows = Vec::new();
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        let here = PanicCounts {
            unwrap: occurrences(&line.code, ".unwrap()"),
            expect: occurrences(&line.code, ".expect("),
            panic: occurrences(&line.code, "panic!"),
            index: index_sites(&line.code),
        };
        if line.allows("PQ201") {
            if here.total() > 0 {
                used_allows.push(line.number);
            }
            continue;
        }
        c.add(here);
    }
    (c, used_allows)
}

fn occurrences(code: &str, needle: &str) -> usize {
    let mut n = 0;
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        n += 1;
        start += pos + needle.len();
    }
    n
}

/// Count `[` tokens that open an index (or range-index) expression.
fn index_sites(code: &str) -> usize {
    let bytes = code.as_bytes();
    let mut n = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']' {
            n += 1;
        }
    }
    n
}

/// Per-crate baseline counts, keyed by crate directory name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub crates: BTreeMap<String, PanicCounts>,
}

impl Baseline {
    /// Parse the `lint/baseline.toml` format: one `[crate]` table per
    /// crate with integer `unwrap`/`expect`/`panic`/`index` keys.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut crates: BTreeMap<String, PanicCounts> = BTreeMap::new();
        let mut current: Option<String> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim().to_string();
                crates.entry(name.clone()).or_default();
                current = Some(name);
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("baseline line {}: expected `key = n`", idx + 1));
            };
            let Some(name) = &current else {
                return Err(format!(
                    "baseline line {}: entry outside a [crate] table",
                    idx + 1
                ));
            };
            let n: usize = value.trim().parse().map_err(|_| {
                format!(
                    "baseline line {}: `{}` is not a count",
                    idx + 1,
                    value.trim()
                )
            })?;
            let c = crates.get_mut(name).expect("table inserted above");
            match key.trim() {
                "unwrap" => c.unwrap = n,
                "expect" => c.expect = n,
                "panic" => c.panic = n,
                "index" => c.index = n,
                other => {
                    return Err(format!(
                        "baseline line {}: unknown counter `{other}`",
                        idx + 1
                    ));
                }
            }
        }
        Ok(Baseline { crates })
    }

    /// Serialize in the format `parse` reads, with a regeneration hint.
    pub fn serialize(&self) -> String {
        let mut out = String::from(
            "# Panic-surface ratchet baseline (rule PQ201).\n\
             # Counts of .unwrap() / .expect( / panic! / slice-index sites in each\n\
             # crate's non-test src/ code. The lint fails if any crate's counters\n\
             # grow. After genuinely reducing the panic surface, regenerate with:\n\
             #\n\
             #   cargo run -p parqp-lint -- --fix-baseline\n",
        );
        for (name, c) in &self.crates {
            out.push_str(&format!(
                "\n[{name}]\nunwrap = {}\nexpect = {}\npanic = {}\nindex = {}\n",
                c.unwrap, c.expect, c.panic, c.index
            ));
        }
        out
    }

    /// Compare actual counts against this baseline. Growth in any
    /// counter of any crate is a PQ201 diagnostic; so is a crate missing
    /// from the baseline. Shrinkage is reported via `stale` so the
    /// caller can nudge (but not fail).
    pub fn compare(&self, actual: &BTreeMap<String, PanicCounts>) -> RatchetOutcome {
        let mut diagnostics = Vec::new();
        let mut stale = Vec::new();
        for (name, act) in actual {
            let Some(base) = self.crates.get(name) else {
                diagnostics.push(Diagnostic {
                    rule: "PQ201",
                    path: format!("crates/{name}"),
                    line: 0,
                    message: format!(
                        "crate `{name}` has no baseline entry ({} panic sites); \
                         run --fix-baseline to record it",
                        act.total()
                    ),
                });
                continue;
            };
            for (counter, a, b) in [
                ("unwrap", act.unwrap, base.unwrap),
                ("expect", act.expect, base.expect),
                ("panic", act.panic, base.panic),
                ("index", act.index, base.index),
            ] {
                if a > b {
                    diagnostics.push(Diagnostic {
                        rule: "PQ201",
                        path: format!("crates/{name}"),
                        line: 0,
                        message: format!(
                            "panic surface grew: {counter} sites {b} → {a}; convert to typed \
                             errors or invariant-documenting asserts, or annotate with \
                             `// parqp-lint: allow(PQ201)` and justify"
                        ),
                    });
                } else if a < b {
                    stale.push(format!("{name}.{counter} {b} → {a}"));
                }
            }
        }
        RatchetOutcome { diagnostics, stale }
    }
}

/// Result of a ratchet comparison.
pub struct RatchetOutcome {
    /// Hard failures: counters that grew or missing entries.
    pub diagnostics: Vec<Diagnostic>,
    /// Counters that shrank: the baseline should be regenerated.
    pub stale: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::sanitize;

    fn counts(src: &str) -> PanicCounts {
        count_file(&sanitize(src))
    }

    #[test]
    fn counts_unwrap_expect_panic() {
        let c = counts("let a = x.unwrap();\nlet b = y.expect(\"msg\");\npanic!(\"boom\");\n");
        assert_eq!((c.unwrap, c.expect, c.panic), (1, 1, 1));
    }

    #[test]
    fn unwrap_or_variants_not_counted() {
        let c = counts("let a = x.unwrap_or(0).unwrap_or_else(f).unwrap_or_default();\n");
        assert_eq!(c.unwrap, 0);
    }

    #[test]
    fn index_heuristic() {
        // Counted: indexing and range-indexing.
        assert_eq!(counts("let a = v[0] + m[i][j];\n").index, 3);
        assert_eq!(counts("let s = &buf[..n];\n").index, 1);
        // Not counted: attributes, macros, array types/literals, slices.
        assert_eq!(counts("#[derive(Debug)]\n").index, 0);
        assert_eq!(counts("let v = vec![0; 8];\n").index, 0);
        assert_eq!(counts("fn f(x: &[u64], y: [u8; 4]) {}\n").index, 0);
    }

    #[test]
    fn test_modules_and_allows_skipped() {
        let src = "fn prod() { x.unwrap(); }\n\
                   let y = z.unwrap(); // parqp-lint: allow(PQ201)\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { a.unwrap(); }\n}\n";
        assert_eq!(counts(src).unwrap, 1);
    }

    #[test]
    fn strings_not_counted() {
        assert_eq!(counts("let s = \"please don't panic!()\";\n").panic, 0);
    }

    #[test]
    fn baseline_roundtrip() {
        let mut b = Baseline::default();
        b.crates.insert(
            "mpc".to_string(),
            PanicCounts {
                unwrap: 1,
                expect: 2,
                panic: 3,
                index: 4,
            },
        );
        b.crates.insert("sort".to_string(), PanicCounts::default());
        let parsed = Baseline::parse(&b.serialize()).expect("roundtrip");
        assert_eq!(parsed, b);
    }

    #[test]
    fn baseline_rejects_garbage() {
        assert!(Baseline::parse("unwrap = 3\n").is_err()); // outside a table
        assert!(Baseline::parse("[mpc]\nunwrap = many\n").is_err());
        assert!(Baseline::parse("[mpc]\nfoo = 3\n").is_err());
    }

    #[test]
    fn growth_fails_shrinkage_nudges() {
        let base = Baseline::parse("[mpc]\nunwrap = 2\nexpect = 5\n").expect("baseline");
        let mut actual = BTreeMap::new();
        actual.insert(
            "mpc".to_string(),
            PanicCounts {
                unwrap: 3,
                expect: 1,
                panic: 0,
                index: 0,
            },
        );
        let out = base.compare(&actual);
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].rule, "PQ201");
        assert!(out.diagnostics[0].message.contains("2 → 3"));
        assert_eq!(out.stale, vec!["mpc.expect 5 → 1"]);
    }

    #[test]
    fn missing_crate_fails() {
        let base = Baseline::default();
        let mut actual = BTreeMap::new();
        actual.insert("newbie".to_string(), PanicCounts::default());
        let out = base.compare(&actual);
        assert_eq!(out.diagnostics.len(), 1);
    }

    #[test]
    fn accumulate() {
        let mut a = PanicCounts {
            unwrap: 1,
            expect: 0,
            panic: 0,
            index: 2,
        };
        a.add(PanicCounts {
            unwrap: 1,
            expect: 1,
            panic: 1,
            index: 1,
        });
        assert_eq!(a.total(), 7);
    }
}
