//! Property tests: every distributed join equals the serial oracle on
//! random inputs, across random cluster sizes and seeds.

use parqp_data::Relation;
use parqp_join::{gym, multiway, plans, skewhc, twoway};
use parqp_query::{evaluate, Ghd, Query};
use parqp_testkit::prelude::*;

/// A random binary relation with a controllable duplicate rate: small
/// domains produce heavy values, exercising the skew paths.
fn arb_pairs(max_rows: usize) -> impl Strategy<Value = Relation> {
    (1usize..=max_rows, 1u64..40).prop_flat_map(|(rows, domain)| {
        collection::vec((0..domain, 0..domain), rows)
            .prop_map(|pairs| Relation::from_rows(2, pairs.iter().map(|&(a, b)| [a, b])))
    })
}

fn arb_p() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2), Just(3), Just(5), Just(8), Just(16)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn twoway_algorithms_equal_oracle(
        r in arb_pairs(120),
        s in arb_pairs(120),
        p in arb_p(),
        seed in 0u64..1000,
    ) {
        let expect = parqp_join::common::twoway_oracle(&r, 1, &s, 0);
        let canon = expect.canonical();
        let hash = twoway::hash_join(&r, 1, &s, 0, p, seed);
        prop_assert_eq!(hash.gathered().canonical(), canon.clone());
        prop_assert_eq!(hash.output_size(), expect.len(), "bag semantics");
        let skew = twoway::skew_join(&r, 1, &s, 0, p, seed);
        prop_assert_eq!(skew.gathered().canonical(), canon.clone());
        prop_assert_eq!(skew.output_size(), expect.len());
        let sort = twoway::sort_merge_join(&r, 1, &s, 0, p, seed);
        prop_assert_eq!(sort.gathered().canonical(), canon.clone());
        prop_assert_eq!(sort.output_size(), expect.len());
        let bcast = twoway::broadcast_join(&r, 1, &s, 0, p);
        prop_assert_eq!(bcast.gathered().canonical(), canon);
        prop_assert_eq!(bcast.output_size(), expect.len());
    }

    #[test]
    fn triangle_engines_equal_oracle(
        r in arb_pairs(60),
        s in arb_pairs(60),
        t in arb_pairs(60),
        p in arb_p(),
        seed in 0u64..1000,
    ) {
        let q = Query::triangle();
        let rels = vec![r, s, t];
        let expect = evaluate(&q, &rels).canonical();
        if rels.iter().all(|rel| !rel.is_empty()) {
            let hc = multiway::hypercube(&q, &rels, p, seed);
            prop_assert_eq!(hc.gathered().canonical(), expect.clone());
        }
        let sk = skewhc::skewhc(&q, &rels, p, seed);
        prop_assert_eq!(sk.gathered().canonical(), expect.clone());
        let bp = plans::binary_join_plan(&q, &rels, p, seed, None);
        prop_assert_eq!(bp.gathered().canonical(), expect);
    }

    #[test]
    fn gym_equals_oracle_on_random_chains(
        n in 2usize..5,
        p in arb_p(),
        seed in 0u64..1000,
        rows in 5usize..60,
        domain in 1u64..25,
    ) {
        let q = Query::chain(n);
        let rels: Vec<Relation> = (0..n)
            .map(|i| {
                let mut rel = Relation::new(2);
                let h = parqp_mpc::HashFamily::new(seed + i as u64, 2);
                for j in 0..rows {
                    rel.push(&[
                        h.digest(0, j as u64) % domain,
                        h.digest(1, j as u64) % domain,
                    ]);
                }
                rel
            })
            .collect();
        let expect = evaluate(&q, &rels).canonical();
        let tree = Ghd::join_tree(&q).expect("chains are acyclic");
        for optimized in [false, true] {
            let run = gym::gym(&q, &rels, &tree, p, seed, optimized);
            prop_assert_eq!(run.gathered().canonical(), expect.clone(),
                "optimized={}", optimized);
        }
        let ghd = Ghd::chain_balanced(n);
        let run = gym::gym_ghd(&q, &rels, &ghd, p, seed);
        prop_assert_eq!(run.gathered().canonical(), expect);
    }

    #[test]
    fn loads_conserved_and_bounded(
        r in arb_pairs(100),
        s in arb_pairs(100),
        p in arb_p(),
        seed in 0u64..100,
    ) {
        let run = twoway::hash_join(&r, 1, &s, 0, p, seed);
        // Conservation: total received = |R| + |S| (each tuple shipped once).
        prop_assert_eq!(run.report.total_tuples() as usize, r.len() + s.len());
        // Max load can never exceed the total.
        prop_assert!(run.report.max_load_tuples() <= run.report.total_tuples());
    }

    #[test]
    fn aggregation_strategies_agree(
        rel in arb_pairs(200),
        p in arb_p(),
        fanin in 2usize..5,
    ) {
        use parqp_join::aggregate::*;
        let expect = group_sum_oracle(&rel, 0, 1);
        for run in [
            hash_group_sum(&rel, 0, 1, p, 3),
            combiner_group_sum(&rel, 0, 1, p, 3),
            tree_group_sum(&rel, 0, 1, p, fanin),
        ] {
            let mut got = run.gathered();
            got.sort();
            prop_assert_eq!(got, expect.clone());
        }
    }
}
