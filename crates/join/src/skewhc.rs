//! SkewHC: the skew-resilient HyperCube (slides 46–51).
//!
//! Plain HyperCube loads degrade when join values are skewed. SkewHC
//! fixes this by declaring a value of variable `x` **heavy** when it
//! occurs ≥ `|S_j|/p` times in some atom `S_j` containing `x` (slide 47),
//! and running, *in parallel on disjoint server groups*, one residual
//! query per heavy/light combination of the variables:
//!
//! * within combination `c`, every **light** variable keeps a HyperCube
//!   share computed by the LP of the residual query `Q_c` (heavy
//!   variables are removed from the atoms);
//! * every **heavy** variable gets share 1 — its values are constants of
//!   the residual query; parallelism comes from the light dimensions.
//!
//! A tuple of atom `S_j` knows the heavy/light status of its own
//! variables and is sent to every compatible combination (the status of
//! variables outside the atom is free). Each output tuple has a definite
//! status vector, so it is produced in exactly one combination, at
//! exactly one server — no deduplication needed.
//!
//! With equal sizes `N` the load is `O(N/p^{1/ψ*})`, matching the lower
//! bound of slide 47; e.g. `N/p^{1/2}` for the skewed triangle instead of
//! hash-join's `N` (slides 48–51).

use crate::common::{scatter, JoinRun, Tagged};
use parqp_data::paged::RouteScan;
use parqp_data::stats::degree_counts;
use parqp_data::{FastSet, Relation, Value};
use parqp_mpc::{metrics, trace, Cluster, Grid, HashFamily};
use parqp_query::{evaluate, residual, Query};

/// One heavy/light combination's execution plan.
#[derive(Debug, Clone)]
pub struct ComboPlan {
    /// Bitmask over variables: bit `v` set ⇔ `x_v` is heavy.
    pub mask: usize,
    /// Per-variable share (1 for heavy variables).
    pub shares: Vec<usize>,
    /// First server rank of this combination's group.
    pub offset: usize,
}

/// Run SkewHC.
///
/// ```
/// use parqp_join::skewhc::skewhc;
/// use parqp_query::Query;
/// use parqp_data::generate;
///
/// // Extreme skew: every tuple shares one join value. SkewHC's heavy
/// // combination computes the residual Cartesian product on a grid.
/// let r = generate::constant_key_pairs(500, 7, 1);
/// let s = generate::constant_key_pairs(500, 7, 0);
/// let run = skewhc(&Query::two_way(), &[r, s], 64, 42);
/// assert_eq!(run.output_size(), 500 * 500);
/// assert!(run.report.max_load_tuples() < 1000, "far below IN = 1000");
/// ```
///
/// Groups are sized `max(1, p / 2^k)`; the run uses
/// `Σ_c ∏ shares_c ≤ 2^k · max(1, p/2^k)` servers, which is ≤ `p`
/// whenever `p ≥ 2^k` (the regime the analysis assumes; for smaller `p`
/// the groups are still simulated faithfully).
///
/// Inputs are treated as sets (duplicate tuples within an atom are fine
/// but inflate the all-heavy groups beyond the paper's bounds).
pub fn skewhc(query: &Query, rels: &[Relation], p: usize, seed: u64) -> JoinRun {
    let (run, _) = skewhc_with_plans(query, rels, p, seed);
    run
}

/// As [`skewhc`], also returning the per-combination plans (used by the
/// E08 table generator).
pub fn skewhc_with_plans(
    query: &Query,
    rels: &[Relation],
    p: usize,
    seed: u64,
) -> (JoinRun, Vec<ComboPlan>) {
    assert_eq!(rels.len(), query.num_atoms(), "one relation per atom");
    for (a, r) in query.atoms().iter().zip(rels) {
        assert_eq!(a.arity(), r.arity(), "arity mismatch for atom {}", a.name);
    }
    let k = query.num_vars();
    assert!(
        k <= 16,
        "SkewHC combination enumeration limited to 16 variables"
    );

    // Slides 45–50: L = IN/p^{1/ψ*} under arbitrary skew. ψ* is a
    // residual-LP sweep, so only pay for it when a registry is listening.
    if metrics::is_enabled() {
        let input: usize = rels.iter().map(Relation::len).sum();
        let psi = parqp_query::psi_star(query).max(1.0);
        metrics::announce(&metrics::PaperBound::tuples(
            "skewhc",
            input as f64 / (p.max(1) as f64).powf(1.0 / psi),
            1,
        ));
    }

    // Heavy values per variable: degree ≥ |S_j|/p in any atom containing it.
    let heavy: Vec<FastSet<Value>> = heavy_values(query, rels, p);

    // Build one plan per combination.
    let group_budget = (p >> k).max(1);
    let mut plans: Vec<ComboPlan> = Vec::with_capacity(1 << k);
    let mut offset = 0;
    for mask in 0..(1usize << k) {
        let heavy_vars: Vec<usize> = (0..k).filter(|&v| mask & (1 << v) != 0).collect();
        let res = residual(query, &heavy_vars);
        let mut shares = vec![1usize; k];
        if let Some(rq) = &res.query {
            if group_budget >= 2 {
                let sizes: Vec<u64> = rq
                    .atoms()
                    .iter()
                    .enumerate()
                    .map(|(j_new, _)| {
                        // Size of the original atom that produced this
                        // residual atom (full size as the LP's estimate).
                        let j_old = res
                            .atom_map
                            .iter()
                            .position(|m| *m == Some(j_new))
                            .expect("atom map is onto");
                        rels[j_old].len().max(1) as u64
                    })
                    .collect();
                let plan = parqp_lp::plan_shares(&rq.hypergraph(), &sizes, group_budget);
                for (v, share) in shares.iter_mut().enumerate() {
                    if let Some(nv) = res.var_map[v] {
                        *share = plan.shares[nv];
                    }
                }
            }
        }
        let size: usize = shares.iter().product();
        plans.push(ComboPlan {
            mask,
            shares,
            offset,
        });
        offset += size;
    }
    let total_servers = offset;

    let mut cluster = Cluster::new(total_servers);
    let h = HashFamily::new(seed, k);
    let grids: Vec<Grid> = plans.iter().map(|c| Grid::new(c.shares.clone())).collect();

    // One round: every tuple goes to each compatible combination's grid.
    let shuffle = trace::span("skewhc/shuffle");
    let mut ex = cluster.exchange::<Tagged>();
    for (j, rel) in rels.iter().enumerate() {
        let atom = &query.atoms()[j];
        for (sid, part) in scatter(rel, total_servers).into_iter().enumerate() {
            ex.set_sender(sid);
            let scan = RouteScan::new(sid, &part);
            for row in scan.iter() {
                // Status of the atom's own variables.
                let mut own_mask = 0usize;
                let mut own_bits = 0usize;
                for (pos, &v) in atom.vars.iter().enumerate() {
                    own_bits |= 1 << v;
                    if heavy[v].contains(&row[pos]) {
                        own_mask |= 1 << v;
                    }
                }
                for (plan, grid) in plans.iter().zip(&grids) {
                    if plan.mask & own_bits != own_mask {
                        continue; // incompatible combination
                    }
                    let mut partial: Vec<Option<usize>> = vec![None; k];
                    for (pos, &v) in atom.vars.iter().enumerate() {
                        partial[v] = Some(if plan.mask & (1 << v) != 0 {
                            0 // heavy: share 1
                        } else {
                            h.hash(v, row[pos], plan.shares[v])
                        });
                    }
                    for dest in grid.matching(&partial) {
                        ex.send(plan.offset + dest, Tagged::new(j as u32, row.to_vec()));
                    }
                }
            }
        }
    }
    let inboxes = ex.finish();
    drop(shuffle);

    let _span = trace::span("skewhc/evaluate");
    let outputs = inboxes
        .into_iter()
        .map(|inbox| {
            let mut fragments: Vec<Relation> = query
                .atoms()
                .iter()
                .map(|a| Relation::new(a.arity()))
                .collect();
            for t in inbox {
                fragments[t.tag as usize].push(&t.row);
            }
            evaluate(query, &fragments)
        })
        .collect();
    (
        JoinRun {
            outputs,
            report: cluster.report(),
        },
        plans,
    )
}

/// Per-variable heavy-hitter sets: value `v` of variable `x` is heavy iff
/// its degree in some atom containing `x` is at least `|S_j|/p`
/// (slide 47's `N/p` threshold, per atom).
pub fn heavy_values(query: &Query, rels: &[Relation], p: usize) -> Vec<FastSet<Value>> {
    let mut heavy: Vec<FastSet<Value>> = vec![FastSet::default(); query.num_vars()];
    for (j, rel) in rels.iter().enumerate() {
        let threshold = ((rel.len() / p.max(1)) as u64).max(1);
        for (pos, &v) in query.atoms()[j].vars.iter().enumerate() {
            for (value, deg) in degree_counts(rel, pos) {
                if deg >= threshold {
                    heavy[v].insert(value);
                }
            }
        }
    }
    heavy
}

#[cfg(test)]
mod tests {
    use super::*;
    use parqp_data::generate;

    fn oracle(query: &Query, rels: &[Relation]) -> Relation {
        evaluate(query, rels)
    }

    #[test]
    fn triangle_no_skew_matches_oracle() {
        let q = Query::triangle();
        let g = generate::random_symmetric_graph(50, 400, 3);
        let rels = vec![g.clone(), g.clone(), g];
        let run = skewhc(&q, &rels, 16, 5);
        let expect = oracle(&q, &rels);
        assert_eq!(run.gathered().canonical(), expect.canonical());
        assert_eq!(run.output_size(), expect.len(), "exactly-once output");
        assert_eq!(run.report.num_rounds(), 1);
    }

    #[test]
    fn triangle_skewed_matches_oracle() {
        let q = Query::triangle();
        // One hub vertex of very high degree in every relation.
        let mut g = generate::random_symmetric_graph(80, 300, 9);
        for i in 0..120 {
            g.push(&[0, 100 + i]);
            g.push(&[100 + i, 0]);
        }
        let rels = vec![g.clone(), g.clone(), g];
        let run = skewhc(&q, &rels, 64, 7);
        let expect = oracle(&q, &rels);
        assert_eq!(run.gathered().canonical(), expect.canonical());
        assert_eq!(run.output_size(), expect.len());
    }

    #[test]
    fn skewed_two_way_beats_hypercube_load() {
        // Extreme skew: hash join (= HyperCube on two-way) puts IN on one
        // server; SkewHC's heavy-y combination runs the Cartesian residual
        // R(x) × S(z) on a √q × √q grid.
        let q = Query::two_way();
        let n = 2000;
        let r = generate::constant_key_pairs(n, 7, 1);
        let s = generate::constant_key_pairs(n, 7, 0);
        let rels = vec![r, s];
        let p = 64;
        let hc = crate::multiway::hypercube(&q, &rels, p, 3);
        let sk = skewhc(&q, &rels, p, 3);
        assert_eq!(sk.gathered().canonical(), hc.gathered().canonical());
        assert_eq!(hc.report.max_load_tuples(), 2 * n as u64);
        let l = sk.report.max_load_tuples();
        // Group budget q = p/8 = 8 → grid ~3×2: L ≈ n/3 + n/2 ≈ 1666...
        // the point is it is far below 2n and shrinks with p.
        assert!(l < (2 * n as u64) * 2 / 3, "SkewHC L = {l}");
    }

    #[test]
    fn semijoin_pair_with_heavy_matches_oracle() {
        let q = Query::semijoin_pair();
        let r = generate::unary_range(40);
        let mut s = generate::uniform(2, 300, 60, 31);
        for _ in 0..100 {
            s.push(&[5, 7]);
        }
        let t = generate::unary_range(50);
        let rels = vec![r, s, t];
        let run = skewhc(&q, &rels, 32, 11);
        let expect = oracle(&q, &rels);
        assert_eq!(run.gathered().canonical(), expect.canonical());
        assert_eq!(run.output_size(), expect.len());
    }

    #[test]
    fn plans_cover_all_masks() {
        let q = Query::triangle();
        let g = generate::random_symmetric_graph(30, 100, 13);
        let rels = vec![g.clone(), g.clone(), g];
        let (_, plans) = skewhc_with_plans(&q, &rels, 64, 5);
        assert_eq!(plans.len(), 8);
        let masks: Vec<usize> = plans.iter().map(|c| c.mask).collect();
        assert_eq!(masks, (0..8).collect::<Vec<_>>());
        for c in &plans {
            for v in 0..3 {
                if c.mask & (1 << v) != 0 {
                    assert_eq!(c.shares[v], 1, "heavy variables take share 1");
                }
            }
        }
    }

    #[test]
    fn heavy_detection_threshold() {
        let q = Query::two_way();
        let mut r = generate::key_unique_pairs(64, 1, 1 << 30, 3);
        for _ in 0..32 {
            r.push(&[999, 5]);
        }
        let s = generate::key_unique_pairs(96, 0, 1 << 30, 4);
        let heavy = heavy_values(&q, &[r, s], 8);
        // Variable y (=1): value 5 occurs 32 ≥ 96/8 times in R's column y.
        assert!(heavy[1].contains(&5));
        assert_eq!(heavy[1].len(), 1);
    }
}
