//! Property: on a *random* multi-round computation — seeded per-server
//! loads, value-dependent routing, a per-round compute phase on
//! `Cluster::map` — the parallel backend reproduces the serial ledger
//! (`RoundStats` by `RoundStats`) and the final per-server state
//! exactly, for arbitrary cluster sizes, round counts and worker
//! counts. Failures shrink to a minimal (p, rounds, workers, seed).

use parqp::mpc::{exec, Cluster, ExecMode, LoadReport};
use parqp_testkit::prelude::*;
use parqp_testkit::Rng;

/// A seeded random computation: `rounds` exchange-then-compute steps on
/// `p` servers. Routing is value-dependent (so the communication DAG
/// varies per round) and the compute phase both transforms and prunes,
/// so later rounds' loads depend on earlier rounds' compute output.
fn random_computation(p: usize, rounds: usize, seed: u64) -> (LoadReport, Vec<Vec<u64>>) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut cluster = Cluster::new(p);
    let mut state: Vec<Vec<u64>> = (0..p)
        .map(|_| {
            let n = rng.gen_range(0..24u64) as usize;
            (0..n).map(|_| rng.next_u64()).collect()
        })
        .collect();
    for round in 0..rounds as u64 {
        let mut ex = cluster.exchange::<u64>();
        for (sid, vals) in state.iter().enumerate() {
            ex.set_sender(sid);
            for &v in vals {
                ex.send((v % p as u64) as usize, v);
            }
        }
        let inboxes = ex.finish();
        state = cluster.map(inboxes, |s, inbox| {
            inbox
                .into_iter()
                .filter(|v| v % 7 != round % 7)
                .map(|v| {
                    v.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(s as u64 ^ round)
                })
                .collect()
        });
    }
    (cluster.report(), state)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_cluster_reproduces_serial_round_stats(
        p in 2usize..10,
        rounds in 1usize..5,
        workers in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let serial = exec::with_mode(ExecMode::Serial, || {
            random_computation(p, rounds, seed)
        });
        let parallel = exec::with_mode(ExecMode::Parallel { workers }, || {
            random_computation(p, rounds, seed)
        });
        // LoadReport derives Eq over its full RoundStats sequence, so
        // this pins every round's per-server tuple and word charges.
        prop_assert_eq!(&serial.0, &parallel.0);
        prop_assert_eq!(&serial.1, &parallel.1);
    }
}
