//! Manifest-level rules: the crate dependency DAG and the offline guard.
//!
//! | ID    | family   | what it enforces                                        |
//! |-------|----------|---------------------------------------------------------|
//! | PQ101 | layering | `[dependencies]` edges stay inside the allowed DAG      |
//! | PQ102 | layering | `parqp-testkit` is dev-only outside the RNG whitelist   |
//! | PQ301 | offline  | every dependency is an in-workspace path dependency     |
//! | PQ302 | offline  | `rand`/`proptest`/`criterion` never reappear            |
//!
//! The TOML scanner here is deliberately the same shape as the one the
//! original `crates/testkit/tests/offline_guard.rs` used: a line-based
//! `[section]` + `key = value` reader. It is not a general TOML parser,
//! but the workspace's manifests are hand-written and simple, and the
//! offline guard has policed them with exactly this logic since PR 1.

use crate::Diagnostic;

/// The allowed `[dependencies]` DAG, mirroring DESIGN.md § "Dependency
/// graph". Keys are crate *directory* names under `crates/`; values are
/// the directories their `parqp-*` dependencies may point at.
///
/// `dev-dependencies` are unrestricted within the workspace: test-only
/// edges cannot violate runtime layering (cargo itself rejects cycles).
pub const ALLOWED_DEPS: &[(&str, &[&str])] = &[
    (
        "bench",
        &[
            "core", "mpc", "data", "lp", "query", "join", "sort", "matmul", "trace", "metrics",
            "faults", "testkit",
        ],
    ),
    (
        "core",
        &[
            "mpc", "data", "lp", "query", "join", "sort", "matmul", "trace", "metrics", "faults",
            "serve", "obs", "lint",
        ],
    ),
    ("data", &["store", "testkit"]),
    ("faults", &["testkit"]),
    ("join", &["mpc", "data", "lp", "query", "sort"]),
    ("lint", &[]),
    ("lp", &[]),
    ("matmul", &["mpc", "data", "join", "query", "testkit"]),
    ("metrics", &["trace"]),
    ("mpc", &["trace", "metrics", "faults", "store", "testkit"]),
    ("obs", &[]),
    ("query", &["data", "lp"]),
    (
        "serve",
        &["mpc", "data", "join", "metrics", "faults", "obs", "testkit"],
    ),
    ("sort", &["mpc", "data"]),
    ("store", &[]),
    ("testkit", &[]),
    ("trace", &[]),
];

/// Crates whose algorithms are *defined* in terms of seeded randomness
/// and may therefore carry `parqp-testkit` (the deterministic RNG) as a
/// runtime dependency, plus `mpc`, which holds the sanctioned worker
/// pool (`testkit::pool`) behind `ExecMode::Parallel`. Everywhere else
/// testkit is dev-only (PQ102).
pub const TESTKIT_RUNTIME_WHITELIST: &[&str] =
    &["data", "matmul", "bench", "faults", "mpc", "serve"];

/// Registry crates whose roles `parqp-testkit` absorbed in PR 1; they
/// must never reappear in any manifest (PQ302).
pub const BANNED_CRATES: &[&str] = &["rand", "proptest", "criterion"];

/// The `key = value` entries of a named TOML section, with line numbers.
/// Skips blank lines and full-line comments.
pub fn section_entries(toml: &str, section: &str) -> Vec<(usize, String, String)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (idx, line) in toml.lines().enumerate() {
        let line = line.trim();
        if line.starts_with('[') {
            in_section = line == format!("[{section}]");
            continue;
        }
        if !in_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            out.push((idx + 1, key.trim().to_string(), value.trim().to_string()));
        }
    }
    out
}

/// Map a dependency name to its crate directory: `parqp-mpc` → `mpc`,
/// the facade `parqp` → `core`. Non-`parqp` names map to `None`.
fn dep_dir(name: &str) -> Option<&str> {
    if name == "parqp" {
        return Some("core");
    }
    name.strip_prefix("parqp-")
}

fn is_path_dep(value: &str) -> bool {
    value.contains("path =") || value.contains("path=") || value.contains("workspace = true")
}

/// Lint one member manifest. `crate_name` is the directory under
/// `crates/`; `path` is used verbatim in diagnostics.
pub fn lint_manifest(crate_name: &str, path: &str, toml: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    let allowed = ALLOWED_DEPS
        .iter()
        .find(|(name, _)| *name == crate_name)
        .map(|(_, deps)| *deps);
    if allowed.is_none() {
        out.push(Diagnostic {
            rule: "PQ101",
            path: path.to_string(),
            line: 1,
            message: format!(
                "crate `{crate_name}` is not in the layering DAG; \
                 add it to ALLOWED_DEPS in crates/lint/src/manifest.rs"
            ),
        });
    }

    for section in ["dependencies", "dev-dependencies", "build-dependencies"] {
        for (line, name, value) in section_entries(toml, section) {
            // Offline rules apply to every section.
            if !is_path_dep(&value) || value.contains("git =") || value.contains("registry =") {
                out.push(Diagnostic {
                    rule: "PQ301",
                    path: path.to_string(),
                    line,
                    message: format!(
                        "`{name} = {value}` is not an in-workspace path dependency; \
                         the build must stay offline"
                    ),
                });
            }
            if BANNED_CRATES.contains(&name.as_str()) {
                out.push(Diagnostic {
                    rule: "PQ302",
                    path: path.to_string(),
                    line,
                    message: format!(
                        "banned dependency `{name}` reintroduced; \
                         use parqp-testkit (crates/testkit) instead"
                    ),
                });
            }
            if section != "dependencies" {
                continue;
            }
            // Layering rules apply to runtime dependencies only.
            let Some(dir) = dep_dir(&name) else { continue };
            if dir == "testkit" && !TESTKIT_RUNTIME_WHITELIST.contains(&crate_name) {
                out.push(Diagnostic {
                    rule: "PQ102",
                    path: path.to_string(),
                    line,
                    message: format!(
                        "`parqp-testkit` must be a dev-dependency of `{crate_name}`: only \
                         {TESTKIT_RUNTIME_WHITELIST:?} run seeded randomness at runtime"
                    ),
                });
            } else if let Some(allowed) = allowed {
                if !allowed.contains(&dir) {
                    out.push(Diagnostic {
                        rule: "PQ101",
                        path: path.to_string(),
                        line,
                        message: format!(
                            "dependency edge `{crate_name}` → `{dir}` is outside the layering \
                             DAG (allowed: {allowed:?}); algorithm crates communicate only \
                             through parqp_mpc::Cluster"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Lint the workspace-root manifest: every `[workspace.dependencies]`
/// entry must be a path dependency and must not be a banned crate.
pub fn lint_workspace_manifest(path: &str, toml: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (line, name, value) in section_entries(toml, "workspace.dependencies") {
        if !value.contains("path") {
            out.push(Diagnostic {
                rule: "PQ301",
                path: path.to_string(),
                line,
                message: format!(
                    "[workspace.dependencies] `{name} = {value}` is not a path dependency"
                ),
            });
        }
        if BANNED_CRATES.contains(&name.as_str()) {
            out.push(Diagnostic {
                rule: "PQ302",
                path: path.to_string(),
                line,
                message: format!("banned dependency `{name}` in [workspace.dependencies]"),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(crate_name: &str, toml: &str) -> Vec<(&'static str, usize)> {
        lint_manifest(crate_name, "Cargo.toml", toml)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn clean_manifest_passes() {
        let toml = "[package]\nname = \"parqp-sort\"\n\n[dependencies]\n\
                    parqp-mpc = { workspace = true }\nparqp-data = { workspace = true }\n\n\
                    [dev-dependencies]\nparqp-testkit = { workspace = true }\n";
        assert!(rules_of("sort", toml).is_empty());
    }

    #[test]
    fn dag_violation_named_with_line() {
        // sort must not depend on join.
        let toml = "[dependencies]\nparqp-join = { workspace = true }\n";
        assert_eq!(rules_of("sort", toml), vec![("PQ101", 2)]);
    }

    #[test]
    fn testkit_runtime_dep_flagged_outside_whitelist() {
        let toml = "[dependencies]\nparqp-testkit = { workspace = true }\n";
        assert_eq!(rules_of("join", toml), vec![("PQ102", 2)]);
        // …but data's generators are allowed to hold the RNG.
        assert!(rules_of("data", toml).is_empty());
    }

    #[test]
    fn testkit_dev_dep_fine_everywhere() {
        let toml = "[dev-dependencies]\nparqp-testkit = { workspace = true }\n";
        assert!(rules_of("mpc", toml).is_empty());
    }

    #[test]
    fn registry_dep_flagged() {
        let toml = "[dependencies]\nserde = \"1\"\n";
        assert_eq!(rules_of("mpc", toml), vec![("PQ301", 2)]);
    }

    #[test]
    fn git_dep_flagged() {
        let toml = "[dependencies]\nfoo = { git = \"https://example.com/foo\" }\n";
        assert_eq!(rules_of("mpc", toml), vec![("PQ301", 2)]);
    }

    #[test]
    fn banned_crate_flagged_even_as_path() {
        let toml = "[dev-dependencies]\nrand = { path = \"../rand\" }\n";
        assert_eq!(rules_of("mpc", toml), vec![("PQ302", 2)]);
    }

    #[test]
    fn unknown_crate_flagged() {
        assert_eq!(rules_of("newcrate", "[package]\n"), vec![("PQ101", 1)]);
    }

    #[test]
    fn workspace_manifest_registry_entry_flagged() {
        let toml = "[workspace.dependencies]\nserde = \"1\"\n";
        let v = lint_workspace_manifest("Cargo.toml", toml);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "PQ301");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn dag_matches_design_doc_shape() {
        // Spot-check the table itself: trace, lp and store are leaves,
        // faults holds only the shared RNG, metrics reads only the
        // event model, mpc sees its instrumentation sinks (trace +
        // metrics + faults + store's IO ledger) plus testkit for the
        // sanctioned worker pool, core sees every algorithm crate, and
        // only core may depend on the linter (the `parqp lint` front
        // door).
        let find = |n: &str| {
            ALLOWED_DEPS
                .iter()
                .find(|(name, _)| *name == n)
                .map(|(_, d)| *d)
                .expect("crate in table")
        };
        assert_eq!(
            find("mpc"),
            &["trace", "metrics", "faults", "store", "testkit"]
        );
        assert!(find("trace").is_empty());
        assert!(find("store").is_empty());
        assert_eq!(find("data"), &["store", "testkit"]);
        assert_eq!(find("faults"), &["testkit"]);
        assert_eq!(find("metrics"), &["trace"]);
        assert!(find("lp").is_empty());
        assert!(find("core").contains(&"join"));
        assert!(find("core").contains(&"trace"));
        assert!(find("core").contains(&"metrics"));
        assert!(find("core").contains(&"faults"));
        // The serving layer composes the simulator, the algorithms it
        // serves, and its observability sinks — including the window
        // recorder it feeds; only core (the `parqp serve` front door)
        // may depend on it.
        assert_eq!(
            find("serve"),
            &["mpc", "data", "join", "metrics", "faults", "obs", "testkit"]
        );
        assert!(find("core").contains(&"serve"));
        for (name, deps) in ALLOWED_DEPS {
            assert!(
                *name == "core" || !deps.contains(&"serve"),
                "only core (the `parqp serve` front door) may depend on serve"
            );
        }
        // The observation layer is a leaf like trace: pure data types
        // and renderers, fed only by serve, consumed by serve and the
        // `parqp dash`/`parqp serve --obs` front doors in core.
        assert!(find("obs").is_empty());
        for (name, deps) in ALLOWED_DEPS {
            assert!(
                *name == "core" || *name == "serve" || !deps.contains(&"obs"),
                "only serve (the emitter) and core (the front door) may depend on obs"
            );
        }
        for (name, deps) in ALLOWED_DEPS {
            assert!(
                *name == "core" || !deps.contains(&"lint"),
                "only core (the `parqp lint` front door) may depend on the linter"
            );
        }
    }
}
