//! A warehouse analytics pipeline end to end — slide 52's query shape:
//!
//! ```sql
//! SELECT region, category, COUNT(*)
//! FROM Orders O, Customers C, Products P
//! WHERE O.custkey = C.custkey AND O.prodkey = P.prodkey
//! GROUP BY region, category
//! ```
//!
//! A star join (acyclic — the planner picks GYM when the output is
//! small) followed by a skew-insensitive combiner aggregation.
//!
//! ```text
//! cargo run --release --example warehouse
//! ```

use parqp::pipeline::{aggregate_oracle, run_aggregate, Agg, AggregateQuery};
use parqp::query::parse_query;

fn main() {
    let p = 64;
    let (orders, customers, products) =
        parqp::data::generate::warehouse(200_000, 20_000, 5_000, 1.1, 7);
    println!(
        "Orders: {} rows (Zipf custkeys), Customers: {}, Products: {}",
        orders.len(),
        customers.len(),
        products.len()
    );

    // Variables: c = 0, k = 1 (prodkey), r = 2 (region), g = 3 (category).
    let join = parse_query("Orders(c, k), Customers(c, r), Products(k, g)").expect("valid query");
    let aq = AggregateQuery::new(join, vec![2, 3], Agg::Count);
    let rels = vec![orders, customers, products];

    let run = run_aggregate(&aq, &rels, p, 42);
    println!("join strategy : {:?}", run.strategy);
    println!(
        "cost          : L = {} tuples, r = {}, C = {} tuples on p = {p}",
        run.report.max_load_tuples(),
        run.report.num_rounds(),
        run.report.total_tuples()
    );
    let result = run.gathered();
    println!("result        : {} (region, category) groups", result.len());

    let mut sorted = result.clone();
    sorted.sort();
    assert_eq!(
        sorted,
        aggregate_oracle(&aq, &rels),
        "matches the serial oracle"
    );

    // Top groups by order count.
    let mut rows = result.to_rows();
    rows.sort_by_key(|r| std::cmp::Reverse(r[2]));
    println!("\ntop groups (region, category, orders):");
    for row in rows.iter().take(5) {
        println!(
            "  region {:>2}  category {:>2}  {:>8}",
            row[0], row[1], row[2]
        );
    }
}
