//! Named, deterministic trace experiments for the `parqp trace` and
//! `parqp faults` subcommands and the CI smoke tests.
//!
//! Each experiment builds a synthetic input from the seed, runs one of
//! the tutorial's algorithms under an installed [`parqp_trace::Recorder`]
//! and returns the captured event stream alongside the run's
//! [`LoadReport`] and a digest of its *output* (joined tuples, sorted
//! keys, product matrix). Everything downstream of the
//! `(name, servers, seed)` triple is deterministic — running the same
//! experiment twice yields byte-identical JSONL exports, which the
//! `trace_invariants` integration test asserts — and the output digest
//! is what the fault-tolerance tests compare to prove recovered runs
//! reproduce fault-free results exactly.

use std::hash::Hasher;

use parqp_data::fasthash::FxHasher;
use parqp_data::{generate, Relation};
use parqp_mpc::LoadReport;
use parqp_query::Query;
use parqp_trace::Recorder;

/// A named experiment: a deterministic algorithm run to trace.
pub struct Experiment {
    /// CLI name (`--experiment <name>`).
    pub name: &'static str,
    /// One-line description shown by `parqp trace` without arguments.
    pub description: &'static str,
}

/// Every experiment `parqp trace` knows about.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        name: "triangle-hypercube",
        description: "HyperCube triangle join over a random symmetric graph",
    },
    Experiment {
        name: "twoway-hash",
        description: "two-way hash join of uniform relations",
    },
    Experiment {
        name: "twoway-skew",
        description: "skew join of a zipf-skewed relation against a uniform one",
    },
    Experiment {
        name: "chain-binary",
        description: "3-atom chain query via the binary join plan (multi-round)",
    },
    Experiment {
        name: "skewhc-triangle",
        description: "SkewHC triangle join over zipf-skewed edges",
    },
    Experiment {
        name: "psrs",
        description: "2-round parallel sorting by regular sampling",
    },
    Experiment {
        name: "multiround-sort",
        description: "splitter-tree distribution sort, fan-out 4",
    },
    Experiment {
        name: "matmul-square",
        description: "multi-round square-block matrix multiplication",
    },
    Experiment {
        name: "bigjoin",
        description: "large two-way hash join (IN = 320k) sized for out-of-core paging",
    },
];

/// One completed experiment run: its trace, its ledger, and a digest
/// of its output.
pub struct ExperimentRun {
    /// The captured event stream.
    pub recorder: Recorder,
    /// The run's `(L, r, C)` ledger.
    pub report: LoadReport,
    /// Order-independent-where-appropriate digest of the run's output
    /// (canonicalized join results, sorted keys, product matrix).
    /// Equal digests on the same experiment mean byte-identical output.
    pub digest: u64,
}

/// Run the named experiment on `servers` simulated servers, capturing
/// its trace, report, and output digest. Returns `Err` for unknown
/// names (with the known ones listed).
pub fn run_experiment_full(name: &str, servers: usize, seed: u64) -> Result<ExperimentRun, String> {
    assert!(servers >= 1, "need at least one server");
    let run: fn(usize, u64) -> (LoadReport, u64) = match name {
        "triangle-hypercube" => |p, s| {
            let q = Query::triangle();
            let g = generate::random_symmetric_graph(120, 900, s);
            let run = parqp_join::multiway::hypercube(&q, &[g.clone(), g.clone(), g], p, s);
            (run.report.clone(), digest_relation(&run.gathered()))
        },
        "twoway-hash" => |p, s| {
            // Domain ≫ p² keeps hash-partition imbalance low, so the
            // measured bound_ratio stays near 1 even at p = 64 (the
            // metrics invariants pin it to [1.0, 1.5]).
            let r = generate::uniform(2, 16_000, 8000, s);
            let t = generate::uniform(2, 16_000, 8000, s.wrapping_add(1));
            let run = parqp_join::twoway::hash_join(&r, 1, &t, 0, p, s);
            (run.report.clone(), digest_relation(&run.gathered()))
        },
        "twoway-skew" => |p, s| {
            let r = generate::zipf_pairs(4000, 1000, 1.2, 0, s);
            let t = generate::uniform(2, 4000, 1000, s.wrapping_add(1));
            let run = parqp_join::twoway::skew_join(&r, 0, &t, 0, p, s);
            (run.report.clone(), digest_relation(&run.gathered()))
        },
        "chain-binary" => |p, s| {
            let q = Query::chain(3);
            let rels: Vec<_> = (0..3)
                .map(|i| generate::uniform(2, 800, 120, s.wrapping_add(i)))
                .collect();
            let run = parqp_join::plans::binary_join_plan(&q, &rels, p, s, None);
            (run.report.clone(), digest_relation(&run.gathered()))
        },
        "skewhc-triangle" => |p, s| {
            let q = Query::triangle();
            let rels: Vec<_> = (0..3)
                .map(|i| generate::zipf_pairs(1500, 400, 1.1, 0, s.wrapping_add(i)))
                .collect();
            let run = parqp_join::skewhc::skewhc(&q, &rels, p, s);
            (run.report.clone(), digest_relation(&run.gathered()))
        },
        "psrs" => |p, s| {
            let keys = sort_input(20_000, s);
            let mut cluster = parqp_mpc::Cluster::new(p);
            let local = cluster.scatter(keys);
            let sorted = parqp_sort::psrs(&mut cluster, local);
            (cluster.report(), digest_keys(&sorted))
        },
        "multiround-sort" => |p, s| {
            let keys = sort_input(20_000, s);
            let mut cluster = parqp_mpc::Cluster::new(p);
            let local = cluster.scatter(keys);
            let sorted = parqp_sort::multiround_sort(&mut cluster, local, 4);
            (cluster.report(), digest_keys(&sorted))
        },
        "matmul-square" => |p, s| {
            // n = 144 (36×36 blocks at H = 4) makes the block products
            // compute-bound — Θ(n³) multiplies against Θ(n²·H) words on
            // the wire — so this is the experiment where the parallel
            // execution backend's speedup is measured.
            let a = parqp_matmul::Matrix::random(144, s);
            let b = parqp_matmul::Matrix::random(144, s.wrapping_add(1));
            let run = parqp_matmul::square_block(&a, &b, 4, p);
            (run.report.clone(), digest_matrix(&run.c))
        },
        "bigjoin" => |p, s| {
            // 10× twoway-hash's input (IN = 320k tuples): under a
            // default-size pool the partition scans cycle far more
            // pages than fit resident, so this is the experiment where
            // bounded-pool evictions are exercised at realistic scale.
            let r = generate::uniform(2, 160_000, 80_000, s);
            let t = generate::uniform(2, 160_000, 80_000, s.wrapping_add(1));
            let run = parqp_join::twoway::hash_join(&r, 1, &t, 0, p, s);
            (run.report.clone(), digest_relation(&run.gathered()))
        },
        other => {
            let known: Vec<&str> = EXPERIMENTS.iter().map(|e| e.name).collect();
            return Err(format!(
                "unknown experiment {other:?}; known: {}",
                known.join(", ")
            ));
        }
    };
    let (recorder, (report, digest)) = Recorder::capture(|| run(servers, seed));
    Ok(ExperimentRun {
        recorder,
        report,
        digest,
    })
}

/// Run the named experiment, capturing only its trace (the historical
/// entry point of `parqp trace`).
pub fn run_experiment(name: &str, servers: usize, seed: u64) -> Result<Recorder, String> {
    run_experiment_full(name, servers, seed).map(|run| run.recorder)
}

/// Digest of a relation's canonical row set (sorted + deduplicated, so
/// per-server output ordering cannot leak into the digest).
fn digest_relation(rel: &Relation) -> u64 {
    let mut h = FxHasher::default();
    for row in rel.canonical().iter() {
        h.write_u64(row.len() as u64);
        for &v in row {
            h.write_u64(v);
        }
    }
    h.finish()
}

/// Digest of per-server sorted key runs, boundaries included (the
/// partition *and* the order are part of a sort's contract).
fn digest_keys(runs: &[Vec<u64>]) -> u64 {
    let mut h = FxHasher::default();
    for run in runs {
        h.write_u64(run.len() as u64);
        for &k in run {
            h.write_u64(k);
        }
    }
    h.finish()
}

/// Digest of a dense matrix, exact to the bit.
fn digest_matrix(m: &parqp_matmul::Matrix) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(m.n() as u64);
    for i in 0..m.n() {
        for &v in m.row(i) {
            h.write_u64(v.to_bits());
        }
    }
    h.finish()
}

/// Deterministic sort input: `n` keys drawn through the data
/// generator's seeded hashing (no global RNG involved).
fn sort_input(n: usize, seed: u64) -> Vec<u64> {
    let rel = generate::uniform(1, n, 1 << 32, seed);
    rel.iter().map(|row| row[0]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parqp_trace::analyze;

    #[test]
    fn every_listed_experiment_runs_and_traces() {
        for e in EXPERIMENTS {
            let run = run_experiment_full(e.name, 8, 7).expect("known experiment");
            let totals = analyze::totals(&run.recorder);
            assert!(totals.rounds >= 1, "{}: no rounds traced", e.name);
            assert!(totals.tuples > 0, "{}: no tuples traced", e.name);
            assert_eq!(
                totals.tuples,
                run.report.total_tuples(),
                "{}: trace/ledger mismatch",
                e.name
            );
            assert_ne!(run.digest, 0, "{}: trivially empty digest", e.name);
        }
    }

    #[test]
    fn unknown_experiment_lists_known_names() {
        let err = run_experiment("nope", 4, 1).expect_err("unknown name");
        assert!(err.contains("triangle-hypercube"));
    }

    #[test]
    fn same_seed_same_trace() {
        let a = run_experiment("twoway-hash", 8, 3).expect("runs");
        let b = run_experiment("twoway-hash", 8, 3).expect("runs");
        assert_eq!(
            a.events().collect::<Vec<_>>(),
            b.events().collect::<Vec<_>>()
        );
    }

    #[test]
    fn digests_are_seed_sensitive() {
        let a = run_experiment_full("twoway-hash", 8, 3).expect("runs");
        let b = run_experiment_full("twoway-hash", 8, 3).expect("runs");
        let c = run_experiment_full("twoway-hash", 8, 4).expect("runs");
        assert_eq!(a.digest, b.digest, "same seed, same output");
        assert_ne!(a.digest, c.digest, "different seed, different output");
    }
}
