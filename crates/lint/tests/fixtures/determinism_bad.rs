//! Fixture: seeded determinism violations (rules PQ001–PQ004).

use std::collections::HashMap;
use std::collections::hash_map::RandomState;

pub fn lookup() -> HashMap<u64, u64> {
    HashMap::new()
}

pub fn stamp() -> std::time::Duration {
    std::time::Instant::now().elapsed()
}

pub fn race() {
    std::thread::spawn(|| {});
}
