//! Exporters: JSONL series, Prometheus text exposition, and the ASCII
//! dashboard behind `parqp dash`.
//!
//! All three are pure functions of the series with fixed field order
//! and fixed-precision floats, so byte-identical output is exactly
//! equivalent to equal series — the property the Prometheus golden test
//! and the CI dash snapshot rely on. The [`SeriesReport::steady_jsonl`]
//! projection keeps only the fields fault recovery cannot perturb
//! (query mix and outputs), so it is byte-identical between a
//! fault-free and a recovered replay of the same configuration while
//! the full series shows the overhead.

use std::fmt::Write as _;

use crate::series::{SeriesReport, WindowStats};

/// A named gauge: metric suffix, Prometheus HELP text, extractor.
type Gauge<T> = (&'static str, &'static str, fn(&WindowStats) -> T);

/// Glyph ramp for sparklines and the heatmap (space = zero), the same
/// idiom as the trace analyzer's heatmap.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Map `v` in `0..=max` onto the ramp; zero stays blank.
fn glyph(v: u64, max: u64) -> char {
    if v == 0 || max == 0 {
        return RAMP[0] as char;
    }
    let steps = (RAMP.len() - 2) as u128;
    let idx = 1 + (u128::from(v) * steps / u128::from(max)) as usize;
    RAMP[idx.min(RAMP.len() - 1)] as char
}

/// One sparkline over the windows, scaled to the series maximum.
fn sparkline(values: &[u64]) -> String {
    let max = values.iter().copied().max().unwrap_or(0);
    values.iter().map(|&v| glyph(v, max)).collect()
}

/// A float series, fixed at 4 decimal places for byte stability.
fn scaled(values: impl Iterator<Item = f64>) -> Vec<u64> {
    values
        .map(|v| (v.max(0.0) * 10_000.0).round() as u64)
        .collect()
}

impl SeriesReport {
    /// The machine-readable series: one `window` object per window, a
    /// closing `series_totals` object, fixed field order,
    /// fixed-precision floats.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for w in &self.windows {
            let _ = writeln!(
                out,
                "{{\"type\":\"window\",\"index\":{},\"start_tick\":{},\"end_tick\":{},\
                 \"served\":{},\"throughput_per_kticks\":{},\"hits\":{},\"misses\":{},\
                 \"hit_rate\":\"{:.4}\",\"p50_l\":{},\"p99_l\":{},\"max_l\":{},\
                 \"rounds\":{},\"recovery_rounds\":{},\"tuples\":{},\"words\":{},\
                 \"out_rows\":{},\"skew\":\"{:.4}\",\"bound_ratio\":\"{:.4}\",\
                 \"io_reads\":{},\"io_misses\":{},\"io_evictions\":{},\
                 \"io_hit_rate\":\"{:.4}\"}}",
                w.index,
                w.start_tick,
                w.end_tick,
                w.served,
                w.throughput_per_kticks(),
                w.hits,
                w.misses,
                w.hit_rate(),
                w.l_percentile(50),
                w.l_percentile(99),
                w.max_l,
                w.rounds,
                w.recovery_rounds(),
                w.tuples,
                w.words,
                w.out_rows,
                w.skew(),
                w.bound_ratio(),
                w.io_reads,
                w.io_misses,
                w.io_evictions,
                w.io_hit_rate(),
            );
        }
        let _ = writeln!(
            out,
            "{{\"type\":\"series_totals\",\"windows\":{},\"window_ticks\":{},\
             \"served\":{},\"rounds\":{},\"recovery_rounds\":{},\"tuples\":{},\
             \"words\":{},\"p99_l_worst\":{},\"hit_rate_min\":\"{:.4}\"}}",
            self.windows.len(),
            self.config.window_ticks,
            self.served(),
            self.rounds(),
            self.recovery_rounds(),
            self.tuples(),
            self.words(),
            self.p99_l_worst(),
            self.hit_rate_min(),
        );
        out
    }

    /// The fault-invariant projection of the series: per-window query
    /// mix and outputs only. Recovery inflates rounds, loads and IO but
    /// never the schedule, the cache decisions, or the outputs — so
    /// this rendering is byte-identical between a fault-free and a
    /// recovered replay (`tests/obs_invariants.rs`).
    pub fn steady_jsonl(&self) -> String {
        let mut out = String::new();
        for w in &self.windows {
            let _ = writeln!(
                out,
                "{{\"type\":\"steady_window\",\"index\":{},\"served\":{},\"hits\":{},\
                 \"misses\":{},\"out_rows\":{}}}",
                w.index, w.served, w.hits, w.misses, w.out_rows,
            );
        }
        out
    }

    /// Prometheus text exposition: every window series as a gauge with
    /// a `window` label, then run totals. Byte-stable (golden-tested).
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let int_series: &[Gauge<u64>] = &[
            ("served", "Queries served in the window.", |w| w.served),
            (
                "throughput_per_kticks",
                "Queries served per 1000 ticks of the window.",
                WindowStats::throughput_per_kticks,
            ),
            ("cache_hits", "Plan-cache hits in the window.", |w| w.hits),
            ("cache_misses", "Plan-cache misses in the window.", |w| {
                w.misses
            }),
            (
                "p50_l",
                "Median per-query load L (log2-sketched, tuples).",
                |w| w.l_percentile(50),
            ),
            (
                "p99_l",
                "99th-percentile per-query load L (log2-sketched, tuples).",
                |w| w.l_percentile(99),
            ),
            ("max_l", "Worst per-query load L (tuples).", |w| w.max_l),
            ("rounds", "Ledger rounds attributed to the window.", |w| {
                w.rounds
            }),
            (
                "recovery_rounds",
                "Rounds above the steady query-mix expectation.",
                WindowStats::recovery_rounds,
            ),
            ("tuples", "Tuples moved in the window.", |w| w.tuples),
            ("words", "Words moved in the window.", |w| w.words),
            ("io_reads", "Page-IO logical reads in the window.", |w| {
                w.io_reads
            }),
            ("io_misses", "Page-IO pool misses in the window.", |w| {
                w.io_misses
            }),
            ("io_evictions", "Page-IO evictions in the window.", |w| {
                w.io_evictions
            }),
        ];
        for (name, help, f) in int_series {
            let _ = writeln!(out, "# HELP parqp_serve_window_{name} {help}");
            let _ = writeln!(out, "# TYPE parqp_serve_window_{name} gauge");
            for w in &self.windows {
                let _ = writeln!(
                    out,
                    "parqp_serve_window_{name}{{window=\"{}\"}} {}",
                    w.index,
                    f(w)
                );
            }
        }
        let float_series: &[Gauge<f64>] = &[
            (
                "cache_hit_rate",
                "Plan-cache hit rate over the window's lookups.",
                WindowStats::hit_rate,
            ),
            (
                "io_hit_rate",
                "Buffer-pool hit rate over the window's reads.",
                WindowStats::io_hit_rate,
            ),
            (
                "skew",
                "Hottest server over the balanced line tuples/p.",
                WindowStats::skew,
            ),
            (
                "bound_ratio",
                "Worst per-query L over its skew-free prediction.",
                WindowStats::bound_ratio,
            ),
        ];
        for (name, help, f) in float_series {
            let _ = writeln!(out, "# HELP parqp_serve_window_{name} {help}");
            let _ = writeln!(out, "# TYPE parqp_serve_window_{name} gauge");
            for w in &self.windows {
                let _ = writeln!(
                    out,
                    "parqp_serve_window_{name}{{window=\"{}\"}} {:.4}",
                    w.index,
                    f(w)
                );
            }
        }
        let totals: &[(&str, &str, u64)] = &[
            (
                "windows",
                "Windows in the series.",
                self.windows.len() as u64,
            ),
            (
                "window_ticks",
                "Window width in ticks.",
                self.config.window_ticks,
            ),
            (
                "served_total",
                "Queries served across the run.",
                self.served(),
            ),
            (
                "rounds_total",
                "Ledger rounds across the run.",
                self.rounds(),
            ),
            (
                "recovery_rounds_total",
                "Recovery rounds across the run.",
                self.recovery_rounds(),
            ),
            (
                "tuples_total",
                "Tuples moved across the run.",
                self.tuples(),
            ),
            ("words_total", "Words moved across the run.", self.words()),
        ];
        for (name, help, v) in totals {
            let _ = writeln!(out, "# HELP parqp_serve_{name} {help}");
            let _ = writeln!(out, "# TYPE parqp_serve_{name} gauge");
            let _ = writeln!(out, "parqp_serve_{name} {v}");
        }
        out
    }

    /// The ASCII dashboard behind `parqp dash`: one sparkline per
    /// window series, then a servers×windows heatmap of received
    /// tuples. Pure text, fixed width, deterministic.
    pub fn dashboard(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serve series: p={} windows={}x{} ticks served={} rounds={} recovery={}",
            self.config.servers,
            self.windows.len(),
            self.config.window_ticks,
            self.served(),
            self.rounds(),
            self.recovery_rounds(),
        );
        let rows: Vec<(&str, Vec<u64>, String)> = vec![
            row_int("served", self, |w| w.served),
            row_int("p50(L)", self, |w| w.l_percentile(50)),
            row_int("p99(L)", self, |w| w.l_percentile(99)),
            row_int("rounds", self, |w| w.rounds),
            row_int("recovery", self, WindowStats::recovery_rounds),
            row_int("io_reads", self, |w| w.io_reads),
            row_float("hit_rate", self, WindowStats::hit_rate),
            row_float("io_hit_rate", self, WindowStats::io_hit_rate),
            row_float("skew", self, WindowStats::skew),
            row_float("bound_ratio", self, WindowStats::bound_ratio),
        ];
        for (name, values, range) in &rows {
            let _ = writeln!(out, "{:>12} |{}| {}", name, sparkline(values), range);
        }
        let _ = writeln!(out, "heatmap: tuples received, servers x windows");
        let global_max = self
            .windows
            .iter()
            .flat_map(|w| w.per_server_tuples.iter().copied())
            .max()
            .unwrap_or(0);
        for s in 0..self.config.servers {
            let line: String = self
                .windows
                .iter()
                .map(|w| glyph(w.per_server_tuples.get(s).copied().unwrap_or(0), global_max))
                .collect();
            let _ = writeln!(out, "{s:>12} |{line}|");
        }
        out
    }
}

fn row_int(
    name: &'static str,
    series: &SeriesReport,
    f: fn(&WindowStats) -> u64,
) -> (&'static str, Vec<u64>, String) {
    let values: Vec<u64> = series.windows.iter().map(f).collect();
    let min = values.iter().copied().min().unwrap_or(0);
    let max = values.iter().copied().max().unwrap_or(0);
    (name, values, format!("min={min} max={max}"))
}

fn row_float(
    name: &'static str,
    series: &SeriesReport,
    f: fn(&WindowStats) -> f64,
) -> (&'static str, Vec<u64>, String) {
    let floats: Vec<f64> = series.windows.iter().map(f).collect();
    let values = scaled(floats.iter().copied());
    let min = floats.iter().copied().fold(f64::INFINITY, f64::min);
    let max = floats.iter().copied().fold(0.0f64, f64::max);
    let min = if min.is_finite() { min } else { 0.0 };
    (name, values, format!("min={min:.4} max={max:.4}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{ObsConfig, QueryObs, SeriesRecorder};

    fn sample() -> SeriesReport {
        let mut rec = SeriesRecorder::new(ObsConfig {
            window_ticks: 2,
            ticks: 6,
            servers: 2,
        });
        for tick in 0..6u64 {
            rec.record(&QueryObs {
                serial: tick,
                tick,
                tenant: (tick % 2) as usize,
                lookup: true,
                hit: tick % 3 == 0,
                l: 8 << tick,
                predicted_l: 4 << tick,
                rounds: if tick % 3 == 0 { 1 } else { 2 },
                tuples: 16 << tick,
                words: 32 << tick,
                out_rows: tick,
                io_reads: 100,
                io_misses: 10,
                io_evictions: 1,
                per_server_tuples: vec![12 << tick, 4 << tick],
            });
        }
        rec.finish()
    }

    #[test]
    fn jsonl_is_deterministic_and_shaped() {
        let s = sample();
        assert_eq!(s.jsonl(), s.jsonl());
        let jsonl = s.jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4, "3 windows + totals");
        assert!(lines[0].starts_with("{\"type\":\"window\",\"index\":0,"));
        assert!(lines[3].starts_with("{\"type\":\"series_totals\""));
        assert!(lines[0].contains("\"hit_rate\":\"0.5000\""));
    }

    #[test]
    fn steady_jsonl_is_the_projection() {
        let s = sample();
        let steady = s.steady_jsonl();
        assert_eq!(steady.lines().count(), 3);
        assert!(steady.contains("\"type\":\"steady_window\""));
        assert!(!steady.contains("rounds"), "cost fields must be absent");
        assert!(!steady.contains("io_"), "IO fields must be absent");
    }

    #[test]
    fn prometheus_is_byte_stable_and_labelled() {
        let s = sample();
        let prom = s.prometheus();
        assert_eq!(prom, s.prometheus());
        assert!(prom.contains("# TYPE parqp_serve_window_p99_l gauge"));
        assert!(prom.contains("parqp_serve_window_served{window=\"0\"} 2"));
        assert!(prom.contains("parqp_serve_window_cache_hit_rate{window=\"0\"} 0.5000"));
        assert!(prom.contains("parqp_serve_served_total 6"));
        for line in prom.lines() {
            assert!(
                line.starts_with('#') || line.starts_with("parqp_serve_"),
                "stray exposition line: {line}"
            );
        }
    }

    #[test]
    fn dashboard_draws_every_row_and_server() {
        let s = sample();
        let dash = s.dashboard();
        assert_eq!(dash, s.dashboard());
        assert!(dash.starts_with("serve series: p=2 windows=3x2 ticks"));
        for row in ["served", "p99(L)", "hit_rate", "bound_ratio", "heatmap"] {
            assert!(dash.contains(row), "missing row {row}: {dash}");
        }
        // Two heatmap rows, one per server, as wide as the series.
        let heat: Vec<&str> = dash
            .lines()
            .skip_while(|l| !l.starts_with("heatmap"))
            .skip(1)
            .collect();
        assert_eq!(heat.len(), 2);
        for line in &heat {
            assert_eq!(line.len(), 12 + 2 + 3 + 1, "server gutter + |...|");
        }
    }

    #[test]
    fn glyphs_cover_the_ramp() {
        assert_eq!(glyph(0, 100), ' ');
        assert_eq!(glyph(100, 100), '@');
        assert_eq!(glyph(1, u64::MAX), '.');
        assert_eq!(glyph(5, 0), ' ');
        assert_eq!(sparkline(&[]), "");
    }
}
