//! Seeded multi-tenant arrival schedules on a logical tick clock.
//!
//! The schedule is a pure function of the configuration: each
//! `(tenant, tick)` slot derives its own RNG from the seed, draws how
//! many queries arrive in that slot (a periodic per-tenant burst plus a
//! sparse baseline), and then draws each query's template and data-key
//! group through the two Zipf samplers. No slot's draws consume another
//! slot's stream, so inserting a tenant or extending the horizon never
//! perturbs existing slots — the tick-clock determinism argument in
//! DESIGN.md § "Serving workloads".

use parqp_data::zipf::Zipf;
use parqp_testkit::Rng;

use crate::driver::ServeConfig;

/// One query arrival in a replayed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryArrival {
    /// Position in the global replay order (tick-major, then tenant,
    /// then draw order within the slot).
    pub serial: u64,
    /// Logical tick the query arrived on.
    pub tick: u64,
    /// Tenant that issued it.
    pub tenant: usize,
    /// Index into [`crate::templates::TEMPLATES`].
    pub template: usize,
    /// Data-key group (1-based, Zipf-skewed over `1..=groups`).
    pub group: u64,
}

/// Per-slot RNG seed: decorrelate `(seed, tenant, tick)`.
fn slot_seed(seed: u64, tenant: usize, tick: u64) -> u64 {
    let mut state = seed
        ^ (tenant as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ tick.wrapping_mul(0x94d0_49bb_1331_11eb);
    parqp_testkit::splitmix64(&mut state)
}

/// Generate the full arrival schedule for `cfg`, in replay order.
///
/// Each tenant bursts on its own period (`3 + tenant mod 5` ticks,
/// offset by its id): a burst slot admits 1–3 queries, any other slot
/// admits one query with probability 0.15. Templates are drawn
/// Zipf(`zipf_q`) over the first `cfg.templates` catalog entries and
/// groups Zipf(`zipf_data`) over `1..=cfg.groups`, so a skewed stream
/// revisits its head keys constantly — the repetition the plan cache
/// feeds on.
///
/// # Panics
/// Panics if `cfg.templates == 0` or `cfg.groups == 0` (the driver
/// validates configurations before scheduling).
pub fn schedule(cfg: &ServeConfig) -> Vec<QueryArrival> {
    let zipf_templates = Zipf::new(cfg.templates, cfg.zipf_q);
    let zipf_groups = Zipf::new(cfg.groups, cfg.zipf_data);
    let mut out = Vec::new();
    let mut serial = 0u64;
    for tick in 0..cfg.ticks {
        for tenant in 0..cfg.tenants {
            let mut rng = Rng::seed_from_u64(slot_seed(cfg.seed, tenant, tick));
            let period = 3 + tenant as u64 % 5;
            let arrivals = if tick % period == tenant as u64 % period {
                1 + rng.gen_below(3)
            } else {
                u64::from(rng.gen_bool(0.15))
            };
            for _ in 0..arrivals {
                let template = (zipf_templates.sample(&mut rng) - 1) as usize;
                let group = zipf_groups.sample(&mut rng);
                out.push(QueryArrival {
                    serial,
                    tick,
                    tenant,
                    template,
                    group,
                });
                serial += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ServeConfig {
        ServeConfig {
            tenants: 4,
            templates: 3,
            groups: 12,
            ticks: 60,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn schedule_is_deterministic_and_ordered() {
        let a = schedule(&cfg());
        let b = schedule(&cfg());
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for (i, q) in a.iter().enumerate() {
            assert_eq!(q.serial, i as u64, "serials must enumerate replay order");
            assert!(q.tenant < 4 && q.template < 3);
            assert!((1..=12).contains(&q.group));
        }
        assert!(a.windows(2).all(|w| w[0].tick <= w[1].tick));
    }

    #[test]
    fn every_tenant_bursts() {
        let arrivals = schedule(&cfg());
        for tenant in 0..4 {
            let per_tick = |tick| {
                arrivals
                    .iter()
                    .filter(|q| q.tenant == tenant && q.tick == tick)
                    .count()
            };
            let max = (0..60).map(per_tick).max().unwrap_or(0);
            assert!(max >= 2, "tenant {tenant} never burst (max {max}/tick)");
        }
    }

    #[test]
    fn extending_the_horizon_preserves_the_prefix() {
        let short = schedule(&cfg());
        let long = schedule(&ServeConfig {
            ticks: 120,
            ..cfg()
        });
        assert_eq!(short[..], long[..short.len()]);
    }

    #[test]
    fn zipf_skew_concentrates_groups() {
        let arrivals = schedule(&ServeConfig {
            ticks: 200,
            zipf_data: 1.4,
            ..cfg()
        });
        let head = arrivals.iter().filter(|q| q.group == 1).count();
        let tail = arrivals.iter().filter(|q| q.group == 12).count();
        assert!(
            head > 4 * tail.max(1),
            "group 1 ({head}) not clearly hotter than group 12 ({tail})"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = schedule(&cfg());
        let b = schedule(&ServeConfig { seed: 43, ..cfg() });
        assert_ne!(a, b);
    }
}
