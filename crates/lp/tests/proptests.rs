//! Property tests for the LP layer: duality, feasibility, and share
//! rounding on randomly generated hypergraphs.

use parqp_lp::{
    fractional_edge_cover, fractional_edge_packing, fractional_vertex_cover, plan_shares,
    predicted_load, solve, Constraint, ConstraintOp, Hypergraph, LinearProgram, LpOutcome,
};
use parqp_testkit::prelude::*;

/// A random connected-ish hypergraph: `v` vertices, each of `e` edges a
/// random non-empty subset. We then make sure every vertex is covered by
/// appending singleton edges for missed vertices.
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (2usize..6, 1usize..6).prop_flat_map(|(v, e)| {
        collection::vec(collection::vec(0..v, 1..=v.min(3)), e).prop_map(move |mut edges| {
            let covered: std::collections::BTreeSet<usize> =
                edges.iter().flatten().copied().collect();
            for missing in (0..v).filter(|x| !covered.contains(x)) {
                edges.push(vec![missing]);
            }
            Hypergraph::new(v, edges)
        })
    })
}

proptest! {
    #[test]
    fn packing_cover_duality(h in arb_hypergraph()) {
        let p = fractional_edge_packing(&h);
        let c = fractional_vertex_cover(&h);
        prop_assert!((p.value - c.value).abs() < 1e-6,
            "duality gap {} vs {} on {:?}", p.value, c.value, h);
    }

    #[test]
    fn packing_feasible_and_cover_feasible(h in arb_hypergraph()) {
        let p = fractional_edge_packing(&h);
        for v in 0..h.num_vertices() {
            let s: f64 = (0..h.num_edges())
                .filter(|&j| h.edge_contains(j, v))
                .map(|j| p.weights[j])
                .sum();
            prop_assert!(s <= 1.0 + 1e-6);
        }
        let c = fractional_edge_cover(&h);
        for v in 0..h.num_vertices() {
            let s: f64 = (0..h.num_edges())
                .filter(|&j| h.edge_contains(j, v))
                .map(|j| c.weights[j])
                .sum();
            prop_assert!(s >= 1.0 - 1e-6);
        }
        prop_assert!(p.weights.iter().all(|&u| u >= -1e-9));
        prop_assert!(c.weights.iter().all(|&u| u >= -1e-9));
    }

    #[test]
    fn edge_cover_at_least_one_for_covered_graphs(h in arb_hypergraph()) {
        // Any hypergraph with >= 1 vertex needs total cover weight >= 1.
        let c = fractional_edge_cover(&h);
        prop_assert!(c.value >= 1.0 - 1e-6);
    }

    #[test]
    fn shares_product_within_budget(h in arb_hypergraph(), p in 2usize..200) {
        let sizes: Vec<u64> = (0..h.num_edges()).map(|j| 1000 + 137 * j as u64).collect();
        let plan = plan_shares(&h, &sizes, p);
        let prod: usize = plan.shares.iter().product();
        prop_assert!(prod <= p, "shares {:?} exceed p={p}", plan.shares);
        prop_assert!(plan.shares.iter().all(|&s| s >= 1));
        // The rounded load can never beat the fractional LP optimum by
        // more than floating fuzz.
        let rounded = predicted_load(&h, &sizes, &plan.shares);
        let frac = plan.fractional_load(p);
        prop_assert!(rounded >= frac - 1e-6, "rounded {rounded} below LP bound {frac}");
    }

    #[test]
    fn packing_matches_half_integral_brute_force(
        v in 2usize..6,
        edges in collection::vec((0usize..6, 0usize..6), 1..6),
    ) {
        // For ordinary graphs (arity-2 edges) the fractional matching LP
        // has a half-integral optimum, so brute force over u ∈ {0, ½, 1}^m
        // finds the true τ*.
        let mut es: Vec<Vec<usize>> = edges
            .iter()
            .map(|&(a, b)| {
                let (a, b) = (a % v, b % v);
                if a == b { vec![a, (a + 1) % v] } else { vec![a, b] }
            })
            .collect();
        // Cover stragglers so constructors stay happy downstream.
        let covered: std::collections::BTreeSet<usize> = es.iter().flatten().copied().collect();
        for missing in (0..v).filter(|x| !covered.contains(x)) {
            es.push(vec![missing, (missing + 1) % v]);
        }
        let h = Hypergraph::new(v, es);
        let m = h.num_edges();
        prop_assume!(m <= 8);
        let mut best = 0.0f64;
        for mask in 0..3usize.pow(m as u32) {
            let mut u = Vec::with_capacity(m);
            let mut rest = mask;
            for _ in 0..m {
                u.push((rest % 3) as f64 / 2.0);
                rest /= 3;
            }
            let feasible = (0..v).all(|vertex| {
                let s: f64 = (0..m)
                    .filter(|&j| h.edge_contains(j, vertex))
                    .map(|j| u[j])
                    .sum();
                s <= 1.0 + 1e-9
            });
            if feasible {
                best = best.max(u.iter().sum());
            }
        }
        let lp = fractional_edge_packing(&h).value;
        prop_assert!((lp - best).abs() < 1e-6, "LP {lp} vs brute force {best}");
    }

    #[test]
    fn lp_optimal_solutions_are_feasible(
        n in 1usize..4,
        m in 1usize..4,
        coeffs in collection::vec(-5.0f64..5.0, 16),
        rhs in collection::vec(-5.0f64..5.0, 4),
        obj in collection::vec(-3.0f64..3.0, 4),
    ) {
        let constraints: Vec<Constraint> = (0..m).map(|i| Constraint::new(
            (0..n).map(|j| coeffs[i * 4 + j]).collect(),
            if i % 2 == 0 { ConstraintOp::Le } else { ConstraintOp::Ge },
            rhs[i],
        )).collect();
        let lp = LinearProgram { objective: obj[..n].to_vec(), maximize: true, constraints };
        if let LpOutcome::Optimal(s) = solve(&lp) {
            for c in &lp.constraints {
                let lhs: f64 = c.coeffs.iter().zip(&s.x).map(|(a, b)| a * b).sum();
                match c.op {
                    ConstraintOp::Le => prop_assert!(lhs <= c.rhs + 1e-6),
                    ConstraintOp::Ge => prop_assert!(lhs >= c.rhs - 1e-6),
                    ConstraintOp::Eq => prop_assert!((lhs - c.rhs).abs() < 1e-6),
                }
            }
            prop_assert!(s.x.iter().all(|&v| v >= -1e-9));
        }
    }
}
