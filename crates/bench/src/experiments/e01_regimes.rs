//! E01 — the MPC cost-regime table (slides 13–18).
//!
//! The tutorial opens with four reference points for a join of total
//! input `IN` on `p` servers: the ideal (`L = IN/p`, one round), the
//! practical (`L = IN/p^{1−ε}`, `O(1)` rounds), and the two naive
//! strategies (`L = IN` in one round; `L = IN/p` over `p` rounds). We
//! measure all four on the same skew-free two-way join.

use crate::table::fmt;
use crate::Table;
use parqp::data::generate;
use parqp::join::{baselines, twoway};

/// Run E01.
pub fn run() -> Vec<Table> {
    let p = 16;
    let n = 40_000;
    let input = 2 * n;
    let r = generate::key_unique_pairs(n, 1, 1 << 40, 1);
    let s = generate::key_unique_pairs(n, 0, 1 << 40, 2);

    let ideal = twoway::hash_join(&r, 1, &s, 0, p, 42);
    // "Practical O(1) rounds at IN/p^{1−ε}": the 4-round sort join is the
    // suite's representative of a constant-round, slightly-super-ideal-
    // load algorithm.
    let practical = twoway::sort_merge_join(&r, 1, &s, 0, p, 42);
    let naive1 = baselines::naive_one_server(&r, 1, &s, 0, p);
    let naive2 = baselines::naive_ring(&r, 1, &s, 0, p);

    let mut t = Table::new(
        format!("E01 (slides 13–18): cost regimes, IN = {input}, p = {p}"),
        &[
            "strategy",
            "L (tuples)",
            "rounds",
            "C (tuples)",
            "paper L",
            "paper r",
        ],
    );
    let rows = [
        (
            "ideal: hash join",
            &ideal,
            fmt(input as f64 / p as f64),
            "1".to_string(),
        ),
        (
            "practical: sort join",
            &practical,
            format!("~{}", fmt(input as f64 / p as f64)),
            "O(1)".to_string(),
        ),
        (
            "naive 1: one server",
            &naive1,
            fmt(input as f64),
            "1".to_string(),
        ),
        (
            "naive 2: ring",
            &naive2,
            fmt(input as f64 / p as f64),
            format!("{p}"),
        ),
    ];
    for (name, run, paper_l, paper_r) in rows {
        t.row(vec![
            name.to_string(),
            run.report.max_load_tuples().to_string(),
            run.report.num_rounds().to_string(),
            run.report.total_tuples().to_string(),
            paper_l,
            paper_r,
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn regimes_ordered_as_the_paper_says() {
        let t = &super::run()[0];
        let l_of = |i: usize| t.rows[i][1].parse::<u64>().expect("load cell");
        let r_of = |i: usize| t.rows[i][2].parse::<u64>().expect("round cell");
        // naive1's load is ~p× the ideal's; naive2 matches ideal load but
        // takes ~p rounds.
        assert!(l_of(2) > 10 * l_of(0));
        assert!(r_of(3) >= 15);
        assert_eq!(r_of(0), 1);
    }
}
