//! Hypercube (grid) topologies: arranging `p` servers in a `p₁ × … × p_k` box.
//!
//! The HyperCube/Shares algorithm (slides 34–44) addresses servers by
//! coordinates. A tuple of relation `S_j(x_{j1}, x_{j2}, …)` is sent to all
//! servers whose coordinates *agree* with `h_{j1}(x_{j1}), h_{j2}(x_{j2}), …`
//! on the dimensions `S_j` mentions, and are arbitrary (`*`) elsewhere —
//! i.e. a broadcast along the unconstrained dimensions. [`Grid`] provides
//! the rank ↔ coordinate mapping and the `*`-match enumeration.

use crate::error::MpcError;

/// A `k`-dimensional grid of servers with side lengths `dims`.
///
/// Ranks are assigned in row-major order: the last dimension varies fastest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    dims: Vec<usize>,
}

impl Grid {
    /// Create a grid with the given per-dimension sizes (the *shares*).
    ///
    /// # Panics
    /// Panics if any dimension is zero; use [`Grid::try_new`] to handle
    /// that case.
    pub fn new(dims: Vec<usize>) -> Self {
        match Self::try_new(dims) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Grid::new`]: errors on a zero dimension instead of
    /// panicking, for callers deriving shares from untrusted input.
    #[must_use = "the grid (or the sizing error) must be inspected"]
    pub fn try_new(dims: Vec<usize>) -> Result<Self, MpcError> {
        if dims.contains(&0) {
            return Err(MpcError::EmptyTopology { what: "grid" });
        }
        Ok(Self { dims })
    }

    /// A 1-dimensional grid of `p` servers (plain hash partitioning).
    pub fn line(p: usize) -> Self {
        Self::new(vec![p])
    }

    /// Per-dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions `k`.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Total number of servers `∏ pᵢ`.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the grid has zero dimensions (a single server).
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// The rank of the server at `coords`.
    ///
    /// # Panics
    /// Panics if `coords` has the wrong length or a coordinate is out of
    /// range; use [`Grid::try_rank`] to handle those cases.
    pub fn rank(&self, coords: &[usize]) -> usize {
        match self.try_rank(coords) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Grid::rank`].
    #[must_use = "ranks are pure lookups; ignoring the result does nothing"]
    pub fn try_rank(&self, coords: &[usize]) -> Result<usize, MpcError> {
        if coords.len() != self.dims.len() {
            return Err(MpcError::BadArity {
                got: coords.len(),
                expected: self.dims.len(),
            });
        }
        let mut r = 0;
        for (&c, &d) in coords.iter().zip(&self.dims) {
            if c >= d {
                return Err(MpcError::BadCoordinate {
                    coord: c,
                    dim_size: d,
                });
            }
            r = r * d + c;
        }
        Ok(r)
    }

    /// The coordinates of server `rank`.
    ///
    /// # Panics
    /// Panics if `rank >= self.len()`; use [`Grid::try_coords`] to handle
    /// that case.
    pub fn coords(&self, rank: usize) -> Vec<usize> {
        match self.try_coords(rank) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Grid::coords`].
    #[must_use = "coordinates are pure lookups; ignoring the result does nothing"]
    pub fn try_coords(&self, rank: usize) -> Result<Vec<usize>, MpcError> {
        if rank >= self.len() {
            return Err(MpcError::BadRank {
                rank,
                size: self.len(),
            });
        }
        let mut rest = rank;
        let mut out = vec![0; self.dims.len()];
        for (i, &d) in self.dims.iter().enumerate().rev() {
            out[i] = rest % d;
            rest /= d;
        }
        Ok(out)
    }

    /// Enumerate the ranks of all servers matching a partial coordinate,
    /// where `None` means `*` (any value along that dimension).
    ///
    /// This is the HyperCube broadcast set: e.g. for the triangle query,
    /// `R(a,b)` goes to `(h_x(a), h_y(b), *)` — every server whose first
    /// two coordinates match, across the whole third dimension.
    ///
    /// # Panics
    /// Panics if `partial` has the wrong arity; use [`Grid::try_matching`]
    /// to handle that case.
    pub fn matching(&self, partial: &[Option<usize>]) -> Vec<usize> {
        match self.try_matching(partial) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Grid::matching`].
    #[must_use = "the broadcast set is a pure enumeration; ignoring the result does nothing"]
    pub fn try_matching(&self, partial: &[Option<usize>]) -> Result<Vec<usize>, MpcError> {
        if partial.len() != self.dims.len() {
            return Err(MpcError::BadArity {
                got: partial.len(),
                expected: self.dims.len(),
            });
        }
        let mut out = Vec::new();
        let mut coords = vec![0usize; self.dims.len()];
        self.matching_rec(partial, 0, &mut coords, &mut out);
        Ok(out)
    }

    fn matching_rec(
        &self,
        partial: &[Option<usize>],
        dim: usize,
        coords: &mut Vec<usize>,
        out: &mut Vec<usize>,
    ) {
        if dim == self.dims.len() {
            out.push(self.rank(coords));
            return;
        }
        match partial[dim] {
            Some(c) => {
                coords[dim] = c;
                self.matching_rec(partial, dim + 1, coords, out);
            }
            None => {
                for c in 0..self.dims[dim] {
                    coords[dim] = c;
                    self.matching_rec(partial, dim + 1, coords, out);
                }
            }
        }
    }

    /// Number of servers a partial coordinate matches (`∏` of the free dims).
    pub fn matching_count(&self, partial: &[Option<usize>]) -> usize {
        partial
            .iter()
            .zip(&self.dims)
            .map(|(c, &d)| if c.is_some() { 1 } else { d })
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_roundtrip() {
        let g = Grid::new(vec![2, 3, 4]);
        assert_eq!(g.len(), 24);
        for r in 0..g.len() {
            assert_eq!(g.rank(&g.coords(r)), r);
        }
    }

    #[test]
    fn row_major_order() {
        let g = Grid::new(vec![2, 3]);
        assert_eq!(g.rank(&[0, 0]), 0);
        assert_eq!(g.rank(&[0, 1]), 1);
        assert_eq!(g.rank(&[0, 2]), 2);
        assert_eq!(g.rank(&[1, 0]), 3);
        assert_eq!(g.coords(4), vec![1, 1]);
    }

    #[test]
    fn line_grid() {
        let g = Grid::line(5);
        assert_eq!(g.ndim(), 1);
        assert_eq!(g.len(), 5);
        assert_eq!(g.rank(&[3]), 3);
    }

    #[test]
    fn matching_full_wildcard() {
        let g = Grid::new(vec![2, 2]);
        let all = g.matching(&[None, None]);
        assert_eq!(all, vec![0, 1, 2, 3]);
        assert_eq!(g.matching_count(&[None, None]), 4);
    }

    #[test]
    fn matching_partial() {
        let g = Grid::new(vec![2, 3, 2]);
        // fix middle coordinate to 1: servers (i, 1, k) for i in 0..2, k in 0..2
        let m = g.matching(&[None, Some(1), None]);
        assert_eq!(m.len(), 4);
        assert_eq!(g.matching_count(&[None, Some(1), None]), 4);
        for r in m {
            assert_eq!(g.coords(r)[1], 1);
        }
    }

    #[test]
    fn matching_fully_fixed() {
        let g = Grid::new(vec![3, 3]);
        let m = g.matching(&[Some(2), Some(0)]);
        assert_eq!(m, vec![g.rank(&[2, 0])]);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_dim_rejected() {
        Grid::new(vec![2, 0]);
    }

    #[test]
    fn try_variants_return_typed_errors() {
        use crate::error::MpcError;
        assert_eq!(
            Grid::try_new(vec![2, 0]),
            Err(MpcError::EmptyTopology { what: "grid" })
        );
        let g = Grid::new(vec![2, 3]);
        assert_eq!(g.try_rank(&[1, 2]), Ok(5));
        assert_eq!(
            g.try_rank(&[1]),
            Err(MpcError::BadArity {
                got: 1,
                expected: 2
            })
        );
        assert_eq!(
            g.try_rank(&[0, 3]),
            Err(MpcError::BadCoordinate {
                coord: 3,
                dim_size: 3
            })
        );
        assert_eq!(g.try_coords(5), Ok(vec![1, 2]));
        assert_eq!(g.try_coords(6), Err(MpcError::BadRank { rank: 6, size: 6 }));
        assert!(g.try_matching(&[None]).is_err());
        assert_eq!(g.try_matching(&[Some(1), None]).map(|m| m.len()), Ok(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_coord_rejected() {
        Grid::new(vec![2, 2]).rank(&[0, 2]);
    }

    #[test]
    fn matching_covers_grid_exactly_once_when_partitioned() {
        // Fixing one dimension partitions the grid into disjoint slabs.
        let g = Grid::new(vec![3, 4]);
        let mut seen = vec![false; g.len()];
        for c in 0..3 {
            for r in g.matching(&[Some(c), None]) {
                assert!(!seen[r]);
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
