//! Trace/ledger consistency: the event stream captured by
//! `parqp_trace::Recorder` must mirror `Cluster`'s accounting exactly.
//!
//! For every algorithm the trace's totals (Σ tuples, Σ words) equal the
//! `LoadReport`'s, and for algorithms whose reports are built round by
//! round the traced round count matches `num_rounds()` too. Algorithms
//! that compose reports with `LoadReport::parallel` (the skew joins run
//! their heavy and light parts on server *groups* side by side) merge
//! rounds in the report, so there the trace — which sees every exchange
//! as its own round — may have more rounds, never fewer.
//!
//! Also asserted here: the acceptance criterion that a fixed-seed run
//! produces byte-identical JSONL on two consecutive invocations.

use parqp::data::generate;
use parqp::join::{multiway, plans, skewhc, twoway};
use parqp::matmul::{rect_block, square_block, Matrix};
use parqp::mpc::{Cluster, LoadReport};
use parqp::query::Query;
use parqp::trace::{analyze, export, Recorder};
use parqp_testkit::Rng;

/// Run `f` under a recorder and check trace totals against the report
/// it returns. `rounds_exact` is false for `LoadReport::parallel`
/// compositions (see module docs).
fn assert_trace_matches(name: &str, rounds_exact: bool, f: impl FnOnce() -> LoadReport) {
    let (rec, report) = Recorder::capture(f);
    assert_eq!(rec.dropped(), 0, "{name}: ring buffer overflowed");
    let totals = analyze::totals(&rec);
    assert_eq!(totals.tuples, report.total_tuples(), "{name}: Σ tuples");
    assert_eq!(totals.words, report.total_words(), "{name}: Σ words");
    if rounds_exact {
        assert_eq!(totals.rounds, report.num_rounds(), "{name}: rounds");
        // Per-round maxima agree too: the heatmap's hottest cell is the
        // report's L.
        let loads = analyze::round_loads(&rec);
        let max = loads.iter().map(analyze::RoundLoad::max_tuples).max();
        assert_eq!(max.unwrap_or(0), report.max_load_tuples(), "{name}: L_max");
    } else {
        assert!(
            totals.rounds >= report.num_rounds(),
            "{name}: trace has {} rounds, report merged to {}",
            totals.rounds,
            report.num_rounds()
        );
    }
}

#[test]
fn join_traces_match_reports() {
    let mut rng = Rng::seed_from_u64(0x7ace);
    for _ in 0..3 {
        let seed = rng.next_u64();
        let r = generate::uniform(2, 1200, 150, seed);
        let s = generate::uniform(2, 1200, 150, seed ^ 1);
        assert_trace_matches("hash_join", true, || {
            twoway::hash_join(&r, 1, &s, 0, 8, seed).report
        });
        assert_trace_matches("broadcast_join", true, || {
            twoway::broadcast_join(&r, 1, &s, 0, 8).report
        });
        assert_trace_matches("cartesian", true, || {
            twoway::cartesian(&r, &s, 6, seed).report
        });
        assert_trace_matches("sort_merge_join", true, || {
            twoway::sort_merge_join(&r, 1, &s, 0, 8, seed).report
        });
        let z = generate::zipf_pairs(1500, 300, 1.2, 0, seed);
        assert_trace_matches("skew_join", false, || {
            twoway::skew_join(&z, 0, &s, 0, 8, seed).report
        });
    }
}

#[test]
fn multiway_traces_match_reports() {
    let q = Query::triangle();
    let g = generate::random_symmetric_graph(80, 500, 11);
    let rels = vec![g.clone(), g.clone(), g];
    assert_trace_matches("hypercube", true, || {
        multiway::hypercube(&q, &rels, 27, 11).report
    });
    assert_trace_matches("skewhc", false, || skewhc::skewhc(&q, &rels, 27, 11).report);
    let chain = Query::chain(3);
    let crels: Vec<_> = (0..3)
        .map(|i| generate::uniform(2, 400, 80, 20 + i))
        .collect();
    assert_trace_matches("binary_join_plan", true, || {
        plans::binary_join_plan(&chain, &crels, 16, 13, None).report
    });
}

#[test]
fn sort_traces_match_reports() {
    let mut rng = Rng::seed_from_u64(0x50f7);
    let items: Vec<u64> = (0..20_000).map(|_| rng.gen_range(0..1u64 << 20)).collect();
    assert_trace_matches("psrs", true, || {
        let mut cluster = Cluster::new(16);
        let local = cluster.scatter(items.clone());
        parqp::sort::psrs(&mut cluster, local);
        cluster.report()
    });
    assert_trace_matches("multiround_sort", true, || {
        let mut cluster = Cluster::new(16);
        let local = cluster.scatter(items.clone());
        parqp::sort::multiround_sort(&mut cluster, local, 4);
        cluster.report()
    });
}

#[test]
fn matmul_traces_match_reports() {
    let a = Matrix::random(24, 1);
    let b = Matrix::random(24, 2);
    assert_trace_matches("square_block", true, || square_block(&a, &b, 4, 8).report);
    assert_trace_matches("rect_block", true, || rect_block(&a, &b, 6).report);
}

#[test]
fn fixed_seed_jsonl_is_byte_identical_across_invocations() {
    let export_once = || {
        let q = Query::triangle();
        let g = generate::random_symmetric_graph(60, 400, 3);
        let (rec, _) =
            Recorder::capture(|| multiway::hypercube(&q, &[g.clone(), g.clone(), g], 8, 3));
        export::jsonl(&rec)
    };
    let first = export_once();
    let second = export_once();
    assert!(!first.is_empty());
    assert_eq!(first, second);
}

#[test]
fn metrics_reconcile_with_ledger_and_trace_for_every_experiment() {
    // The metrics registry is fed by the exact event stream the trace
    // records, which in turn mirrors the exchange ledger — so all three
    // views of every observe experiment must reconcile exactly.
    for e in parqp::observe::EXPERIMENTS {
        let (registry, run) =
            parqp::mpc::metrics::capture(|| parqp::observe::run_experiment_full(e.name, 8, 42));
        let run = run.expect("known experiment");
        let totals = analyze::totals(&run.recorder);
        let name = e.name;
        assert_eq!(
            registry.counter("tuples"),
            run.report.total_tuples(),
            "{name}: metrics vs ledger Σ tuples"
        );
        assert_eq!(
            registry.counter("words"),
            run.report.total_words(),
            "{name}: metrics vs ledger Σ words"
        );
        assert_eq!(
            registry.counter("tuples"),
            totals.tuples,
            "{name}: metrics vs trace Σ tuples"
        );
        assert_eq!(
            registry.counter("words"),
            totals.words,
            "{name}: metrics vs trace Σ words"
        );
        assert_eq!(
            registry.rounds() as usize,
            totals.rounds,
            "{name}: metrics vs trace rounds"
        );
        assert_eq!(
            registry.load_max(parqp::mpc::metrics::LoadUnit::Tuples),
            run.report.max_load_tuples(),
            "{name}: metrics vs ledger L_max (tuples)"
        );
        assert_eq!(
            registry.load_max(parqp::mpc::metrics::LoadUnit::Words),
            run.report.max_load_words(),
            "{name}: metrics vs ledger L_max (words)"
        );
    }
}

#[test]
fn page_io_metrics_reconcile_with_the_store_ledger_for_every_experiment() {
    // The IO ledger has two views: the store's per-server totals
    // (io_report) and the metrics registry's counters, fed by the
    // cluster draining deltas at round boundaries. Since every
    // experiment ends with a report() flush, the two must reconcile
    // exactly — a drain dropped or double-counted would show here.
    use parqp::data::paged::{self, IoStats, StoreConfig};
    for e in parqp::observe::EXPERIMENTS {
        let (totals, (registry, run)) = paged::capture(StoreConfig::default(), || {
            parqp::mpc::metrics::capture(|| parqp::observe::run_experiment_full(e.name, 8, 42))
        });
        run.expect("known experiment");
        let mut sum = IoStats::default();
        for t in &totals {
            sum.merge(t);
        }
        let name = e.name;
        assert!(sum.reads > 0, "{name}: paged run charged no reads");
        assert_eq!(
            registry.counter("io_reads"),
            sum.reads,
            "{name}: metrics vs store Σ reads"
        );
        assert_eq!(
            registry.counter("io_misses"),
            sum.misses,
            "{name}: metrics vs store Σ misses"
        );
        assert_eq!(
            registry.counter("io_evictions"),
            sum.evictions,
            "{name}: metrics vs store Σ evictions"
        );
        assert!(
            (registry.io_hit_rate() - sum.hit_rate()).abs() < 1e-12,
            "{name}: hit-rate views diverge"
        );
    }
}

#[test]
fn mean_load_bounds_are_adhered_to_within_half_of_themselves() {
    // Acceptance criterion: the skew-free experiments whose announced
    // bound is the paper's mean load (hash join's IN/p, HyperCube's
    // Σ N_j/∏ p_i) measure a bound_ratio in [1.0, 1.5] at every
    // metrics point — above 1 because a max can't undercut the mean,
    // below 1.5 because uniform inputs hash nearly flat.
    let report = parqp::metrics::collect(42).expect("collect runs");
    for name in ["twoway-hash", "triangle-hypercube"] {
        for &p in parqp::metrics::METRICS_POINTS {
            let key = format!("{name}/p{p}");
            let pt = report.experiments.get(&key).expect("point collected");
            assert!(
                (1.0..=1.5).contains(&pt.bound_ratio),
                "{key}: bound_ratio {} outside [1.0, 1.5]",
                pt.bound_ratio
            );
        }
    }
}

#[test]
fn untraced_runs_report_identically_to_traced_runs() {
    // Instrumentation must be observational: same seed, same report,
    // recorder installed or not.
    let r = generate::uniform(2, 800, 100, 5);
    let s = generate::uniform(2, 800, 100, 6);
    let bare = twoway::hash_join(&r, 1, &s, 0, 8, 7).report;
    let (_, traced) = Recorder::capture(|| twoway::hash_join(&r, 1, &s, 0, 8, 7).report);
    assert_eq!(bare.total_tuples(), traced.total_tuples());
    assert_eq!(bare.total_words(), traced.total_words());
    assert_eq!(bare.num_rounds(), traced.num_rounds());
    assert_eq!(bare.max_load_tuples(), traced.max_load_tuples());
}
