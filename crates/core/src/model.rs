//! The closed-form cost and probability formulas of the tutorial.
//!
//! Every bench prints a "paper formula" column next to the measured
//! value; the formulas live here.

use parqp_lp::{fractional_edge_packing, Hypergraph};
use parqp_query::{psi_star, Query};

/// Chernoff tail bound for hash partitioning with uniform degree `d`
/// (slide 25): `Pr[L ≥ (1+ε)·IN/p] ≤ p·exp(−ε²·IN/(3·p·d))`.
///
/// `d = 1` is the no-skew case of slide 24.
pub fn hash_partition_tail_bound(input: f64, p: f64, d: f64, eps: f64) -> f64 {
    (p * (-eps * eps * input / (3.0 * p * d)).exp()).min(1.0)
}

/// The degree threshold of slide 26: the largest uniform degree `d` for
/// which the hash-partitioned load stays within `(1+ε)·IN/p` with
/// probability `1 − δ`, i.e. the `d` solving
/// `p·exp(−ε²·IN/(3·p·d)) = δ`:
///
/// ```text
/// d = ε²·IN / (3·p·ln(p/δ))
/// ```
///
/// With the slide's parameters (`IN = 10¹¹`, ε = 0.3, δ = 0.05) this
/// reproduces its curve — about 4 million at `p = 100`, falling steeply
/// as `p` grows: more servers make skew bite earlier.
pub fn degree_threshold(input: f64, p: f64, eps: f64, delta: f64) -> f64 {
    eps * eps * input / (3.0 * p * (p / delta).ln())
}

/// Skew-free one-round load `L = IN/p^{1/τ*}` (slide 40).
pub fn one_round_load(input: f64, p: f64, tau_star: f64) -> f64 {
    input / p.powf(1.0 / tau_star)
}

/// Skewed one-round load `L = IN/p^{1/ψ*}` (slide 47).
pub fn one_round_load_skewed(input: f64, p: f64, psi: f64) -> f64 {
    input / p.powf(1.0 / psi)
}

/// GYM / Yannakakis-style load `L = (IN + OUT)/p` (slide 78).
pub fn gym_load(input: f64, output: f64, p: f64) -> f64 {
    (input + output) / p
}

/// The GYM-vs-HyperCube crossover of slide 78: GYM's `(IN+OUT)/p` beats
/// the one-round `IN/p^{1/τ*}` exactly when `OUT < p^{1−1/τ*}·IN − IN`;
/// returns that output threshold.
pub fn gym_crossover_output(input: f64, p: f64, tau_star: f64) -> f64 {
    p.powf(1.0 - 1.0 / tau_star) * input - input
}

/// τ\* of a query (fractional edge packing optimum).
pub fn tau_star(q: &Query) -> f64 {
    fractional_edge_packing(&q.hypergraph()).value
}

/// τ\* straight from a hypergraph.
pub fn tau_star_hg(h: &Hypergraph) -> f64 {
    fractional_edge_packing(h).value
}

/// ψ\* of a query (slide 47; re-exported from `parqp_query`).
pub fn psi_star_of(q: &Query) -> f64 {
    psi_star(q)
}

/// The HyperCube speedup of slide 45: with fractional shares the
/// one-round load shrinks by `p^{1/τ*}`; this returns the *speedup*
/// `L(1)/L(p) = p^{1/τ*}`.
pub fn hypercube_speedup(p: f64, tau_star: f64) -> f64 {
    p.powf(1.0 / tau_star)
}

/// Slide 62's scalability limit: the factor by which `p` must grow to
/// double the HyperCube speedup is `2^{τ*}` — 1024× for the chain of 20
/// relations (τ\* = 10).
pub fn processors_for_double_speedup(tau_star: f64) -> f64 {
    2f64.powf(tau_star)
}

/// Expected PSRS load `N/p` (slide 102).
pub fn psrs_load(n: f64, p: f64) -> f64 {
    n / p
}

/// Sorting round lower bound `Ω(log_L N)` (slide 105).
pub fn sort_round_lower_bound(n: f64, l: f64) -> f64 {
    n.ln() / l.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_bound_decreases_with_input() {
        let loose = hash_partition_tail_bound(1e4, 100.0, 1.0, 0.1);
        let tight = hash_partition_tail_bound(1e7, 100.0, 1.0, 0.1);
        assert!(tight < loose);
        assert!((0.0..=1.0).contains(&tight));
    }

    #[test]
    fn tail_bound_grows_with_degree() {
        let low_d = hash_partition_tail_bound(1e6, 100.0, 1.0, 0.3);
        let high_d = hash_partition_tail_bound(1e6, 100.0, 1000.0, 0.3);
        assert!(high_d > low_d);
    }

    #[test]
    fn slide26_annotation_p100() {
        // Slide 26: IN = 100 billion, 30% over the mean with prob 95%,
        // p = 100 ⇒ d ≈ 4,000,000.
        let d = degree_threshold(1e11, 100.0, 0.3, 0.05);
        assert!((3.5e6..4.5e6).contains(&d), "d = {d}");
    }

    #[test]
    fn degree_threshold_decreases_in_p() {
        let d100 = degree_threshold(1e11, 100.0, 0.3, 0.05);
        let d1000 = degree_threshold(1e11, 1000.0, 0.3, 0.05);
        assert!(d1000 < d100 / 5.0, "skew bites harder at larger p");
    }

    #[test]
    fn threshold_consistent_with_bound() {
        // At d = degree_threshold the tail bound equals δ.
        let (input, p, eps, delta) = (1e9, 64.0, 0.3, 0.05);
        let d = degree_threshold(input, p, eps, delta);
        let bound = hash_partition_tail_bound(input, p, d, eps);
        assert!((bound - delta).abs() < 1e-9, "bound = {bound}");
    }

    #[test]
    fn loads_match_slide51() {
        let q = Query::triangle();
        let tau = tau_star(&q);
        let psi = psi_star_of(&q);
        assert!((tau - 1.5).abs() < 1e-9);
        assert!((psi - 2.0).abs() < 1e-9);
        let p = 64.0;
        let n = 3e6;
        assert!((one_round_load(n, p, tau) - n / p.powf(2.0 / 3.0)).abs() < 1e-6);
        assert!((one_round_load_skewed(n, p, psi) - n / 8.0).abs() < 1e-6);
    }

    #[test]
    fn chain20_needs_1024x() {
        // Slide 62.
        let q = Query::chain(20);
        assert!((processors_for_double_speedup(tau_star(&q)) - 1024.0).abs() < 1e-6);
    }

    #[test]
    fn crossover_positive_iff_p_gt_one() {
        let q = Query::triangle();
        let tau = tau_star(&q);
        assert!(gym_crossover_output(1e6, 64.0, tau) > 0.0);
        assert!(gym_crossover_output(1e6, 1.0, tau) <= 0.0);
    }

    #[test]
    fn sort_bound_monotone() {
        assert!(sort_round_lower_bound(1e9, 1e3) > sort_round_lower_bound(1e9, 1e6));
        assert!((psrs_load(1e6, 100.0) - 1e4).abs() < 1e-9);
    }
}
