//! Self-check: the workspace must satisfy its own linter.
//!
//! This is the test-suite twin of the CI `cargo run -p parqp-lint`
//! step: every rule family runs over every member crate against the
//! committed `lint/baseline.toml`. If this fails, either fix the
//! violation, annotate a sanctioned site with
//! `// parqp-lint: allow(PQxxx)`, or (for a deliberate panic-surface
//! reduction) regenerate the ratchet with
//! `cargo run -p parqp-lint -- --fix-baseline`.

use parqp_lint::{lint_workspace, load_baseline, workspace_root};

#[test]
fn workspace_is_lint_clean_under_committed_baseline() {
    let root = workspace_root();
    let baseline = load_baseline(&root).expect("lint/baseline.toml exists and parses");
    let report = lint_workspace(&root, Some(&baseline)).expect("workspace lint runs");
    assert!(
        report.diagnostics.is_empty(),
        "parqp-lint found violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned >= 80,
        "walked only {} files — member discovery is broken",
        report.files_scanned
    );
}

#[test]
fn baseline_covers_every_member_crate() {
    let root = workspace_root();
    let baseline = load_baseline(&root).expect("baseline parses");
    for dir in parqp_lint::member_dirs(&root).expect("members") {
        let name = dir.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            baseline.crates.contains_key(&name),
            "crate `{name}` missing from lint/baseline.toml — run --fix-baseline"
        );
    }
}
