//! A dense two-phase primal simplex solver.
//!
//! Solves `max / min cᵀx` subject to linear constraints (`≤`, `≥`, `=`)
//! and `x ≥ 0`. The implementation is the textbook tableau method:
//!
//! 1. normalize all right-hand sides to be non-negative;
//! 2. add slack variables for `≤`, surplus + artificial for `≥`, and
//!    artificial for `=`;
//! 3. **phase 1** minimizes the sum of artificials to find a basic
//!    feasible solution (positive optimum ⇒ infeasible);
//! 4. **phase 2** optimizes the real objective from that basis.
//!
//! Bland's rule (smallest-index entering and leaving variable) guarantees
//! termination. Problems in this workspace have at most a few dozen
//! variables, so the dense `O(m·n)`-per-pivot tableau is more than fast
//! enough, and we bias every comparison with a small tolerance for
//! numerical robustness.

/// Relational operator of a [`Constraint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `coeffs · x ≤ rhs`
    Le,
    /// `coeffs · x ≥ rhs`
    Ge,
    /// `coeffs · x = rhs`
    Eq,
}

/// One linear constraint `coeffs · x (≤|≥|=) rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Coefficient of each structural variable (length = number of vars).
    pub coeffs: Vec<f64>,
    /// The relational operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// Convenience constructor.
    pub fn new(coeffs: Vec<f64>, op: ConstraintOp, rhs: f64) -> Self {
        Self { coeffs, op, rhs }
    }
}

/// A linear program over non-negative variables.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    /// Objective coefficients, one per variable.
    pub objective: Vec<f64>,
    /// `true` to maximize the objective, `false` to minimize.
    pub maximize: bool,
    /// The constraint rows.
    pub constraints: Vec<Constraint>,
}

/// An optimal solution.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Optimal variable assignment.
    pub x: Vec<f64>,
    /// Objective value at `x` (in the caller's orientation).
    pub objective: f64,
}

/// Result of [`solve`].
#[derive(Debug, Clone)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal(Solution),
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

impl LpOutcome {
    /// Unwrap the optimal solution.
    ///
    /// # Panics
    /// Panics if the LP was infeasible or unbounded.
    pub fn expect_optimal(self, msg: &str) -> Solution {
        match self {
            LpOutcome::Optimal(s) => s,
            other => panic!("{msg}: {other:?}"),
        }
    }
}

const EPS: f64 = 1e-9;

struct Tableau {
    /// Constraint matrix rows, including slack/artificial columns.
    a: Vec<Vec<f64>>,
    /// Right-hand sides (always ≥ 0 inside the tableau).
    b: Vec<f64>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Total number of columns.
    cols: usize,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > EPS, "pivot on ~zero element");
        let inv = 1.0 / piv;
        for v in &mut self.a[row] {
            *v *= inv;
        }
        self.b[row] *= inv;
        let pivot_row = self.a[row].clone();
        let pivot_b = self.b[row];
        for r in 0..self.a.len() {
            if r == row {
                continue;
            }
            let factor = self.a[r][col];
            if factor.abs() <= EPS {
                continue;
            }
            for (dst, src) in self.a[r].iter_mut().zip(&pivot_row) {
                *dst -= factor * src;
            }
            self.b[r] -= factor * pivot_b;
        }
        self.basis[row] = col;
    }

    /// Run simplex iterations maximizing `cost` (length `cols`) from the
    /// current basis. Returns `None` if unbounded, otherwise the optimal
    /// objective value. Uses Bland's rule.
    fn optimize(&mut self, cost: &[f64], allowed: &[bool]) -> Option<f64> {
        loop {
            // Reduced costs: z_j - c_j form. Compute c_B B^{-1} A_j - c_j
            // implicitly: since the tableau is kept in canonical form we
            // recompute the objective row each iteration (cheap at our sizes).
            let m = self.a.len();
            let mut reduced = vec![0.0; self.cols];
            for (j, r) in reduced.iter_mut().enumerate() {
                let mut z = 0.0;
                for i in 0..m {
                    z += cost[self.basis[i]] * self.a[i][j];
                }
                *r = cost[j] - z;
            }
            // Bland: smallest-index column with positive reduced cost.
            let entering = (0..self.cols)
                .find(|&j| allowed[j] && reduced[j] > EPS && !self.basis.contains(&j));
            let Some(col) = entering else {
                let obj: f64 = (0..m).map(|i| cost[self.basis[i]] * self.b[i]).sum();
                return Some(obj);
            };
            // Ratio test; Bland tie-break on smallest basis variable index.
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..m {
                if self.a[i][col] > EPS {
                    let ratio = self.b[i] / self.a[i][col];
                    match leave {
                        None => leave = Some((i, ratio)),
                        Some((li, lr)) => {
                            if ratio < lr - EPS
                                || (ratio < lr + EPS && self.basis[i] < self.basis[li])
                            {
                                leave = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, _)) = leave else {
                return None; // unbounded in this direction
            };
            self.pivot(row, col);
        }
    }
}

/// Solve a linear program. See the module documentation for the method.
///
/// # Panics
/// Panics if constraint coefficient vectors disagree with the objective
/// length, or any coefficient is non-finite.
pub fn solve(lp: &LinearProgram) -> LpOutcome {
    let n = lp.objective.len();
    assert!(
        lp.objective.iter().all(|c| c.is_finite()),
        "non-finite objective"
    );
    for c in &lp.constraints {
        assert_eq!(c.coeffs.len(), n, "constraint arity mismatch");
        assert!(
            c.coeffs.iter().all(|v| v.is_finite()) && c.rhs.is_finite(),
            "non-finite constraint"
        );
    }
    let m = lp.constraints.len();

    // Column layout: [0..n) structural | [n..n+slack) slack/surplus | artificials.
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut rhs: Vec<f64> = Vec::with_capacity(m);
    let mut ops: Vec<ConstraintOp> = Vec::with_capacity(m);
    for c in &lp.constraints {
        let (mut coeffs, mut r, mut op) = (c.coeffs.clone(), c.rhs, c.op);
        if r < 0.0 {
            for v in &mut coeffs {
                *v = -*v;
            }
            r = -r;
            op = match op {
                ConstraintOp::Le => ConstraintOp::Ge,
                ConstraintOp::Ge => ConstraintOp::Le,
                ConstraintOp::Eq => ConstraintOp::Eq,
            };
        }
        rows.push(coeffs);
        rhs.push(r);
        ops.push(op);
    }

    let n_slack = ops
        .iter()
        .filter(|o| !matches!(o, ConstraintOp::Eq))
        .count();
    let n_art = ops
        .iter()
        .filter(|o| !matches!(o, ConstraintOp::Le))
        .count();
    let cols = n + n_slack + n_art;

    let mut a = vec![vec![0.0; cols]; m];
    let mut basis = vec![usize::MAX; m];
    let mut art_cols = Vec::with_capacity(n_art);
    let (mut s_next, mut a_next) = (n, n + n_slack);
    for i in 0..m {
        a[i][..n].copy_from_slice(&rows[i]);
        match ops[i] {
            ConstraintOp::Le => {
                a[i][s_next] = 1.0;
                basis[i] = s_next;
                s_next += 1;
            }
            ConstraintOp::Ge => {
                a[i][s_next] = -1.0;
                s_next += 1;
                a[i][a_next] = 1.0;
                basis[i] = a_next;
                art_cols.push(a_next);
                a_next += 1;
            }
            ConstraintOp::Eq => {
                a[i][a_next] = 1.0;
                basis[i] = a_next;
                art_cols.push(a_next);
                a_next += 1;
            }
        }
    }

    let mut t = Tableau {
        a,
        b: rhs,
        basis,
        cols,
    };

    // Phase 1: maximize -Σ artificials.
    if !art_cols.is_empty() {
        let mut cost = vec![0.0; cols];
        for &c in &art_cols {
            cost[c] = -1.0;
        }
        let allowed = vec![true; cols];
        let obj = t
            .optimize(&cost, &allowed)
            .expect("phase 1 is bounded by construction");
        if obj < -1e-7 {
            return LpOutcome::Infeasible;
        }
        // Pivot any artificial still in the basis (at value 0) out of it.
        for i in 0..m {
            if art_cols.contains(&t.basis[i]) {
                if let Some(col) = (0..n + n_slack).find(|&j| t.a[i][j].abs() > EPS) {
                    t.pivot(i, col);
                }
                // If the whole row is zero the constraint was redundant;
                // the artificial stays basic at 0, harmless for phase 2
                // because its column is disallowed below.
            }
        }
    }

    // Phase 2: the real objective, artificial columns disallowed.
    let mut cost = vec![0.0; cols];
    let sign = if lp.maximize { 1.0 } else { -1.0 };
    for (j, c) in lp.objective.iter().enumerate() {
        cost[j] = sign * c;
    }
    let mut allowed = vec![true; cols];
    for &c in &art_cols {
        allowed[c] = false;
    }
    let Some(obj) = t.optimize(&cost, &allowed) else {
        return LpOutcome::Unbounded;
    };

    let mut x = vec![0.0; n];
    for (i, &bv) in t.basis.iter().enumerate() {
        if bv < n {
            x[bv] = t.b[i];
        }
    }
    LpOutcome::Optimal(Solution {
        x,
        objective: sign * obj,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(lp: &LinearProgram) -> Solution {
        solve(lp).expect_optimal("expected optimal")
    }

    #[test]
    fn textbook_max() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 => x=2, y=6, obj=36
        let lp = LinearProgram {
            objective: vec![3.0, 5.0],
            maximize: true,
            constraints: vec![
                Constraint::new(vec![1.0, 0.0], ConstraintOp::Le, 4.0),
                Constraint::new(vec![0.0, 2.0], ConstraintOp::Le, 12.0),
                Constraint::new(vec![3.0, 2.0], ConstraintOp::Le, 18.0),
            ],
        };
        let s = optimal(&lp);
        assert!((s.objective - 36.0).abs() < 1e-7);
        assert!((s.x[0] - 2.0).abs() < 1e-7);
        assert!((s.x[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2 => x=10 (wait: y=0 allowed)
        // optimum: y=0, x=10 → 20? but cost of x is 2 < 3 so use x only.
        let lp = LinearProgram {
            objective: vec![2.0, 3.0],
            maximize: false,
            constraints: vec![
                Constraint::new(vec![1.0, 1.0], ConstraintOp::Ge, 10.0),
                Constraint::new(vec![1.0, 0.0], ConstraintOp::Ge, 2.0),
            ],
        };
        let s = optimal(&lp);
        assert!(
            (s.objective - 20.0).abs() < 1e-7,
            "objective {}",
            s.objective
        );
        assert!((s.x[0] - 10.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 5, x <= 3 => 5
        let lp = LinearProgram {
            objective: vec![1.0, 1.0],
            maximize: true,
            constraints: vec![
                Constraint::new(vec![1.0, 1.0], ConstraintOp::Eq, 5.0),
                Constraint::new(vec![1.0, 0.0], ConstraintOp::Le, 3.0),
            ],
        };
        let s = optimal(&lp);
        assert!((s.objective - 5.0).abs() < 1e-7);
        assert!((s.x[0] + s.x[1] - 5.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2
        let lp = LinearProgram {
            objective: vec![1.0],
            maximize: true,
            constraints: vec![
                Constraint::new(vec![1.0], ConstraintOp::Le, 1.0),
                Constraint::new(vec![1.0], ConstraintOp::Ge, 2.0),
            ],
        };
        assert!(matches!(solve(&lp), LpOutcome::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        // max x s.t. x >= 1
        let lp = LinearProgram {
            objective: vec![1.0],
            maximize: true,
            constraints: vec![Constraint::new(vec![1.0], ConstraintOp::Ge, 1.0)],
        };
        assert!(matches!(solve(&lp), LpOutcome::Unbounded));
    }

    #[test]
    fn negative_rhs_normalized() {
        // max x s.t. -x <= -2  (i.e. x >= 2), x <= 5 => 5
        let lp = LinearProgram {
            objective: vec![1.0],
            maximize: true,
            constraints: vec![
                Constraint::new(vec![-1.0], ConstraintOp::Le, -2.0),
                Constraint::new(vec![1.0], ConstraintOp::Le, 5.0),
            ],
        };
        let s = optimal(&lp);
        assert!((s.objective - 5.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // A classically degenerate LP (Beale-like); Bland's rule must terminate.
        let lp = LinearProgram {
            objective: vec![0.75, -150.0, 0.02, -6.0],
            maximize: true,
            constraints: vec![
                Constraint::new(vec![0.25, -60.0, -0.04, 9.0], ConstraintOp::Le, 0.0),
                Constraint::new(vec![0.5, -90.0, -0.02, 3.0], ConstraintOp::Le, 0.0),
                Constraint::new(vec![0.0, 0.0, 1.0, 0.0], ConstraintOp::Le, 1.0),
            ],
        };
        let s = optimal(&lp);
        assert!(
            (s.objective - 0.05).abs() < 1e-6,
            "objective {}",
            s.objective
        );
    }

    #[test]
    fn zero_objective_feasibility_check() {
        let lp = LinearProgram {
            objective: vec![0.0, 0.0],
            maximize: true,
            constraints: vec![
                Constraint::new(vec![1.0, 1.0], ConstraintOp::Eq, 1.0),
                Constraint::new(vec![1.0, -1.0], ConstraintOp::Eq, 0.0),
            ],
        };
        let s = optimal(&lp);
        assert!((s.x[0] - 0.5).abs() < 1e-7);
        assert!((s.x[1] - 0.5).abs() < 1e-7);
    }

    #[test]
    fn redundant_equalities_ok() {
        // x + y = 2 stated twice; max x s.t. x <= 1.5
        let lp = LinearProgram {
            objective: vec![1.0, 0.0],
            maximize: true,
            constraints: vec![
                Constraint::new(vec![1.0, 1.0], ConstraintOp::Eq, 2.0),
                Constraint::new(vec![1.0, 1.0], ConstraintOp::Eq, 2.0),
                Constraint::new(vec![1.0, 0.0], ConstraintOp::Le, 1.5),
            ],
        };
        let s = optimal(&lp);
        assert!((s.objective - 1.5).abs() < 1e-7);
    }

    #[test]
    fn solution_satisfies_constraints() {
        let lp = LinearProgram {
            objective: vec![1.0, 2.0, 3.0],
            maximize: true,
            constraints: vec![
                Constraint::new(vec![1.0, 1.0, 1.0], ConstraintOp::Le, 10.0),
                Constraint::new(vec![1.0, 2.0, 0.0], ConstraintOp::Ge, 2.0),
                Constraint::new(vec![0.0, 1.0, 1.0], ConstraintOp::Le, 7.0),
            ],
        };
        let s = optimal(&lp);
        for c in &lp.constraints {
            let lhs: f64 = c.coeffs.iter().zip(&s.x).map(|(a, b)| a * b).sum();
            match c.op {
                ConstraintOp::Le => assert!(lhs <= c.rhs + 1e-7),
                ConstraintOp::Ge => assert!(lhs >= c.rhs - 1e-7),
                ConstraintOp::Eq => assert!((lhs - c.rhs).abs() < 1e-7),
            }
        }
        assert!(s.x.iter().all(|&v| v >= -1e-9));
    }
}
