//! Matrix multiplication three ways (slides 107–126): as a SQL query
//! (join + group-by), as the 1-round rectangle-block algorithm, and as
//! the multi-round square-block algorithm — all on the same simulated
//! cluster, all producing the same matrix.
//!
//! ```text
//! cargo run --release --example matmul_sql
//! ```

use parqp::matmul::{cost, rect_block, sql_matmul, square_block, Matrix};

fn main() {
    let n = 64;
    let p = 64;
    let a = Matrix::random_int(n, 10, 1);
    let b = Matrix::random_int(n, 10, 2);
    let oracle = a.multiply(&b);

    // SELECT A.i, B.k, SUM(A.v*B.v) FROM A, B WHERE A.j = B.j GROUP BY A.i, B.k
    let sql = sql_matmul(&a, &b, p, 42);
    // Rectangle-block: t rows × t cols per processor, one round.
    let t = 16;
    let rect = rect_block(&a, &b, t);
    // Square-block: H×H blocking, groups G_z, H rounds at p = H².
    let h = 8;
    let square = square_block(&a, &b, h, h * h);

    println!("n = {n}, all entries integer — results must agree exactly\n");
    println!(
        "{:<18} {:>8} {:>7} {:>12} {:>10}",
        "algorithm", "L(words)", "rounds", "C(words)", "servers"
    );
    for (name, report) in [
        ("SQL join+groupby", &sql.report),
        ("rectangle-block", &rect.report),
        ("square-block", &square.report),
    ] {
        println!(
            "{:<18} {:>8} {:>7} {:>12} {:>10}",
            name,
            report.max_load_words(),
            report.num_rounds(),
            report.total_words(),
            report.servers,
        );
    }
    assert!(sql.c.max_abs_diff(&oracle) < 1e-9);
    assert!(rect.c.max_abs_diff(&oracle) < 1e-9);
    assert!(square.c.max_abs_diff(&oracle) < 1e-9);

    let l_rect = (2 * t * n) as u64;
    let nb = n / h;
    let l_square = (2 * nb * nb) as u64;
    println!("\npaper formulas (slides 110, 122):");
    println!(
        "  rectangle-block: C = 4n⁴/L = {:.0} (measured {})",
        cost::rect_comm(n as u64, l_rect),
        rect.report.total_words()
    );
    println!(
        "  square-block:    C = 2√2·n³/√L = {:.0} (measured {})",
        cost::square_comm(n as u64, l_square),
        square.report.total_words()
    );
    println!(
        "  square-block beats rectangle-block in C whenever L ≪ n² — \
         the slide 126 frontier"
    );
}
