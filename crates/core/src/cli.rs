//! The `parqp` command line: plan, run and analyze conjunctive queries
//! over CSV/TSV relations on the simulated MPC cluster.
//!
//! ```text
//! parqp analyze  --query "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)"
//! parqp plan     --query "R(a,b), S(b,c)" --data r.csv s.csv --servers 64
//! parqp run      --query "R(a,b), S(b,c)" --data r.csv s.csv --out out.csv
//! parqp stats    --data r.csv --servers 64
//! parqp generate --kind zipf --rows 10000 --domain 1000 --alpha 1.1 --out r.csv
//! parqp trace    --experiment triangle-hypercube --servers 64 --format heatmap
//! parqp faults   --experiment twoway-hash --seed 42 --strategy replication
//! ```
//!
//! The logic lives in [`dispatch`] (pure: args in, report text out) so
//! it is unit-testable; `src/bin/parqp.rs` is a thin wrapper.

use crate::planner::{plan, run_plan};
use parqp_data::io::{read_relation, write_relation};
use parqp_data::Relation;
use parqp_query::parse_query;
use std::fmt::Write as _;

/// Run one CLI invocation. `args` excludes the program name. Returns the
/// report to print on success, or an error message (exit code 2).
pub fn dispatch(args: &[String]) -> Result<String, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    // `lint` owns its own tiny flag set and installs no execution mode;
    // the binary routes it before dispatch for the 0/1/2 exit contract,
    // this arm keeps it reachable in-process (tests, help discovery).
    if cmd == "lint" {
        let (body, code) = lint_run(rest);
        return if code == 0 { Ok(body) } else { Err(body) };
    }
    let opts = Opts::parse(rest)?;
    // Install the execution mode for the whole invocation: every Cluster
    // any command constructs snapshots it, so `--exec parallel` applies
    // uniformly to trace, faults, metrics, run, … The guard restores the
    // caller's mode on return (dispatch is re-entrant in tests).
    let _exec = parqp_mpc::exec::install(opts.exec_mode()?);
    // `--page-size`/`--pool-pages` install a paged store the same way;
    // `store` and `serve` manage their own (store runs both modes to
    // compare them, serve captures per-replay IO ledgers).
    let _store = if cmd == "store" || cmd == "serve" || cmd == "dash" {
        None
    } else {
        opts.store_config().map(parqp_data::paged::install)
    };
    match cmd.as_str() {
        "analyze" => analyze(&opts),
        "plan" => plan_cmd(&opts, false),
        "run" => plan_cmd(&opts, true),
        "stats" => stats(&opts),
        "generate" => generate(&opts),
        "trace" => trace_cmd(&opts),
        "faults" => faults_cmd(&opts),
        "metrics" => metrics_cmd(&opts),
        "store" => store_cmd(&opts),
        "serve" => serve_cmd(&opts),
        "dash" => dash_cmd(&opts),
        "--help" | "-h" | "help" => Ok(usage()),
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

/// `parqp lint` front door: run the in-tree static analyzer over the
/// workspace. Shared by [`dispatch`] (in-process tests) and
/// [`lint_main`] (the binary, which needs the three-way exit code).
/// Returns the report text plus the exit code: 0 clean, 1 findings,
/// 2 setup error.
fn lint_run(args: &[String]) -> (String, i32) {
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    let got = other.unwrap_or("nothing");
                    return (
                        format!("parqp lint: --format wants text|json, got \"{got}\"\n"),
                        2,
                    );
                }
            },
            other => {
                return (
                    format!(
                        "parqp lint: unknown option {other:?} (only --format text|json here; \
                         use `cargo run -p parqp-lint` for --fix-baseline and friends)\n"
                    ),
                    2,
                )
            }
        }
    }
    let root = parqp_lint::workspace_root();
    let report = match parqp_lint::load_baseline(&root)
        .and_then(|baseline| parqp_lint::lint_workspace(&root, Some(&baseline)))
    {
        Ok(report) => report,
        Err(e) => return (format!("parqp lint: {e}\n"), 2),
    };
    let code = if report.diagnostics.is_empty() { 0 } else { 1 };
    if json {
        return (parqp_lint::render_json(&report), code);
    }
    let mut s = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(s, "{d}");
    }
    if code == 0 {
        let _ = writeln!(
            s,
            "parqp-lint: clean ({} files, {} crates, {} worker roots checked)",
            report.files_scanned,
            report.panic_counts.len(),
            report.worker_roots.len()
        );
    } else {
        let _ = writeln!(s, "parqp-lint: {} finding(s)", report.diagnostics.len());
    }
    (s, code)
}

/// Binary entry point for `parqp lint`: prints the report and returns
/// the process exit code (0 = clean, 1 = findings, 2 = setup error) —
/// the plain [`dispatch`] path can only express success-or-2.
pub fn lint_main(args: &[String]) -> i32 {
    let (body, code) = lint_run(args);
    if code == 0 {
        print!("{body}");
    } else {
        eprint!("{body}");
    }
    code
}

fn usage() -> String {
    "usage: parqp <analyze|plan|run|stats|generate|trace|faults|metrics|store|serve|dash|lint> [options]\n\
     \n\
     analyze  --query Q                         τ*, ψ*, acyclicity, bounds\n\
     plan     --query Q --data F... [--servers P]   planner decision only\n\
     run      --query Q --data F... [--servers P] [--seed S] [--out F]\n\
     stats    --data F [--servers P]            degrees & heavy hitters\n\
     generate --kind uniform|zipf|graph --rows N [--domain D] [--alpha A]\n\
              [--seed S] --out F                write a synthetic relation\n\
     trace    --experiment E [--servers P] [--seed S] [--out F]\n\
              [--format summary|heatmap|jsonl|chrome]\n\
              trace a named experiment (no --experiment: list them)\n\
     faults   --experiment E [--servers P] [--seed S] [--out F]\n\
              [--strategy checkpoint|replication] [--every K] [--replicas R]\n\
              [--crashes N] [--drops N] [--duplicates N] [--stragglers N]\n\
              [--horizon H] [--format summary|heatmap|jsonl|chrome]\n\
              run a named experiment under a seeded fault plan and\n\
              report recovery overhead (no --experiment: list them)\n\
     metrics  [--seed S] [--format table|json] [--out F]\n\
              [--check BASELINE.json]\n\
              measure L, rounds and bound adherence of every experiment\n\
              at p = 8, 27, 64; --check gates against a committed baseline\n\
     store    [--servers P] [--seed S] [--page-size W] [--pool-pages N]\n\
              [--out F]\n\
              run every experiment unpaged and under the paged store\n\
              and verify digests, ledgers and traces are byte-identical;\n\
              reports per-experiment page-IO (reads, misses, evictions)\n\
     serve    [--servers P] [--seed S] [--tenants T] [--templates K]\n\
              [--groups G] [--ticks N] [--zipf-q A] [--zipf-data A]\n\
              [--cache-budget B] [--faults] [--verify]\n\
              [--format table|jsonl] [--out F]\n\
              replay a seeded multi-tenant query stream against one\n\
              long-lived cluster with shared-plan caching and exact\n\
              per-tenant ledgers; --cache-budget 0 disables the cache,\n\
              --faults injects a seeded fault plan under load (same\n\
              --strategy/--crashes/... flags as `faults`), --verify\n\
              re-runs cache-off and fails on any per-query digest\n\
              divergence; --obs records a per-window time series\n\
              (--window W ticks each, default 8) — table format appends\n\
              the ASCII dashboard, jsonl appends the window series, and\n\
              --format prom emits Prometheus text exposition; --slo F\n\
              evaluates the rules file against the series and exits\n\
              nonzero on a burn-rate alert (implies --obs)\n\
     dash     [--preset steady|cold|faulted] [--window W] [--seed S]\n\
              [--format dash|jsonl|prom] [--out F]\n\
              render the serving dashboard (sparklines + per-server\n\
              heatmap) for a named serve preset — the same presets the\n\
              metrics gate measures\n\
     lint     [--format text|json]\n\
              run the in-tree static analyzer (determinism, layering,\n\
              worker-purity rules PQ401-PQ408) over the workspace;\n\
              exits 0 clean, 1 findings, 2 setup error\n\
     \n\
     global   --exec serial|parallel [--workers N]\n\
              run every server's per-round compute on a worker pool\n\
              (N = 0 or omitted: all cores); output is byte-identical\n\
              to serial mode\n\
              --page-size W --pool-pages N\n\
              run the command against the paged store (W words per page,\n\
              N resident pages per server); output is byte-identical to\n\
              the unpaged run, only the page-IO ledger changes\n"
        .into()
}

/// Parsed `--key value` options.
struct Opts {
    query: Option<String>,
    data: Vec<String>,
    servers: usize,
    seed: u64,
    out: Option<String>,
    kind: Option<String>,
    rows: usize,
    domain: u64,
    alpha: f64,
    experiment: Option<String>,
    format: Option<String>,
    strategy: Option<String>,
    every: usize,
    replicas: usize,
    crashes: usize,
    drops: usize,
    duplicates: usize,
    stragglers: usize,
    horizon: usize,
    check: Option<String>,
    exec: Option<String>,
    workers: usize,
    page_size: Option<usize>,
    pool_pages: Option<usize>,
    tenants: usize,
    templates: usize,
    groups: usize,
    ticks: u64,
    zipf_q: f64,
    zipf_data: f64,
    cache_budget: u64,
    faults: bool,
    verify: bool,
    obs: bool,
    window: u64,
    slo: Option<String>,
    preset: Option<String>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut o = Opts {
            query: None,
            data: Vec::new(),
            servers: 64,
            seed: 42,
            out: None,
            kind: None,
            rows: 10_000,
            domain: 1000,
            alpha: 1.0,
            experiment: None,
            format: None,
            strategy: None,
            every: 4,
            replicas: 3,
            crashes: 1,
            drops: 1,
            duplicates: 1,
            stragglers: 1,
            horizon: 8,
            check: None,
            exec: None,
            workers: 0,
            page_size: None,
            pool_pages: None,
            tenants: 4,
            templates: 3,
            groups: 12,
            ticks: 120,
            zipf_q: 1.1,
            zipf_data: 1.2,
            cache_budget: 120_000,
            faults: false,
            verify: false,
            obs: false,
            window: 8,
            slo: None,
            preset: None,
        };
        let mut it = args.iter().peekable();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--query" => o.query = Some(value("--query")?),
                "--data" => {
                    o.data.push(value("--data")?);
                    // allow space-separated file lists after --data
                    while let Some(next) = it.peek() {
                        if next.starts_with("--") {
                            break;
                        }
                        o.data.push(it.next().expect("peeked").clone());
                    }
                }
                "--servers" | "-p" => {
                    o.servers = value(flag)?
                        .parse()
                        .map_err(|e| format!("--servers: {e}"))?;
                }
                "--seed" => {
                    o.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--out" => o.out = Some(value("--out")?),
                "--kind" => o.kind = Some(value("--kind")?),
                "--rows" => {
                    o.rows = value("--rows")?
                        .parse()
                        .map_err(|e| format!("--rows: {e}"))?
                }
                "--domain" => {
                    o.domain = value("--domain")?
                        .parse()
                        .map_err(|e| format!("--domain: {e}"))?;
                }
                "--alpha" => {
                    o.alpha = value("--alpha")?
                        .parse()
                        .map_err(|e| format!("--alpha: {e}"))?;
                }
                "--experiment" => o.experiment = Some(value("--experiment")?),
                "--format" => o.format = Some(value("--format")?),
                "--strategy" => o.strategy = Some(value("--strategy")?),
                "--check" => o.check = Some(value("--check")?),
                "--exec" => o.exec = Some(value("--exec")?),
                "--workers" => {
                    o.workers = value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?;
                }
                "--page-size" => {
                    o.page_size = Some(
                        value("--page-size")?
                            .parse()
                            .map_err(|e| format!("--page-size: {e}"))?,
                    );
                }
                "--pool-pages" => {
                    o.pool_pages = Some(
                        value("--pool-pages")?
                            .parse()
                            .map_err(|e| format!("--pool-pages: {e}"))?,
                    );
                }
                "--tenants" => {
                    o.tenants = value("--tenants")?
                        .parse()
                        .map_err(|e| format!("--tenants: {e}"))?;
                }
                "--templates" => {
                    o.templates = value("--templates")?
                        .parse()
                        .map_err(|e| format!("--templates: {e}"))?;
                }
                "--groups" => {
                    o.groups = value("--groups")?
                        .parse()
                        .map_err(|e| format!("--groups: {e}"))?;
                }
                "--ticks" => {
                    o.ticks = value("--ticks")?
                        .parse()
                        .map_err(|e| format!("--ticks: {e}"))?;
                }
                "--zipf-q" => {
                    o.zipf_q = value("--zipf-q")?
                        .parse()
                        .map_err(|e| format!("--zipf-q: {e}"))?;
                }
                "--zipf-data" => {
                    o.zipf_data = value("--zipf-data")?
                        .parse()
                        .map_err(|e| format!("--zipf-data: {e}"))?;
                }
                "--cache-budget" => {
                    o.cache_budget = value("--cache-budget")?
                        .parse()
                        .map_err(|e| format!("--cache-budget: {e}"))?;
                }
                "--faults" => o.faults = true,
                "--verify" => o.verify = true,
                "--obs" => o.obs = true,
                "--window" => {
                    o.window = value("--window")?
                        .parse()
                        .map_err(|e| format!("--window: {e}"))?;
                }
                "--slo" => o.slo = Some(value("--slo")?),
                "--preset" => o.preset = Some(value("--preset")?),
                "--every" | "--replicas" | "--crashes" | "--drops" | "--duplicates"
                | "--stragglers" | "--horizon" => {
                    let parsed: usize = value(flag)?.parse().map_err(|e| format!("{flag}: {e}"))?;
                    match flag.as_str() {
                        "--every" => o.every = parsed,
                        "--replicas" => o.replicas = parsed,
                        "--crashes" => o.crashes = parsed,
                        "--drops" => o.drops = parsed,
                        "--duplicates" => o.duplicates = parsed,
                        "--stragglers" => o.stragglers = parsed,
                        _ => o.horizon = parsed,
                    }
                }
                other => return Err(format!("unknown option {other:?}")),
            }
        }
        if o.servers == 0 {
            return Err("--servers must be positive".into());
        }
        if o.page_size == Some(0) {
            return Err("--page-size must be positive".into());
        }
        if o.pool_pages == Some(0) {
            return Err("--pool-pages must be positive".into());
        }
        Ok(o)
    }

    /// The execution mode requested by `--exec`/`--workers`.
    fn exec_mode(&self) -> Result<parqp_mpc::ExecMode, String> {
        match self.exec.as_deref().unwrap_or("serial") {
            "serial" => Ok(parqp_mpc::ExecMode::Serial),
            "parallel" => Ok(parqp_mpc::ExecMode::Parallel {
                workers: self.workers,
            }),
            other => Err(format!("unknown --exec {other:?} (serial|parallel)")),
        }
    }

    /// The recovery strategy requested by `--strategy`/`--every`/
    /// `--replicas` (shared by `faults` and `serve --faults`).
    fn recovery_strategy(&self) -> Result<parqp_faults::RecoveryStrategy, String> {
        match self.strategy.as_deref().unwrap_or("checkpoint") {
            "checkpoint" => Ok(parqp_faults::RecoveryStrategy::Checkpoint {
                every: self.every.max(1),
            }),
            "replication" => Ok(parqp_faults::RecoveryStrategy::Replication {
                replicas: self.replicas.max(1),
            }),
            other => Err(format!(
                "unknown --strategy {other:?} (checkpoint|replication)"
            )),
        }
    }

    /// The fault specification requested by `--crashes`/`--drops`/
    /// `--duplicates`/`--stragglers`.
    fn fault_spec(&self) -> parqp_faults::FaultSpec {
        parqp_faults::FaultSpec {
            crashes: self.crashes,
            drops: self.drops,
            duplicates: self.duplicates,
            stragglers: self.stragglers,
            max_batch: 8,
        }
    }

    /// The paged-store configuration requested by `--page-size`/
    /// `--pool-pages`, `None` when neither flag was given (unpaged).
    fn store_config(&self) -> Option<parqp_data::paged::StoreConfig> {
        if self.page_size.is_none() && self.pool_pages.is_none() {
            return None;
        }
        let defaults = parqp_data::paged::StoreConfig::default();
        Some(parqp_data::paged::StoreConfig {
            page_size: self.page_size.unwrap_or(defaults.page_size),
            pool_pages: self.pool_pages.unwrap_or(defaults.pool_pages),
        })
    }
}

fn require_query(o: &Opts) -> Result<parqp_query::Query, String> {
    let src = o.query.as_ref().ok_or("--query is required")?;
    parse_query(src).map_err(|e| e.to_string())
}

fn analyze(o: &Opts) -> Result<String, String> {
    let q = require_query(o)?;
    let h = q.hypergraph();
    let tau = crate::model::tau_star(&q);
    let psi = parqp_query::psi_star(&q);
    let rho = parqp_lp::fractional_edge_cover(&h).value;
    let acyclic = parqp_query::Ghd::join_tree(&q).is_some();
    let p = o.servers as f64;
    let mut s = String::new();
    let _ = writeln!(s, "query     : {q}");
    let _ = writeln!(
        s,
        "atoms     : {}, variables: {}",
        q.num_atoms(),
        q.num_vars()
    );
    let _ = writeln!(s, "acyclic   : {acyclic}");
    let _ = writeln!(
        s,
        "τ* (packing) : {tau}   — skew-free 1-round L = IN/p^(1/τ*)"
    );
    let _ = writeln!(s, "ψ* (skew)    : {psi}   — skewed 1-round L = IN/p^(1/ψ*)");
    let _ = writeln!(s, "ρ* (cover)   : {rho}   — AGM bound |OUT| ≤ IN^(ρ*)");
    let _ = writeln!(
        s,
        "at p = {}: speedup p^(1/τ*) = {:.2}; 2× speedup needs {:.0}× more servers",
        o.servers,
        crate::model::hypercube_speedup(p, tau),
        crate::model::processors_for_double_speedup(tau)
    );
    if acyclic {
        let _ = writeln!(
            s,
            "GYM wins while OUT < p^(1-1/τ*)·IN − IN (slide 78 crossover)"
        );
    }
    Ok(s)
}

fn load_data(o: &Opts, q: &parqp_query::Query) -> Result<Vec<Relation>, String> {
    if o.data.len() != q.num_atoms() {
        return Err(format!(
            "--data needs {} file(s) (one per atom), got {}",
            q.num_atoms(),
            o.data.len()
        ));
    }
    o.data
        .iter()
        .map(|f| read_relation(f).map_err(|e| format!("{f}: {e}")))
        .collect()
}

fn plan_cmd(o: &Opts, execute: bool) -> Result<String, String> {
    let q = require_query(o)?;
    let rels = load_data(o, &q)?;
    let d = plan(&q, &rels, o.servers);
    let mut s = String::new();
    let _ = writeln!(s, "query    : {q}");
    let _ = writeln!(s, "strategy : {:?}", d.strategy);
    let _ = writeln!(s, "reason   : {}", d.reason);
    if execute {
        let run = run_plan(&q, &rels, o.servers, o.seed, &d.strategy);
        let _ = writeln!(
            s,
            "cost     : L = {} tuples, r = {}, C = {} tuples on p = {}",
            run.report.max_load_tuples(),
            run.report.num_rounds(),
            run.report.total_tuples(),
            o.servers
        );
        let _ = writeln!(s, "output   : {} tuples", run.output_size());
        if let Some(out) = &o.out {
            let gathered = run.gathered();
            write_relation(&gathered, out).map_err(|e| format!("{out}: {e}"))?;
            let _ = writeln!(s, "written  : {out}");
        }
    }
    Ok(s)
}

fn stats(o: &Opts) -> Result<String, String> {
    let file = o.data.first().ok_or("--data is required")?;
    let rel = read_relation(file).map_err(|e| format!("{file}: {e}"))?;
    let mut s = String::new();
    let _ = writeln!(s, "file    : {file}");
    let _ = writeln!(s, "tuples  : {}, arity: {}", rel.len(), rel.arity());
    let threshold = ((rel.len() / o.servers) as u64).max(1);
    for col in 0..rel.arity() {
        let distinct = parqp_data::stats::distinct_count(&rel, col);
        let maxd = parqp_data::stats::max_degree(&rel, col);
        let heavy = parqp_data::stats::heavy_hitters(&rel, col, threshold);
        let _ = writeln!(
            s,
            "col {col}  : {distinct} distinct, max degree {maxd}, \
             {} heavy hitter(s) at threshold {threshold} (IN/p, p = {})",
            heavy.len(),
            o.servers
        );
    }
    Ok(s)
}

fn generate(o: &Opts) -> Result<String, String> {
    let kind = o.kind.as_deref().ok_or("--kind is required")?;
    let out = o.out.as_ref().ok_or("--out is required")?;
    let rel = match kind {
        "uniform" => parqp_data::generate::uniform(2, o.rows, o.domain.max(1), o.seed),
        "zipf" => {
            parqp_data::generate::zipf_pairs(o.rows, o.domain.max(1) as usize, o.alpha, 0, o.seed)
        }
        "graph" => parqp_data::generate::random_graph(o.domain.max(2), o.rows, o.seed),
        other => return Err(format!("unknown --kind {other:?} (uniform|zipf|graph)")),
    };
    write_relation(&rel, out).map_err(|e| format!("{out}: {e}"))?;
    Ok(format!("wrote {} tuples to {out}\n", rel.len()))
}

fn trace_cmd(o: &Opts) -> Result<String, String> {
    use parqp_trace::{analyze, export};

    let Some(name) = o.experiment.as_deref() else {
        let mut s = String::from("available experiments (--experiment <name>):\n");
        for e in crate::observe::EXPERIMENTS {
            let _ = writeln!(s, "  {:<20} {}", e.name, e.description);
        }
        return Ok(s);
    };
    let run = crate::observe::run_experiment_full(name, o.servers, o.seed)?;
    let rec = &run.recorder;
    let body = match o.format.as_deref().unwrap_or("summary") {
        "summary" => {
            let loads = analyze::round_loads(rec);
            let totals = analyze::totals(rec);
            let mut s = format!(
                "experiment {name} on p = {} (seed {}): {} round(s), \
                 {} tuples, {} words\n",
                o.servers, o.seed, totals.rounds, totals.tuples, totals.words
            );
            s.push_str(&analyze::summary_table(&loads));
            let _ = writeln!(s, "output     : digest {:#018x}", run.digest);
            s
        }
        "heatmap" => analyze::heatmap(&analyze::round_loads(rec), 16),
        "jsonl" => export::jsonl(rec),
        "chrome" => export::chrome_trace(rec),
        other => {
            return Err(format!(
                "unknown --format {other:?} (summary|heatmap|jsonl|chrome)"
            ))
        }
    };
    if let Some(out) = &o.out {
        std::fs::write(out, &body).map_err(|e| format!("{out}: {e}"))?;
        Ok(format!("wrote {} bytes to {out}\n", body.len()))
    } else {
        Ok(body)
    }
}

fn faults_cmd(o: &Opts) -> Result<String, String> {
    use parqp_faults::{capture, FaultPlan, RecoveryStrategy};
    use parqp_trace::{analyze, export};

    let Some(name) = o.experiment.as_deref() else {
        let mut s = String::from("available experiments (--experiment <name>):\n");
        for e in crate::observe::EXPERIMENTS {
            let _ = writeln!(s, "  {:<20} {}", e.name, e.description);
        }
        return Ok(s);
    };
    let strategy = o.recovery_strategy()?;
    let plan = FaultPlan::random(o.seed, o.servers, o.horizon, &o.fault_spec());
    let clean = crate::observe::run_experiment_full(name, o.servers, o.seed)?;
    let (log, faulty) = capture(plan.clone(), strategy, || {
        crate::observe::run_experiment_full(name, o.servers, o.seed)
    });
    let faulty = faulty?;
    let body = match o.format.as_deref().unwrap_or("summary") {
        "summary" => {
            let mut s = format!(
                "experiment {name} on p = {} (seed {}), strategy {}\n",
                o.servers,
                o.seed,
                match strategy {
                    RecoveryStrategy::Checkpoint { every } => format!("checkpoint(every {every})"),
                    RecoveryStrategy::Replication { replicas } =>
                        format!("replication(r = {replicas})"),
                }
            );
            let _ = writeln!(
                s,
                "fault plan : {} scheduled over a {}-round horizon",
                plan.len(),
                o.horizon
            );
            for (round, server, kind) in plan.schedule() {
                let _ = writeln!(s, "  round {round:>2} server {server:>3}: {kind}");
            }
            let _ = writeln!(s, "fired      : {} fault(s)", log.fired());
            for f in &log.injected {
                let _ = writeln!(
                    s,
                    "  ledger round {:>2} server {:>3}: {}",
                    f.round, f.server, f.kind
                );
            }
            for (label, run) in [("clean", &clean), ("faulty", &faulty)] {
                let _ = writeln!(
                    s,
                    "{label:<11}: L = {} tuples, r = {}, C = {} tuples",
                    run.report.max_load_tuples(),
                    run.report.num_rounds(),
                    run.report.total_tuples(),
                );
            }
            let _ = writeln!(
                s,
                "recovery   : +{} round(s), +{} tuples, +{} words charged",
                log.recovery_rounds, log.recovery_tuples, log.recovery_words
            );
            let _ = writeln!(
                s,
                "output     : {} (digest {:#018x})",
                if faulty.digest == clean.digest {
                    "byte-identical to fault-free run"
                } else {
                    "DIVERGED from fault-free run"
                },
                faulty.digest
            );
            s
        }
        "heatmap" => analyze::heatmap(&analyze::round_loads(&faulty.recorder), 16),
        "jsonl" => export::jsonl(&faulty.recorder),
        "chrome" => export::chrome_trace(&faulty.recorder),
        other => {
            return Err(format!(
                "unknown --format {other:?} (summary|heatmap|jsonl|chrome)"
            ))
        }
    };
    if let Some(out) = &o.out {
        std::fs::write(out, &body).map_err(|e| format!("{out}: {e}"))?;
        Ok(format!("wrote {} bytes to {out}\n", body.len()))
    } else {
        Ok(body)
    }
}

fn metrics_cmd(o: &Opts) -> Result<String, String> {
    let current = crate::metrics::collect(o.seed)?;
    if let Some(path) = &o.check {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let baseline = crate::metrics::from_json(&src)?;
        let regressions = crate::metrics::compare(&baseline, &current);
        return if regressions.is_empty() {
            Ok(format!(
                "metrics match baseline {path} ({} points, seed {})\n",
                baseline.experiments.len(),
                baseline.seed
            ))
        } else {
            Err(format!(
                "{} metrics regression(s) against {path}:\n  {}",
                regressions.len(),
                regressions.join("\n  ")
            ))
        };
    }
    let body = match o.format.as_deref().unwrap_or("table") {
        "table" => crate::metrics::table(&current),
        "json" => crate::metrics::to_json(&current),
        other => return Err(format!("unknown --format {other:?} (table|json)")),
    };
    if let Some(out) = &o.out {
        std::fs::write(out, &body).map_err(|e| format!("{out}: {e}"))?;
        Ok(format!("wrote {} bytes to {out}\n", body.len()))
    } else {
        Ok(body)
    }
}

/// `parqp store`: the paged-vs-unpaged differential. Every experiment
/// runs twice at the same `(p, seed)` — once unpaged, once under a
/// bounded buffer pool — and the command verifies the paged run is
/// *observationally identical*: same output digest, same `(L, r, C)`
/// ledger, byte-identical trace JSONL. Only the page-IO ledger may
/// differ (it is the whole point), and it is what gets reported.
fn store_cmd(o: &Opts) -> Result<String, String> {
    use parqp_trace::export;

    let cfg = o.store_config().unwrap_or_default();
    let mut s = format!(
        "paged-vs-unpaged differential: p = {}, seed {}, page_size {}, pool_pages {}\n",
        o.servers, o.seed, cfg.page_size, cfg.pool_pages
    );
    let _ = writeln!(
        s,
        "{:<20} {:>12} {:>10} {:>10} {:>8}  result",
        "experiment", "io_reads", "misses", "evictions", "hit_rate"
    );
    let mut failures = Vec::new();
    for e in crate::observe::EXPERIMENTS {
        let unpaged = crate::observe::run_experiment_full(e.name, o.servers, o.seed)?;
        let (totals, paged) = parqp_data::paged::capture(cfg, || {
            crate::observe::run_experiment_full(e.name, o.servers, o.seed)
        });
        let paged = paged?;
        let mut io = parqp_data::paged::IoStats::default();
        for t in &totals {
            io.merge(t);
        }
        let mut verdict = Vec::new();
        if paged.digest != unpaged.digest {
            verdict.push("digest");
        }
        if paged.report != unpaged.report {
            verdict.push("ledger");
        }
        if export::jsonl(&paged.recorder) != export::jsonl(&unpaged.recorder) {
            verdict.push("trace");
        }
        let result = if verdict.is_empty() {
            "identical".to_string()
        } else {
            let what = verdict.join("+");
            failures.push(format!("{}: {what} diverged under paging", e.name));
            format!("DIVERGED ({what})")
        };
        let _ = writeln!(
            s,
            "{:<20} {:>12} {:>10} {:>10} {:>8.4}  {result}",
            e.name,
            io.reads,
            io.misses,
            io.evictions,
            io.hit_rate()
        );
    }
    if !failures.is_empty() {
        return Err(format!(
            "{} experiment(s) diverged under the paged store:\n  {}\n\n{s}",
            failures.len(),
            failures.join("\n  ")
        ));
    }
    let _ = writeln!(
        s,
        "all {} experiments byte-identical under paging",
        crate::observe::EXPERIMENTS.len()
    );
    if let Some(out) = &o.out {
        std::fs::write(out, &s).map_err(|e| format!("{out}: {e}"))?;
        Ok(format!("wrote {} bytes to {out}\n", s.len()))
    } else {
        Ok(s)
    }
}

/// `parqp serve`: replay a seeded multi-tenant query stream against one
/// long-lived cluster. With `--verify` the same stream is replayed a
/// second time with the cache disabled and every per-query output
/// digest is compared — caching must be a pure cost optimization, never
/// observable in results.
fn serve_cmd(o: &Opts) -> Result<String, String> {
    use parqp_serve::{replay, replay_observed, FaultSetup, ServeConfig};

    let faults = if o.faults {
        Some(FaultSetup {
            spec: o.fault_spec(),
            strategy: o.recovery_strategy()?,
            horizon: o.horizon,
        })
    } else {
        None
    };
    let cfg = ServeConfig {
        servers: o.servers,
        tenants: o.tenants,
        templates: o.templates,
        groups: o.groups,
        ticks: o.ticks,
        seed: o.seed,
        zipf_q: o.zipf_q,
        zipf_data: o.zipf_data,
        cache_budget: o.cache_budget,
        store: o.store_config().unwrap_or_default(),
        faults,
    };
    // `--slo` and `--format prom` need the window series, so they imply
    // `--obs`; a plain replay records nothing extra.
    let observed = o.obs || o.slo.is_some() || o.format.as_deref() == Some("prom");
    let (report, series) = if observed {
        let (report, series) = replay_observed(&cfg, o.window)?;
        (report, Some(series))
    } else {
        (replay(&cfg)?, None)
    };
    let mut verified = String::new();
    if o.verify {
        let off = replay(&ServeConfig {
            cache_budget: 0,
            ..cfg.clone()
        })?;
        let diverged: Vec<String> = report
            .records
            .iter()
            .zip(off.records.iter())
            .filter(|(on, off)| on.digest != off.digest)
            .map(|(on, _)| format!("query #{} ({} group {})", on.serial, on.template, on.group))
            .collect();
        if report.served() != off.served() || !diverged.is_empty() {
            return Err(format!(
                "serve --verify: {} of {} per-query digests diverged cache-on vs cache-off:\n  {}",
                diverged.len(),
                report.served(),
                diverged.join("\n  ")
            ));
        }
        verified = format!(
            "verified: {} per-query digests identical cache-on vs cache-off\n",
            report.served()
        );
    }
    // Evaluate the SLO rules before rendering: a burn-rate alert is an
    // error (nonzero exit), whatever format was asked for.
    let mut slo_text = String::new();
    if let (Some(path), Some(series)) = (&o.slo, &series) {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let rules = parqp_obs::SloRules::parse(&src)?;
        let verdict = rules.evaluate(series);
        verdict
            .gate()
            .map_err(|e| format!("slo gate {path}:\n{}{e}", verdict.table()))?;
        slo_text = verdict.table();
    }
    let body = match o.format.as_deref().unwrap_or("table") {
        "table" => match &series {
            Some(series) => format!(
                "{}{verified}\n{}{slo_text}",
                report.table(),
                series.dashboard()
            ),
            None => format!("{}{verified}", report.table()),
        },
        "jsonl" => match &series {
            Some(series) => format!("{}{}", report.jsonl(), series.jsonl()),
            None => report.jsonl(),
        },
        // `observed` covers this arm, but stay typed rather than assert.
        "prom" => match &series {
            Some(series) => series.prometheus(),
            None => return Err("--format prom records a series; pass --obs".into()),
        },
        other => return Err(format!("unknown --format {other:?} (table|jsonl|prom)")),
    };
    if let Some(out) = &o.out {
        std::fs::write(out, &body).map_err(|e| format!("{out}: {e}"))?;
        Ok(format!(
            "wrote {} bytes to {out}\n{verified}{slo_text}",
            body.len()
        ))
    } else {
        Ok(body)
    }
}

/// `parqp dash`: render the serving dashboard — sparklines over the
/// window series plus the servers × windows heatmap — for one of the
/// named serve presets the metrics gate measures.
fn dash_cmd(o: &Opts) -> Result<String, String> {
    let preset = o.preset.as_deref().unwrap_or("steady");
    let presets = crate::metrics::serve_presets(o.seed);
    let names: Vec<&str> = presets
        .iter()
        .map(|(name, _)| name.split('/').next().unwrap_or(name))
        .collect();
    let Some((_, cfg)) = presets
        .iter()
        .find(|(name, _)| name.split('/').next() == Some(preset))
    else {
        return Err(format!(
            "unknown --preset {preset:?} (one of: {})",
            names.join("|")
        ));
    };
    let (_, series) = parqp_serve::replay_observed(cfg, o.window)?;
    let body = match o.format.as_deref().unwrap_or("dash") {
        "dash" => series.dashboard(),
        "jsonl" => series.jsonl(),
        "prom" => series.prometheus(),
        other => return Err(format!("unknown --format {other:?} (dash|jsonl|prom)")),
    };
    if let Some(out) = &o.out {
        std::fs::write(out, &body).map_err(|e| format!("{out}: {e}"))?;
        Ok(format!("wrote {} bytes to {out}\n", body.len()))
    } else {
        Ok(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(ToString::to_string).collect()
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("parqp_cli_{tag}"));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    #[test]
    fn analyze_triangle() {
        let out = dispatch(&argv(&[
            "analyze",
            "--query",
            "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)",
        ]))
        .expect("analyze works");
        assert!(out.contains("τ* (packing) : 1.5"));
        assert!(out.contains("acyclic   : false"));
    }

    #[test]
    fn generate_stats_run_roundtrip() {
        let dir = tmpdir("roundtrip");
        let r = dir.join("r.csv");
        let s = dir.join("s.csv");
        for (f, seed) in [(&r, "1"), (&s, "2")] {
            let out = dispatch(&argv(&[
                "generate",
                "--kind",
                "uniform",
                "--rows",
                "500",
                "--domain",
                "60",
                "--seed",
                seed,
                "--out",
                f.to_str().expect("utf8"),
            ]))
            .expect("generate works");
            assert!(out.contains("wrote 500 tuples"));
        }
        let stats = dispatch(&argv(&[
            "stats",
            "--data",
            r.to_str().expect("utf8"),
            "--servers",
            "8",
        ]))
        .expect("stats works");
        assert!(stats.contains("tuples  : 500, arity: 2"));

        let outfile = dir.join("out.csv");
        let run = dispatch(&argv(&[
            "run",
            "--query",
            "R(a,b), S(b,c)",
            "--data",
            r.to_str().expect("utf8"),
            s.to_str().expect("utf8"),
            "--servers",
            "8",
            "--out",
            outfile.to_str().expect("utf8"),
        ]))
        .expect("run works");
        assert!(run.contains("strategy"));
        assert!(run.contains("output"));
        let result = parqp_data::io::read_relation(&outfile);
        // The join may be empty (then the file has no data lines) —
        // either outcome must be consistent with the reported size.
        let reported: usize = run
            .lines()
            .find(|l| l.starts_with("output"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().split(' ').next())
            .and_then(|v| v.parse().ok())
            .expect("output line");
        match result {
            Ok(rel) => assert_eq!(rel.len(), reported),
            Err(_) => assert_eq!(reported, 0),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_reported() {
        assert!(dispatch(&argv(&["plan", "--query", "???"])).is_err());
        assert!(dispatch(&argv(&["nope"])).is_err());
        assert!(dispatch(&argv(&["run", "--query", "R(x,y), S(y,z)"])).is_err());
        assert!(dispatch(&argv(&["generate", "--kind", "wat", "--out", "/tmp/x"])).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn help_text() {
        let h = dispatch(&argv(&["help"])).expect("help");
        assert!(h.contains("usage: parqp"));
    }

    #[test]
    fn trace_lists_experiments_without_name() {
        let out = dispatch(&argv(&["trace"])).expect("listing works");
        assert!(out.contains("triangle-hypercube"));
        assert!(out.contains("psrs"));
    }

    #[test]
    fn trace_summary_and_heatmap() {
        let base = ["trace", "--experiment", "twoway-hash", "--servers", "8"];
        let summary = dispatch(&argv(&base)).expect("summary works");
        assert!(summary.contains("experiment twoway-hash on p = 8"));
        assert!(summary.contains("L_max"));
        let mut args = base.to_vec();
        args.extend(["--format", "heatmap"]);
        let heat = dispatch(&argv(&args)).expect("heatmap works");
        assert!(heat.contains("load heatmap: 8 servers"));
    }

    #[test]
    fn trace_jsonl_is_deterministic() {
        let args = argv(&[
            "trace",
            "--experiment",
            "psrs",
            "--servers",
            "4",
            "--seed",
            "9",
            "--format",
            "jsonl",
        ]);
        let a = dispatch(&args).expect("jsonl works");
        let b = dispatch(&args).expect("jsonl works");
        assert_eq!(a, b);
        assert!(a.contains("\"round_begin\""));
        assert!(a.contains("\"span_begin\""));
    }

    #[test]
    fn exec_parallel_trace_is_byte_identical_to_serial() {
        let base = [
            "trace",
            "--experiment",
            "psrs",
            "--servers",
            "8",
            "--seed",
            "7",
            "--format",
            "jsonl",
        ];
        let serial = dispatch(&argv(&base)).expect("serial works");
        let mut args = base.to_vec();
        args.extend(["--exec", "parallel", "--workers", "2"]);
        let parallel = dispatch(&argv(&args)).expect("parallel works");
        assert_eq!(serial, parallel, "--exec parallel must not change output");
    }

    #[test]
    fn exec_rejects_unknown_mode() {
        let err = dispatch(&argv(&["trace", "--exec", "wat"])).expect_err("must fail");
        assert!(err.contains("serial|parallel"), "got: {err}");
    }

    #[test]
    fn trace_rejects_unknowns() {
        assert!(dispatch(&argv(&["trace", "--experiment", "wat"])).is_err());
        assert!(dispatch(&argv(&["trace", "--experiment", "psrs", "--format", "wat"])).is_err());
    }

    #[test]
    fn paging_flags_must_be_positive() {
        let err = dispatch(&argv(&["store", "--page-size", "0"])).expect_err("must fail");
        assert!(err.contains("--page-size must be positive"), "got: {err}");
        let err = dispatch(&argv(&["store", "--pool-pages", "0"])).expect_err("must fail");
        assert!(err.contains("--pool-pages must be positive"), "got: {err}");
    }

    #[test]
    fn faults_lists_experiments_without_name() {
        let out = dispatch(&argv(&["faults"])).expect("listing works");
        assert!(out.contains("triangle-hypercube"));
        assert!(out.contains("matmul-square"));
    }

    #[test]
    fn faults_summary_reports_recovery_and_identical_output() {
        let out = dispatch(&argv(&[
            "faults",
            "--experiment",
            "psrs",
            "--servers",
            "8",
            "--seed",
            "42",
            "--crashes",
            "2",
        ]))
        .expect("faults summary works");
        assert!(out.contains("strategy checkpoint(every 4)"), "got: {out}");
        assert!(out.contains("fault plan"), "got: {out}");
        assert!(
            out.contains("byte-identical to fault-free run"),
            "got: {out}"
        );
    }

    #[test]
    fn faults_replication_strategy() {
        let out = dispatch(&argv(&[
            "faults",
            "--experiment",
            "twoway-hash",
            "--servers",
            "8",
            "--strategy",
            "replication",
            "--replicas",
            "2",
            "--horizon",
            "1",
        ]))
        .expect("replication works");
        assert!(out.contains("replication(r = 2)"), "got: {out}");
        assert!(out.contains("byte-identical"), "got: {out}");
    }

    #[test]
    fn faults_jsonl_is_deterministic_and_carries_fault_events() {
        let args = argv(&[
            "faults",
            "--experiment",
            "multiround-sort",
            "--servers",
            "8",
            "--seed",
            "42",
            "--crashes",
            "1",
            "--horizon",
            "3",
            "--format",
            "jsonl",
        ]);
        let a = dispatch(&args).expect("jsonl works");
        let b = dispatch(&args).expect("jsonl works");
        assert_eq!(a, b, "fixed seed must export byte-identical JSONL");
        assert!(a.contains("\"fault_injected\""), "got: {a}");
        assert!(a.contains("\"recovery_begin\""));
        assert!(a.contains("\"recovery_end\""));
    }

    #[test]
    fn faults_rejects_unknowns() {
        assert!(dispatch(&argv(&["faults", "--experiment", "wat"])).is_err());
        assert!(dispatch(&argv(&[
            "faults",
            "--experiment",
            "psrs",
            "--strategy",
            "wat"
        ]))
        .is_err());
        assert!(dispatch(&argv(&[
            "faults",
            "--experiment",
            "psrs",
            "--format",
            "wat"
        ]))
        .is_err());
    }

    #[test]
    fn trace_summary_reports_output_digest() {
        let summary = dispatch(&argv(&["trace", "--experiment", "psrs", "--servers", "4"]))
            .expect("summary works");
        assert!(summary.contains("output     : digest 0x"), "got: {summary}");
        // Digest matches the faults command's fault-free digest.
        let full = crate::observe::run_experiment_full("psrs", 4, 42).expect("runs");
        assert!(summary.contains(&format!("{:#018x}", full.digest)));
    }

    #[test]
    fn metrics_check_round_trips_through_a_written_baseline() {
        let dir = tmpdir("metrics_check");
        let f = dir.join("baseline.json");
        let json = dispatch(&argv(&["metrics", "--format", "json"])).expect("json works");
        std::fs::write(&f, &json).expect("write baseline");
        let ok = dispatch(&argv(&["metrics", "--check", f.to_str().expect("utf8")]))
            .expect("self-comparison passes");
        assert!(ok.contains("metrics match baseline"), "got: {ok}");
        // A corrupted baseline is a reported regression.
        std::fs::write(&f, json.replace("\"rounds\": 2", "\"rounds\": 9")).expect("write");
        let err = dispatch(&argv(&["metrics", "--check", f.to_str().expect("utf8")]))
            .expect_err("drift must fail the gate");
        assert!(err.contains("rounds changed"), "got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_table_and_rejects_unknown_format() {
        let t = dispatch(&argv(&["metrics"])).expect("table works");
        assert!(t.contains("bound_ratio"));
        assert!(t.contains("triangle-hypercube"));
        assert!(dispatch(&argv(&["metrics", "--format", "wat"])).is_err());
    }

    #[test]
    fn store_differential_reports_identical_experiments() {
        let out = dispatch(&argv(&["store", "--servers", "8", "--seed", "7"])).expect("store runs");
        assert!(out.contains("paged-vs-unpaged differential"), "got: {out}");
        assert!(out.contains("twoway-hash"), "got: {out}");
        assert!(out.contains("bigjoin"), "got: {out}");
        assert!(
            out.contains("all 9 experiments byte-identical under paging"),
            "got: {out}"
        );
        assert!(!out.contains("DIVERGED"), "got: {out}");
    }

    #[test]
    fn store_differential_with_tiny_pool_still_identical() {
        // A pool this small thrashes (forced evictions on every scan);
        // replacement pressure must never leak into observable output.
        let out = dispatch(&argv(&[
            "store",
            "--servers",
            "8",
            "--page-size",
            "64",
            "--pool-pages",
            "2",
        ]))
        .expect("store runs");
        assert!(out.contains("page_size 64, pool_pages 2"), "got: {out}");
        assert!(out.contains("byte-identical under paging"), "got: {out}");
    }

    #[test]
    fn store_out_writes_artifact_table() {
        let dir = tmpdir("store_out");
        let f = dir.join("store.txt");
        let out = dispatch(&argv(&[
            "store",
            "--servers",
            "8",
            "--out",
            f.to_str().expect("utf8"),
        ]))
        .expect("store --out works");
        assert!(out.contains("wrote"), "got: {out}");
        let body = std::fs::read_to_string(&f).expect("file written");
        assert!(body.contains("io_reads"), "got: {body}");
        assert!(body.contains("hit_rate"), "got: {body}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn paged_trace_is_byte_identical_to_unpaged() {
        let base = [
            "trace",
            "--experiment",
            "twoway-hash",
            "--servers",
            "8",
            "--seed",
            "7",
            "--format",
            "jsonl",
        ];
        let unpaged = dispatch(&argv(&base)).expect("unpaged works");
        let mut args = base.to_vec();
        args.extend(["--page-size", "128", "--pool-pages", "4"]);
        let paged = dispatch(&argv(&args)).expect("paged works");
        assert_eq!(unpaged, paged, "paging must not change the trace");
    }

    #[test]
    fn help_mentions_store_and_paging_flags() {
        let h = dispatch(&argv(&["help"])).expect("help");
        assert!(h.contains("store"), "got: {h}");
        assert!(h.contains("--page-size"), "got: {h}");
        assert!(h.contains("--pool-pages"), "got: {h}");
    }

    #[test]
    fn lint_front_door_reports_a_clean_workspace() {
        let out = dispatch(&argv(&["lint"])).expect("workspace is lint-clean");
        assert!(out.contains("parqp-lint: clean"), "got: {out}");
        assert!(out.contains("worker roots checked"), "got: {out}");
    }

    #[test]
    fn lint_front_door_json_format() {
        let out = dispatch(&argv(&["lint", "--format", "json"])).expect("json works");
        assert!(out.contains("\"clean\": true"), "got: {out}");
        assert!(out.contains("\"worker_roots\""), "got: {out}");
    }

    #[test]
    fn lint_front_door_rejects_unknown_flags() {
        let err = dispatch(&argv(&["lint", "--fix-baseline"])).expect_err("must fail");
        assert!(err.contains("cargo run -p parqp-lint"), "got: {err}");
        assert!(dispatch(&argv(&["lint", "--format", "wat"])).is_err());
    }

    #[test]
    fn help_mentions_lint_and_exit_codes() {
        let h = dispatch(&argv(&["help"])).expect("help");
        assert!(h.contains("lint"), "got: {h}");
        assert!(h.contains("exits 0 clean, 1 findings"), "got: {h}");
    }

    const SERVE_SMALL: &[&str] = &[
        "serve",
        "--servers",
        "4",
        "--tenants",
        "2",
        "--templates",
        "2",
        "--groups",
        "4",
        "--ticks",
        "16",
        "--cache-budget",
        "50000",
    ];

    #[test]
    fn serve_table_reports_tenants_and_cache() {
        let out = dispatch(&argv(SERVE_SMALL)).expect("serve runs");
        assert!(out.contains("serve replay: p=4 tenants=2"), "got: {out}");
        assert!(out.contains("cache: hits="), "got: {out}");
        assert!(out.contains("q/kticks"), "got: {out}");
        assert!(out.contains("digest=0x"), "got: {out}");
    }

    #[test]
    fn serve_jsonl_is_deterministic() {
        let mut args = SERVE_SMALL.to_vec();
        args.extend(["--format", "jsonl"]);
        let a = dispatch(&argv(&args)).expect("jsonl works");
        let b = dispatch(&argv(&args)).expect("jsonl works");
        assert_eq!(a, b, "fixed seed must export byte-identical JSONL");
        assert!(a.starts_with("{\"type\":\"config\""), "got: {a}");
        assert!(a.contains("\"type\":\"query\""), "got: {a}");
        assert!(a.contains("\"type\":\"totals\""), "got: {a}");
    }

    #[test]
    fn serve_verify_passes_and_reports() {
        let mut args = SERVE_SMALL.to_vec();
        args.push("--verify");
        let out = dispatch(&argv(&args)).expect("verification passes");
        assert!(
            out.contains("digests identical cache-on vs cache-off"),
            "got: {out}"
        );
    }

    #[test]
    fn serve_parallel_exec_is_byte_identical_to_serial() {
        let mut args = SERVE_SMALL.to_vec();
        args.extend(["--format", "jsonl"]);
        let serial = dispatch(&argv(&args)).expect("serial works");
        args.extend(["--exec", "parallel", "--workers", "2"]);
        let parallel = dispatch(&argv(&args)).expect("parallel works");
        assert_eq!(serial, parallel, "--exec parallel must not change output");
    }

    #[test]
    fn serve_faulted_run_reports_recovery_under_load() {
        let mut args = SERVE_SMALL.to_vec();
        args.extend(["--faults", "--crashes", "2", "--horizon", "4"]);
        let out = dispatch(&argv(&args)).expect("faulted serve runs");
        assert!(out.contains("faults=checkpoint(4)/h4"), "got: {out}");
        assert!(out.contains("faults: fired="), "got: {out}");
    }

    #[test]
    fn serve_rejects_bad_flags() {
        assert!(dispatch(&argv(&["serve", "--format", "wat"])).is_err());
        assert!(dispatch(&argv(&["serve", "--tenants", "0"])).is_err());
        assert!(dispatch(&argv(&["serve", "--ticks", "0"])).is_err());
        assert!(dispatch(&argv(&["serve", "--templates", "99"])).is_err());
        assert!(dispatch(&argv(&["serve", "--zipf-q", "-1"])).is_err());
        assert!(dispatch(&argv(&["serve", "--faults", "--strategy", "wat"])).is_err());
    }

    #[test]
    fn serve_out_writes_jsonl_artifact() {
        let dir = tmpdir("serve_out");
        let f = dir.join("serve.jsonl");
        let mut args = SERVE_SMALL.to_vec();
        let path = f.to_str().expect("utf8");
        args.extend(["--format", "jsonl", "--out", path]);
        let out = dispatch(&argv(&args)).expect("serve --out works");
        assert!(out.contains("wrote"), "got: {out}");
        let body = std::fs::read_to_string(&f).expect("file written");
        assert!(body.contains("\"type\":\"tenant\""), "got: {body}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn help_mentions_serve_flags() {
        let h = dispatch(&argv(&["help"])).expect("help");
        assert!(h.contains("serve"), "got: {h}");
        assert!(h.contains("--cache-budget"), "got: {h}");
        assert!(h.contains("--zipf-q"), "got: {h}");
    }

    #[test]
    fn serve_obs_appends_dashboard_and_window_series() {
        let mut args = SERVE_SMALL.to_vec();
        args.extend(["--obs", "--window", "4"]);
        let out = dispatch(&argv(&args)).expect("observed serve runs");
        assert!(out.contains("serve replay: p=4"), "got: {out}");
        assert!(out.contains("serve series: p=4 windows=4x4"), "got: {out}");
        assert!(out.contains("heatmap: tuples received"), "got: {out}");
        let mut args = SERVE_SMALL.to_vec();
        args.extend(["--obs", "--format", "jsonl"]);
        let a = dispatch(&argv(&args)).expect("observed jsonl works");
        let b = dispatch(&argv(&args)).expect("observed jsonl works");
        assert_eq!(a, b, "observed replay must stay deterministic");
        assert!(a.contains("\"type\":\"query\""), "got: {a}");
        assert!(a.contains("\"type\":\"window\""), "got: {a}");
        assert!(a.contains("\"type\":\"series_totals\""), "got: {a}");
    }

    #[test]
    fn serve_prom_format_exports_window_gauges() {
        let mut args = SERVE_SMALL.to_vec();
        args.extend(["--format", "prom"]);
        let out = dispatch(&argv(&args)).expect("prom format works");
        assert!(
            out.contains("# TYPE parqp_serve_window_served gauge"),
            "got: {out}"
        );
        assert!(out.contains("parqp_serve_served_total"), "got: {out}");
    }

    #[test]
    fn serve_slo_gate_passes_and_trips() {
        let dir = tmpdir("serve_slo");
        let rules = dir.join("rules.slo");
        // Generous thresholds pass and report the verdict table.
        std::fs::write(&rules, "p99_l_budget = 1000000\n").expect("write rules");
        let mut args = SERVE_SMALL.to_vec();
        let path = rules.to_str().expect("utf8").to_string();
        args.extend(["--slo", &path]);
        let out = dispatch(&argv(&args)).expect("slo gate passes");
        assert!(out.contains("verdict: PASS"), "got: {out}");
        // An impossible budget burns every window: fast-burn alert,
        // nonzero exit, alert text in the error.
        std::fs::write(&rules, "p99_l_budget = 0\n").expect("write rules");
        let err = dispatch(&argv(&args)).expect_err("slo gate must trip");
        assert!(err.contains("slo gate"), "got: {err}");
        assert!(err.contains("fast burn"), "got: {err}");
        // A malformed rules file is a setup error, not a pass.
        std::fs::write(&rules, "p99_l_budget = banana\n").expect("write rules");
        assert!(dispatch(&argv(&args)).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dash_renders_sparklines_for_presets() {
        let out = dispatch(&argv(&["dash"])).expect("dash runs");
        assert!(out.contains("serve series: p=8 windows=6x8"), "got: {out}");
        assert!(out.contains("p99(L)"), "got: {out}");
        assert!(out.contains("heatmap: tuples received"), "got: {out}");
        let cold = dispatch(&argv(&["dash", "--preset", "cold"])).expect("cold preset runs");
        assert!(cold.contains("hit_rate"), "got: {cold}");
        let err = dispatch(&argv(&["dash", "--preset", "wat"])).expect_err("unknown preset");
        assert!(err.contains("steady|cold|faulted"), "got: {err}");
        assert!(dispatch(&argv(&["dash", "--format", "wat"])).is_err());
    }

    #[test]
    fn dash_out_writes_snapshot_artifacts() {
        let dir = tmpdir("dash_out");
        let f = dir.join("dash.txt");
        let out = dispatch(&argv(&["dash", "--out", f.to_str().expect("utf8")]))
            .expect("dash --out works");
        assert!(out.contains("wrote"), "got: {out}");
        let body = std::fs::read_to_string(&f).expect("file written");
        assert!(body.contains("serve series"), "got: {body}");
        let j = dir.join("dash.jsonl");
        dispatch(&argv(&[
            "dash",
            "--format",
            "jsonl",
            "--out",
            j.to_str().expect("utf8"),
        ]))
        .expect("dash jsonl works");
        let body = std::fs::read_to_string(&j).expect("file written");
        assert!(body.contains("\"type\":\"window\""), "got: {body}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn help_mentions_obs_and_dash() {
        let h = dispatch(&argv(&["help"])).expect("help");
        assert!(h.contains("--obs"), "got: {h}");
        assert!(h.contains("--slo"), "got: {h}");
        assert!(h.contains("dash"), "got: {h}");
        assert!(h.contains("--preset"), "got: {h}");
    }

    #[test]
    fn trace_out_writes_file() {
        let dir = tmpdir("trace_out");
        let f = dir.join("t.jsonl");
        let out = dispatch(&argv(&[
            "trace",
            "--experiment",
            "twoway-hash",
            "--servers",
            "4",
            "--format",
            "jsonl",
            "--out",
            f.to_str().expect("utf8"),
        ]))
        .expect("trace --out works");
        assert!(out.contains("wrote"));
        let body = std::fs::read_to_string(&f).expect("file written");
        assert!(body.contains("\"round_end\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
