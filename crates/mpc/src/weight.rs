//! Message weights: how many *words* a message contributes to the load.
//!
//! The paper measures load in tuples; when relations have different arities
//! it is fairer to also measure words (one word per attribute value). Every
//! message type exchanged through the simulator implements [`Weight`]; the
//! cluster records both the tuple count (one per message) and the word
//! count (the sum of [`Weight::words`]).

/// Number of machine words a message occupies on the wire.
pub trait Weight {
    /// The number of words this message counts for in the word-load metric.
    fn words(&self) -> u64;
}

impl Weight for u64 {
    fn words(&self) -> u64 {
        1
    }
}

impl Weight for u32 {
    fn words(&self) -> u64 {
        1
    }
}

impl Weight for usize {
    fn words(&self) -> u64 {
        1
    }
}

impl Weight for f64 {
    fn words(&self) -> u64 {
        1
    }
}

impl<T: Weight> Weight for Vec<T> {
    fn words(&self) -> u64 {
        self.iter().map(Weight::words).sum()
    }
}

impl<T: Weight> Weight for Box<[T]> {
    fn words(&self) -> u64 {
        self.iter().map(Weight::words).sum()
    }
}

impl<A: Weight, B: Weight> Weight for (A, B) {
    fn words(&self) -> u64 {
        self.0.words() + self.1.words()
    }
}

impl<A: Weight, B: Weight, C: Weight> Weight for (A, B, C) {
    fn words(&self) -> u64 {
        self.0.words() + self.1.words() + self.2.words()
    }
}

impl<T: Weight, const N: usize> Weight for [T; N] {
    fn words(&self) -> u64 {
        self.iter().map(Weight::words).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_weights() {
        assert_eq!(7u64.words(), 1);
        assert_eq!(7u32.words(), 1);
        assert_eq!(7usize.words(), 1);
        assert_eq!(1.5f64.words(), 1);
    }

    #[test]
    fn composite_weights() {
        assert_eq!(vec![1u64, 2, 3].words(), 3);
        assert_eq!((1u64, 2u64).words(), 2);
        assert_eq!((1u64, 2u64, 3u64).words(), 3);
        assert_eq!([1u64, 2, 3, 4].words(), 4);
        let b: Box<[u64]> = vec![5, 6].into_boxed_slice();
        assert_eq!(b.words(), 2);
    }

    #[test]
    fn nested_weights() {
        assert_eq!((vec![1u64, 2], 3u64).words(), 3);
        assert_eq!(vec![vec![1u64], vec![2, 3]].words(), 3);
    }
}
