//! Residual queries and the skew exponent ψ\*.
//!
//! Slide 47: fix a set `x ⊆ {x₁…x_k}` of variables declared **heavy**.
//! The residual query `Q_x` removes those variables from every atom and
//! drops atoms that become empty. SkewHC runs, for every heavy/light
//! combination, the residual query on its own server group; the governing
//! exponent is
//!
//! ```text
//! ψ*(Q) = max_x τ*(Q_x)
//! ```
//!
//! and the skewed one-round load is `Θ(IN / p^{1/ψ*})` (slides 47–51).

use crate::query::{Atom, Query, Var};
use parqp_lp::fractional_edge_packing;

/// The residual query `Q_x` for a fixed heavy-variable set, together with
/// the bookkeeping needed to execute it on real data.
#[derive(Debug, Clone)]
pub struct ResidualQuery {
    /// The heavy variables (original ids, sorted).
    pub heavy_vars: Vec<Var>,
    /// The residual query over renumbered light variables, or `None` if
    /// every atom dropped (all variables heavy).
    pub query: Option<Query>,
    /// Maps an original variable to its id in the residual query
    /// (`None` for heavy variables).
    pub var_map: Vec<Option<Var>>,
    /// Maps an original atom index to its index in the residual query
    /// (`None` for dropped atoms).
    pub atom_map: Vec<Option<usize>>,
    /// For each original atom, the positions of its light variables
    /// (empty for dropped atoms).
    pub kept_positions: Vec<Vec<usize>>,
}

impl ResidualQuery {
    /// τ\* of the residual query (0 when no atoms remain).
    pub fn tau_star(&self) -> f64 {
        self.query
            .as_ref()
            .map_or(0.0, |q| fractional_edge_packing(&q.hypergraph()).value)
    }
}

/// Build the residual query `Q_heavy`.
///
/// # Panics
/// Panics if a heavy variable id is out of range.
pub fn residual(q: &Query, heavy: &[Var]) -> ResidualQuery {
    let mut is_heavy = vec![false; q.num_vars()];
    for &h in heavy {
        assert!(h < q.num_vars(), "heavy variable x{h} out of range");
        is_heavy[h] = true;
    }
    let mut heavy_vars: Vec<Var> = (0..q.num_vars()).filter(|&v| is_heavy[v]).collect();
    heavy_vars.sort_unstable();

    // Keep only light vars that still appear in some surviving atom.
    let mut kept_positions = Vec::with_capacity(q.num_atoms());
    let mut survives = Vec::with_capacity(q.num_atoms());
    for atom in q.atoms() {
        let kept: Vec<usize> = (0..atom.vars.len())
            .filter(|&p| !is_heavy[atom.vars[p]])
            .collect();
        survives.push(!kept.is_empty());
        kept_positions.push(kept);
    }

    let mut var_map: Vec<Option<Var>> = vec![None; q.num_vars()];
    let mut next = 0;
    for v in 0..q.num_vars() {
        if !is_heavy[v] {
            var_map[v] = Some(next);
            next += 1;
        }
    }

    let mut atoms = Vec::new();
    let mut atom_map = vec![None; q.num_atoms()];
    for (j, atom) in q.atoms().iter().enumerate() {
        if survives[j] {
            atom_map[j] = Some(atoms.len());
            let vars: Vec<Var> = kept_positions[j]
                .iter()
                .map(|&p| var_map[atom.vars[p]].expect("kept var is light"))
                .collect();
            atoms.push(Atom::new(atom.name.clone(), vars));
        }
    }

    let query = if atoms.is_empty() {
        None
    } else {
        Some(Query::new(next, atoms))
    };
    ResidualQuery {
        heavy_vars,
        query,
        var_map,
        atom_map,
        kept_positions,
    }
}

/// All `2^k` residual queries of `q`, one per heavy-variable subset
/// (including the empty set), in subset-mask order.
///
/// # Panics
/// Panics if `q` has more than 20 variables (the enumeration would blow up).
pub fn all_residuals(q: &Query) -> Vec<ResidualQuery> {
    let k = q.num_vars();
    assert!(k <= 20, "residual enumeration limited to 20 variables");
    (0..(1usize << k))
        .map(|mask| {
            let heavy: Vec<Var> = (0..k).filter(|&v| mask & (1 << v) != 0).collect();
            residual(q, &heavy)
        })
        .collect()
}

/// The skew exponent `ψ*(Q) = max_x τ*(Q_x)` (slide 47); the maximum is
/// over all heavy sets, including the empty one.
pub fn psi_star(q: &Query) -> f64 {
    all_residuals(q)
        .iter()
        .map(ResidualQuery::tau_star)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-7
    }

    #[test]
    fn triangle_residuals_match_slide_48_50() {
        let q = Query::triangle();
        // all light: the triangle itself, τ* = 3/2.
        let r = residual(&q, &[]);
        assert!(close(r.tau_star(), 1.5));
        // z heavy: R(x,y) ⋈ S(y) ⋈ T(x), τ* = 2 (slide 49).
        let r = residual(&q, &[2]);
        let rq = r.query.as_ref().expect("atoms survive");
        assert_eq!(rq.num_atoms(), 3);
        assert_eq!(rq.atoms()[1].vars.len(), 1);
        assert!(close(r.tau_star(), 2.0));
        // y, z heavy: R(x) ⋈ S(∅ dropped)… slide 50: R(x) ⋈ T(x), τ* = 1.
        let r = residual(&q, &[1, 2]);
        let rq = r.query.as_ref().expect("R and T survive");
        assert_eq!(rq.num_atoms(), 2);
        assert!(close(r.tau_star(), 1.0));
        assert_eq!(r.atom_map, vec![Some(0), None, Some(1)]);
        // all heavy: nothing remains.
        let r = residual(&q, &[0, 1, 2]);
        assert!(r.query.is_none());
        assert!(close(r.tau_star(), 0.0));
    }

    #[test]
    fn psi_star_matches_slide_51_53() {
        assert!(close(psi_star(&Query::triangle()), 2.0));
        assert!(close(psi_star(&Query::semijoin_pair()), 2.0));
        assert!(close(psi_star(&Query::two_way()), 2.0));
    }

    #[test]
    fn psi_at_least_tau() {
        // ψ* ≥ τ* always (slide 54: τ* ≤ ψ*).
        for q in [
            Query::triangle(),
            Query::chain(4),
            Query::star(3),
            Query::cycle(4),
        ] {
            let tau = fractional_edge_packing(&q.hypergraph()).value;
            assert!(psi_star(&q) >= tau - 1e-9, "{q}");
        }
    }

    #[test]
    fn var_maps_consistent() {
        let q = Query::triangle();
        let r = residual(&q, &[1]);
        assert_eq!(r.heavy_vars, vec![1]);
        assert_eq!(r.var_map, vec![Some(0), None, Some(1)]);
        // R(x,y) keeps position 0 (x); S(y,z) keeps position 1 (z);
        // T(z,x) keeps both.
        assert_eq!(r.kept_positions, vec![vec![0], vec![1], vec![0, 1]]);
    }

    #[test]
    fn all_residuals_count() {
        assert_eq!(all_residuals(&Query::triangle()).len(), 8);
        assert_eq!(all_residuals(&Query::two_way()).len(), 8);
    }

    #[test]
    fn cartesian_residual_of_two_way() {
        // Heavy y in R(x,y) ⋈ S(y,z) leaves the product R(x) ⋈ S(z).
        let r = residual(&Query::two_way(), &[1]);
        let rq = r.query.as_ref().expect("survives");
        assert_eq!(rq.num_vars(), 2);
        assert_eq!(rq.atoms()[0].vars, vec![0]);
        assert_eq!(rq.atoms()[1].vars, vec![1]);
        assert!(close(r.tau_star(), 2.0));
    }
}
