//! Sampling-based statistics.
//!
//! The skew-resilient algorithms need heavy-hitter sets and degree
//! estimates. The simulator computes them exactly (see [`crate::stats`]),
//! but a real shared-nothing system estimates them from a Bernoulli
//! sample gathered in a cheap pre-round — "state of the art in large
//! scale distributed systems: DIY" (slide 46). This module provides that
//! estimator so the trade-off (sample size vs detection accuracy) can be
//! studied; a Chernoff argument gives the usual guarantee: a sample rate
//! of `Θ(p·log(1/δ)/IN)` per tuple finds every value of degree `≥ IN/p`
//! and admits no value of degree `≤ IN/(2p)`, with probability `1 − δ`.

use crate::fasthash::FastMap;
use crate::relation::{Relation, Value};
use parqp_testkit::Rng;

/// Degree estimates from a Bernoulli sample of `rel`'s column `col`.
#[derive(Debug, Clone)]
pub struct SampledDegrees {
    /// The sampling rate used.
    pub rate: f64,
    /// Number of sampled tuples.
    pub sample_size: usize,
    /// Sampled counts per value (scale by `1/rate` to estimate degrees).
    pub counts: FastMap<Value, u64>,
}

impl SampledDegrees {
    /// Estimated degree of `value` (0 if unseen).
    pub fn estimate(&self, value: Value) -> f64 {
        self.counts.get(&value).copied().unwrap_or(0) as f64 / self.rate
    }

    /// Values whose estimated degree is at least `threshold`.
    pub fn heavy_hitters(&self, threshold: f64) -> Vec<Value> {
        let mut out: Vec<Value> = self
            .counts
            .iter()
            .filter_map(|(&v, &c)| ((c as f64 / self.rate) >= threshold).then_some(v))
            .collect();
        out.sort_unstable();
        out
    }
}

/// Bernoulli-sample column `col` at `rate` and count sampled values.
///
/// # Panics
/// Panics unless `0 < rate <= 1`.
pub fn sample_degrees(rel: &Relation, col: usize, rate: f64, seed: u64) -> SampledDegrees {
    assert!(rate > 0.0 && rate <= 1.0, "sample rate must be in (0, 1]");
    assert!(col < rel.arity(), "column out of range");
    let mut rng = Rng::seed_from_u64(seed);
    let mut counts: FastMap<Value, u64> = FastMap::default();
    let mut sample_size = 0;
    for row in rel.iter() {
        if rng.gen_f64() < rate {
            *counts.entry(row[col]).or_insert(0) += 1;
            sample_size += 1;
        }
    }
    SampledDegrees {
        rate,
        sample_size,
        counts,
    }
}

/// The sample rate that detects degree-`IN/p` heavy hitters with failure
/// probability `δ`: `min(1, c·p·ln(1/δ)/IN)` with the Chernoff constant
/// `c = 16` (both false-negative and false-positive sides at relative
/// gap 1/2).
pub fn recommended_rate(input: usize, p: usize, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    let c = 16.0;
    (c * p as f64 * (1.0 / delta).ln() / input.max(1) as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn finds_planted_heavy_hitters() {
        let n = 50_000;
        let p = 50;
        // Two values of degree n/10 ≫ n/p; light values unique.
        let rel = generate::planted_heavy_pairs(n, &[11, 22], n / 10, 0, 1 << 30, 3);
        let rate = recommended_rate(n, p, 0.01);
        let s = sample_degrees(&rel, 0, rate, 7);
        let heavy = s.heavy_hitters((n / p) as f64);
        assert_eq!(heavy, vec![11, 22]);
    }

    #[test]
    fn no_false_positives_far_below_threshold() {
        let n = 50_000;
        let p = 50;
        // Max degree 16 ≪ n/(2p) = 500.
        let rel = generate::uniform_degree_pairs(n, 16, 0, 1 << 30, 5);
        let rate = recommended_rate(n, p, 0.01);
        let s = sample_degrees(&rel, 0, rate, 9);
        assert!(s.heavy_hitters((n / p) as f64).is_empty());
    }

    #[test]
    fn estimates_close_to_truth_for_heavy_values() {
        let n = 40_000;
        let deg = 4000;
        let rel = generate::planted_heavy_pairs(n, &[7], deg, 0, 1 << 30, 11);
        let s = sample_degrees(&rel, 0, 0.05, 13);
        let est = s.estimate(7);
        assert!(
            (est - deg as f64).abs() < 0.3 * deg as f64,
            "estimate {est} vs true {deg}"
        );
        assert_eq!(s.estimate(999_999_999), 0.0);
    }

    #[test]
    fn rate_one_is_exact() {
        let rel = generate::uniform_degree_pairs(1000, 10, 0, 1 << 20, 15);
        let s = sample_degrees(&rel, 0, 1.0, 1);
        assert_eq!(s.sample_size, rel.len());
        let exact = crate::stats::degree_counts(&rel, 0);
        for (v, &c) in &s.counts {
            assert_eq!(c, exact[v]);
        }
    }

    #[test]
    fn recommended_rate_caps_at_one() {
        assert_eq!(recommended_rate(10, 100, 0.01), 1.0);
        let r = recommended_rate(10_000_000, 100, 0.01);
        assert!(r < 0.01);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn bad_rate_rejected() {
        sample_degrees(&generate::unary_range(5), 0, 0.0, 1);
    }
}
