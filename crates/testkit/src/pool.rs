//! The workspace's sanctioned worker-thread pool.
//!
//! Determinism rule PQ004 bans `std::thread` everywhere — except this
//! file, which the lint exempts by path. Everything that executes off
//! the main thread anywhere in the workspace goes through
//! [`WorkerPool`], and the pool's one primitive is a *deterministic
//! map*: [`WorkerPool::map`] hands job `i` the `i`-th input and stores
//! its output in slot `i`, so the result vector is always in submit
//! order no matter which worker finishes first. Scheduling jitter can
//! reorder *completion*, never *results*.
//!
//! Panic containment: a panicking job never takes the pool (or the
//! caller) down with a hang. The panic is caught on the worker, the
//! batch still runs to completion, and `map` returns a typed
//! [`PoolError`] carrying the first panicking job's index and message.
//! The pool itself stays usable for the next batch.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// Number of hardware threads available to this process (at least 1).
pub fn ncpu() -> usize {
    thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A job panicked inside [`WorkerPool::map`].
///
/// `job` is the submit-order index of the first panicking job observed;
/// `message` is its panic payload rendered as text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Submit-order index of the panicking job.
    pub job: usize,
    /// The panic payload (`&str`/`String` payloads verbatim).
    pub message: String,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker panicked on job {}: {}", self.job, self.message)
    }
}

impl std::error::Error for PoolError {}

/// Render a panic payload as text (`&str` and `String` payloads pass
/// through verbatim, anything else becomes a generic message).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// A type-erased batch task: `call(data, job)` runs job `job`.
///
/// Safety: `data` borrows state on the submitting thread's stack. The
/// erasure is sound because [`WorkerPool::run_raw`] blocks until every
/// claimed job has finished (`done == jobs`, panics included), so the
/// borrow outlives every worker access.
#[derive(Clone, Copy)]
struct RawTask {
    data: *const (),
    call: unsafe fn(*const (), usize),
}

unsafe impl Send for RawTask {}

struct State {
    jobs: usize,
    next: usize,
    done: usize,
    task: Option<RawTask>,
    failure: Option<PoolError>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a new batch arrives or the pool shuts down.
    work: Condvar,
    /// Signalled when the last job of a batch completes.
    idle: Condvar,
}

/// A fixed-size pool of persistent worker threads executing
/// deterministic batch maps. See the module docs for the model.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<thread::JoinHandle<()>>,
    workers: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl WorkerPool {
    /// Spawn a pool of `workers` persistent threads (at least 1).
    // Sanctioned `thread::spawn` site: this file is the PQ004 path
    // exemption (see module docs), and deterministic merge means the
    // threads never affect observable results.
    #[allow(clippy::disallowed_methods)]
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: 0,
                next: 0,
                done: 0,
                task: None,
                failure: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self {
            shared,
            handles,
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Apply `f` to every item on the pool and return the outputs in
    /// submit order: `out[i] == f(i, items[i])`.
    ///
    /// Blocks until the whole batch has finished. If any job panics the
    /// remaining jobs still run (so borrowed state stays sound), and
    /// the first panic is returned as a [`PoolError`].
    pub fn map<I, O, F>(&self, items: Vec<I>, f: F) -> Result<Vec<O>, PoolError>
    where
        I: Send,
        O: Send,
        F: Fn(usize, I) -> O + Sync,
    {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let slots: Vec<Mutex<Slot<I, O>>> = items
            .into_iter()
            .map(|item| {
                Mutex::new(Slot {
                    input: Some(item),
                    output: None,
                })
            })
            .collect();
        let jobs = slots.len();
        let run_one = |job: usize| {
            let input = lock_slot(&slots[job]).input.take().expect("input present");
            let output = f(job, input);
            lock_slot(&slots[job]).output = Some(output);
        };
        if let Some(err) = self.run_raw(jobs, erase(&run_one)) {
            return Err(err);
        }
        Ok(slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .output
                    .expect("job completed")
            })
            .collect())
    }

    /// Publish a batch, wake the workers, and block until every job has
    /// been executed. Returns the first panic, if any.
    fn run_raw(&self, jobs: usize, task: RawTask) -> Option<PoolError> {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.jobs = jobs;
            st.next = 0;
            st.done = 0;
            st.failure = None;
            st.task = Some(task);
        }
        self.shared.work.notify_all();
        let mut st = self.shared.state.lock().expect("pool lock");
        while st.done < st.jobs {
            st = self.shared.idle.wait(st).expect("pool lock");
        }
        st.task = None;
        st.failure.take()
    }
}

struct Slot<I, O> {
    input: Option<I>,
    output: Option<O>,
}

/// Lock a slot, recovering from poisoning (a panicking *other* job can
/// never poison this slot — each slot is touched by exactly one job).
fn lock_slot<'a, I, O>(slot: &'a Mutex<Slot<I, O>>) -> std::sync::MutexGuard<'a, Slot<I, O>> {
    slot.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Erase a `Fn(usize)` closure to a [`RawTask`] (see its safety note).
fn erase<C: Fn(usize) + Sync>(c: &C) -> RawTask {
    unsafe fn thunk<C: Fn(usize)>(data: *const (), job: usize) {
        let c = unsafe { &*data.cast::<C>() };
        c(job);
    }
    RawTask {
        data: (c as *const C).cast(),
        call: thunk::<C>,
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let (task, job) = {
            let mut st = shared.state.lock().expect("pool lock");
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(task) = st.task {
                    if st.next < st.jobs {
                        let job = st.next;
                        st.next += 1;
                        break (task, job);
                    }
                }
                st = shared.work.wait(st).expect("pool lock");
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (task.call)(task.data, job) }));
        let mut st = shared.state.lock().expect("pool lock");
        if let Err(payload) = outcome {
            if st.failure.is_none() {
                st.failure = Some(PoolError {
                    job,
                    message: panic_message(payload.as_ref()),
                });
            }
        }
        st.done += 1;
        if st.done == st.jobs {
            shared.idle.notify_all();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_returns_results_in_submit_order() {
        let pool = WorkerPool::new(4);
        // Front-load the heaviest jobs so completion order inverts
        // submit order on any scheduler — results must not.
        let items: Vec<u64> = (0..64).map(|i| (64 - i) * 20_000).collect();
        let out = pool
            .map(items, |i, spin| {
                let mut acc = 0u64;
                for k in 0..spin {
                    acc = acc.wrapping_add(k ^ i as u64);
                }
                std::hint::black_box(acc);
                i
            })
            .expect("no panics");
        assert_eq!(out, (0..64).collect::<Vec<usize>>());
    }

    #[test]
    fn repeated_batches_are_identical() {
        let pool = WorkerPool::new(3);
        let run = || {
            pool.map((0..100u64).collect(), |i, x| x * 3 + i as u64)
                .expect("no panics")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a[10], 40);
    }

    #[test]
    fn panic_is_typed_not_a_hang() {
        let pool = WorkerPool::new(4);
        let err = pool
            .map((0..32usize).collect(), |_, x| {
                assert!(x != 13, "unlucky job");
                x * 2
            })
            .expect_err("job 13 panics");
        assert_eq!(err.job, 13);
        assert!(err.message.contains("unlucky job"), "got: {}", err.message);
    }

    #[test]
    fn pool_survives_a_panicking_batch() {
        let pool = WorkerPool::new(2);
        let err = pool
            .map(vec![0usize], |_, _| -> usize { panic!("boom") })
            .expect_err("panics");
        assert_eq!(err.message, "boom");
        // The next batch on the same pool is clean.
        let ok = pool.map(vec![1usize, 2, 3], |_, x| x + 1).expect("clean");
        assert_eq!(ok, vec![2, 3, 4]);
    }

    #[test]
    fn empty_batch_and_single_worker() {
        let pool = WorkerPool::new(1);
        let out: Vec<u32> = pool.map(Vec::<u32>::new(), |_, x| x).expect("empty");
        assert!(out.is_empty());
        let out = pool.map(vec![7u32; 5], |i, x| x + i as u32).expect("runs");
        assert_eq!(out, vec![7, 8, 9, 10, 11]);
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.map(vec![1], |_, x: i32| x).expect("runs"), vec![1]);
    }

    #[test]
    fn ncpu_is_positive() {
        assert!(ncpu() >= 1);
    }
}
