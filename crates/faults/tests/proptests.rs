//! Property tests for fault schedules: seed determinism, seed
//! sensitivity, and agreement with `parqp-testkit`'s SplitMix64.

use parqp_faults::{FaultKind, FaultPlan, FaultSpec};
use parqp_testkit::prelude::*;
use parqp_testkit::splitmix64;

fn arb_spec() -> impl Strategy<Value = FaultSpec> {
    (0usize..3, 0usize..3, 0usize..3, 0usize..3, 1u64..10).prop_map(
        |(crashes, drops, duplicates, stragglers, max_batch)| FaultSpec {
            crashes,
            drops,
            duplicates,
            stragglers,
            max_batch,
        },
    )
}

proptest! {
    #[test]
    fn same_seed_same_schedule(seed in any::<u64>(), p in 1usize..64, rounds in 1usize..16, spec in arb_spec()) {
        let a = FaultPlan::random(seed, p, rounds, &spec);
        let b = FaultPlan::random(seed, p, rounds, &spec);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn schedule_respects_spec(seed in any::<u64>(), p in 1usize..64, rounds in 1usize..16, spec in arb_spec()) {
        let plan = FaultPlan::random(seed, p, rounds, &spec);
        prop_assert!(plan.len() <= spec.total());
        prop_assert!(plan.crashes() <= spec.crashes);
        for (round, server, kind) in plan.schedule() {
            prop_assert!(round < rounds);
            prop_assert!(server < p);
            if let FaultKind::Drop { msgs } | FaultKind::Duplicate { msgs } = kind {
                prop_assert!(msgs >= 1 && msgs <= spec.max_batch);
            }
        }
        // The grid is never over-filled, and when it is large enough the
        // full spec fits.
        if p * rounds >= 64 * spec.total().max(1) {
            prop_assert_eq!(plan.len(), spec.total());
        }
    }
}

/// Disjoint seeds must yield distinct schedules (on a grid big enough
/// that a collision would imply the generator ignores its seed).
#[test]
fn disjoint_seeds_distinct_schedules() {
    let spec = FaultSpec::default();
    let mut rng = Rng::seed_from_u64(0xfa17);
    for _ in 0..50 {
        let s1 = rng.next_u64();
        let s2 = s1 ^ rng.next_u64().max(1);
        let a = FaultPlan::random(s1, 64, 16, &spec);
        let b = FaultPlan::random(s2, 64, 16, &spec);
        assert_ne!(a, b, "seeds {s1:#x} vs {s2:#x} collided");
    }
}

/// The crate's inlined SplitMix64 must stay bit-identical to the
/// testkit's: pin the schedule a known seed produces through the
/// testkit generator's first draws.
#[test]
fn generator_matches_testkit_splitmix64() {
    // FaultPlan::random(seed, p, rounds, …) draws round-then-server
    // per fault via multiply-shift reduction over splitmix64 outputs.
    let draw =
        |state: &mut u64, n: u64| ((u128::from(splitmix64(state)) * u128::from(n)) >> 64) as u64;
    let (seed, p, rounds) = (42u64, 8usize, 4usize);
    let spec = FaultSpec {
        crashes: 1,
        drops: 0,
        duplicates: 0,
        stragglers: 0,
        max_batch: 1,
    };
    let mut state = seed;
    let round = draw(&mut state, rounds as u64) as usize;
    let server = draw(&mut state, p as u64) as usize;
    let plan = FaultPlan::random(seed, p, rounds, &spec);
    let sched: Vec<_> = plan.schedule().collect();
    assert_eq!(sched, vec![(round, server, FaultKind::Crash)]);
}
