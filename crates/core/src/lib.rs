//! # parqp — Algorithmic Aspects of Parallel Query Processing, in Rust
//!
//! A faithful implementation of the algorithm suite from the SIGMOD 2018
//! tutorial *Algorithmic Aspects of Parallel Query Processing* (Koutris,
//! Salihoglu, Suciu) on a deterministic simulator of the **MPC model**
//! (Massively Parallel Communication): `p` shared-nothing servers,
//! synchronous rounds, and per-round per-server load `L` as the cost.
//!
//! ## Quick start
//!
//! ```
//! use parqp::prelude::*;
//!
//! // A triangle query over a random graph, on 64 simulated servers.
//! let query = Query::triangle();
//! let edges = parqp::data::generate::random_symmetric_graph(100, 600, 7);
//! let rels = vec![edges.clone(), edges.clone(), edges];
//!
//! let run = parqp::join::multiway::hypercube(&query, &rels, 64, 42);
//! println!(
//!     "{} triangles, load L = {} tuples in {} round(s)",
//!     run.output_size(),
//!     run.report.max_load_tuples(),
//!     run.report.num_rounds(),
//! );
//! # assert_eq!(run.report.num_rounds(), 1);
//! ```
//!
//! ## Crate map
//!
//! * [`mpc`] — the cluster simulator (`Cluster`, `LoadReport`, grids);
//! * [`data`] — relations, generators, statistics;
//! * [`lp`] — simplex, τ\*/ρ\*, AGM, HyperCube share optimization;
//! * [`query`] — conjunctive queries, GHDs, residual queries, oracles;
//! * [`join`] — every join algorithm of the tutorial;
//! * [`sort`] — PSRS and multi-round sorting;
//! * [`matmul`] — MPC matrix multiplication;
//! * [`model`] — the closed-form cost/probability formulas of the slides;
//! * [`planner`] — a heuristic that picks the right algorithm per input;
//! * [`pipeline`] — join-then-aggregate pipelines (slide 52's
//!   `GROUP BY` query);
//! * [`trace`] — deterministic round-level observability (recorders,
//!   exporters, load analysis);
//! * [`faults`] — seeded fault injection (crashes, drops, duplicates,
//!   stragglers) and recovery strategies with honestly charged
//!   overhead;
//! * [`observe`] — named trace experiments for `parqp trace` and
//!   `parqp faults`;
//! * [`metrics`] — bound-adherence metrics over the experiments
//!   (`parqp metrics`) and the JSON baseline the CI perf gate compares
//!   against;
//! * [`serve`] — the multi-tenant workload driver (`parqp serve`):
//!   seeded bursty query streams against one long-lived cluster, with
//!   shared-plan caching and per-tenant ledgers;
//! * [`obs`] — deterministic time-series telemetry over serving runs
//!   (`parqp dash`): tick-windowed throughput/latency/cache series,
//!   log₂-sketched percentiles, SLO burn-rate gates, JSONL/Prometheus
//!   exporters;
//! * [`cli`] — the `parqp` command-line tool (plan/run/analyze/stats/
//!   generate/trace/faults/metrics over CSV relations).

pub use parqp_data as data;
pub use parqp_faults as faults;
pub use parqp_join as join;
pub use parqp_lp as lp;
pub use parqp_matmul as matmul;
pub use parqp_mpc as mpc;
pub use parqp_obs as obs;
pub use parqp_query as query;
pub use parqp_serve as serve;
pub use parqp_sort as sort;
pub use parqp_trace as trace;

pub mod cli;
pub mod metrics;
pub mod model;
pub mod observe;
pub mod pipeline;
pub mod planner;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use crate::join::JoinRun;
    pub use crate::mpc::{Cluster, LoadReport};
    pub use crate::planner::{plan, run_plan, Strategy};
    pub use crate::query::{Atom, Ghd, Query};
    pub use parqp_data::{Relation, Value};
}
