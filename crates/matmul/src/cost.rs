//! Closed-form communication/round costs (slides 122–126).
//!
//! All formulas count matrix *elements*, matching the simulator's word
//! accounting, and take the per-server load budget `L` as the free
//! parameter — the x-axis of slide 126's `C`-vs-`L` frontier.

/// Rectangle-block: group size `t = L/(2n)`, `K = n/t` groups, and total
/// communication `C = K²·L = 4n⁴/L` in a single round (slide 110).
pub fn rect_comm(n: u64, l: u64) -> f64 {
    4.0 * (n as f64).powi(4) / l as f64
}

/// Square-block: block side `nb = √(L/2)`, `H = n/nb`, and
/// multiplication communication `C = 2n²·H = 2√2·n³/√L` (slide 122).
pub fn square_comm(n: u64, l: u64) -> f64 {
    let nb = (l as f64 / 2.0).sqrt();
    2.0 * (n as f64).powi(2) * (n as f64 / nb)
}

/// Square-block rounds: `⌈H³/p⌉` multiplication rounds
/// `= n³/(p·(L/2)^{3/2})`, plus the `log_L n` aggregation term
/// (slide 122).
pub fn square_rounds(n: u64, l: u64, p: u64) -> f64 {
    let nf = n as f64;
    let lf = l as f64;
    let mult = nf.powi(3) / (p as f64 * (lf / 2.0).powf(1.5));
    mult.max(1.0) + (nf.ln() / lf.ln()).max(0.0)
}

/// The 1-round communication lower bound `C = Ω(n⁴/L)` (slide 126).
pub fn lb_comm_one_round(n: u64, l: u64) -> f64 {
    (n as f64).powi(4) / l as f64
}

/// The round-independent communication lower bound `C = Ω(n³/√L)`
/// (slides 123–124): with `L` elements a processor performs `O(L^{3/2})`
/// elementary products (by AGM with τ\* = 3/2), and `n³` are needed.
pub fn lb_comm_multi_round(n: u64, l: u64) -> f64 {
    (n as f64).powi(3) / (l as f64).sqrt()
}

/// The round lower bound `r = Ω(max(n³/(p·L^{3/2}), log_L n))`
/// (slide 125).
pub fn lb_rounds(n: u64, l: u64, p: u64) -> f64 {
    let nf = n as f64;
    let lf = l as f64;
    (nf.powi(3) / (p as f64 * lf.powf(1.5))).max(nf.ln() / lf.ln())
}

/// The minimum number of rounds forced by a load budget on slide 126's
/// frontier: the number of rounds below which even the optimal
/// multi-round algorithm cannot fit its communication, i.e. the smallest
/// `r` with `r·p·L ≥ n³/√L`.
pub fn min_rounds_on_frontier(n: u64, l: u64, p: u64) -> u64 {
    (lb_comm_multi_round(n, l) / (p as f64 * l as f64))
        .ceil()
        .max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_comm_matches_measured() {
        // Cross-check the formula against the simulator.
        let n = 16u64;
        let t = 4u64;
        let l = 2 * t * n;
        let a = crate::Matrix::random(n as usize, 1);
        let b = crate::Matrix::random(n as usize, 2);
        let run = crate::rect_block(&a, &b, t as usize);
        assert_eq!(run.report.total_words() as f64, rect_comm(n, l));
    }

    #[test]
    fn square_comm_matches_measured() {
        let n = 24u64;
        let h = 4u64;
        let nb = n / h;
        let l = 2 * nb * nb;
        let a = crate::Matrix::random(n as usize, 3);
        let b = crate::Matrix::random(n as usize, 4);
        let run = crate::square_block(&a, &b, h as usize, (h * h) as usize);
        let measured = run.report.total_words() as f64;
        assert!(
            (measured - square_comm(n, l)).abs() < 1e-6,
            "measured {measured} vs formula {}",
            square_comm(n, l)
        );
    }

    #[test]
    fn square_beats_rect_for_small_l() {
        // Slide 126: the multi-round frontier n³/√L sits far below the
        // 1-round n⁴/L when L ≪ n².
        let n = 1000;
        let l = 2 * n; // minimum feasible for rect (one row + one col)
        assert!(square_comm(n, l) < rect_comm(n, l) / 10.0);
    }

    #[test]
    fn frontier_round_thresholds_decrease_with_l() {
        let n = 1 << 10;
        let p = 1 << 6;
        let mut last = u64::MAX;
        for l in [1u64 << 8, 1 << 10, 1 << 12, 1 << 16, 1 << 20] {
            let r = min_rounds_on_frontier(n, l, p);
            assert!(r <= last, "rounds must fall as L grows");
            last = r;
        }
    }

    #[test]
    fn bounds_are_bounds() {
        // Our algorithms' formulas dominate their lower bounds.
        for l in [1u64 << 8, 1 << 12, 1 << 16] {
            let n = 1 << 9;
            assert!(rect_comm(n, l) >= lb_comm_one_round(n, l));
            assert!(square_comm(n, l) >= lb_comm_multi_round(n, l) / 2.0f64.sqrt());
        }
    }
}
