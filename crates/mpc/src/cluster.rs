//! The simulated MPC cluster: `p` servers, rounds, and exchanges.
//!
//! An algorithm on the cluster is structured as:
//!
//! ```
//! use parqp_mpc::Cluster;
//!
//! let mut cluster = Cluster::new(4);
//! // Input starts distributed (the model assumes O(IN/p) per server).
//! let local: Vec<Vec<u64>> = cluster.scatter((0..100u64).collect());
//!
//! // One round: every server computes locally, then sends messages.
//! let mut ex = cluster.exchange::<u64>();
//! for (server, items) in local.iter().enumerate() {
//!     for &v in items {
//!         ex.send((v % 4) as usize, v); // e.g. hash partition
//!     }
//!     let _ = server;
//! }
//! let inboxes = ex.finish();
//!
//! let report = cluster.report();
//! assert_eq!(report.num_rounds(), 1);
//! assert_eq!(report.total_tuples(), 100);
//! assert_eq!(inboxes.iter().map(Vec::len).sum::<usize>(), 100);
//! ```
//!
//! The cluster does not own server state; algorithms keep it in ordinary
//! `Vec`s indexed by server rank. What the cluster owns is the *ledger*:
//! every message sent through an [`Exchange`] is charged to its destination
//! server for the current round, producing the `(L, r, C)` cost summary
//! that the paper's theorems are about.

use crate::error::MpcError;
use crate::grid::Grid;
use crate::stats::{LoadReport, RoundStats};
use crate::weight::Weight;

/// A simulated MPC cluster of `p` shared-nothing servers.
#[derive(Debug)]
pub struct Cluster {
    p: usize,
    rounds: Vec<RoundStats>,
}

impl Cluster {
    /// Create a cluster of `p` servers.
    ///
    /// # Panics
    /// Panics if `p == 0`; use [`Cluster::try_new`] to handle that case.
    pub fn new(p: usize) -> Self {
        match Self::try_new(p) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Cluster::new`]: errors on an empty cluster instead of
    /// panicking, for callers sizing clusters from untrusted input.
    pub fn try_new(p: usize) -> Result<Self, MpcError> {
        if p == 0 {
            return Err(MpcError::EmptyTopology { what: "cluster" });
        }
        Ok(Self {
            p,
            rounds: Vec::new(),
        })
    }

    /// Number of servers `p`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Start a communication round. Messages are sent through the returned
    /// [`Exchange`]; calling [`Exchange::finish`] delivers them and records
    /// the round's statistics.
    pub fn exchange<T: Weight>(&mut self) -> Exchange<'_, T> {
        Exchange {
            inboxes: (0..self.p).map(|_| Vec::new()).collect(),
            tuples: vec![0; self.p],
            words: vec![0; self.p],
            cluster: self,
        }
    }

    /// Distribute input items round-robin across servers *without* counting
    /// a communication round: the MPC model assumes the input starts evenly
    /// distributed (`O(IN/p)` per server, slide 6).
    pub fn scatter<T>(&self, items: Vec<T>) -> Vec<Vec<T>> {
        let mut out: Vec<Vec<T>> = (0..self.p).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            out[i % self.p].push(item);
        }
        out
    }

    /// Record a round in which server `s` received `tuples[s]` tuples and
    /// `words[s]` words, without routing actual messages. Used by
    /// algorithms that account for communication analytically (e.g. when a
    /// phase's messages are a deterministic permutation).
    ///
    /// # Panics
    /// Panics if either vector's length differs from `p`; use
    /// [`Cluster::try_record_round`] to handle that case.
    pub fn record_round(&mut self, tuples: Vec<u64>, words: Vec<u64>) {
        if let Err(e) = self.try_record_round(tuples, words) {
            panic!("{e}");
        }
    }

    /// Fallible [`Cluster::record_round`].
    pub fn try_record_round(&mut self, tuples: Vec<u64>, words: Vec<u64>) -> Result<(), MpcError> {
        for len in [tuples.len(), words.len()] {
            if len != self.p {
                return Err(MpcError::BadArity {
                    got: len,
                    expected: self.p,
                });
            }
        }
        self.rounds.push(RoundStats { tuples, words });
        Ok(())
    }

    /// The `(L, r, C)` summary of all rounds recorded so far.
    pub fn report(&self) -> LoadReport {
        LoadReport {
            servers: self.p,
            rounds: self.rounds.clone(),
        }
    }

    /// Number of rounds recorded so far.
    pub fn rounds_so_far(&self) -> usize {
        self.rounds.len()
    }

    /// Forget all recorded rounds (e.g. between benchmark iterations).
    pub fn reset(&mut self) {
        self.rounds.clear();
    }
}

/// An in-progress communication round on a [`Cluster`].
///
/// Created by [`Cluster::exchange`]; every `send` charges the destination
/// server. Dropping an `Exchange` without calling [`Exchange::finish`]
/// discards the round (no statistics are recorded).
#[derive(Debug)]
pub struct Exchange<'c, T: Weight> {
    cluster: &'c mut Cluster,
    inboxes: Vec<Vec<T>>,
    tuples: Vec<u64>,
    words: Vec<u64>,
}

impl<T: Weight> Exchange<'_, T> {
    /// Number of servers in the underlying cluster.
    pub fn p(&self) -> usize {
        self.cluster.p
    }

    /// Send `msg` to server `dest`.
    ///
    /// # Panics
    /// Panics if `dest` is not a valid server rank; use
    /// [`Exchange::try_send`] to handle that case.
    #[inline]
    pub fn send(&mut self, dest: usize, msg: T) {
        if let Err(e) = self.try_send(dest, msg) {
            panic!("{e}");
        }
    }

    /// Fallible [`Exchange::send`]: errors on an out-of-range destination
    /// instead of panicking. This is the simulator's hottest path — the
    /// single bounds probe below is the only check, and the two charged
    /// counters are in-bounds by construction (all three vectors share
    /// length `p`).
    #[inline]
    pub fn try_send(&mut self, dest: usize, msg: T) -> Result<(), MpcError> {
        let Some(inbox) = self.inboxes.get_mut(dest) else {
            return Err(MpcError::BadServer {
                dest,
                p: self.cluster.p,
            });
        };
        self.tuples[dest] += 1;
        self.words[dest] += msg.words();
        inbox.push(msg);
        Ok(())
    }

    /// Send `msg` to every server (a broadcast costs `p` messages).
    pub fn broadcast(&mut self, msg: T)
    where
        T: Clone,
    {
        for dest in 0..self.inboxes.len() {
            self.send(dest, msg.clone());
        }
    }

    /// Send `msg` to every server of `grid` whose coordinates match
    /// `partial` (`None` = `*`): the HyperCube placement primitive.
    ///
    /// `grid.len()` must equal the cluster size.
    pub fn send_matching(&mut self, grid: &Grid, partial: &[Option<usize>], msg: T)
    where
        T: Clone,
    {
        debug_assert_eq!(grid.len(), self.cluster.p, "grid does not span the cluster");
        for dest in grid.matching(partial) {
            self.send(dest, msg.clone());
        }
    }

    /// Deliver all messages, record the round, and return per-server inboxes.
    pub fn finish(self) -> Vec<Vec<T>> {
        self.cluster.rounds.push(RoundStats {
            tuples: self.tuples,
            words: self.words,
        });
        self.inboxes
    }

    /// Deliver all messages **without** recording a round. Used for
    /// communication the model does not charge (e.g. re-delivering data a
    /// server already holds when two logical phases are fused into one
    /// physical round).
    pub fn finish_untracked(self) -> Vec<Vec<T>> {
        self.inboxes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_accounts_per_destination() {
        let mut c = Cluster::new(3);
        let mut ex = c.exchange::<Vec<u64>>();
        ex.send(0, vec![1, 2]);
        ex.send(0, vec![3]);
        ex.send(2, vec![4, 5, 6]);
        let inboxes = ex.finish();
        assert_eq!(inboxes[0], vec![vec![1, 2], vec![3]]);
        assert!(inboxes[1].is_empty());
        assert_eq!(inboxes[2], vec![vec![4, 5, 6]]);

        let r = c.report();
        assert_eq!(r.num_rounds(), 1);
        assert_eq!(r.rounds[0].tuples, vec![2, 0, 1]);
        assert_eq!(r.rounds[0].words, vec![3, 0, 3]);
        assert_eq!(r.max_load_tuples(), 2);
        assert_eq!(r.max_load_words(), 3);
    }

    #[test]
    fn broadcast_charges_every_server() {
        let mut c = Cluster::new(4);
        let mut ex = c.exchange::<u64>();
        ex.broadcast(9);
        let inboxes = ex.finish();
        assert!(inboxes.iter().all(|b| b == &vec![9]));
        assert_eq!(c.report().total_tuples(), 4);
    }

    #[test]
    fn scatter_is_even_and_free() {
        let c = Cluster::new(4);
        let parts = c.scatter((0..10u64).collect());
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        assert_eq!(c.report().num_rounds(), 0);
    }

    #[test]
    fn dropped_exchange_records_nothing() {
        let mut c = Cluster::new(2);
        {
            let mut ex = c.exchange::<u64>();
            ex.send(0, 1);
            // dropped without finish()
        }
        assert_eq!(c.report().num_rounds(), 0);
    }

    #[test]
    fn untracked_finish_records_nothing() {
        let mut c = Cluster::new(2);
        let mut ex = c.exchange::<u64>();
        ex.send(1, 5);
        let inboxes = ex.finish_untracked();
        assert_eq!(inboxes[1], vec![5]);
        assert_eq!(c.report().num_rounds(), 0);
    }

    #[test]
    fn send_matching_uses_grid() {
        let mut c = Cluster::new(6);
        let g = Grid::new(vec![2, 3]);
        let mut ex = c.exchange::<u64>();
        ex.send_matching(&g, &[Some(1), None], 7);
        let inboxes = ex.finish();
        let received: Vec<usize> = (0..6).filter(|&s| !inboxes[s].is_empty()).collect();
        assert_eq!(received, g.matching(&[Some(1), None]));
        assert_eq!(c.report().total_tuples(), 3);
    }

    #[test]
    fn rounds_accumulate() {
        let mut c = Cluster::new(2);
        for _ in 0..3 {
            let mut ex = c.exchange::<u64>();
            ex.send(0, 1);
            ex.finish();
        }
        assert_eq!(c.report().num_rounds(), 3);
        c.reset();
        assert_eq!(c.report().num_rounds(), 0);
    }

    #[test]
    fn record_round_manual() {
        let mut c = Cluster::new(2);
        c.record_round(vec![3, 4], vec![6, 8]);
        let r = c.report();
        assert_eq!(r.max_load_tuples(), 4);
        assert_eq!(r.max_load_words(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        Cluster::new(0);
    }

    #[test]
    fn try_variants_return_typed_errors() {
        assert!(Cluster::try_new(0).is_err());
        assert_eq!(Cluster::try_new(3).map(|c| c.p()), Ok(3));

        let mut c = Cluster::new(2);
        let mut ex = c.exchange::<u64>();
        assert_eq!(
            ex.try_send(5, 1),
            Err(crate::error::MpcError::BadServer { dest: 5, p: 2 })
        );
        assert_eq!(ex.try_send(1, 7), Ok(()));
        let inboxes = ex.finish();
        assert_eq!(inboxes[1], vec![7]);
        // The failed send must not have been charged to the ledger.
        assert_eq!(c.report().total_tuples(), 1);

        assert!(c.try_record_round(vec![1], vec![1, 2]).is_err());
        assert_eq!(c.report().num_rounds(), 1);
    }
}
