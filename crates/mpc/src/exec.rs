//! Execution modes: serial (the default) or parallel local compute.
//!
//! The simulator's *communication* always happens on the calling
//! thread: exchanges collect messages, charge the ledger, emit trace
//! and metrics events, and resolve fault batches exactly as before, in
//! both modes. What [`ExecMode::Parallel`] changes is purely the
//! *local compute* phases — the per-server closures algorithms pass to
//! [`Cluster::map`](crate::Cluster::map) run on a
//! [`parqp_testkit::pool::WorkerPool`] instead of an inline loop.
//!
//! Determinism argument, in full:
//!
//! 1. every exchange boundary is a barrier — `map` blocks until all
//!    jobs finish, and all sends happen on the calling thread after it
//!    returns;
//! 2. the pool stores job `i`'s output in slot `i`, so results merge
//!    in server order regardless of completion order;
//! 3. worker closures are pure (`Fn(usize, I) -> O`): the thread-local
//!    trace/metrics/faults runtimes live on the calling thread and are
//!    never touched from a worker.
//!
//! Hence ledgers, trace streams, metrics registries, and output
//! digests are byte-identical to serial mode *by construction*.
//!
//! Like the trace sink and the metrics registry, the mode is a
//! thread-local slot: [`install`] returns a guard that restores the
//! previous mode on drop (panic-safe), and every `Cluster` snapshots
//! the installed pool at construction time, so nested clusters (the
//! skew join's sub-joins, plan sub-queries) inherit the mode with no
//! signature changes anywhere.

use std::cell::RefCell;
use std::rc::Rc;

use parqp_testkit::pool::{ncpu, WorkerPool};

/// How [`Cluster::map`](crate::Cluster::map) runs per-server compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Every per-server closure runs inline on the calling thread.
    Serial,
    /// Per-server closures run on a pool of `workers` threads
    /// (`workers == 0` means one per available CPU).
    Parallel {
        /// Worker-thread count; `0` = [`ncpu`].
        workers: usize,
    },
}

impl ExecMode {
    /// Resolve `workers == 0` to the machine's CPU count.
    pub fn resolved_workers(self) -> usize {
        match self {
            ExecMode::Serial => 0,
            ExecMode::Parallel { workers: 0 } => ncpu(),
            ExecMode::Parallel { workers } => workers,
        }
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Rc<WorkerPool>>> = const { RefCell::new(None) };
}

/// Restores the previously installed execution mode when dropped.
#[must_use = "dropping the guard immediately restores the previous mode"]
pub struct ExecGuard {
    previous: Option<Rc<WorkerPool>>,
}

impl Drop for ExecGuard {
    fn drop(&mut self) {
        ACTIVE.with(|slot| *slot.borrow_mut() = self.previous.take());
    }
}

/// Install `mode` for this thread until the returned guard drops.
/// Parallel mode spawns its worker pool here, once; every `Cluster`
/// created while the guard lives shares it.
pub fn install(mode: ExecMode) -> ExecGuard {
    let pool = match mode {
        ExecMode::Serial => None,
        parallel @ ExecMode::Parallel { .. } => {
            Some(Rc::new(WorkerPool::new(parallel.resolved_workers())))
        }
    };
    let previous = ACTIVE.with(|slot| std::mem::replace(&mut *slot.borrow_mut(), pool));
    ExecGuard { previous }
}

/// Install an existing pool (reuse across runs without respawning).
pub fn install_pool(pool: Rc<WorkerPool>) -> ExecGuard {
    let previous = ACTIVE.with(|slot| slot.borrow_mut().replace(pool));
    ExecGuard { previous }
}

/// The currently installed mode.
pub fn current() -> ExecMode {
    ACTIVE.with(|slot| match &*slot.borrow() {
        None => ExecMode::Serial,
        Some(pool) => ExecMode::Parallel {
            workers: pool.workers(),
        },
    })
}

/// Run `f` under `mode` and restore the previous mode afterwards.
pub fn with_mode<R>(mode: ExecMode, f: impl FnOnce() -> R) -> R {
    let _guard = install(mode);
    f()
}

/// The pool a `Cluster` built right now would snapshot.
pub(crate) fn snapshot() -> Option<Rc<WorkerPool>> {
    ACTIVE.with(|slot| slot.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_serial() {
        assert_eq!(current(), ExecMode::Serial);
    }

    #[test]
    fn install_restores_previous_mode_on_drop() {
        let outer = install(ExecMode::Parallel { workers: 2 });
        assert_eq!(current(), ExecMode::Parallel { workers: 2 });
        {
            let _inner = install(ExecMode::Serial);
            assert_eq!(current(), ExecMode::Serial);
        }
        assert_eq!(current(), ExecMode::Parallel { workers: 2 });
        drop(outer);
        assert_eq!(current(), ExecMode::Serial);
    }

    #[test]
    fn guard_restores_on_panic() {
        let caught = std::panic::catch_unwind(|| {
            with_mode(ExecMode::Parallel { workers: 1 }, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(current(), ExecMode::Serial);
    }

    #[test]
    fn zero_workers_resolves_to_ncpu() {
        assert_eq!(ExecMode::Parallel { workers: 0 }.resolved_workers(), ncpu());
        with_mode(ExecMode::Parallel { workers: 0 }, || {
            assert_eq!(current(), ExecMode::Parallel { workers: ncpu() });
        });
    }

    #[test]
    fn install_pool_shares_an_existing_pool() {
        let pool = Rc::new(WorkerPool::new(3));
        let _guard = install_pool(pool.clone());
        assert_eq!(current(), ExecMode::Parallel { workers: 3 });
        assert!(snapshot().is_some_and(|p| Rc::ptr_eq(&p, &pool)));
    }
}
