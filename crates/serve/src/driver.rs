//! The replay driver: one long-lived cluster, one query stream, exact
//! per-query accounting.
//!
//! [`replay`] schedules the stream, then runs every arrival against a
//! single [`Cluster`] under captured store/metrics/fault runtimes. Each
//! query is two phases: *build* (scatter + hash-partition the
//! template's base — skipped entirely on a cache hit) and *probe*
//! (route the per-query probe relation with the same hash, then join
//! locally against the resident partitions). A ledger mark taken before
//! each query turns the cluster's cumulative ledger into exact
//! per-query deltas via [`Cluster::report_since`], so tenant totals
//! reconcile with the global registry to the tuple.

use parqp_data::paged::{self, IoStats, RouteScan, StoreConfig};
use parqp_data::{Relation, Value};
use parqp_faults::{FaultPlan, FaultSpec, RecoveryStrategy};
use parqp_join::common::{joined_arity, local_hash_join, scatter};
use parqp_mpc::{faults, metrics, Cluster, HashFamily, LoadReport};
use parqp_obs as obs;
use parqp_obs::{LogHistogram, ObsConfig, QueryObs, SeriesReport};

use crate::cache::{BuildCost, CacheKey, CacheStats, PlanCache};
use crate::report::{digest_relation, QueryRecord, ServeReport, TenantStats};
use crate::templates::{self, TEMPLATES};
use crate::workload::{self, QueryArrival};

/// Fault injection for a replay: a seeded plan over the first
/// `horizon` algorithm rounds, recovered by `strategy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSetup {
    /// How many faults of each kind to schedule.
    pub spec: FaultSpec,
    /// How crashes are recovered.
    pub strategy: RecoveryStrategy,
    /// Rounds the schedule may place faults in (the plan's grid).
    pub horizon: usize,
}

impl Default for FaultSetup {
    fn default() -> Self {
        Self {
            spec: FaultSpec::default(),
            strategy: RecoveryStrategy::default(),
            horizon: 8,
        }
    }
}

/// Everything a replay is a pure function of.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Cluster width `p`.
    pub servers: usize,
    /// Number of tenants issuing queries.
    pub tenants: usize,
    /// Templates in play (a prefix of [`TEMPLATES`]).
    pub templates: usize,
    /// Data-key groups per template.
    pub groups: usize,
    /// Length of the logical tick clock.
    pub ticks: u64,
    /// The replay seed: workload, inputs, hashing, and fault plan.
    pub seed: u64,
    /// Zipf exponent over templates (query skew).
    pub zipf_q: f64,
    /// Zipf exponent over data-key groups (data skew).
    pub zipf_data: f64,
    /// Plan-cache budget in resident tuples; 0 disables the cache.
    pub cache_budget: u64,
    /// Paged-store shape the replay runs under.
    pub store: StoreConfig,
    /// Optional fault injection under load.
    pub faults: Option<FaultSetup>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            servers: 8,
            tenants: 4,
            templates: 3,
            groups: 12,
            ticks: 120,
            seed: 42,
            zipf_q: 1.1,
            zipf_data: 1.2,
            cache_budget: 120_000,
            store: StoreConfig::default(),
            faults: None,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), String> {
        if self.servers == 0 {
            return Err("serve: need at least one server".into());
        }
        if self.tenants == 0 {
            return Err("serve: need at least one tenant".into());
        }
        if self.ticks == 0 {
            return Err("serve: need at least one tick".into());
        }
        if self.templates == 0 || self.templates > TEMPLATES.len() {
            return Err(format!(
                "serve: --templates must be in 1..={} (the catalog size), got {}",
                TEMPLATES.len(),
                self.templates
            ));
        }
        if self.groups == 0 {
            return Err("serve: need at least one data-key group".into());
        }
        for (name, alpha) in [("--zipf-q", self.zipf_q), ("--zipf-data", self.zipf_data)] {
            if !alpha.is_finite() || alpha < 0.0 {
                return Err(format!("serve: {name} must be a finite exponent >= 0"));
            }
        }
        if let Some(f) = &self.faults {
            if f.horizon == 0 {
                return Err("serve: fault horizon must be at least one round".into());
            }
        }
        Ok(())
    }
}

/// What the streamed portion of a replay produces (everything measured
/// inside the captured runtimes).
struct StreamOut {
    records: Vec<QueryRecord>,
    cache: CacheStats,
    totals: LoadReport,
}

/// Exact load samples a tenant ledger retains before falling back to
/// its log₂ sketch: short streams keep byte-exact percentiles, long
/// streams stay O(buckets) instead of O(queries).
pub(crate) const MAX_EXACT_L_SAMPLES: usize = 512;

/// Per-tenant accumulation while the stream replays. Fabricating one
/// of these outside `parqp-serve` is a layering violation (lint rule
/// PQ110): tenant counters must come out of the cluster's ledger
/// deltas, never be invented.
///
/// Load percentiles come from a bounded pair: up to
/// [`MAX_EXACT_L_SAMPLES`] exact samples (exact nearest-rank while the
/// tenant's stream is short) plus a [`LogHistogram`] sketch that
/// absorbs every sample — so state is O(buckets + cap) however long
/// the stream runs, and sketch percentiles stay within one log₂ bucket
/// of exact (`percentile_cap_keeps_state_bounded` below).
#[derive(Debug, Clone, Default)]
struct TenantLedger {
    served: u64,
    rounds: u64,
    tuples: u64,
    words: u64,
    hits: u64,
    misses: u64,
    l_hist: LogHistogram,
    l_exact: Vec<u64>,
}

impl TenantLedger {
    /// Fold one served query into the ledger.
    fn observe(&mut self, r: &QueryRecord) {
        self.served += 1;
        self.rounds += r.rounds;
        self.tuples += r.tuples;
        self.words += r.words;
        match r.cache {
            "hit" => self.hits += 1,
            "miss" => self.misses += 1,
            _ => {}
        }
        self.l_hist.record(r.l);
        if self.l_exact.len() < MAX_EXACT_L_SAMPLES {
            self.l_exact.push(r.l);
        }
    }

    /// Nearest-rank load percentile: exact while every sample is
    /// retained, sketched (within one log₂ bucket) beyond the cap.
    fn l_percentile(&self, sorted_exact: &[u64], pct: u64) -> u64 {
        if self.served as usize <= MAX_EXACT_L_SAMPLES {
            percentile(sorted_exact, pct)
        } else {
            self.l_hist.percentile(pct)
        }
    }
}

/// Replay `cfg`'s query stream and return the full report.
///
/// Deterministic end to end: equal configurations produce byte-equal
/// reports (records, ledgers, digests), under any execution mode and
/// any fault plan.
pub fn replay(cfg: &ServeConfig) -> Result<ServeReport, String> {
    cfg.validate()?;
    let arrivals = workload::schedule(cfg);
    let (io_parts, (mut registry, (fault_log, out))) = paged::capture(cfg.store, || {
        metrics::capture(|| match &cfg.faults {
            Some(f) => {
                let plan = FaultPlan::random(cfg.seed, cfg.servers, f.horizon, &f.spec);
                let (log, out) = faults::capture(plan, f.strategy, || run_stream(cfg, &arrivals));
                (Some(log), out)
            }
            None => (None, run_stream(cfg, &arrivals)),
        })
    });
    let mut io = IoStats::default();
    for part in &io_parts {
        io.merge(part);
    }
    let tenants = tally_tenants(cfg, &out.records);
    annotate_registry(&mut registry, &tenants, &out.cache, cfg.ticks);
    Ok(ServeReport {
        config: cfg.clone(),
        records: out.records,
        tenants,
        cache: out.cache,
        totals: out.totals,
        io,
        registry,
        fault_log,
    })
}

/// Run every arrival against one long-lived cluster.
fn run_stream(cfg: &ServeConfig, arrivals: &[QueryArrival]) -> StreamOut {
    let p = cfg.servers;
    let mut cluster = Cluster::new(p);
    let mut cache = PlanCache::new(cfg.cache_budget);
    let mut records = Vec::with_capacity(arrivals.len());
    for a in arrivals {
        let observed = obs::is_enabled();
        let io_before = if observed {
            io_totals()
        } else {
            IoStats::default()
        };
        let key = CacheKey {
            template: a.template,
            group: a.group,
            shares: p,
        };
        let h = HashFamily::new(templates::partition_seed(a.template, a.group, cfg.seed), 1);
        let mark = cluster.rounds_so_far();
        let mut owned: Vec<Relation> = Vec::new();
        let cache_state = if !cache.enabled() {
            owned = build_partitions(&mut cluster, &h, a, cfg.seed).0;
            "off"
        } else if cache.lookup(&key, a.tick) {
            "hit"
        } else {
            let (parts, cost) = build_partitions(&mut cluster, &h, a, cfg.seed);
            owned = cache.insert(key, parts, cost, a.tick);
            "miss"
        };
        let parts: &[Relation] = if owned.is_empty() {
            cache
                .get(&key)
                .expect("a hit or admitted build must be resident")
        } else {
            &owned
        };

        // Probe phase: route this query's probe rows with the *same*
        // hash that partitioned the base, then join locally.
        let probe = templates::probe_relation(a.template, a.group, a.serial, cfg.seed);
        let frags = scatter(&probe, p);
        let mut ex = cluster.exchange::<Vec<Value>>();
        for (sid, frag) in frags.iter().enumerate() {
            ex.set_sender(sid);
            let scan = RouteScan::new(sid, frag);
            for row in scan.iter() {
                ex.send(h.hash(0, row[0], p), row.to_vec());
            }
        }
        let inboxes = ex.finish();
        let arity = joined_arity(2, 2);
        let outputs = cluster.map(inboxes, |s, probes| {
            let build_rows: Vec<Vec<Value>> = parts[s].iter().map(<[Value]>::to_vec).collect();
            let mut out = Relation::new(arity);
            local_hash_join(&build_rows, 0, &probes, 0, &mut out);
            out
        });

        let mut gathered = Relation::new(arity);
        for part in &outputs {
            gathered.extend_from(part);
        }
        let delta = cluster.report_since(mark);
        if observed {
            let io = io_totals().since(&io_before);
            let mut per_server = vec![0u64; p];
            let mut heaviest_round = 0u64;
            for round in &delta.rounds {
                heaviest_round = heaviest_round.max(round.total_tuples());
                for (acc, t) in per_server.iter_mut().zip(&round.tuples) {
                    *acc += t;
                }
            }
            obs::emit(&QueryObs {
                serial: a.serial,
                tick: a.tick,
                tenant: a.tenant,
                lookup: cache_state != "off",
                hit: cache_state == "hit",
                l: delta.max_load_tuples(),
                predicted_l: heaviest_round.div_ceil(p as u64).max(1),
                rounds: delta.num_rounds() as u64,
                tuples: delta.total_tuples(),
                words: delta.total_words(),
                out_rows: gathered.len() as u64,
                io_reads: io.reads,
                io_misses: io.misses,
                io_evictions: io.evictions,
                per_server_tuples: per_server,
            });
        }
        records.push(QueryRecord {
            serial: a.serial,
            tick: a.tick,
            tenant: a.tenant,
            template: TEMPLATES[a.template].name,
            group: a.group,
            cache: cache_state,
            l: delta.max_load_tuples(),
            rounds: delta.num_rounds() as u64,
            tuples: delta.total_tuples(),
            words: delta.total_words(),
            out_rows: gathered.len() as u64,
            digest: digest_relation(&gathered),
        });
    }
    StreamOut {
        records,
        cache: cache.stats(),
        totals: cluster.report(),
    }
}

/// The paged store's cumulative IO totals summed across servers — a
/// pure read of `paged::io_report`, monotone over a replay (nothing in
/// the serving path resets the ledger), so two snapshots bracket a
/// query's exact IO delta.
fn io_totals() -> IoStats {
    let mut sum = IoStats::default();
    for part in &paged::io_report() {
        sum.merge(part);
    }
    sum
}

/// [`replay`], observed: record the per-query stream into fixed-width
/// tick windows and return the series beside the report. The registry
/// additionally carries `serve.window.*` gauges. Same determinism
/// contract as [`replay`]: equal configurations (and equal window
/// widths) produce byte-equal series under any execution mode and any
/// fault plan's recovery (`tests/obs_invariants.rs`).
pub fn replay_observed(
    cfg: &ServeConfig,
    window_ticks: u64,
) -> Result<(ServeReport, SeriesReport), String> {
    cfg.validate()?;
    if window_ticks == 0 {
        return Err("serve: --window must be at least one tick".into());
    }
    let obs_cfg = ObsConfig {
        window_ticks,
        ticks: cfg.ticks,
        servers: cfg.servers,
    };
    let (series, report) = obs::capture(obs_cfg, || replay(cfg));
    let mut report = report?;
    annotate_window_gauges(&mut report.registry, &series);
    Ok((report, series))
}

/// Mirror the window series into registry gauges, beside the tenant
/// and cache gauges [`annotate_registry`] sets.
fn annotate_window_gauges(registry: &mut parqp_metrics::MetricsRegistry, series: &SeriesReport) {
    registry.set_gauge("serve.windows", series.windows.len() as f64);
    registry.set_gauge(
        "serve.window.width_ticks",
        series.config.window_ticks as f64,
    );
    registry.set_gauge("serve.recovery_rounds", series.recovery_rounds() as f64);
    for w in &series.windows {
        let base = format!("serve.window.{}", w.index);
        registry.set_gauge(format!("{base}.served"), w.served as f64);
        registry.set_gauge(format!("{base}.p99_l"), w.l_percentile(99) as f64);
        registry.set_gauge(format!("{base}.hit_rate"), w.hit_rate());
        registry.set_gauge(
            format!("{base}.recovery_rounds"),
            w.recovery_rounds() as f64,
        );
    }
}

/// Build phase: scatter the base and hash-partition it across the
/// cluster (one exchange round), returning the per-server partitions
/// and what the build cost — the charges a cache hit skips.
fn build_partitions(
    cluster: &mut Cluster,
    h: &HashFamily,
    a: &QueryArrival,
    seed: u64,
) -> (Vec<Relation>, BuildCost) {
    let p = cluster.p();
    let base = templates::base_relation(a.template, a.group, seed);
    let frags = scatter(&base, p);
    let mut ex = cluster.exchange::<Vec<Value>>();
    for (sid, frag) in frags.iter().enumerate() {
        ex.set_sender(sid);
        let scan = RouteScan::new(sid, frag);
        for row in scan.iter() {
            ex.send(h.hash(0, row[0], p), row.to_vec());
        }
    }
    let inboxes = ex.finish();
    let parts = cluster.map(inboxes, |_, rows| {
        let mut rel = Relation::new(2);
        for row in &rows {
            rel.push(row);
        }
        rel
    });
    let n = base.len() as u64;
    (
        parts,
        BuildCost {
            reads: n,
            words: 2 * n,
            tuples: n,
        },
    )
}

/// Fold the per-query records into per-tenant stats.
fn tally_tenants(cfg: &ServeConfig, records: &[QueryRecord]) -> Vec<TenantStats> {
    let mut ledgers = vec![TenantLedger::default(); cfg.tenants];
    for r in records {
        ledgers[r.tenant].observe(r);
    }
    ledgers
        .into_iter()
        .enumerate()
        .map(|(tenant, mut t)| {
            t.l_exact.sort_unstable();
            TenantStats {
                tenant,
                served: t.served,
                rounds: t.rounds,
                tuples: t.tuples,
                words: t.words,
                hits: t.hits,
                misses: t.misses,
                l_p50: t.l_percentile(&t.l_exact, 50),
                l_p99: t.l_percentile(&t.l_exact, 99),
                throughput_per_kticks: t.served * 1000 / cfg.ticks,
            }
        })
        .collect()
}

/// Nearest-rank percentile of an ascending-sorted sample; 0 when empty.
/// Rank arithmetic is u128 so no `pct`/length combination can overflow.
pub(crate) fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (u128::from(pct) * sorted.len() as u128)
        .div_ceil(100)
        .max(1);
    let idx = (rank - 1).min(sorted.len() as u128 - 1) as usize;
    sorted[idx]
}

/// Mirror the per-tenant and cache ledgers into registry gauges, so
/// `parqp metrics`-style consumers see serving health next to the
/// event-derived counters.
fn annotate_registry(
    registry: &mut parqp_metrics::MetricsRegistry,
    tenants: &[TenantStats],
    cache: &CacheStats,
    ticks: u64,
) {
    let mut served = 0u64;
    for t in tenants {
        served += t.served;
        let base = format!("serve.tenant.{}", t.tenant);
        registry.set_gauge(format!("{base}.served"), t.served as f64);
        registry.set_gauge(format!("{base}.rounds"), t.rounds as f64);
        registry.set_gauge(format!("{base}.p50_l"), t.l_p50 as f64);
        registry.set_gauge(format!("{base}.p99_l"), t.l_p99 as f64);
        registry.set_gauge(format!("{base}.cache_hit_rate"), t.hit_rate());
        registry.set_gauge(
            format!("{base}.throughput_per_kticks"),
            t.throughput_per_kticks as f64,
        );
    }
    registry.set_gauge("serve.queries_served", served as f64);
    registry.set_gauge(
        "serve.throughput_per_kticks",
        (served * 1000 / ticks) as f64,
    );
    registry.set_gauge("serve.cache.hits", cache.hits as f64);
    registry.set_gauge("serve.cache.misses", cache.misses as f64);
    registry.set_gauge("serve.cache.insertions", cache.insertions as f64);
    registry.set_gauge("serve.cache.evictions", cache.evictions as f64);
    registry.set_gauge("serve.cache.hit_rate", cache.hit_rate());
    registry.set_gauge(
        "serve.cache.peak_resident_tuples",
        cache.peak_resident_tuples as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ServeConfig {
        ServeConfig {
            servers: 4,
            tenants: 2,
            templates: 2,
            groups: 4,
            ticks: 20,
            cache_budget: 50_000,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let a = replay(&small()).expect("valid config");
        let b = replay(&small()).expect("valid config");
        assert_eq!(a.records, b.records);
        assert_eq!(a.tenants, b.tenants);
        assert_eq!(a.cache, b.cache);
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.io, b.io);
    }

    #[test]
    fn skewed_stream_hits_the_cache() {
        let r = replay(&small()).expect("valid config");
        assert!(
            r.cache.hits > 0,
            "no cache hits on a Zipf stream: {:?}",
            r.cache
        );
        assert!(r.cache.insertions > 0);
        assert!(r.records.iter().any(|q| q.cache == "hit"));
        assert!(r.records.iter().any(|q| q.cache == "miss"));
    }

    #[test]
    fn cache_off_marks_every_query_off() {
        let r = replay(&ServeConfig {
            cache_budget: 0,
            ..small()
        })
        .expect("valid config");
        assert!(r.records.iter().all(|q| q.cache == "off"));
        assert_eq!(r.cache, CacheStats::default());
    }

    #[test]
    fn per_query_deltas_cover_the_whole_ledger() {
        let r = replay(&small()).expect("valid config");
        let rounds: u64 = r.records.iter().map(|q| q.rounds).sum();
        assert_eq!(rounds, r.totals.num_rounds() as u64);
        let words: u64 = r.records.iter().map(|q| q.words).sum();
        assert_eq!(words, r.totals.total_words());
    }

    #[test]
    fn hits_skip_the_build_round() {
        let r = replay(&small()).expect("valid config");
        for q in &r.records {
            match q.cache {
                "hit" => assert_eq!(q.rounds, 1, "hit must be probe-only: {q:?}"),
                _ => assert_eq!(q.rounds, 2, "miss must build + probe: {q:?}"),
            }
        }
    }

    #[test]
    fn tiny_budget_forces_evictions() {
        let r = replay(&ServeConfig {
            cache_budget: 8000,
            ..small()
        })
        .expect("valid config");
        assert!(
            r.cache.evictions > 0,
            "8k-tuple budget must evict: {:?}",
            r.cache
        );
        assert!(r.cache.resident_tuples <= 8000);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        for bad in [
            ServeConfig {
                servers: 0,
                ..small()
            },
            ServeConfig {
                tenants: 0,
                ..small()
            },
            ServeConfig {
                ticks: 0,
                ..small()
            },
            ServeConfig {
                templates: 0,
                ..small()
            },
            ServeConfig {
                templates: TEMPLATES.len() + 1,
                ..small()
            },
            ServeConfig {
                groups: 0,
                ..small()
            },
            ServeConfig {
                zipf_q: -1.0,
                ..small()
            },
            ServeConfig {
                zipf_data: f64::NAN,
                ..small()
            },
        ] {
            assert!(replay(&bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[1, 2, 3, 4], 50), 2);
        assert_eq!(percentile(&[1, 2, 3, 4], 99), 4);
        assert_eq!(percentile(&[1, 2, 3, 4], 100), 4);
    }

    /// Naive nearest-rank reference for the percentile property test:
    /// count how many samples each candidate dominates.
    fn percentile_reference(sorted: &[u64], pct: u64) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let rank = (u128::from(pct) * sorted.len() as u128)
            .div_ceil(100)
            .max(1) as usize;
        let mut taken = 0usize;
        for &v in sorted {
            taken += 1;
            if taken >= rank {
                return v;
            }
        }
        *sorted.last().expect("non-empty")
    }

    #[test]
    fn percentile_matches_naive_reference_on_random_samples() {
        let mut state = 0x5EEDu64;
        for len in [1usize, 2, 3, 7, 100, 101, 997] {
            let mut samples: Vec<u64> = (0..len)
                .map(|_| parqp_testkit::splitmix64(&mut state) % 1_000_000)
                .collect();
            samples.sort_unstable();
            for pct in [0u64, 1, 33, 50, 99, 100] {
                assert_eq!(
                    percentile(&samples, pct),
                    percentile_reference(&samples, pct),
                    "len={len} pct={pct}"
                );
            }
        }
    }

    #[test]
    fn percentile_pct_zero_is_the_minimum() {
        // rank clamps to 1: pct=0 reads the smallest sample, not a
        // panic or an out-of-range index.
        assert_eq!(percentile(&[5, 9, 12], 0), 5);
        assert_eq!(percentile(&[], 0), 0);
    }

    #[test]
    fn percentile_rank_arithmetic_cannot_overflow() {
        // u64::MAX · len would overflow the old u64 rank arithmetic;
        // the u128 path clamps to the top sample instead.
        let sorted: Vec<u64> = (0..1000).collect();
        assert_eq!(percentile(&sorted, u64::MAX), 999);
        assert_eq!(percentile(&[u64::MAX], u64::MAX), u64::MAX);
    }

    #[test]
    fn tenant_ledger_state_is_bounded_by_the_cap() {
        // Regression for the unbounded l_samples vector: however many
        // queries a tenant serves, the ledger retains at most the cap
        // of exact samples plus the fixed-size sketch.
        let mut ledger = TenantLedger::default();
        for serial in 0..(MAX_EXACT_L_SAMPLES as u64 * 20) {
            ledger.observe(&QueryRecord {
                serial,
                tick: serial,
                tenant: 0,
                template: "t",
                group: 1,
                cache: "hit",
                l: serial % 4096,
                rounds: 1,
                tuples: 2,
                words: 4,
                out_rows: 0,
                digest: 0,
            });
        }
        assert_eq!(ledger.served, MAX_EXACT_L_SAMPLES as u64 * 20);
        assert!(ledger.l_exact.len() <= MAX_EXACT_L_SAMPLES);
        assert_eq!(ledger.l_hist.count(), ledger.served);
    }

    #[test]
    fn capped_ledger_percentiles_stay_within_one_bucket() {
        let mut ledger = TenantLedger::default();
        let mut all = Vec::new();
        let mut state = 0xABu64;
        for serial in 0..10_000u64 {
            let l = parqp_testkit::splitmix64(&mut state) % 100_000;
            all.push(l);
            ledger.observe(&QueryRecord {
                serial,
                tick: serial,
                tenant: 0,
                template: "t",
                group: 1,
                cache: "miss",
                l,
                rounds: 2,
                tuples: 2 * l,
                words: 4 * l,
                out_rows: 0,
                digest: 0,
            });
        }
        all.sort_unstable();
        let mut sorted_exact = ledger.l_exact.clone();
        sorted_exact.sort_unstable();
        for pct in [50u64, 99] {
            let exact = percentile(&all, pct);
            let sketched = ledger.l_percentile(&sorted_exact, pct);
            let bucket = |v: u64| 64 - v.leading_zeros();
            assert_eq!(
                bucket(exact),
                bucket(sketched),
                "pct {pct}: exact {exact} vs sketch {sketched}"
            );
        }
    }

    #[test]
    fn observed_replay_matches_plain_replay() {
        let plain = replay(&small()).expect("valid config");
        let (observed, series) = replay_observed(&small(), 4).expect("valid config");
        assert_eq!(plain.records, observed.records);
        assert_eq!(plain.tenants, observed.tenants);
        assert_eq!(series.served(), plain.served());
        assert_eq!(series.rounds(), plain.totals.num_rounds() as u64);
        assert_eq!(series.windows.len(), 5);
        let gauges: Vec<&str> = observed.registry.gauges().map(|(name, _)| name).collect();
        assert!(gauges.contains(&"serve.windows"));
        assert!(gauges.contains(&"serve.window.0.served"));
    }

    #[test]
    fn observed_replay_rejects_zero_window() {
        assert!(replay_observed(&small(), 0).is_err());
    }

    #[test]
    fn faulted_replay_reproduces_faultfree_digests() {
        let clean = replay(&small()).expect("valid config");
        let faulted = replay(&ServeConfig {
            faults: Some(FaultSetup::default()),
            ..small()
        })
        .expect("valid config");
        let log = faulted.fault_log.as_ref().expect("fault log present");
        assert!(log.fired() > 0, "default plan must fire inside the horizon");
        let digests = |r: &ServeReport| r.records.iter().map(|q| q.digest).collect::<Vec<_>>();
        assert_eq!(
            digests(&clean),
            digests(&faulted),
            "fault injection must be transparent to query outputs"
        );
        assert!(
            faulted.totals.total_tuples() > clean.totals.total_tuples(),
            "recovery overhead must be charged to the ledger"
        );
    }
}
