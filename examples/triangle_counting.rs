//! Triangle counting on a social-network-like graph — the motivating
//! workload for the HyperCube algorithm (slides 34–36, 97).
//!
//! Compares four ways to compute `Δ(x,y,z) = E(x,y) ⋈ E(y,z) ⋈ E(z,x)`:
//!
//! 1. the iterative binary-join plan most systems run (2 rounds, big
//!    intermediate);
//! 2. the one-round HyperCube with LP-optimal shares;
//! 3. SkewHC (one round, skew-proof, pays a `2^k` group constant);
//! 4. Heavy-Light + Semijoins (slide 59: ≤ 2 rounds, skew-proof).
//!
//! Then an extreme-skew epilogue shows where the skew-resilient
//! algorithms earn their keep.
//!
//! ```text
//! cargo run --release --example triangle_counting
//! ```

use parqp::join::{hl, multiway, plans, skewhc};
use parqp::model;
use parqp::prelude::*;

fn main() {
    let p = 64;
    let query = Query::triangle();

    // A random sparse graph plus a few "celebrity" hubs with big degree.
    let mut edges = parqp::data::generate::random_symmetric_graph(3000, 30_000, 7);
    for hub in 0..3u64 {
        for i in 0..800 {
            let v = 3000 + hub * 1000 + i;
            edges.push(&[hub, v]);
            edges.push(&[v, hub]);
        }
    }
    let rels = vec![edges.clone(), edges.clone(), edges.clone()];
    let input = 3 * edges.len();
    println!("graph: {} directed edges, IN = {input}", edges.len());

    let tau = model::tau_star(&query);
    let psi = model::psi_star_of(&query);
    println!(
        "paper: τ* = {tau}, ψ* = {psi}; skew-free L = IN/p^{{2/3}} = {:.0}, \
         skewed L = IN/p^{{1/2}} = {:.0}\n",
        model::one_round_load(input as f64, p as f64, tau),
        model::one_round_load_skewed(input as f64, p as f64, psi),
    );

    let plan_run = plans::binary_join_plan(&query, &rels, p, 42, None);
    let hc_run = multiway::hypercube(&query, &rels, p, 42);
    let skew_run = skewhc::skewhc(&query, &rels, p, 42);
    let hl_run = hl::hl_triangle(&edges, &edges, &edges, p, 42);

    println!(
        "{:<22} {:>10} {:>7} {:>12} {:>12}",
        "algorithm", "L", "rounds", "C", "triangles"
    );
    for (name, run) in [
        ("binary join plan", &plan_run),
        ("HyperCube", &hc_run),
        ("SkewHC", &skew_run),
        ("HL + semijoins", &hl_run),
    ] {
        println!(
            "{:<22} {:>10} {:>7} {:>12} {:>12}",
            name,
            run.report.max_load_tuples(),
            run.report.num_rounds(),
            run.report.total_tuples(),
            run.output_size(),
        );
    }
    assert_eq!(plan_run.output_size(), hc_run.output_size());
    assert_eq!(
        hc_run.gathered().canonical(),
        skew_run.gathered().canonical()
    );
    assert_eq!(hc_run.gathered().canonical(), hl_run.gathered().canonical());
    println!(
        "\nMild hubs: hashing already spreads them — plain HyperCube is fine, \
         and SkewHC pays its 2^k group-split constant for a guarantee it \
         doesn't need here."
    );

    // Epilogue: extreme skew — every S-edge shares one z value. Plain
    // HyperCube's z dimension collapses; the skew-resilient algorithms
    // keep their bound.
    let n = 4000;
    let r = parqp::data::generate::uniform(2, n, 400, 9);
    let s = parqp::data::generate::constant_key_pairs(n, 9, 1);
    let mut t = parqp::data::generate::uniform(2, n, 400, 10);
    for i in 0..n as u64 {
        t.push(&[9, i % 400]);
    }
    let rels = vec![r.clone(), s.clone(), t.clone()];
    let hc = multiway::hypercube(&query, &rels, p, 5);
    let hl2 = hl::hl_triangle(&r, &s, &t, p, 5);
    println!("\nextreme z-skew (|S| concentrated on one value):");
    println!("  HyperCube        L = {:>6}", hc.report.max_load_tuples());
    println!(
        "  HL + semijoins   L = {:>6} (r = {})",
        hl2.report.max_load_tuples(),
        hl2.report.num_rounds()
    );
    assert_eq!(hc.gathered().canonical(), hl2.gathered().canonical());
    assert!(hl2.report.max_load_tuples() < hc.report.max_load_tuples());
}
