//! E10 — the scalability limit of `L = IN/p^{1/τ*}` (slide 62).
//!
//! The chain of 20 binary relations has τ\* = 10, so the one-round
//! speedup is `p^{1/10}`: doubling it requires `2^{10} = 1024×` more
//! processors. We print the analytic speedup ladder and measure the
//! HyperCube load on a small chain-20 instance at `p = 1` and
//! `p = 1024` to confirm the measured speedup is ≈ 2, not 1024.

use crate::table::fmt;
use crate::Table;
use parqp::data::generate;
use parqp::join::multiway;
use parqp::model;
use parqp::prelude::*;
use parqp_data::Relation;

/// Run E10.
pub fn run() -> Vec<Table> {
    let q = Query::chain(20);
    let tau = model::tau_star(&q);

    let mut ladder = Table::new(
        format!("E10a (slide 62): chain-20, τ* = {tau} — the speedup ladder"),
        &["p", "ideal speedup p^(1/τ*)"],
    );
    for exp in [0u32, 5, 10, 15, 20] {
        let p = 2f64.powi(exp as i32);
        ladder.row(vec![
            format!("2^{exp}"),
            fmt(model::hypercube_speedup(p, tau)),
        ]);
    }
    let mut fact = Table::new(
        "E10b: processors needed to double the speedup",
        &["query", "τ*", "factor 2^τ*"],
    );
    for (name, q) in [
        ("triangle", Query::triangle()),
        ("chain-4", Query::chain(4)),
        ("chain-20", Query::chain(20)),
    ] {
        let tau = model::tau_star(&q);
        fact.row(vec![
            name.into(),
            fmt(tau),
            fmt(model::processors_for_double_speedup(tau)),
        ]);
    }

    // Measured: chain-20, N = 1000 per relation, p = 1 vs p = 1024.
    let n = 1000usize;
    let rels: Vec<Relation> = (0..20)
        .map(|i| generate::key_unique_pairs(n, 1, n as u64, 60 + i as u64))
        .collect();
    let l1 = multiway::hypercube(&q, &rels, 1, 5)
        .report
        .max_load_tuples() as f64;
    let l1024 = multiway::hypercube(&q, &rels, 1024, 5)
        .report
        .max_load_tuples() as f64;
    let mut meas = Table::new(
        format!("E10c: measured HyperCube load, chain-20, N = {n} per relation"),
        &["p", "measured L", "speedup", "ideal p^(1/10)"],
    );
    meas.row(vec!["1".into(), fmt(l1), "1".into(), "1".into()]);
    meas.row(vec![
        "1024".into(),
        fmt(l1024),
        fmt(l1 / l1024),
        fmt(model::hypercube_speedup(1024.0, tau)),
    ]);
    vec![ladder, fact, meas]
}

#[cfg(test)]
mod tests {
    #[test]
    fn chain20_needs_1024x_for_2x() {
        let tables = super::run();
        let fact = &tables[1];
        let chain20 = fact.rows.iter().find(|r| r[0] == "chain-20").expect("row");
        let factor: f64 = chain20[2].parse().expect("factor");
        assert!((factor - 1024.0).abs() < 1e-6);
    }

    #[test]
    fn measured_speedup_is_pitiful() {
        let tables = super::run();
        let meas = &tables[2];
        let speedup: f64 = meas.rows[1][2].parse().expect("speedup");
        // 1024 servers buy ≈ 2× (ideal); allow integer-share slack but it
        // must be nowhere near linear.
        assert!(
            (1.2..8.0).contains(&speedup),
            "chain-20 speedup at p=1024 is {speedup}, expected ~2"
        );
    }
}
