//! A lightweight, lossy Rust tokenizer for lint rules.
//!
//! The rules in this crate are lexical: they look for banned identifiers
//! and count panic sites. For that to be sound the scanner must never
//! match inside string literals, character literals, or comments — a
//! doc comment mentioning `HashMap`, or an error message containing
//! `"panic!"`, must not trip a rule. This module reduces a `.rs` file to
//! per-line *code text* with all literal and comment contents blanked
//! out, while keeping track of two pieces of lint-relevant structure:
//!
//! - `#[cfg(test)]` module bodies (rules that only apply to production
//!   code skip those lines), and
//! - `// parqp-lint: allow(PQxxx)` escape-hatch comments, which suppress
//!   the named rules on their own line, or — when the comment stands
//!   alone — on the next line that contains code.
//!
//! It is *not* a parser: it does not build an AST, and pathological
//! macro soup can fool it. That trade-off is deliberate — the analyzer
//! must stay zero-dependency and fast, in the same spirit as the
//! hand-written manifest scanner it grew out of.

/// One source line after sanitization.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number in the original file.
    pub number: usize,
    /// The line's code with comment and literal *contents* removed.
    /// String literals collapse to `""`, char literals to `' '`.
    pub code: String,
    /// Whether the line sits inside a `#[cfg(test)]` module body (or is
    /// the attribute/header line of one).
    pub in_test: bool,
    /// Rule IDs suppressed on this line via `parqp-lint: allow(...)`.
    pub allows: Vec<String>,
}

impl Line {
    /// Whether `rule` is suppressed on this line.
    pub fn allows(&self, rule: &str) -> bool {
        self.allows.iter().any(|a| a == rule)
    }
}

/// A sanitized source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub lines: Vec<Line>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    Str,
    RawStr(usize),
    BlockComment(usize),
}

/// Sanitize `text` into lint-ready lines.
pub fn sanitize(text: &str) -> SourceFile {
    let mut lines: Vec<(String, String)> = Vec::new(); // (code, comments)
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;

    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            lines.push((std::mem::take(&mut code), std::mem::take(&mut comment)));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && bytes.get(i + 1) == Some(&b'/') {
                    // Line comment: capture its text for allow-annotation
                    // parsing, drop it from the code stream.
                    let end = text[i..].find('\n').map_or(bytes.len(), |n| i + n);
                    comment.push_str(&text[i..end]);
                    i = end;
                } else if c == '/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && is_raw_string_start(text, i) {
                    let hashes = text[i..]
                        .chars()
                        .skip_while(|&ch| ch == 'r' || ch == 'b')
                        .take_while(|&ch| ch == '#')
                        .count();
                    code.push('"');
                    state = State::RawStr(hashes);
                    // Skip past the prefix, hashes and opening quote.
                    i += text[i..].find('"').unwrap_or(0) + 1;
                } else if c == '\'' {
                    i = skip_char_or_lifetime(text, i, &mut code);
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Escaped char (incl. \" and \\). A backslash-newline
                    // (string line continuation) still ends a source
                    // line — skipping it silently would shift every
                    // later line number.
                    if bytes.get(i + 1) == Some(&b'\n') {
                        lines.push((std::mem::take(&mut code), std::mem::take(&mut comment)));
                    }
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                let closed = c == '"'
                    && text.len() >= i + 1 + hashes
                    && text[i + 1..i + 1 + hashes].bytes().all(|b| b == b'#');
                if closed {
                    code.push('"');
                    state = State::Code;
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
            }
            State::BlockComment(depth) => {
                if c == '/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        lines.push((code, comment));
    }

    assemble(lines)
}

/// Whether position `i` (at an `r` or `b`) starts a raw/byte string:
/// `r"`, `r#"`, `br"`, `b"`, `br#"` etc.
fn is_raw_string_start(text: &str, i: usize) -> bool {
    let rest = &text[i..];
    let prefix: String = rest.chars().take_while(|&c| c == 'r' || c == 'b').collect();
    if prefix.is_empty() || prefix.len() > 2 {
        return false;
    }
    // Must not be the tail of a longer identifier (e.g. `var"` can't occur,
    // but `for r in ..` must not trigger on `r` followed by `"` never mind).
    if i > 0 {
        let prev = text.as_bytes()[i - 1] as char;
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    rest[prefix.len()..].chars().find(|&c| c != '#') == Some('"')
}

/// Handle a `'` in code position: either a char literal (contents
/// dropped) or a lifetime (kept as code). Returns the new position.
fn skip_char_or_lifetime(text: &str, i: usize, code: &mut String) -> usize {
    let rest = &text[i + 1..];
    let mut chars = rest.chars();
    match chars.next() {
        Some('\\') => {
            // Escaped char literal: find the closing quote after the escape.
            code.push('\'');
            code.push(' ');
            code.push('\'');
            let mut j = i + 2; // past ' and backslash
            let b = text.as_bytes();
            if j < b.len() {
                j += 1; // the escaped character itself
            }
            // Unicode escapes: \u{...}
            while j < b.len() && b[j] != b'\'' {
                j += 1;
            }
            (j + 1).min(text.len())
        }
        Some(c) if chars.next() == Some('\'') => {
            // Plain char literal 'x'.
            let _ = c;
            code.push('\'');
            code.push(' ');
            code.push('\'');
            i + 2 + c.len_utf8()
        }
        _ => {
            // Lifetime (or stray quote): keep as code.
            code.push('\'');
            i + 1
        }
    }
}

/// Second pass: parse allow annotations, track `#[cfg(test)]` blocks.
fn assemble(raw: Vec<(String, String)>) -> SourceFile {
    let mut lines = Vec::with_capacity(raw.len());
    let mut pending_allows: Vec<String> = Vec::new();
    let mut depth: usize = 0;
    let mut pending_cfg_test = false;
    let mut test_until_depth: Option<usize> = None;

    for (idx, (code, comment)) in raw.into_iter().enumerate() {
        let mut allows = parse_allows(&comment);
        let standalone = code.trim().is_empty();
        if standalone && !allows.is_empty() {
            // A lone allow-comment applies to the next code line.
            pending_allows.append(&mut allows);
        } else if !standalone {
            allows.append(&mut pending_allows);
        }

        let mut in_test = test_until_depth.is_some();
        if test_until_depth.is_none() && code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
            in_test = true;
        }
        // A line consuming a pending #[cfg(test)] (the `mod … {` header,
        // or a braceless item like `use …;`) is itself test code.
        let pending_at_line_start = pending_cfg_test;

        for ch in code.chars() {
            match ch {
                '{' => {
                    if pending_cfg_test {
                        test_until_depth = Some(depth);
                        pending_cfg_test = false;
                        in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if test_until_depth == Some(depth) {
                        test_until_depth = None;
                        in_test = true; // the closing brace itself is test code
                    }
                }
                // `#[cfg(test)] use …;` — attribute attached to a
                // non-block item; stop waiting for a brace.
                ';' if pending_cfg_test && depth == 0 => {
                    pending_cfg_test = false;
                }
                _ => {}
            }
        }
        if pending_at_line_start || pending_cfg_test {
            in_test = true; // attribute lines between #[cfg(test)] and `{`
        }

        lines.push(Line {
            number: idx + 1,
            code,
            in_test,
            allows,
        });
    }
    SourceFile { lines }
}

/// Extract rule IDs from a `parqp-lint: allow(PQ001, PQ002)` comment.
///
/// The annotation must be the *start* of the comment (`// parqp-lint: …`),
/// so that prose which merely mentions the syntax — like this crate's own
/// documentation — is not treated as an annotation.
fn parse_allows(comment: &str) -> Vec<String> {
    let body = comment
        .trim_start()
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim_start();
    let Some(rest) = body.strip_prefix("parqp-lint:") else {
        return Vec::new();
    };
    let Some(open) = rest.find("allow(") else {
        return Vec::new();
    };
    let Some(close) = rest[open..].find(')') else {
        return Vec::new();
    };
    rest[open + "allow(".len()..open + close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(text: &str) -> Vec<String> {
        sanitize(text).lines.into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strips_line_comments() {
        let c = code_of("let x = 1; // trailing HashMap mention\n");
        assert!(!c[0].contains("HashMap"));
        assert!(c[0].contains("let x = 1;"));
    }

    #[test]
    fn strips_doc_comments() {
        let c = code_of("/// Uses a HashMap internally.\nfn f() {}\n");
        assert!(!c[0].contains("HashMap"));
        assert_eq!(c[1].trim(), "fn f() {}");
    }

    #[test]
    fn strips_block_comments_nested() {
        let c = code_of("a /* x /* y */ HashMap */ b\n");
        assert_eq!(c[0].replace(' ', ""), "ab");
    }

    #[test]
    fn strips_string_contents() {
        let c = code_of("let s = \"std::collections::HashMap\";\n");
        assert!(!c[0].contains("HashMap"));
        assert!(c[0].contains("let s = \"\";"));
    }

    #[test]
    fn strips_raw_strings() {
        let c = code_of("let s = r#\"panic! \"quoted\" HashMap\"#;\nlet t = 2;\n");
        assert!(!c[0].contains("HashMap"));
        assert_eq!(c[1].trim(), "let t = 2;");
    }

    #[test]
    fn string_escapes_do_not_terminate() {
        let c = code_of("let s = \"a\\\"HashMap\\\"b\"; let y = 1;\n");
        assert!(!c[0].contains("HashMap"));
        assert!(c[0].contains("let y = 1;"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let c = code_of("let c = '{'; fn f<'a>(x: &'a u32) {}\n");
        // The brace inside the char literal must not affect depth,
        // and the lifetime must survive as code.
        assert!(c[0].contains("'a"));
        assert!(!c[0].contains("'{'"));
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let f = sanitize("let s = \"line1\nline2 HashMap\nline3\";\nlet x = 1;\n");
        assert_eq!(f.lines.len(), 4);
        assert!(!f.lines[1].code.contains("HashMap"));
        assert_eq!(f.lines[3].code.trim(), "let x = 1;");
        assert_eq!(f.lines[3].number, 4);
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn prod2() {}\n";
        let f = sanitize(src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_use_item_does_not_swallow_rest_of_file() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() {}\n";
        let f = sanitize(src);
        assert!(f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn allow_same_line() {
        let f = sanitize("use x::HashMap; // parqp-lint: allow(PQ001)\n");
        assert!(f.lines[0].allows("PQ001"));
        assert!(!f.lines[0].allows("PQ002"));
    }

    #[test]
    fn allow_standalone_applies_to_next_line() {
        let f = sanitize("// parqp-lint: allow(PQ001, PQ003)\nuse x::HashMap;\nuse y::Z;\n");
        assert!(f.lines[0].code.trim().is_empty());
        assert!(f.lines[1].allows("PQ001"));
        assert!(f.lines[1].allows("PQ003"));
        assert!(!f.lines[2].allows("PQ001"));
    }

    #[test]
    fn braces_in_strings_do_not_affect_test_tracking() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}\";\n    fn t() {}\n}\nfn prod() {}\n";
        let f = sanitize(src);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }
}
