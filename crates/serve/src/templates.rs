//! The query templates tenants draw from.
//!
//! A template is a two-way equi-join shape: a *base* relation (the big,
//! cacheable side — hash-partitioned once per `(template, group)` pair
//! and reused across queries) probed by a small per-query relation.
//! The `group` index selects which slice of the key space a query
//! touches, so two queries on the same `(template, group)` share their
//! partitioned base exactly; different groups generate disjoint seeded
//! inputs and therefore distinct cache entries.
//!
//! Base relations span the input classes the tutorial's analyses
//! distinguish: uniform (no skew), mild and heavy Zipf, graph edges,
//! and a wide-domain uniform — so a served mix exercises both the
//! skew-free `IN/p` regime and the heavy-hitter regime.

use parqp_data::{generate, Relation};

/// One query template: the shape of its base relation and probes.
#[derive(Debug, Clone, Copy)]
pub struct Template {
    /// Stable CLI/report name.
    pub name: &'static str,
    /// Rows in the cacheable base relation.
    pub base_rows: usize,
    /// Join-key domain (values in `0..domain`, or `1..=domain` for
    /// Zipf bases).
    pub domain: u64,
    /// Zipf exponent of the base's join column; `0` means uniform.
    pub alpha: f64,
    /// Rows in each per-query probe relation.
    pub probe_rows: usize,
}

/// The template catalog. `ServeConfig::templates` takes a prefix of
/// this table, so preset streams stay stable when templates are added.
pub const TEMPLATES: &[Template] = &[
    Template {
        name: "uniform-pairs",
        base_rows: 4000,
        domain: 2000,
        alpha: 0.0,
        probe_rows: 64,
    },
    Template {
        name: "zipf-light",
        base_rows: 3000,
        domain: 1500,
        alpha: 0.8,
        probe_rows: 48,
    },
    Template {
        name: "zipf-heavy",
        base_rows: 2400,
        domain: 800,
        alpha: 1.2,
        probe_rows: 32,
    },
    Template {
        name: "graph-edges",
        base_rows: 3200,
        domain: 400,
        alpha: 0.0,
        probe_rows: 64,
    },
    Template {
        name: "wide-domain",
        base_rows: 6000,
        domain: 60_000,
        alpha: 0.0,
        probe_rows: 96,
    },
];

/// Decorrelate a `(seed, template, group, salt)` tuple into one
/// generator seed (a splitmix64 walk, so nearby inputs diverge).
fn derive_seed(seed: u64, template: usize, group: u64, salt: u64) -> u64 {
    let mut state = seed
        ^ (template as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ group.rotate_left(24)
        ^ salt.rotate_left(48);
    parqp_testkit::splitmix64(&mut state)
}

/// The base relation of `(template, group)` — the cacheable side.
/// A pure function of its arguments; column 0 is the join key.
///
/// # Panics
/// Panics if `template` is out of catalog range.
pub fn base_relation(template: usize, group: u64, seed: u64) -> Relation {
    let t = &TEMPLATES[template];
    let s = derive_seed(seed, template, group, 0x0b5e);
    if t.name == "graph-edges" {
        generate::random_graph(t.domain, t.base_rows, s)
    } else if t.alpha > 0.0 {
        generate::zipf_pairs(t.base_rows, t.domain as usize, t.alpha, 0, s)
    } else {
        generate::uniform(2, t.base_rows, t.domain, s)
    }
}

/// The per-query probe relation: small, uniform over the template's
/// key domain, unique to the query's stream `serial`. Column 0 is the
/// join key.
///
/// # Panics
/// Panics if `template` is out of catalog range.
pub fn probe_relation(template: usize, group: u64, serial: u64, seed: u64) -> Relation {
    let t = &TEMPLATES[template];
    let s = derive_seed(seed, template, group, 0x9120_0000 | serial);
    generate::uniform(2, t.probe_rows, t.domain, s)
}

/// The hash seed partitioning `(template, group)`'s base — probes of
/// the same pair must route with the *same* seed to land on their
/// partition's server.
pub fn partition_seed(template: usize, group: u64, seed: u64) -> u64 {
    derive_seed(seed, template, group, 0x4a5e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_shapes_are_sane() {
        assert!(TEMPLATES.len() >= 3);
        for t in TEMPLATES {
            assert!(t.base_rows > 0 && t.probe_rows > 0 && t.domain > 1);
            assert!(t.alpha >= 0.0);
            assert!(t.probe_rows < t.base_rows);
        }
    }

    #[test]
    fn base_relations_deterministic_and_group_distinct() {
        for (template, spec) in TEMPLATES.iter().enumerate() {
            let a = base_relation(template, 1, 42);
            let b = base_relation(template, 1, 42);
            assert_eq!(a, b, "{}: base not deterministic", spec.name);
            let other = base_relation(template, 2, 42);
            assert_ne!(a, other, "{}: groups collide", spec.name);
            assert_eq!(a.arity(), 2);
        }
    }

    #[test]
    fn probes_distinct_per_serial() {
        let a = probe_relation(0, 1, 10, 42);
        let b = probe_relation(0, 1, 11, 42);
        assert_ne!(a, b);
        assert_eq!(a, probe_relation(0, 1, 10, 42));
    }

    #[test]
    fn partition_seed_is_shared_within_a_pair() {
        assert_eq!(partition_seed(1, 3, 42), partition_seed(1, 3, 42));
        assert_ne!(partition_seed(1, 3, 42), partition_seed(1, 4, 42));
        assert_ne!(partition_seed(1, 3, 42), partition_seed(2, 3, 42));
    }
}
