//! A heuristic planner: pick the tutorial's right algorithm per input.
//!
//! The tutorial's practical takeaway (slides 32, 46, 96) is a decision
//! procedure, not a single algorithm:
//!
//! * two atoms sharing variables → hash join; broadcast if one side is
//!   tiny; skew-resilient join when heavy hitters exist;
//! * no shared variables → Cartesian grid;
//! * multiway, skewed → SkewHC; multiway skew-free → HyperCube;
//! * acyclic with modest estimated output → GYM (the slide 78
//!   crossover).
//!
//! [`plan`] encodes those rules and [`run_plan`] executes the choice.

use crate::model;
use parqp_data::stats::max_degree;
use parqp_data::Relation;
use parqp_join::{baselines, gym, multiway, plans, skewhc, twoway, JoinRun};
use parqp_query::{Ghd, Query};

/// The algorithm chosen for an input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Strategy {
    /// Parallel hash join (two-way, skew-free).
    HashJoin,
    /// Broadcast the small side (two-way, very asymmetric sizes).
    BroadcastJoin,
    /// Skew-resilient two-way join (heavy hitters present).
    SkewJoin,
    /// Cartesian grid (no shared variables between two atoms).
    Cartesian,
    /// One-round HyperCube (multiway, skew-free).
    HyperCube,
    /// SkewHC (multiway with heavy hitters).
    SkewHC,
    /// Distributed Yannakakis over a join tree (acyclic, small output).
    Gym,
    /// Iterative binary join plan (fallback for cyclic queries where the
    /// one-round replication would exceed the input).
    BinaryPlan,
    /// BiGJoin-style vertex-at-a-time expansion (cyclic subgraph queries
    /// with binary atoms, slide 97). Set semantics: duplicate input
    /// tuples do not multiply outputs.
    ExpansionJoin,
    /// Everything to one server — only ever "chosen" for `p == 1`.
    SingleServer,
}

/// A planning decision with its justification.
#[derive(Debug, Clone)]
pub struct Decision {
    /// The chosen strategy.
    pub strategy: Strategy,
    /// One-sentence human-readable justification.
    pub reason: String,
}

/// Decide how to run `query` over `rels` on `p` servers.
///
/// # Panics
/// Panics if `rels.len() != query.num_atoms()`.
pub fn plan(query: &Query, rels: &[Relation], p: usize) -> Decision {
    assert_eq!(rels.len(), query.num_atoms(), "one relation per atom");
    if p == 1 {
        return Decision {
            strategy: Strategy::SingleServer,
            reason: "single server: everything is local".into(),
        };
    }
    let input: usize = rels.iter().map(Relation::len).sum();

    // Any heavy hitters (per the paper's IN/p threshold)?
    let heavy = skewhc::heavy_values(query, rels, p);
    let skewed = {
        // A variable is skewed only if a value repeats beyond threshold;
        // degree-1 "heavy" values from the max(1,…) floor don't count.
        query.atoms().iter().zip(rels).any(|(atom, rel)| {
            let threshold = ((rel.len() / p) as u64).max(2);
            (0..atom.arity()).any(|pos| max_degree(rel, pos) >= threshold)
        }) && heavy.iter().any(|h| !h.is_empty())
    };

    if query.num_atoms() == 2 {
        let shared = query.shared_vars(0, 1);
        if shared.is_empty() {
            return Decision {
                strategy: Strategy::Cartesian,
                reason: "two atoms without shared variables: product grid (slide 28)".into(),
            };
        }
        if shared.len() > 1 {
            // Two atoms sharing several variables (e.g. R(x,y) ⋈ S(y,x)):
            // the specialized two-way kernels join on one column; let the
            // HyperCube handle the composite key.
            return Decision {
                strategy: Strategy::HyperCube,
                reason: "two atoms sharing multiple variables: HyperCube on the composite key"
                    .into(),
            };
        }
        let (a, b) = (rels[0].len(), rels[1].len());
        let (small, large) = (a.min(b), a.max(b));
        if small * p <= large {
            return Decision {
                strategy: Strategy::BroadcastJoin,
                reason: format!(
                    "one side ({small}) ≤ other/p ({large}/{p}): broadcast it (slide 32)"
                ),
            };
        }
        if skewed {
            return Decision {
                strategy: Strategy::SkewJoin,
                reason: "heavy hitters on the join attribute: heavy/light split (slide 30)".into(),
            };
        }
        return Decision {
            strategy: Strategy::HashJoin,
            reason: "two-way skew-free join: hash partitioning is optimal (slide 23)".into(),
        };
    }

    // Multiway.
    if let Some(tree) = Ghd::join_tree(query) {
        // Acyclic: GYM wins when OUT is below the slide 78 crossover.
        // The simulator computes OUT exactly with serial Yannakakis
        // (O(IN+OUT)); a real system would use estimates, changing only
        // where the switch happens, not the shape of the decision.
        let tau = model::tau_star(query);
        let out = parqp_query::yannakakis_serial(query, rels, &tree).len();
        let crossover = model::gym_crossover_output(input as f64, p as f64, tau);
        if (out as f64) < crossover {
            return Decision {
                strategy: Strategy::Gym,
                reason: format!(
                    "acyclic, OUT = {out} below the (IN+OUT)/p crossover {crossover:.0} \
                     (slide 78): GYM"
                ),
            };
        }
    }
    if skewed {
        return Decision {
            strategy: Strategy::SkewHC,
            reason: "multiway with heavy hitters: SkewHC residual queries (slide 47)".into(),
        };
    }
    let tau = model::tau_star(query);
    if Ghd::join_tree(query).is_none() && tau > 3.0 {
        // Slide 62: p^{1/τ*} speedup collapses for high-τ* queries —
        // replicating IN·p^{1−1/τ*} is worse than iterating. For subgraph
        // shapes (all-binary atoms) grow bindings one vertex at a time
        // (the BiGJoin family, slide 97); otherwise fall back to plain
        // binary join plans.
        if query.atoms().iter().all(|a| a.arity() == 2) {
            return Decision {
                strategy: Strategy::ExpansionJoin,
                reason: format!(
                    "cyclic subgraph query with τ* = {tau:.1}: one-round replication is \
                     hopeless (slide 62), expand vertex-at-a-time (slide 97)"
                ),
            };
        }
        return Decision {
            strategy: Strategy::BinaryPlan,
            reason: format!(
                "cyclic with τ* = {tau:.1}: one-round replication is hopeless (slide 62), \
                 iterate binary joins"
            ),
        };
    }
    Decision {
        strategy: Strategy::HyperCube,
        reason: "multiway skew-free: one-round HyperCube at the τ* optimum (slide 40)".into(),
    }
}

/// Execute a strategy (normally the one returned by [`plan`]).
///
/// # Panics
/// Panics if the strategy does not fit the query shape (e.g.
/// [`Strategy::HashJoin`] on three atoms).
pub fn run_plan(
    query: &Query,
    rels: &[Relation],
    p: usize,
    seed: u64,
    strategy: &Strategy,
) -> JoinRun {
    match strategy {
        Strategy::HashJoin | Strategy::BroadcastJoin | Strategy::SkewJoin => {
            assert_eq!(
                query.num_atoms(),
                2,
                "two-way strategy on non-two-way query"
            );
            let shared = query.shared_vars(0, 1);
            assert_eq!(shared.len(), 1, "two-way strategies join on one variable");
            let v = shared[0];
            let r_col = query.atoms()[0]
                .vars
                .iter()
                .position(|&x| x == v)
                .expect("shared");
            let s_col = query.atoms()[1]
                .vars
                .iter()
                .position(|&x| x == v)
                .expect("shared");
            let run = match strategy {
                Strategy::HashJoin => twoway::hash_join(&rels[0], r_col, &rels[1], s_col, p, seed),
                Strategy::BroadcastJoin => {
                    if rels[0].len() <= rels[1].len() {
                        twoway::broadcast_join(&rels[0], r_col, &rels[1], s_col, p)
                    } else {
                        twoway::broadcast_join(&rels[1], s_col, &rels[0], r_col, p)
                    }
                }
                _ => twoway::skew_join(&rels[0], r_col, &rels[1], s_col, p, seed),
            };
            reorder_twoway(
                query,
                run,
                r_col,
                s_col,
                matches!(strategy, Strategy::BroadcastJoin) && rels[0].len() > rels[1].len(),
            )
        }
        Strategy::Cartesian => multiway::hypercube(query, rels, p, seed),
        Strategy::HyperCube => multiway::hypercube(query, rels, p, seed),
        Strategy::SkewHC => skewhc::skewhc(query, rels, p, seed),
        Strategy::Gym => {
            let tree = Ghd::join_tree(query).expect("Gym strategy requires an acyclic query");
            gym::gym(query, rels, &tree, p, seed, true)
        }
        Strategy::BinaryPlan => plans::binary_join_plan(query, rels, p, seed, None),
        Strategy::ExpansionJoin => parqp_join::subgraph::expansion_join(query, rels, p, seed),
        Strategy::SingleServer => {
            if query.num_atoms() == 2 && query.shared_vars(0, 1).len() == 1 {
                let v = query.shared_vars(0, 1)[0];
                let r_col = query.atoms()[0]
                    .vars
                    .iter()
                    .position(|&x| x == v)
                    .expect("shared");
                let s_col = query.atoms()[1]
                    .vars
                    .iter()
                    .position(|&x| x == v)
                    .expect("shared");
                let run = baselines::naive_one_server(&rels[0], r_col, &rels[1], s_col, 1);
                reorder_twoway(query, run, r_col, s_col, false)
            } else {
                multiway::hypercube(query, rels, 1, seed)
            }
        }
    }
}

/// Convenience: plan then run.
pub fn plan_and_run(query: &Query, rels: &[Relation], p: usize, seed: u64) -> (Decision, JoinRun) {
    let d = plan(query, rels, p);
    let run = run_plan(query, rels, p, seed, &d.strategy);
    (d, run)
}

/// Reorder a two-way join's `r ++ (s − join col)` output into the
/// query's variable order `x₀ … x_{k-1}`.
fn reorder_twoway(
    query: &Query,
    run: JoinRun,
    r_col: usize,
    s_col: usize,
    swapped: bool,
) -> JoinRun {
    let (first, second, fcol, scol) = if swapped {
        (1, 0, s_col, r_col)
    } else {
        (0, 1, r_col, s_col)
    };
    let a0 = &query.atoms()[first];
    let a1 = &query.atoms()[second];
    // Output schema of the two-way algorithms: a0 vars, then a1 vars
    // minus its join position.
    let mut schema: Vec<usize> = a0.vars.clone();
    schema.extend(
        a1.vars
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != scol)
            .map(|(_, &v)| v),
    );
    let _ = fcol;
    let mut col_of_var = vec![0usize; query.num_vars()];
    for (i, &v) in schema.iter().enumerate() {
        col_of_var[v] = i;
    }
    let order: Vec<usize> = (0..query.num_vars()).map(|v| col_of_var[v]).collect();
    let outputs = run
        .outputs
        .into_iter()
        .map(|rel| {
            if rel.is_empty() {
                parqp_data::Relation::new(query.num_vars())
            } else {
                rel.project(&order)
            }
        })
        .collect();
    JoinRun {
        outputs,
        report: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parqp_data::generate;
    use parqp_query::evaluate;

    fn check(q: &Query, rels: &[Relation], p: usize) -> (Decision, JoinRun) {
        let (d, run) = plan_and_run(q, rels, p, 7);
        let expect = evaluate(q, rels);
        assert_eq!(
            run.gathered().canonical(),
            expect.canonical(),
            "strategy {:?} wrong answer",
            d.strategy
        );
        (d, run)
    }

    #[test]
    fn picks_hash_join_for_uniform_two_way() {
        let q = Query::two_way();
        let rels = vec![
            generate::key_unique_pairs(500, 1, 1 << 30, 1),
            generate::key_unique_pairs(500, 0, 1 << 30, 2),
        ];
        let (d, _) = check(&q, &rels, 8);
        assert_eq!(d.strategy, Strategy::HashJoin);
    }

    #[test]
    fn picks_skew_join_for_skewed_two_way() {
        let q = Query::two_way();
        let rels = vec![
            generate::constant_key_pairs(400, 3, 1),
            generate::constant_key_pairs(400, 3, 0),
        ];
        let (d, _) = check(&q, &rels, 8);
        assert_eq!(d.strategy, Strategy::SkewJoin);
    }

    #[test]
    fn picks_broadcast_for_asymmetric() {
        let q = Query::two_way();
        let rels = vec![
            generate::uniform(2, 10, 50, 3),
            generate::uniform(2, 2000, 50, 4),
        ];
        let (d, _) = check(&q, &rels, 8);
        assert_eq!(d.strategy, Strategy::BroadcastJoin);
    }

    #[test]
    fn picks_cartesian_for_product() {
        let q = Query::product();
        let rels = vec![
            generate::uniform(1, 60, 500, 5),
            generate::uniform(1, 60, 500, 6),
        ];
        let (d, run) = check(&q, &rels, 16);
        assert_eq!(d.strategy, Strategy::Cartesian);
        assert_eq!(run.output_size(), 3600);
    }

    #[test]
    fn picks_hypercube_for_uniform_triangle() {
        let q = Query::triangle();
        let g = generate::uniform(2, 600, 1 << 30, 7);
        let rels = vec![g.clone(), g.clone(), g];
        let (d, _) = check(&q, &rels, 8);
        assert_eq!(d.strategy, Strategy::HyperCube);
    }

    #[test]
    fn picks_skewhc_for_skewed_triangle() {
        let q = Query::triangle();
        let mut g = generate::uniform(2, 300, 1 << 30, 8);
        for i in 0..200 {
            g.push(&[42, i]);
        }
        let rels = vec![g.clone(), g.clone(), g];
        let (d, _) = check(&q, &rels, 8);
        assert_eq!(d.strategy, Strategy::SkewHC);
    }

    #[test]
    fn picks_gym_for_selective_acyclic() {
        // Chain with key-unique relations: AGM = N but crossover ≈ p^{…}·IN.
        let q = Query::chain(3);
        let rels: Vec<Relation> = (0..3)
            .map(|i| generate::key_unique_pairs(300, (i == 0) as usize, 300, 9 + i as u64))
            .collect();
        let (d, _) = check(&q, &rels, 16);
        assert_eq!(d.strategy, Strategy::Gym, "{}", d.reason);
    }

    #[test]
    fn picks_expansion_join_for_long_cycles() {
        // Cycle-8 has τ* = 4: one-round replication is hopeless (slide 62);
        // binary atoms ⇒ grow bindings vertex-at-a-time instead.
        let q = Query::cycle(8);
        let rels: Vec<Relation> = (0..8)
            .map(|i| generate::uniform(2, 120, 40, 13 + i as u64))
            .collect();
        let (d, _) = check(&q, &rels, 8);
        assert_eq!(d.strategy, Strategy::ExpansionJoin, "{}", d.reason);
    }

    #[test]
    fn single_server_degenerates() {
        let q = Query::two_way();
        let rels = vec![
            generate::uniform(2, 50, 20, 11),
            generate::uniform(2, 50, 20, 12),
        ];
        let (d, _) = check(&q, &rels, 1);
        assert_eq!(d.strategy, Strategy::SingleServer);
    }

    #[test]
    fn output_in_variable_order() {
        // Join R(x,y) ⋈ S(y,z) with asymmetric columns to catch
        // reordering mistakes.
        let q = Query::two_way();
        let r = Relation::from_rows(2, [[100, 1]]);
        let s = Relation::from_rows(2, [[1, 200]]);
        let (_, run) = plan_and_run(&q, &[r, s], 4, 3);
        assert_eq!(run.gathered().to_rows(), vec![vec![100, 1, 200]]);
    }
}
