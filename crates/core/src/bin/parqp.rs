//! The `parqp` command-line tool. See [`parqp::cli`] for the commands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `lint` has a three-way exit contract (0 clean, 1 findings,
    // 2 setup error) that the text-dispatch path cannot express.
    if let Some(("lint", rest)) = args.split_first().map(|(c, r)| (c.as_str(), r)) {
        std::process::exit(parqp::cli::lint_main(rest));
    }
    match parqp::cli::dispatch(&args) {
        Ok(report) => print!("{report}"),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
