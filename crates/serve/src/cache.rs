//! The shared-plan cache: hash-partitioned base relations keyed by
//! canonical `(template, group, shares)`, with deterministic LRU-by-tick
//! eviction and an exact hit/miss/insert/evict ledger.
//!
//! The cache is purely observational with respect to query *results*:
//! a hit hands back exactly the partitions a rebuild would produce
//! (bases are pure functions of their key and the replay seed), so
//! output digests are byte-identical cache-on vs cache-off — only the
//! `(L, r, C)` and page-IO ledgers shrink. Eviction order is a pure
//! function of the admission/touch sequence: least-recently-used tick
//! first, ties broken by smallest key, so replays never diverge.
//!
//! Constructing a [`PlanCache`] outside `parqp-serve` is a layering
//! violation (lint rule PQ110), the same way fabricating a
//! `LoadReport` outside `parqp-mpc` is (PQ104): cache hits excuse
//! queries from communication charges, so only the serving layer —
//! whose differential tests prove the excusal sound — may grant them.

use std::collections::BTreeMap;

use parqp_data::Relation;

/// Canonical identity of a cacheable partitioned base: the template,
/// the data-key group, and the share count `p` it was partitioned for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// Index into [`crate::templates::TEMPLATES`].
    pub template: usize,
    /// Data-key group.
    pub group: u64,
    /// Number of hash shares (the cluster's `p`): the same base
    /// partitioned for a different cluster width is a different plan.
    pub shares: usize,
}

/// What building one entry cost — the charges a future hit skips.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildCost {
    /// Logical page reads charged by the base scan.
    pub reads: u64,
    /// Words the partition exchange moved.
    pub words: u64,
    /// Tuples the partition exchange moved (also the resident size).
    pub tuples: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    parts: Vec<Relation>,
    cost: BuildCost,
    last_used: u64,
}

/// The exact cache ledger, mirroring the store's [`IoStats`] shape:
/// every admission decision is counted, nothing is sampled.
///
/// [`IoStats`]: parqp_data::paged::IoStats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a resident entry.
    pub hits: u64,
    /// Lookups that found nothing (each followed by a build).
    pub misses: u64,
    /// Entries admitted.
    pub insertions: u64,
    /// Entries evicted to respect the budget.
    pub evictions: u64,
    /// Builds too large to ever fit the budget, served uncached.
    pub rejected: u64,
    /// Tuples resident right now.
    pub resident_tuples: u64,
    /// High-water mark of `resident_tuples`.
    pub peak_resident_tuples: u64,
    /// Logical page reads hits avoided (sum of hit entries' build reads).
    pub reads_saved: u64,
    /// Exchange words hits avoided.
    pub words_saved: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`; 0 when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// A budgeted store of hash-partitioned base relations shared across
/// queries and tenants. Budget 0 disables the cache entirely (every
/// lookup misses without being counted — the "off" differential arm).
#[derive(Debug, Default)]
pub struct PlanCache {
    entries: BTreeMap<CacheKey, Entry>,
    budget_tuples: u64,
    stats: CacheStats,
}

impl PlanCache {
    /// A cache holding at most `budget_tuples` resident tuples; 0
    /// disables caching.
    pub fn new(budget_tuples: u64) -> Self {
        Self {
            budget_tuples,
            ..Self::default()
        }
    }

    /// Whether caching is on at all.
    pub fn enabled(&self) -> bool {
        self.budget_tuples > 0
    }

    /// Look `key` up at `tick`. A hit refreshes the entry's LRU tick
    /// and banks its skipped build charges; a miss is counted and the
    /// caller is expected to build + [`PlanCache::insert`]. Always a
    /// miss (uncounted) when the cache is disabled.
    pub fn lookup(&mut self, key: &CacheKey, tick: u64) -> bool {
        if !self.enabled() {
            return false;
        }
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.stats.hits += 1;
                self.stats.reads_saved += entry.cost.reads;
                self.stats.words_saved += entry.cost.words;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// The resident partitions for `key`, if any (no ledger effect —
    /// bookkeeping happened at [`PlanCache::lookup`] time).
    pub fn get(&self, key: &CacheKey) -> Option<&[Relation]> {
        self.entries.get(key).map(|e| e.parts.as_slice())
    }

    /// Admit a freshly built entry, evicting LRU entries (ties: the
    /// smallest key) until it fits the budget. Returns the partitions
    /// back to the caller when the build alone exceeds the budget (the
    /// entry is rejected, not admitted); returns an empty `Vec` on
    /// admission, after which [`PlanCache::get`] owns the parts.
    ///
    /// Disabled caches reject everything without counting.
    pub fn insert(
        &mut self,
        key: CacheKey,
        parts: Vec<Relation>,
        cost: BuildCost,
        tick: u64,
    ) -> Vec<Relation> {
        if !self.enabled() {
            return parts;
        }
        if cost.tuples > self.budget_tuples {
            self.stats.rejected += 1;
            return parts;
        }
        while self.stats.resident_tuples + cost.tuples > self.budget_tuples {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(k, e)| (e.last_used, **k))
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            let evicted = self.entries.remove(&victim).map_or(0, |e| e.cost.tuples);
            self.stats.resident_tuples -= evicted;
            self.stats.evictions += 1;
        }
        self.stats.resident_tuples += cost.tuples;
        self.stats.peak_resident_tuples = self
            .stats
            .peak_resident_tuples
            .max(self.stats.resident_tuples);
        self.stats.insertions += 1;
        self.entries.insert(
            key,
            Entry {
                parts,
                cost,
                last_used: tick,
            },
        );
        Vec::new()
    }

    /// The exact ledger so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(template: usize, group: u64) -> CacheKey {
        CacheKey {
            template,
            group,
            shares: 8,
        }
    }

    fn parts(tuples: u64) -> (Vec<Relation>, BuildCost) {
        let mut rel = Relation::new(2);
        for i in 0..tuples {
            rel.push(&[i, i]);
        }
        (
            vec![rel],
            BuildCost {
                reads: tuples,
                words: 2 * tuples,
                tuples,
            },
        )
    }

    #[test]
    fn hit_miss_ledger_is_exact() {
        let mut c = PlanCache::new(100);
        assert!(!c.lookup(&key(0, 1), 0));
        let (p, cost) = parts(10);
        assert!(c.insert(key(0, 1), p, cost, 0).is_empty());
        assert!(c.lookup(&key(0, 1), 1));
        assert!(!c.lookup(&key(0, 2), 1));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 2, 1));
        assert_eq!(s.reads_saved, 10);
        assert_eq!(s.words_saved, 20);
        assert_eq!(s.resident_tuples, 10);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_is_deterministic_by_tick_then_key() {
        let mut c = PlanCache::new(30);
        for (i, tick) in [(0usize, 5u64), (1, 3), (2, 3)] {
            let (p, cost) = parts(10);
            c.insert(key(i, 1), p, cost, tick);
        }
        // Admitting 10 more evicts the LRU tie (tick 3) with the
        // smallest key: template 1.
        let (p, cost) = parts(10);
        c.insert(key(3, 1), p, cost, 6);
        assert!(c.get(&key(1, 1)).is_none(), "LRU tie-break must evict 1");
        assert!(c.get(&key(0, 1)).is_some() && c.get(&key(2, 1)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().resident_tuples, 30);
        assert_eq!(c.stats().peak_resident_tuples, 30);
    }

    #[test]
    fn touch_refreshes_lru_order() {
        let mut c = PlanCache::new(20);
        let (p, cost) = parts(10);
        c.insert(key(0, 1), p, cost, 0);
        let (p, cost) = parts(10);
        c.insert(key(1, 1), p, cost, 1);
        assert!(c.lookup(&key(0, 1), 2)); // 0 is now the newest
        let (p, cost) = parts(10);
        c.insert(key(2, 1), p, cost, 3);
        assert!(c.get(&key(1, 1)).is_none(), "untouched entry must go");
        assert!(c.get(&key(0, 1)).is_some());
    }

    #[test]
    fn oversized_builds_are_rejected_not_admitted() {
        let mut c = PlanCache::new(5);
        let (p, cost) = parts(10);
        let returned = c.insert(key(0, 1), p, cost, 0);
        assert_eq!(returned.len(), 1, "rejected build returns to caller");
        assert_eq!(c.stats().rejected, 1);
        assert_eq!(c.stats().insertions, 0);
        assert!(c.is_empty());
    }

    #[test]
    fn disabled_cache_is_inert() {
        let mut c = PlanCache::new(0);
        assert!(!c.enabled());
        assert!(!c.lookup(&key(0, 1), 0));
        let (p, cost) = parts(10);
        assert_eq!(c.insert(key(0, 1), p, cost, 0).len(), 1);
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.len(), 0);
    }
}
