//! The simulated MPC cluster: `p` servers, rounds, and exchanges.
//!
//! An algorithm on the cluster is structured as:
//!
//! ```
//! use parqp_mpc::Cluster;
//!
//! let mut cluster = Cluster::new(4);
//! // Input starts distributed (the model assumes O(IN/p) per server).
//! let local: Vec<Vec<u64>> = cluster.scatter((0..100u64).collect());
//!
//! // One round: every server computes locally, then sends messages.
//! let mut ex = cluster.exchange::<u64>();
//! for (server, items) in local.iter().enumerate() {
//!     for &v in items {
//!         ex.send((v % 4) as usize, v); // e.g. hash partition
//!     }
//!     let _ = server;
//! }
//! let inboxes = ex.finish();
//!
//! let report = cluster.report();
//! assert_eq!(report.num_rounds(), 1);
//! assert_eq!(report.total_tuples(), 100);
//! assert_eq!(inboxes.iter().map(Vec::len).sum::<usize>(), 100);
//! ```
//!
//! The cluster does not own server state; algorithms keep it in ordinary
//! `Vec`s indexed by server rank. What the cluster owns is the *ledger*:
//! every message sent through an [`Exchange`] is charged to its destination
//! server for the current round, producing the `(L, r, C)` cost summary
//! that the paper's theorems are about.

use crate::error::MpcError;
use crate::grid::Grid;
use crate::stats::{LoadReport, RoundStats};
use crate::weight::Weight;
use parqp_trace::{self as trace, TraceEvent};

/// A simulated MPC cluster of `p` shared-nothing servers.
#[derive(Debug)]
pub struct Cluster {
    p: usize,
    rounds: Vec<RoundStats>,
}

impl Cluster {
    /// Create a cluster of `p` servers.
    ///
    /// # Panics
    /// Panics if `p == 0`; use [`Cluster::try_new`] to handle that case.
    pub fn new(p: usize) -> Self {
        match Self::try_new(p) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Cluster::new`]: errors on an empty cluster instead of
    /// panicking, for callers sizing clusters from untrusted input.
    #[must_use = "the cluster (or the sizing error) must be inspected"]
    pub fn try_new(p: usize) -> Result<Self, MpcError> {
        if p == 0 {
            return Err(MpcError::EmptyTopology { what: "cluster" });
        }
        Ok(Self {
            p,
            rounds: Vec::new(),
        })
    }

    /// Number of servers `p`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Start a communication round. Messages are sent through the returned
    /// [`Exchange`]; calling [`Exchange::finish`] delivers them and records
    /// the round's statistics.
    pub fn exchange<T: Weight>(&mut self) -> Exchange<'_, T> {
        Exchange {
            inboxes: (0..self.p).map(|_| Vec::new()).collect(),
            tuples: vec![0; self.p],
            words: vec![0; self.p],
            trace: trace::is_enabled().then(|| Box::new(ExchangeTrace::new(self.p))),
            cluster: self,
        }
    }

    /// Distribute input items round-robin across servers *without* counting
    /// a communication round: the MPC model assumes the input starts evenly
    /// distributed (`O(IN/p)` per server, slide 6).
    pub fn scatter<T>(&self, items: Vec<T>) -> Vec<Vec<T>> {
        let mut out: Vec<Vec<T>> = (0..self.p).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            out[i % self.p].push(item);
        }
        out
    }

    /// Record a round in which server `s` received `tuples[s]` tuples and
    /// `words[s]` words, without routing actual messages. Used by
    /// algorithms that account for communication analytically (e.g. when a
    /// phase's messages are a deterministic permutation).
    ///
    /// # Panics
    /// Panics if either vector's length differs from `p`; use
    /// [`Cluster::try_record_round`] to handle that case.
    pub fn record_round(&mut self, tuples: Vec<u64>, words: Vec<u64>) {
        if let Err(e) = self.try_record_round(tuples, words) {
            panic!("{e}");
        }
    }

    /// Fallible [`Cluster::record_round`].
    #[must_use = "an Err means the round was NOT recorded"]
    pub fn try_record_round(&mut self, tuples: Vec<u64>, words: Vec<u64>) -> Result<(), MpcError> {
        for len in [tuples.len(), words.len()] {
            if len != self.p {
                return Err(MpcError::BadArity {
                    got: len,
                    expected: self.p,
                });
            }
        }
        if trace::is_enabled() {
            emit_round_events(self.rounds.len(), self.p, &tuples, &words, None, None);
        }
        self.rounds.push(RoundStats { tuples, words });
        Ok(())
    }

    /// The `(L, r, C)` summary of all rounds recorded so far.
    pub fn report(&self) -> LoadReport {
        LoadReport {
            servers: self.p,
            rounds: self.rounds.clone(),
        }
    }

    /// Number of rounds recorded so far.
    pub fn rounds_so_far(&self) -> usize {
        self.rounds.len()
    }

    /// Forget all recorded rounds (e.g. between benchmark iterations).
    pub fn reset(&mut self) {
        self.rounds.clear();
    }
}

/// Per-exchange trace state, allocated only while a sink is installed
/// (see [`parqp_trace::install`]): send-side attribution and the grid
/// the round routed over. Boxed so the untraced hot path pays one
/// `Option` discriminant, not three vectors.
#[derive(Debug)]
struct ExchangeTrace {
    /// Server whose sends are currently being attributed, set by
    /// [`Exchange::set_sender`]; `None` = unattributed.
    sender: Option<usize>,
    sent_msgs: Vec<u64>,
    sent_words: Vec<u64>,
    dims: Option<Vec<usize>>,
}

impl ExchangeTrace {
    fn new(p: usize) -> Self {
        Self {
            sender: None,
            sent_msgs: vec![0; p],
            sent_words: vec![0; p],
            dims: None,
        }
    }
}

/// Emit one round's trace block: `RoundBegin`, optional `Topology`,
/// per-server `Send`s (attributed fan-out) and `Recv`s (nonzero loads
/// only — `RoundBegin.servers` reconstructs the zeros), `RoundEnd`
/// with the round totals. This free function is the single place
/// communication events are born; everything downstream of it only
/// *reads* the stream (lint rule PQ105).
fn emit_round_events(
    round: usize,
    servers: usize,
    tuples: &[u64],
    words: &[u64],
    sent: Option<(&[u64], &[u64])>,
    dims: Option<&[usize]>,
) {
    trace::emit(TraceEvent::RoundBegin { round, servers });
    if let Some(dims) = dims {
        trace::emit(TraceEvent::Topology {
            round,
            dims: dims.to_vec(),
        });
    }
    if let Some((msgs, sent_words)) = sent {
        for (server, (&m, &w)) in msgs.iter().zip(sent_words).enumerate() {
            if m > 0 {
                trace::emit(TraceEvent::Send {
                    round,
                    server,
                    msgs: m,
                    words: w,
                });
            }
        }
    }
    let mut total_tuples = 0;
    let mut total_words = 0;
    for (server, (&t, &w)) in tuples.iter().zip(words).enumerate() {
        total_tuples += t;
        total_words += w;
        if t > 0 || w > 0 {
            trace::emit(TraceEvent::Recv {
                round,
                server,
                tuples: t,
                words: w,
            });
        }
    }
    trace::emit(TraceEvent::RoundEnd {
        round,
        tuples: total_tuples,
        words: total_words,
    });
}

/// An in-progress communication round on a [`Cluster`].
///
/// Created by [`Cluster::exchange`]; every `send` charges the destination
/// server. Dropping an `Exchange` without calling [`Exchange::finish`]
/// discards the round (no statistics are recorded).
#[derive(Debug)]
pub struct Exchange<'c, T: Weight> {
    cluster: &'c mut Cluster,
    inboxes: Vec<Vec<T>>,
    tuples: Vec<u64>,
    words: Vec<u64>,
    /// `Some` iff a trace sink was installed when the exchange began.
    trace: Option<Box<ExchangeTrace>>,
}

impl<T: Weight> Exchange<'_, T> {
    /// Number of servers in the underlying cluster.
    pub fn p(&self) -> usize {
        self.cluster.p
    }

    /// Send `msg` to server `dest`.
    ///
    /// # Panics
    /// Panics if `dest` is not a valid server rank; use
    /// [`Exchange::try_send`] to handle that case.
    #[inline]
    pub fn send(&mut self, dest: usize, msg: T) {
        if let Err(e) = self.try_send(dest, msg) {
            panic!("{e}");
        }
    }

    /// Fallible [`Exchange::send`]: errors on an out-of-range destination
    /// instead of panicking. This is the simulator's hottest path — the
    /// single bounds probe below is the only check, and the two charged
    /// counters are in-bounds by construction (all three vectors share
    /// length `p`). The trace branch costs one predictable-`None` test
    /// when no sink is installed.
    #[inline]
    #[must_use = "an Err means the message was NOT sent or charged"]
    pub fn try_send(&mut self, dest: usize, msg: T) -> Result<(), MpcError> {
        let Some(inbox) = self.inboxes.get_mut(dest) else {
            return Err(MpcError::BadServer {
                dest,
                p: self.cluster.p,
            });
        };
        let w = msg.words();
        self.tuples[dest] += 1;
        self.words[dest] += w;
        inbox.push(msg);
        if let Some(tr) = &mut self.trace {
            if let Some(s) = tr.sender {
                tr.sent_msgs[s] += 1;
                tr.sent_words[s] += w;
            }
        }
        Ok(())
    }

    /// Declare that subsequent sends originate from server `sender`, for
    /// the trace's per-server fan-out attribution. Purely observational:
    /// the ledger charges destinations regardless, and the call is a
    /// no-op when no trace sink is installed. Out-of-range senders are
    /// recorded as unattributed.
    #[inline]
    pub fn set_sender(&mut self, sender: usize) {
        if let Some(tr) = &mut self.trace {
            tr.sender = (sender < tr.sent_msgs.len()).then_some(sender);
        }
    }

    /// Send `msg` to every server (a broadcast costs `p` messages).
    pub fn broadcast(&mut self, msg: T)
    where
        T: Clone,
    {
        for dest in 0..self.inboxes.len() {
            self.send(dest, msg.clone());
        }
    }

    /// Send `msg` to every server of `grid` whose coordinates match
    /// `partial` (`None` = `*`): the HyperCube placement primitive.
    ///
    /// `grid.len()` must equal the cluster size.
    pub fn send_matching(&mut self, grid: &Grid, partial: &[Option<usize>], msg: T)
    where
        T: Clone,
    {
        debug_assert_eq!(grid.len(), self.cluster.p, "grid does not span the cluster");
        if let Some(tr) = &mut self.trace {
            if tr.dims.is_none() {
                tr.dims = Some(grid.dims().to_vec());
            }
        }
        for dest in grid.matching(partial) {
            self.send(dest, msg.clone());
        }
    }

    /// Deliver all messages, record the round, and return per-server
    /// inboxes. When a trace sink is installed this also emits the
    /// round's event block ([`TraceEvent::RoundBegin`] … `RoundEnd`),
    /// mirroring exactly what the ledger records — dropped and
    /// [`finish_untracked`](Exchange::finish_untracked) exchanges emit
    /// nothing, so trace totals always agree with the [`LoadReport`].
    pub fn finish(self) -> Vec<Vec<T>> {
        if let Some(tr) = &self.trace {
            emit_round_events(
                self.cluster.rounds.len(),
                self.cluster.p,
                &self.tuples,
                &self.words,
                Some((&tr.sent_msgs, &tr.sent_words)),
                tr.dims.as_deref(),
            );
        }
        self.cluster.rounds.push(RoundStats {
            tuples: self.tuples,
            words: self.words,
        });
        self.inboxes
    }

    /// Deliver all messages **without** recording a round. Used for
    /// communication the model does not charge (e.g. re-delivering data a
    /// server already holds when two logical phases are fused into one
    /// physical round).
    pub fn finish_untracked(self) -> Vec<Vec<T>> {
        self.inboxes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_accounts_per_destination() {
        let mut c = Cluster::new(3);
        let mut ex = c.exchange::<Vec<u64>>();
        ex.send(0, vec![1, 2]);
        ex.send(0, vec![3]);
        ex.send(2, vec![4, 5, 6]);
        let inboxes = ex.finish();
        assert_eq!(inboxes[0], vec![vec![1, 2], vec![3]]);
        assert!(inboxes[1].is_empty());
        assert_eq!(inboxes[2], vec![vec![4, 5, 6]]);

        let r = c.report();
        assert_eq!(r.num_rounds(), 1);
        assert_eq!(r.rounds[0].tuples, vec![2, 0, 1]);
        assert_eq!(r.rounds[0].words, vec![3, 0, 3]);
        assert_eq!(r.max_load_tuples(), 2);
        assert_eq!(r.max_load_words(), 3);
    }

    #[test]
    fn broadcast_charges_every_server() {
        let mut c = Cluster::new(4);
        let mut ex = c.exchange::<u64>();
        ex.broadcast(9);
        let inboxes = ex.finish();
        assert!(inboxes.iter().all(|b| b == &vec![9]));
        assert_eq!(c.report().total_tuples(), 4);
    }

    #[test]
    fn scatter_is_even_and_free() {
        let c = Cluster::new(4);
        let parts = c.scatter((0..10u64).collect());
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        assert_eq!(c.report().num_rounds(), 0);
    }

    #[test]
    fn dropped_exchange_records_nothing() {
        let mut c = Cluster::new(2);
        {
            let mut ex = c.exchange::<u64>();
            ex.send(0, 1);
            // dropped without finish()
        }
        assert_eq!(c.report().num_rounds(), 0);
    }

    #[test]
    fn untracked_finish_records_nothing() {
        let mut c = Cluster::new(2);
        let mut ex = c.exchange::<u64>();
        ex.send(1, 5);
        let inboxes = ex.finish_untracked();
        assert_eq!(inboxes[1], vec![5]);
        assert_eq!(c.report().num_rounds(), 0);
    }

    #[test]
    fn send_matching_uses_grid() {
        let mut c = Cluster::new(6);
        let g = Grid::new(vec![2, 3]);
        let mut ex = c.exchange::<u64>();
        ex.send_matching(&g, &[Some(1), None], 7);
        let inboxes = ex.finish();
        let received: Vec<usize> = (0..6).filter(|&s| !inboxes[s].is_empty()).collect();
        assert_eq!(received, g.matching(&[Some(1), None]));
        assert_eq!(c.report().total_tuples(), 3);
    }

    #[test]
    fn rounds_accumulate() {
        let mut c = Cluster::new(2);
        for _ in 0..3 {
            let mut ex = c.exchange::<u64>();
            ex.send(0, 1);
            ex.finish();
        }
        assert_eq!(c.report().num_rounds(), 3);
        c.reset();
        assert_eq!(c.report().num_rounds(), 0);
    }

    #[test]
    fn record_round_manual() {
        let mut c = Cluster::new(2);
        c.record_round(vec![3, 4], vec![6, 8]);
        let r = c.report();
        assert_eq!(r.max_load_tuples(), 4);
        assert_eq!(r.max_load_words(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        Cluster::new(0);
    }

    #[test]
    fn traced_exchange_emits_round_block() {
        use parqp_trace::{Recorder, TraceEvent};
        let (rec, report) = Recorder::capture(|| {
            let mut c = Cluster::new(3);
            let mut ex = c.exchange::<Vec<u64>>();
            ex.set_sender(1);
            ex.send(0, vec![1, 2]);
            ex.send(2, vec![3]);
            ex.finish();
            c.report()
        });
        let events: Vec<&TraceEvent> = rec.events().collect();
        assert_eq!(
            events[0],
            &TraceEvent::RoundBegin {
                round: 0,
                servers: 3
            }
        );
        assert_eq!(
            events[1],
            &TraceEvent::Send {
                round: 0,
                server: 1,
                msgs: 2,
                words: 3
            }
        );
        // Zero-load server 1 is elided from the Recv events.
        assert_eq!(
            events[2],
            &TraceEvent::Recv {
                round: 0,
                server: 0,
                tuples: 1,
                words: 2
            }
        );
        assert_eq!(
            events[3],
            &TraceEvent::Recv {
                round: 0,
                server: 2,
                tuples: 1,
                words: 1
            }
        );
        assert_eq!(
            events[4],
            &TraceEvent::RoundEnd {
                round: 0,
                tuples: 2,
                words: 3
            }
        );
        assert_eq!(events.len(), 5);
        assert_eq!(report.total_tuples(), 2);
    }

    #[test]
    fn traced_send_matching_carries_topology() {
        use parqp_trace::{Recorder, TraceEvent};
        let (rec, ()) = Recorder::capture(|| {
            let mut c = Cluster::new(6);
            let g = Grid::new(vec![2, 3]);
            let mut ex = c.exchange::<u64>();
            ex.send_matching(&g, &[Some(1), None], 7);
            ex.finish();
        });
        assert!(rec.events().any(|e| matches!(
            e,
            TraceEvent::Topology { round: 0, dims } if dims == &vec![2, 3]
        )));
    }

    #[test]
    fn untracked_and_dropped_exchanges_emit_nothing() {
        use parqp_trace::Recorder;
        let (rec, ()) = Recorder::capture(|| {
            let mut c = Cluster::new(2);
            let mut ex = c.exchange::<u64>();
            ex.send(0, 1);
            ex.finish_untracked();
            let mut ex = c.exchange::<u64>();
            ex.send(1, 2);
            drop(ex);
        });
        assert!(rec.is_empty(), "trace must mirror the ledger exactly");
    }

    #[test]
    fn traced_record_round_emits_block() {
        use parqp_trace::{Recorder, TraceEvent};
        let (rec, ()) = Recorder::capture(|| {
            let mut c = Cluster::new(2);
            c.record_round(vec![3, 0], vec![6, 0]);
        });
        let events: Vec<&TraceEvent> = rec.events().collect();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[1],
            &TraceEvent::Recv {
                round: 0,
                server: 0,
                tuples: 3,
                words: 6
            }
        );
    }

    #[test]
    fn untraced_run_allocates_no_trace_state() {
        let mut c = Cluster::new(2);
        let ex = c.exchange::<u64>();
        assert!(ex.trace.is_none());
    }

    #[test]
    fn try_variants_return_typed_errors() {
        assert!(Cluster::try_new(0).is_err());
        assert_eq!(Cluster::try_new(3).map(|c| c.p()), Ok(3));

        let mut c = Cluster::new(2);
        let mut ex = c.exchange::<u64>();
        assert_eq!(
            ex.try_send(5, 1),
            Err(crate::error::MpcError::BadServer { dest: 5, p: 2 })
        );
        assert_eq!(ex.try_send(1, 7), Ok(()));
        let inboxes = ex.finish();
        assert_eq!(inboxes[1], vec![7]);
        // The failed send must not have been charged to the ledger.
        assert_eq!(c.report().total_tuples(), 1);

        assert!(c.try_record_round(vec![1], vec![1, 2]).is_err());
        assert_eq!(c.report().num_rounds(), 1);
    }
}
