//! The thread-local observation runtime: install a recorder, let the
//! serving driver feed it, collect the series back.
//!
//! Mirrors `parqp_trace::recorder`, `parqp_faults::runtime` and
//! `parqp_metrics::runtime`: the simulator is single-threaded by design
//! (PQ004), so a thread-local slot is the whole "global" state.
//! [`install`] puts a fresh [`SeriesRecorder`] in the slot and returns
//! an [`ObsGuard`] that restores the previous recorder on drop
//! (panic-safe). `parqp-serve` is the only caller of [`emit`] (lint
//! rule PQ111 — the serving twin of PQ107's metrics-emission monopoly);
//! everything else uses [`capture`] and reads the returned series.

use std::cell::RefCell;
use std::rc::Rc;

use crate::series::{ObsConfig, QueryObs, SeriesRecorder, SeriesReport};

thread_local! {
    static ACTIVE: RefCell<Option<Rc<RefCell<SeriesRecorder>>>> = const { RefCell::new(None) };
}

/// Restores the previously installed recorder when dropped.
#[must_use = "dropping the guard immediately uninstalls the recorder"]
pub struct ObsGuard {
    previous: Option<Rc<RefCell<SeriesRecorder>>>,
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        ACTIVE.with(|slot| {
            *slot.borrow_mut() = self.previous.take();
        });
    }
}

/// Install `recorder` as this thread's observation sink until the
/// returned guard drops. Nesting is allowed; the innermost install wins
/// and the outer recorder resumes when the inner guard drops.
pub fn install(recorder: SeriesRecorder) -> ObsGuard {
    install_shared(recorder).0
}

fn install_shared(recorder: SeriesRecorder) -> (ObsGuard, Rc<RefCell<SeriesRecorder>>) {
    let shared = Rc::new(RefCell::new(recorder));
    let previous = ACTIVE.with(|slot| slot.borrow_mut().replace(shared.clone()));
    (ObsGuard { previous }, shared)
}

/// Whether a recorder is currently installed. The serving driver checks
/// this to skip building observations entirely on the unobserved path.
pub fn is_enabled() -> bool {
    ACTIVE.with(|slot| slot.borrow().is_some())
}

/// Forward one served-query observation to the installed recorder, if
/// any. Serving-driver-only (lint rule PQ111); a no-op when nothing is
/// installed.
pub fn emit(q: &QueryObs) {
    ACTIVE.with(|slot| {
        if let Some(rec) = slot.borrow().as_ref() {
            rec.borrow_mut().record(q);
        }
    });
}

/// Run `f` with a fresh recorder installed and return the finished
/// series alongside `f`'s result. The previous recorder (if any) is
/// restored afterwards, even if `f` panics.
pub fn capture<R>(config: ObsConfig, f: impl FnOnce() -> R) -> (SeriesReport, R) {
    let (guard, shared) = install_shared(SeriesRecorder::new(config));
    let result = {
        let _guard = guard;
        f()
    };
    let recorder = Rc::try_unwrap(shared)
        .expect("capture's recorder must not be retained past the closure")
        .into_inner();
    (recorder.finish(), result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ObsConfig {
        ObsConfig {
            window_ticks: 2,
            ticks: 4,
            servers: 1,
        }
    }

    fn q(tick: u64) -> QueryObs {
        QueryObs {
            serial: 0,
            tick,
            tenant: 0,
            lookup: false,
            hit: false,
            l: 3,
            predicted_l: 1,
            rounds: 2,
            tuples: 3,
            words: 6,
            out_rows: 0,
            io_reads: 0,
            io_misses: 0,
            io_evictions: 0,
            per_server_tuples: vec![3],
        }
    }

    #[test]
    fn disabled_runtime_is_inert() {
        assert!(!is_enabled());
        emit(&q(0)); // must not panic
    }

    #[test]
    fn capture_collects_observations() {
        let (series, out) = capture(cfg(), || {
            assert!(is_enabled());
            emit(&q(0));
            emit(&q(3));
            7
        });
        assert!(!is_enabled());
        assert_eq!(out, 7);
        assert_eq!(series.served(), 2);
        assert_eq!(series.windows[0].served, 1);
        assert_eq!(series.windows[1].served, 1);
    }

    #[test]
    fn nested_capture_restores_outer_recorder() {
        let (outer, ()) = capture(cfg(), || {
            emit(&q(0));
            let (inner, ()) = capture(cfg(), || {
                emit(&q(0));
                emit(&q(1));
            });
            assert_eq!(inner.served(), 2);
            emit(&q(1));
        });
        assert_eq!(outer.served(), 2, "inner observations must not leak out");
    }

    #[test]
    fn guard_restores_on_panic() {
        let caught = std::panic::catch_unwind(|| {
            let _ = capture(cfg(), || panic!("boom"));
        });
        assert!(caught.is_err());
        assert!(!is_enabled(), "panic must not leave a recorder installed");
    }
}
