//! The multi-round square-block algorithm (slides 111–121).
//!
//! Partition `A`, `B`, `C` into `H × H` blocks of side `n/H`. The `H³`
//! block products are arranged into `H` groups
//! `G_z = { A_{i,j} × B_{j,k} : j = (i+k+z) mod H }` (slide 112); every
//! group contains exactly one product for each `C_{i,k}` block
//! (slide 113). Block product `g` (in group-major order) runs on
//! processor `g mod p` during round `g / p`, so:
//!
//! * `p = H²` reproduces slide 115–118's example — processor `i·H+k`
//!   accumulates `C_{i,k}` across all `H` rounds and no aggregation
//!   round is needed;
//! * `p = 2H²` reproduces slides 119–121 — two groups per round, two
//!   partial sums, one final aggregation round (`r = H/2 + 1`);
//! * general `p` gives `r = ⌈H³/p⌉` multiplication rounds, plus one
//!   aggregation round when partial sums end up on several processors.
//!
//! Per round a processor receives `2(n/H)²` elements (`L`), and total
//! communication is `Θ(n³/√L)` — the multi-round lower bound (slide 126).

use crate::dense::Matrix;
use crate::MatMulRun;
use parqp_mpc::{metrics, trace, Cluster, Weight};

/// An `nb × nb` block on the wire (row-major), with its block coordinates.
#[derive(Debug, Clone)]
struct BlockMsg {
    /// 0 = A block, 1 = B block, 2 = partial C block.
    kind: u8,
    bi: usize,
    bj: usize,
    vals: Vec<f64>,
}

impl Weight for BlockMsg {
    fn words(&self) -> u64 {
        self.vals.len() as u64
    }
}

/// Multiply with the square-block algorithm using `h × h` blocking on `p`
/// processors.
///
/// # Panics
/// Panics if `h` does not divide `n`, or `h == 0`, or `p == 0`.
pub fn square_block(a: &Matrix, b: &Matrix, h: usize, p: usize) -> MatMulRun {
    let n = a.n();
    assert_eq!(n, b.n(), "dimension mismatch");
    assert!(h >= 1 && n.is_multiple_of(h), "h must divide n");
    assert!(p >= 1, "need at least one processor");
    let nb = n / h;
    let mut cluster = Cluster::new(p);

    // Paged views of A and B: when a store runtime is installed, every
    // block fetch charges the destination processor one logical read
    // per block row against the page span the row occupies.
    let a_region = parqp_data::paged::IoRegion::new((n * n) as u64);
    let b_region = parqp_data::paged::IoRegion::new((n * n) as u64);
    let block_of = |m: &Matrix,
                    region: &parqp_data::paged::IoRegion,
                    proc: usize,
                    bi: usize,
                    bj: usize|
     -> Vec<f64> {
        let mut out = Vec::with_capacity(nb * nb);
        for r in 0..nb {
            region.read_at(proc, ((bi * nb + r) * n + bj * nb) as u64, nb as u64);
            out.extend_from_slice(&m.row(bi * nb + r)[bj * nb..(bj + 1) * nb]);
        }
        out
    };

    // Product g (group-major: g = z·H² + i·H + k) runs on processor
    // g mod p in round g / p.
    let total = h * h * h;
    let rounds = total.div_ceil(p);
    if metrics::is_enabled() {
        // Slides 115–121: every multiplication round delivers one A and
        // one B block (2(n/H)² words) per processor. When partial sums
        // of one C block land on several processors (the z·H² offsets
        // are not all ≡ 0 mod p), one aggregation round with fan-in
        // `distinct − 1` blocks follows.
        let distinct = (0..h)
            .map(|z| (z * h * h) % p)
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        let block_words = (nb * nb) as f64;
        metrics::announce(&metrics::PaperBound::words(
            "matmul_square",
            block_words * 2.0f64.max((distinct - 1) as f64),
            rounds + usize::from(distinct > 1),
        ));
    }
    // partial[proc] maps (i,k) → accumulated nb×nb partial sum.
    let mut partial: Vec<parqp_data::FastMap<(usize, usize), Vec<f64>>> =
        vec![parqp_data::FastMap::default(); p];

    let multiply_span = trace::span("matmul_square/multiply");
    for round in 0..rounds {
        let mut ex = cluster.exchange::<BlockMsg>();
        let lo = round * p;
        let hi = (lo + p).min(total);
        for g in lo..hi {
            let proc = g % p;
            let z = g / (h * h);
            let i = (g / h) % h;
            let k = g % h;
            let j = (i + k + z) % h;
            ex.send(
                proc,
                BlockMsg {
                    kind: 0,
                    bi: i,
                    bj: j,
                    vals: block_of(a, &a_region, proc, i, j),
                },
            );
            ex.send(
                proc,
                BlockMsg {
                    kind: 1,
                    bi: j,
                    bj: k,
                    vals: block_of(b, &b_region, proc, j, k),
                },
            );
        }
        let inboxes = ex.finish();
        // Each processor's accumulator moves into its job and back out,
        // so the round's block multiplies can run on the pool while the
        // per-(proc, block) accumulation order stays fixed.
        let work: Vec<_> = std::mem::take(&mut partial)
            .into_iter()
            .zip(inboxes)
            .collect();
        partial = cluster.map(work, |_, (mut acc_map, inbox)| {
            // Pair up A and B blocks: the schedule sends at most one
            // product per processor per round... except when p < H²:
            // then g mod p repeats within a round? No — g ranges over
            // [lo, lo+p), so each processor gets exactly one product.
            let mut ablock: Option<BlockMsg> = None;
            let mut bblock: Option<BlockMsg> = None;
            for m in inbox {
                if m.kind == 0 {
                    ablock = Some(m);
                } else {
                    bblock = Some(m);
                }
            }
            let (Some(am), Some(bm)) = (ablock, bblock) else {
                return acc_map;
            };
            let acc = acc_map
                .entry((am.bi, bm.bj))
                .or_insert_with(|| vec![0.0; nb * nb]);
            // Conventional block multiply: acc += A_blk · B_blk.
            for r in 0..nb {
                for kk in 0..nb {
                    let av = am.vals[r * nb + kk];
                    if av == 0.0 {
                        continue;
                    }
                    for c in 0..nb {
                        acc[r * nb + c] += av * bm.vals[kk * nb + c];
                    }
                }
            }
            acc_map
        });
    }
    drop(multiply_span);

    // Aggregation: if several processors hold partials of the same C
    // block, one more round routes them to the block's owner (slide 121).
    let owner = |i: usize, k: usize| (i * h + k) % p;
    let needs_aggregation = partial
        .iter()
        .enumerate()
        .any(|(proc, m)| m.keys().any(|&(i, k)| owner(i, k) != proc));
    let mut c = Matrix::zeros(n);
    if needs_aggregation {
        let _span = trace::span("matmul_square/aggregate");
        let mut ex = cluster.exchange::<BlockMsg>();
        for (proc, blocks) in partial.iter().enumerate() {
            ex.set_sender(proc);
            for (&(i, k), vals) in blocks {
                let dest = owner(i, k);
                if dest != proc {
                    ex.send(
                        dest,
                        BlockMsg {
                            kind: 2,
                            bi: i,
                            bj: k,
                            vals: vals.clone(),
                        },
                    );
                }
            }
        }
        let inboxes = ex.finish();
        for (proc, inbox) in inboxes.into_iter().enumerate() {
            for m in inbox {
                let acc = partial[proc]
                    .entry((m.bi, m.bj))
                    .or_insert_with(|| vec![0.0; nb * nb]);
                for (av, mv) in acc.iter_mut().zip(&m.vals) {
                    *av += mv;
                }
            }
        }
        // Only owners' accumulators are final now.
        for (proc, blocks) in partial.iter().enumerate() {
            for (&(i, k), vals) in blocks {
                if owner(i, k) == proc {
                    write_block(&mut c, i, k, nb, vals);
                }
            }
        }
    } else {
        for blocks in &partial {
            for (&(i, k), vals) in blocks {
                write_block(&mut c, i, k, nb, vals);
            }
        }
    }
    MatMulRun {
        c,
        report: cluster.report(),
    }
}

fn write_block(c: &mut Matrix, bi: usize, bk: usize, nb: usize, vals: &[f64]) {
    for r in 0..nb {
        for col in 0..nb {
            c.set(bi * nb + r, bk * nb + col, vals[r * nb + col]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_product_various_shapes() {
        let a = Matrix::random(12, 1);
        let b = Matrix::random(12, 2);
        let expect = a.multiply(&b);
        for (h, p) in [(2, 4), (3, 9), (4, 16), (4, 8), (4, 32), (6, 5), (2, 1)] {
            let run = square_block(&a, &b, h, p);
            assert!(
                run.c.max_abs_diff(&expect) < 1e-9,
                "h={h} p={p} wrong product"
            );
        }
    }

    #[test]
    fn p_equals_h2_no_aggregation_h_rounds() {
        // Slides 115–118: p = H² ⇒ r = H, every processor owns one C
        // block throughout.
        let h = 4;
        let n = 16;
        let a = Matrix::random(n, 3);
        let b = Matrix::random(n, 4);
        let run = square_block(&a, &b, h, h * h);
        assert_eq!(run.report.num_rounds(), h);
        // L = 2 blocks of (n/H)² elements per round.
        assert_eq!(run.report.max_load_words(), 2 * ((n / h) as u64).pow(2));
    }

    #[test]
    fn p_two_h2_halves_rounds_plus_aggregation() {
        // Slides 119–121: p = 2H² ⇒ H/2 multiplication rounds + 1
        // aggregation round.
        let h = 4;
        let n = 16;
        let a = Matrix::random(n, 5);
        let b = Matrix::random(n, 6);
        let run = square_block(&a, &b, h, 2 * h * h);
        assert_eq!(run.report.num_rounds(), h / 2 + 1);
    }

    #[test]
    fn small_p_more_rounds() {
        let h = 4;
        let n = 8;
        let a = Matrix::random(n, 7);
        let b = Matrix::random(n, 8);
        let run = square_block(&a, &b, h, 8);
        // ⌈H³/p⌉ = ⌈64/8⌉ = 8 multiplication rounds (+ aggregation).
        assert!(run.report.num_rounds() == 8 || run.report.num_rounds() == 9);
        assert!(run.c.max_abs_diff(&a.multiply(&b)) < 1e-9);
    }

    #[test]
    fn total_communication_scales_with_h() {
        // C_mult = 2·H³·(n/H)² = 2n²·H: doubling H doubles communication
        // (smaller L ⇒ more C — the slide 126 trade-off).
        let n = 24;
        let a = Matrix::random(n, 9);
        let b = Matrix::random(n, 10);
        let c2 = square_block(&a, &b, 2, 4).report.total_words();
        let c4 = square_block(&a, &b, 4, 16).report.total_words();
        let c8 = square_block(&a, &b, 8, 64).report.total_words();
        assert_eq!(c2, 2 * (n as u64).pow(2) * 2);
        assert_eq!(c4, 2 * (n as u64).pow(2) * 4);
        assert_eq!(c8, 2 * (n as u64).pow(2) * 8);
    }
}
