//! # parqp-obs — deterministic time-series telemetry for the serving layer
//!
//! The trace, metrics and fault layers each answer a *per-run* question:
//! what happened, how much did it cost, did recovery preserve outputs.
//! This crate answers the *temporal* one — how a long replayed stream
//! behaves over its tick clock: cache warm-up transients, skew episodes
//! when a Zipf-hot group lands, recovery spikes under a fault plan.
//!
//! ## Model
//!
//! * **Windows on the tick clock** — a [`series::SeriesRecorder`] folds
//!   one [`series::QueryObs`] per served query (its exact
//!   `Cluster::report_since` ledger delta, cache outcome, and page-IO
//!   delta) into fixed-width [`series::WindowStats`] windows. Every
//!   counter tiles: window sums reconcile exactly with the whole-run
//!   ledgers (`tests/obs_invariants.rs`).
//! * **Sketched percentiles** — per-window p50/p99 load comes from a
//!   [`sketch::LogHistogram`], a log₂-bucketed histogram with the same
//!   bucket convention as `MetricsRegistry`'s recv histogram. The
//!   nearest-rank sample always falls in the bucket the sketch reports,
//!   so the sketch percentile is within one log₂ bucket of the exact
//!   one — at O(64) state per series instead of O(queries).
//! * **SLO burn rates** — [`slo::SloRules`] are declarative thresholds
//!   (p99 load budget, hit-rate floor, bound-ratio ceiling,
//!   recovery-overhead cap) evaluated per window; a rule *alerts* only
//!   on multi-window burn (a consecutive-window fast burn or a
//!   whole-run slow-burn fraction), so one cold-start window cannot
//!   fail a gate. [`slo::SloReport::gate`] is the CI entry point.
//! * **Exporters** — JSONL series, byte-stable Prometheus
//!   text-exposition (golden-tested), and the `parqp dash` ASCII
//!   dashboard (per-window sparklines plus a servers×windows heatmap),
//!   all pure functions of the series.
//!
//! Like its sibling runtimes, the recorder is a thread-local
//! install/capture slot ([`runtime`]): when nothing is installed,
//! emission is a no-op and the serving loop pays nothing. Only
//! `parqp-serve` (and this crate) may emit or install recorders — lint
//! rule PQ111, the serving twin of PQ107's metrics-emission monopoly.

pub mod export;
pub mod runtime;
pub mod series;
pub mod sketch;
pub mod slo;

pub use runtime::{capture, emit, install, is_enabled, ObsGuard};
pub use series::{ObsConfig, QueryObs, SeriesRecorder, SeriesReport, WindowStats};
pub use sketch::LogHistogram;
pub use slo::{AlertKind, RuleOutcome, SloAlert, SloReport, SloRules};
