//! Query hypergraphs.
//!
//! A conjunctive query `Q = S₁(x̄₁) ⋈ … ⋈ S_l(x̄_l)` is viewed as a
//! hypergraph whose vertices are the variables and whose hyperedges are
//! the atoms (slide 39). All of the LP quantities (τ\*, ρ\*, shares) are
//! defined on this structure.

/// A hypergraph with vertices `0..vertices` and hyperedges given as
/// sorted, deduplicated vertex lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    vertices: usize,
    edges: Vec<Vec<usize>>,
}

impl Hypergraph {
    /// Build a hypergraph; edges are sorted and deduplicated internally.
    ///
    /// # Panics
    /// Panics if an edge is empty or mentions a vertex `≥ vertices`.
    pub fn new(vertices: usize, edges: Vec<Vec<usize>>) -> Self {
        let mut norm = Vec::with_capacity(edges.len());
        for mut e in edges {
            assert!(!e.is_empty(), "hyperedges must be non-empty");
            e.sort_unstable();
            e.dedup();
            assert!(
                *e.last().expect("non-empty") < vertices,
                "edge vertex out of range"
            );
            norm.push(e);
        }
        Self {
            vertices,
            edges: norm,
        }
    }

    /// Number of vertices (query variables).
    pub fn num_vertices(&self) -> usize {
        self.vertices
    }

    /// Number of hyperedges (query atoms).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The hyperedges.
    pub fn edges(&self) -> &[Vec<usize>] {
        &self.edges
    }

    /// The `j`-th hyperedge.
    pub fn edge(&self, j: usize) -> &[usize] {
        &self.edges[j]
    }

    /// Whether edge `j` contains vertex `v`.
    pub fn edge_contains(&self, j: usize, v: usize) -> bool {
        self.edges[j].binary_search(&v).is_ok()
    }

    /// The indices of the edges containing vertex `v`.
    pub fn edges_of_vertex(&self, v: usize) -> Vec<usize> {
        (0..self.edges.len())
            .filter(|&j| self.edge_contains(j, v))
            .collect()
    }

    /// Whether every vertex appears in at least one edge (required for an
    /// edge cover to exist).
    pub fn all_vertices_covered(&self) -> bool {
        (0..self.vertices).all(|v| self.edges.iter().any(|e| e.binary_search(&v).is_ok()))
    }

    // --- Named query shapes used throughout the paper ---

    /// The triangle query `R(x,y) ⋈ S(y,z) ⋈ T(z,x)` (slide 34):
    /// vertices `x=0, y=1, z=2`.
    pub fn triangle() -> Self {
        Self::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]])
    }

    /// The length-`n` chain (path) query
    /// `R₁(A₀,A₁) ⋈ R₂(A₁,A₂) ⋈ … ⋈ R_n(A_{n-1},A_n)` (slides 62, 79).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn chain(n: usize) -> Self {
        assert!(n > 0, "chain needs at least one atom");
        Self::new(n + 1, (0..n).map(|i| vec![i, i + 1]).collect())
    }

    /// The `n`-cycle query `R₁(x₁,x₂) ⋈ … ⋈ R_n(x_n,x₁)`.
    ///
    /// # Panics
    /// Panics if `n < 3`.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "cycles need at least three atoms");
        Self::new(n, (0..n).map(|i| vec![i, (i + 1) % n]).collect())
    }

    /// The star query `R₁(A₀,A₁) ⋈ R₂(A₀,A₂) ⋈ … ⋈ R_n(A₀,A_n)` with a
    /// shared center variable `A₀` (slide 79).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn star(n: usize) -> Self {
        assert!(n > 0, "star needs at least one atom");
        Self::new(n + 1, (1..=n).map(|i| vec![0, i]).collect())
    }

    /// The "easy-hard" query `R(x) ⋈ S(x,y) ⋈ T(y)` of slides 53–58:
    /// vertices `x=0, y=1`.
    pub fn semijoin_pair() -> Self {
        Self::new(2, vec![vec![0], vec![0, 1], vec![1]])
    }

    /// The two-way join `R(x,y) ⋈ S(y,z)` (slide 41): vertices
    /// `x=0, y=1, z=2`.
    pub fn two_way() -> Self {
        Self::new(3, vec![vec![0, 1], vec![1, 2]])
    }

    /// The matrix-multiplication join `A(i,j) ⋈ B(j,k)` grouped by `(i,k)`
    /// has the same hypergraph as [`Hypergraph::two_way`]; provided under
    /// its own name for readability at call sites (slides 108, 123).
    pub fn matmul() -> Self {
        Self::two_way()
    }

    /// A ladder query in the spirit of slide 61's "example difficult
    /// query": two ternary rails `R₁ = {x₁,x₂,x₃}` and `R₂ = {y₁,y₂,y₃}`
    /// connected by binary rungs `Sᵢ = {xᵢ,yᵢ}`. Queries mixing high-arity
    /// rails with binary rungs are exactly the shape for which one-round
    /// skew-resilient processing is open.
    ///
    /// For this encoding τ\* = 3 (pack the three rungs) and ρ\* = 2
    /// (cover with the two rails).
    ///
    /// Vertices: `x₁=0, x₂=1, x₃=2, y₁=3, y₂=4, y₃=5`.
    pub fn ladder() -> Self {
        Self::new(
            6,
            vec![
                vec![0, 1, 2],
                vec![3, 4, 5],
                vec![0, 3],
                vec![1, 4],
                vec![2, 5],
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_shape() {
        let h = Hypergraph::triangle();
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 3);
        assert!(h.edge_contains(0, 0) && h.edge_contains(0, 1));
        assert_eq!(h.edges_of_vertex(0), vec![0, 2]);
        assert!(h.all_vertices_covered());
    }

    #[test]
    fn chain_shape() {
        let h = Hypergraph::chain(3);
        assert_eq!(h.num_vertices(), 4);
        assert_eq!(h.edges(), &[vec![0, 1], vec![1, 2], vec![2, 3]]);
    }

    #[test]
    fn cycle_wraps() {
        let h = Hypergraph::cycle(4);
        assert_eq!(h.edge(3), &[0, 3]);
    }

    #[test]
    fn star_center() {
        let h = Hypergraph::star(4);
        assert_eq!(h.num_vertices(), 5);
        assert!(h.edges().iter().all(|e| e.contains(&0)));
    }

    #[test]
    fn semijoin_pair_shape() {
        let h = Hypergraph::semijoin_pair();
        assert_eq!(h.edges(), &[vec![0], vec![0, 1], vec![1]]);
    }

    #[test]
    fn ladder_shape() {
        let h = Hypergraph::ladder();
        assert_eq!(h.num_edges(), 5);
        assert!(h.all_vertices_covered());
    }

    #[test]
    fn edges_normalized() {
        let h = Hypergraph::new(3, vec![vec![2, 0, 2]]);
        assert_eq!(h.edge(0), &[0, 2]);
    }

    #[test]
    fn uncovered_vertex_detected() {
        let h = Hypergraph::new(3, vec![vec![0, 1]]);
        assert!(!h.all_vertices_covered());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_vertex_rejected() {
        Hypergraph::new(2, vec![vec![0, 2]]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_edge_rejected() {
        Hypergraph::new(2, vec![vec![]]);
    }
}
