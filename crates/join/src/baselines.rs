//! Deliberately naive strategies from the slide 13–18 cost-regime table.
//!
//! | strategy | load `L` | rounds `r` |
//! |---|---|---|
//! | Naïve 1: ship everything to one server | `IN` | 1 |
//! | Naïve 2: ring rotation (fragment-and-replicate) | `IN/p` | `p` |
//! | Ideal (hash join, no skew) | `IN/p` | 1 |
//!
//! These exist to regenerate E01 and as sanity baselines: every real
//! algorithm in this crate must beat at least one of them on every input.

use crate::common::{joined_arity, local_hash_join, scatter, JoinRun, Tagged};
use parqp_data::{Relation, Value};
use parqp_mpc::Cluster;

const TAG_R: u32 = 0;
const TAG_S: u32 = 1;

/// Naïve 1 (slide 13): send both relations, in full, to server 0 and join
/// there. One round; load `IN`.
pub fn naive_one_server(
    r: &Relation,
    r_col: usize,
    s: &Relation,
    s_col: usize,
    p: usize,
) -> JoinRun {
    let mut cluster = Cluster::new(p);
    let r_parts = scatter(r, p);
    let s_parts = scatter(s, p);
    let mut ex = cluster.exchange::<Tagged>();
    for part in &r_parts {
        for row in part.iter() {
            ex.send(0, Tagged::new(TAG_R, row.to_vec()));
        }
    }
    for part in &s_parts {
        for row in part.iter() {
            ex.send(0, Tagged::new(TAG_S, row.to_vec()));
        }
    }
    let mut inboxes = ex.finish();

    let mut outputs: Vec<Relation> = (0..p)
        .map(|_| Relation::new(joined_arity(r.arity(), s.arity())))
        .collect();
    let inbox = std::mem::take(&mut inboxes[0]);
    let (r_rows, s_rows): (Vec<_>, Vec<_>) = inbox.into_iter().partition(|t| t.tag == TAG_R);
    let r_rows: Vec<Vec<Value>> = r_rows.into_iter().map(|t| t.row).collect();
    let s_rows: Vec<Vec<Value>> = s_rows.into_iter().map(|t| t.row).collect();
    local_hash_join(&r_rows, r_col, &s_rows, s_col, &mut outputs[0]);
    JoinRun {
        outputs,
        report: cluster.report(),
    }
}

/// Naïve 2 (slide 13): block-nested-loops by rotation. `R` stays
/// partitioned; `S`'s fragments rotate around a ring of servers, one hop
/// per round. `p` rounds; load `≈ IN/p` per round — same total
/// communication as shipping everything, spread over `p` rounds.
pub fn naive_ring(r: &Relation, r_col: usize, s: &Relation, s_col: usize, p: usize) -> JoinRun {
    let mut cluster = Cluster::new(p);
    let r_parts = scatter(r, p);
    let mut s_parts: Vec<Vec<Vec<Value>>> = scatter(s, p)
        .into_iter()
        .map(Relation::into_messages)
        .collect();
    let r_rows: Vec<Vec<Vec<Value>>> = r_parts
        .iter()
        .map(|part| part.iter().map(<[Value]>::to_vec).collect())
        .collect();

    let mut outputs: Vec<Relation> = (0..p)
        .map(|_| Relation::new(joined_arity(r.arity(), s.arity())))
        .collect();

    // Round 0 joins the co-resident fragments for free; then p−1 hops.
    for (sid, out) in outputs.iter_mut().enumerate() {
        local_hash_join(&r_rows[sid], r_col, &s_parts[sid], s_col, out);
    }
    for _hop in 1..p {
        let mut ex = cluster.exchange::<Vec<Value>>();
        for (sid, rows) in s_parts.iter().enumerate() {
            let dest = (sid + 1) % p;
            for row in rows {
                ex.send(dest, row.clone());
            }
        }
        s_parts = ex.finish();
        for (sid, out) in outputs.iter_mut().enumerate() {
            local_hash_join(&r_rows[sid], r_col, &s_parts[sid], s_col, out);
        }
    }
    JoinRun {
        outputs,
        report: cluster.report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::twoway_oracle;
    use parqp_data::generate;

    #[test]
    fn one_server_correct_and_costly() {
        let r = generate::uniform(2, 300, 40, 1);
        let s = generate::uniform(2, 300, 40, 2);
        let run = naive_one_server(&r, 1, &s, 0, 8);
        let expect = twoway_oracle(&r, 1, &s, 0);
        assert_eq!(run.gathered().canonical(), expect.canonical());
        assert_eq!(run.report.num_rounds(), 1);
        assert_eq!(run.report.max_load_tuples(), 600, "L = IN");
    }

    #[test]
    fn ring_correct_with_p_rounds() {
        let r = generate::uniform(2, 400, 50, 3);
        let s = generate::uniform(2, 400, 50, 4);
        let p = 8;
        let run = naive_ring(&r, 1, &s, 0, p);
        let expect = twoway_oracle(&r, 1, &s, 0);
        assert_eq!(run.gathered().canonical(), expect.canonical());
        assert_eq!(run.report.num_rounds(), p - 1);
        // Each hop moves one S fragment of ~|S|/p tuples to each server.
        let per_round = run.report.max_load_tuples();
        assert!(
            per_round <= (400 / p + 1) as u64,
            "L per round = {per_round}"
        );
    }

    #[test]
    fn ring_single_server() {
        let r = generate::uniform(2, 50, 10, 5);
        let s = generate::uniform(2, 50, 10, 6);
        let run = naive_ring(&r, 1, &s, 0, 1);
        let expect = twoway_oracle(&r, 1, &s, 0);
        assert_eq!(run.gathered().canonical(), expect.canonical());
        assert_eq!(run.report.num_rounds(), 0);
    }

    #[test]
    fn ring_skew_insensitive() {
        // The ring strategy is oblivious to skew: loads depend only on
        // fragment sizes, never on key distribution.
        let r = generate::constant_key_pairs(400, 7, 1);
        let s = generate::constant_key_pairs(400, 7, 0);
        let run = naive_ring(&r, 1, &s, 0, 8);
        assert_eq!(run.output_size(), 400 * 400);
        assert!(run.report.max_load_tuples() <= 51);
    }
}
