//! Fixture: fault-layering-clean code — installs plans, never drives
//! the runtime; injection and charging stay inside parqp-mpc.

use parqp_faults::{capture, FaultPlan, FaultSpec, RecoveryStrategy};

pub fn seeded(seed: u64, p: usize) -> FaultPlan {
    FaultPlan::random(seed, p, 8, &FaultSpec::default())
}

pub fn run_under(plan: FaultPlan) -> u64 {
    let (log, out) = capture(plan, RecoveryStrategy::default(), || 7u64);
    let _ = log.fired();
    out
}
