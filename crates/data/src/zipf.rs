//! A seeded Zipf(α) sampler over `1..=n`.
//!
//! Skewed join keys are the central difficulty the tutorial addresses
//! (slides 24–31, 46–51). We generate them with the classical Zipf
//! distribution: value `k` has probability `k^{-α} / H_{n,α}`. The sampler
//! precomputes the CDF once and draws by binary search, so sampling is
//! `O(log n)` and fully deterministic given the RNG.

use parqp_testkit::Rng;

/// Zipf(α) distribution over the integers `1..=n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a Zipf distribution with support `1..=n` and exponent `alpha`.
    ///
    /// `alpha == 0` degenerates to the uniform distribution on `1..=n`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha` is negative or non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the end.
        *cdf.last_mut().expect("non-empty cdf") = 1.0;
        Self { cdf }
    }

    /// Support size `n`.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one sample in `1..=n`.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.gen_f64();
        // partition_point returns the first index whose cdf >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as u64
    }

    /// The probability of value `k` (1-based).
    pub fn pmf(&self, k: u64) -> f64 {
        let i = (k - 1) as usize;
        assert!(i < self.cdf.len(), "value out of support");
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 1..=4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.2);
        let total: f64 = (1..=100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn heavier_head_with_larger_alpha() {
        let mild = Zipf::new(1000, 0.5);
        let steep = Zipf::new(1000, 1.5);
        assert!(steep.pmf(1) > mild.pmf(1));
        assert!(steep.pmf(1000) < mild.pmf(1000));
    }

    #[test]
    fn samples_in_support_and_skewed() {
        let z = Zipf::new(50, 1.0);
        let mut rng = Rng::seed_from_u64(7);
        let mut counts = vec![0u64; 51];
        for _ in 0..20_000 {
            let s = z.sample(&mut rng);
            assert!((1..=50).contains(&s));
            counts[s as usize] += 1;
        }
        // Value 1 should be drawn far more often than value 50.
        assert!(counts[1] > 10 * counts[50].max(1));
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(10, 1.0);
        let draw = |seed| {
            let mut rng = Rng::seed_from_u64(seed);
            (0..20).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_support_rejected() {
        Zipf::new(0, 1.0);
    }
}
