//! Round-level observability: trace a HyperCube triangle join on
//! p = 64 servers and render the per-server load heatmap.
//!
//! The trace recorder sits behind `Cluster::exchange`, so every event
//! mirrors the simulator's `(L, r, C)` ledger exactly — the hottest
//! heatmap cell *is* the reported load `L`. The same data drives
//! `parqp trace` (summary / heatmap / JSONL / Chrome formats); load the
//! Chrome export in Perfetto or `chrome://tracing` to see the span
//! labels (`hypercube/shuffle`, `hypercube/evaluate`) on a timeline.
//!
//! ```text
//! cargo run --release --example trace_triangle
//! ```

use parqp::join::multiway;
use parqp::prelude::*;
use parqp::trace::{analyze, Recorder};

fn main() {
    let p = 64;
    let query = Query::triangle();
    let edges = parqp::data::generate::random_symmetric_graph(2000, 20_000, 7);
    let rels = vec![edges.clone(), edges.clone(), edges];

    let (recorder, run) = Recorder::capture(|| multiway::hypercube(&query, &rels, p, 42));

    println!(
        "triangle join on p = {p}: {} outputs, L = {} tuples in {} round(s)\n",
        run.output_size(),
        run.report.max_load_tuples(),
        run.report.num_rounds(),
    );

    let loads = analyze::round_loads(&recorder);
    println!("{}", analyze::summary_table(&loads));
    println!("{}", analyze::heatmap(&loads, 16));

    let hist = analyze::histogram(&loads[0]);
    println!("round 0 load distribution (tuples → servers):");
    for b in hist.iter().filter(|b| b.count > 0) {
        println!("  [{:>6}, {:>6}]  {:>3} server(s)", b.lo, b.hi, b.count);
    }
}
