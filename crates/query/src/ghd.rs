//! Generalized hypertree decompositions (GHDs) and the GYO join-tree test.
//!
//! A GHD of a query is a rooted forest of **bags**; each bag has a set of
//! variables and a cover `λ` of atoms whose variables contain the bag's
//! (slide 64). It must satisfy:
//!
//! 1. every atom's variables are contained in some bag (*coverage*);
//! 2. for every variable, the bags containing it form a connected subtree
//!    (*running intersection*);
//! 3. each bag's variables are contained in the union of its `λ` atoms.
//!
//! The **width** is the maximum `|λ|`; acyclic queries are exactly those
//! with width-1 GHDs (*join trees*), found by GYO ear removal. The
//! **depth** controls the number of rounds of distributed Yannakakis
//! (slide 79), and slide 95 trades width against depth on chain queries —
//! reproduced here by [`Ghd::chain_blocks`] and [`Ghd::chain_balanced`].

use crate::query::{Query, Var};

/// One bag of a GHD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bag {
    /// The bag's variables (sorted).
    pub vars: Vec<Var>,
    /// Indices of the atoms in the bag's cover `λ`.
    pub atoms: Vec<usize>,
}

/// A rooted forest of bags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ghd {
    /// The bags.
    pub bags: Vec<Bag>,
    /// Parent of each bag (`None` for roots).
    pub parent: Vec<Option<usize>>,
}

impl Ghd {
    /// Width: the maximum number of cover atoms in any bag.
    pub fn width(&self) -> usize {
        self.bags.iter().map(|b| b.atoms.len()).max().unwrap_or(0)
    }

    /// Depth: the maximum root-to-node distance (a single bag has depth 0).
    pub fn depth(&self) -> usize {
        let mut depth = vec![usize::MAX; self.bags.len()];
        let order = self.topological_order();
        let mut max = 0;
        for &b in &order {
            depth[b] = match self.parent[b] {
                None => 0,
                Some(p) => depth[p] + 1,
            };
            max = max.max(depth[b]);
        }
        max
    }

    /// Bags in an order where every parent precedes its children.
    ///
    /// # Panics
    /// Panics if the parent pointers contain a cycle.
    pub fn topological_order(&self) -> Vec<usize> {
        let n = self.bags.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut order = Vec::with_capacity(n);
        for (b, &p) in self.parent.iter().enumerate() {
            match p {
                Some(p) => children[p].push(b),
                None => order.push(b),
            }
        }
        let mut i = 0;
        while i < order.len() {
            let b = order[i];
            order.extend_from_slice(&children[b]);
            i += 1;
        }
        assert_eq!(order.len(), n, "parent pointers contain a cycle");
        order
    }

    /// Children lists derived from the parent pointers.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.bags.len()];
        for (b, &p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                children[p].push(b);
            }
        }
        children
    }

    /// Check the three GHD conditions against `q`.
    pub fn validate(&self, q: &Query) -> Result<(), String> {
        let n = self.bags.len();
        if n == 0 {
            return Err("GHD has no bags".into());
        }
        for (b, &p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                if p >= n {
                    return Err(format!("bag {b} has out-of-range parent {p}"));
                }
            }
        }
        // Acyclicity of the parent forest (panics become errors).
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.topological_order()))
            .is_err()
        {
            return Err("parent pointers contain a cycle".into());
        }
        // λ soundness: bag vars within the union of cover-atom vars.
        for (i, bag) in self.bags.iter().enumerate() {
            if bag.atoms.is_empty() {
                return Err(format!("bag {i} has an empty cover"));
            }
            for &a in &bag.atoms {
                if a >= q.num_atoms() {
                    return Err(format!("bag {i} covers unknown atom {a}"));
                }
            }
            for &v in &bag.vars {
                if !bag.atoms.iter().any(|&a| q.atoms()[a].vars.contains(&v)) {
                    return Err(format!("bag {i} variable x{v} not covered by its λ"));
                }
            }
        }
        // Coverage: every atom inside some bag.
        for (a, atom) in q.atoms().iter().enumerate() {
            let covered = self
                .bags
                .iter()
                .any(|b| atom.vars.iter().all(|v| b.vars.contains(v)));
            if !covered {
                return Err(format!("atom {a} ({}) not covered by any bag", atom.name));
            }
        }
        // Running intersection: bags holding v must form one connected
        // subtree — i.e. exactly one of them has a parent outside the set.
        for v in 0..q.num_vars() {
            let holders: Vec<usize> = (0..n).filter(|&b| self.bags[b].vars.contains(&v)).collect();
            if holders.is_empty() {
                continue;
            }
            let tops = holders
                .iter()
                .filter(|&&b| match self.parent[b] {
                    None => true,
                    Some(p) => !self.bags[p].vars.contains(&v),
                })
                .count();
            if tops != 1 {
                return Err(format!(
                    "running intersection violated for x{v}: {tops} connected components"
                ));
            }
        }
        Ok(())
    }

    /// GYO ear removal: build a width-1 join tree (one bag per atom) if
    /// `q` is acyclic, `None` otherwise (slide 64).
    ///
    /// An atom is an *ear* when all its variables shared with other alive
    /// atoms are contained in a single alive *witness* atom; the witness
    /// becomes its parent. Disconnected components yield a forest.
    pub fn join_tree(q: &Query) -> Option<Ghd> {
        let n = q.num_atoms();
        let mut alive = vec![true; n];
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut remaining = n;
        while remaining > 1 {
            let mut progressed = false;
            'search: for a in 0..n {
                if !alive[a] {
                    continue;
                }
                let shared: Vec<Var> = q.atoms()[a]
                    .vars
                    .iter()
                    .copied()
                    .filter(|v| (0..n).any(|o| o != a && alive[o] && q.atoms()[o].vars.contains(v)))
                    .collect();
                if shared.is_empty() {
                    // Isolated component: becomes a root.
                    alive[a] = false;
                    remaining -= 1;
                    progressed = true;
                    break 'search;
                }
                for w in 0..n {
                    if w != a && alive[w] && shared.iter().all(|v| q.atoms()[w].vars.contains(v)) {
                        parent[a] = Some(w);
                        alive[a] = false;
                        remaining -= 1;
                        progressed = true;
                        break 'search;
                    }
                }
            }
            if !progressed {
                return None; // cyclic
            }
        }
        let bags = (0..n)
            .map(|a| {
                let mut vars = q.atoms()[a].vars.clone();
                vars.sort_unstable();
                Bag {
                    vars,
                    atoms: vec![a],
                }
            })
            .collect();
        Some(Ghd { bags, parent })
    }

    /// Width-1 join tree of the star query with the flat shape of slide
    /// 79: atom 0 is the root; every other atom is its child (depth 1).
    pub fn star_flat(q: &Query) -> Ghd {
        let n = q.num_atoms();
        assert!(n >= 1);
        let bags = (0..n)
            .map(|a| {
                let mut vars = q.atoms()[a].vars.clone();
                vars.sort_unstable();
                Bag {
                    vars,
                    atoms: vec![a],
                }
            })
            .collect();
        let parent = (0..n)
            .map(|a| if a == 0 { None } else { Some(0) })
            .collect();
        Ghd { bags, parent }
    }

    /// GHD of the chain-`n` query with bags of `w` consecutive atoms,
    /// arranged in a path: width `w`, depth `⌈n/w⌉ − 1` (slide 95's
    /// `w=1, d=n` and `w=n/2, d=1` endpoints).
    ///
    /// # Panics
    /// Panics if `w == 0` or `w > n`.
    pub fn chain_blocks(n: usize, w: usize) -> Ghd {
        assert!(w >= 1 && w <= n, "block width must be in 1..=n");
        let nblocks = n.div_ceil(w);
        let mut bags = Vec::with_capacity(nblocks);
        let mut parent = Vec::with_capacity(nblocks);
        for b in 0..nblocks {
            let lo = b * w;
            let hi = ((b + 1) * w).min(n);
            // Atoms lo..hi cover variables A_lo ..= A_hi.
            let vars: Vec<Var> = (lo..=hi).collect();
            let atoms: Vec<usize> = (lo..hi).collect();
            bags.push(Bag { vars, atoms });
            parent.push(if b == 0 { None } else { Some(b - 1) });
        }
        Ghd { bags, parent }
    }

    /// Balanced GHD of the chain-`n` query: width ≤ 3, depth `O(log n)`
    /// (slide 95's `w=3, d=log n` point). Each internal bag covers the
    /// two endpoint atoms and the middle atom of its range.
    pub fn chain_balanced(n: usize) -> Ghd {
        assert!(n >= 1);
        let mut bags = Vec::new();
        let mut parent = Vec::new();
        build_balanced(0, n, None, &mut bags, &mut parent);
        Ghd { bags, parent }
    }
}

/// Recursive helper for [`Ghd::chain_balanced`]: decompose atoms
/// `lo..hi` (chain atom `t` has vars `{A_t, A_{t+1}}`).
fn build_balanced(
    lo: usize,
    hi: usize,
    parent_idx: Option<usize>,
    bags: &mut Vec<Bag>,
    parent: &mut Vec<Option<usize>>,
) {
    debug_assert!(lo < hi);
    if hi - lo <= 2 {
        let vars: Vec<Var> = (lo..=hi).collect();
        let atoms: Vec<usize> = (lo..hi).collect();
        bags.push(Bag { vars, atoms });
        parent.push(parent_idx);
        return;
    }
    let mid = usize::midpoint(lo, hi);
    // Cover atoms: the first, the one starting at mid, and the last.
    let cover = [lo, mid, hi - 1];
    let mut vars: Vec<Var> = cover.iter().flat_map(|&a| [a, a + 1]).collect();
    vars.sort_unstable();
    vars.dedup();
    let idx = bags.len();
    bags.push(Bag {
        vars,
        atoms: cover.to_vec(),
    });
    parent.push(parent_idx);
    build_balanced(lo, mid, Some(idx), bags, parent);
    build_balanced(mid, hi, Some(idx), bags, parent);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gyo_accepts_acyclic() {
        for q in [
            Query::two_way(),
            Query::chain(6),
            Query::star(5),
            Query::slide64_tree(),
            Query::semijoin_pair(),
            Query::product(),
        ] {
            let tree = Ghd::join_tree(&q).unwrap_or_else(|| panic!("{q} should be acyclic"));
            tree.validate(&q).expect("join tree must validate");
            assert_eq!(tree.width(), 1);
        }
    }

    #[test]
    fn gyo_rejects_cyclic() {
        assert!(Ghd::join_tree(&Query::triangle()).is_none());
        assert!(Ghd::join_tree(&Query::cycle(4)).is_none());
        assert!(Ghd::join_tree(&Query::cycle(6)).is_none());
    }

    #[test]
    fn product_yields_forest() {
        let q = Query::product();
        let tree = Ghd::join_tree(&q).expect("product is (trivially) acyclic");
        let roots = tree.parent.iter().filter(|p| p.is_none()).count();
        assert_eq!(roots, 2);
    }

    #[test]
    fn star_flat_depth_one() {
        let q = Query::star(6);
        let g = Ghd::star_flat(&q);
        g.validate(&q).expect("flat star validates");
        assert_eq!(g.depth(), 1);
        assert_eq!(g.width(), 1);
    }

    #[test]
    fn chain_blocks_width_depth_tradeoff() {
        let n = 12;
        let q = Query::chain(n);
        for w in [1, 2, 3, 4, 6, 12] {
            let g = Ghd::chain_blocks(n, w);
            g.validate(&q).unwrap_or_else(|e| panic!("w={w}: {e}"));
            assert_eq!(g.width(), w);
            assert_eq!(g.depth(), n.div_ceil(w) - 1);
        }
    }

    #[test]
    fn chain_balanced_log_depth() {
        for n in [1usize, 2, 3, 5, 8, 16, 33, 64, 100] {
            let q = Query::chain(n);
            let g = Ghd::chain_balanced(n);
            g.validate(&q).unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert!(g.width() <= 3);
            let bound = 2 * (n as f64).log2().ceil() as usize + 2;
            assert!(g.depth() <= bound, "n={n}: depth {} > {bound}", g.depth());
        }
    }

    #[test]
    fn depth_of_path_tree_linear() {
        let q = Query::chain(7);
        let tree = Ghd::join_tree(&q).expect("acyclic");
        // One bag per atom in a path: depth n-1 regardless of orientation.
        assert_eq!(tree.depth(), 6);
    }

    #[test]
    fn validate_catches_missing_coverage() {
        let q = Query::two_way();
        let g = Ghd {
            bags: vec![Bag {
                vars: vec![0, 1],
                atoms: vec![0],
            }],
            parent: vec![None],
        };
        assert!(g.validate(&q).unwrap_err().contains("not covered"));
    }

    #[test]
    fn validate_catches_running_intersection() {
        let q = Query::chain(2); // R1(A0,A1), R2(A1,A2)
        let g = Ghd {
            bags: vec![
                Bag {
                    vars: vec![0, 1],
                    atoms: vec![0],
                },
                Bag {
                    vars: vec![0],
                    atoms: vec![0],
                }, // middle bag without A1
                Bag {
                    vars: vec![1, 2],
                    atoms: vec![1],
                },
            ],
            parent: vec![None, Some(0), Some(1)],
        };
        assert!(g.validate(&q).unwrap_err().contains("running intersection"));
    }

    #[test]
    fn validate_catches_lambda_unsoundness() {
        let q = Query::two_way();
        let g = Ghd {
            bags: vec![
                Bag {
                    vars: vec![0, 1, 2],
                    atoms: vec![0],
                }, // x2 not in atom 0
                Bag {
                    vars: vec![1, 2],
                    atoms: vec![1],
                },
            ],
            parent: vec![None, Some(0)],
        };
        assert!(g.validate(&q).unwrap_err().contains("not covered by its λ"));
    }

    #[test]
    fn validate_catches_parent_cycle() {
        let q = Query::two_way();
        let g = Ghd {
            bags: vec![
                Bag {
                    vars: vec![0, 1],
                    atoms: vec![0],
                },
                Bag {
                    vars: vec![1, 2],
                    atoms: vec![1],
                },
            ],
            parent: vec![Some(1), Some(0)],
        };
        assert!(g.validate(&q).unwrap_err().contains("cycle"));
    }

    #[test]
    fn topological_order_parents_first() {
        let g = Ghd::chain_blocks(6, 2);
        let order = g.topological_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; order.len()];
            for (i, &b) in order.iter().enumerate() {
                p[b] = i;
            }
            p
        };
        for (b, &par) in g.parent.iter().enumerate() {
            if let Some(par) = par {
                assert!(pos[par] < pos[b]);
            }
        }
    }
}
