//! Cross-algorithm consistency: independent implementations of the same
//! semantics must agree — joins with joins, matmul with matmul, and the
//! LP layer with the measured behaviour of the algorithms it predicts.

use parqp::data::generate;
use parqp::join::{gym, multiway, plans, skewhc};
use parqp::matmul::{rect_block, sql_matmul, square_block, Matrix};
use parqp::model;
use parqp::prelude::*;
use parqp_data::Relation;

#[test]
fn four_engines_one_answer_chain() {
    let q = Query::chain(3);
    let rels: Vec<Relation> = (0..3)
        .map(|i| generate::uniform(2, 300, 60, 40 + i as u64))
        .collect();
    let tree = Ghd::join_tree(&q).expect("acyclic");
    let a = multiway::hypercube(&q, &rels, 16, 5).gathered().canonical();
    let b = skewhc::skewhc(&q, &rels, 16, 5).gathered().canonical();
    let c = plans::binary_join_plan(&q, &rels, 16, 5, None)
        .gathered()
        .canonical();
    let d = gym::gym(&q, &rels, &tree, 16, 5, true)
        .gathered()
        .canonical();
    assert_eq!(a, b);
    assert_eq!(a, c);
    assert_eq!(a, d);
}

#[test]
fn gym_ghd_widths_agree_with_hypercube() {
    let n = 6;
    let q = Query::chain(n);
    // Small: the balanced GHD materializes a Cartesian product (IN^w).
    let rels: Vec<Relation> = (0..n)
        .map(|i| generate::uniform(2, 60, 25, 50 + i as u64))
        .collect();
    let reference = multiway::hypercube(&q, &rels, 8, 7).gathered().canonical();
    for ghd in [
        Ghd::chain_blocks(n, 2),
        Ghd::chain_blocks(n, 3),
        Ghd::chain_balanced(n),
    ] {
        let run = gym::gym_ghd(&q, &rels, &ghd, 8, 7);
        assert_eq!(
            run.gathered().canonical(),
            reference,
            "width {}",
            ghd.width()
        );
    }
}

#[test]
fn matmul_three_engines_agree() {
    let a = Matrix::random_int(24, 6, 1);
    let b = Matrix::random_int(24, 6, 2);
    let oracle = a.multiply(&b);
    assert!(sql_matmul(&a, &b, 8, 3).c.max_abs_diff(&oracle) < 1e-9);
    assert!(rect_block(&a, &b, 6).c.max_abs_diff(&oracle) < 1e-9);
    assert!(square_block(&a, &b, 4, 16).c.max_abs_diff(&oracle) < 1e-9);
    assert!(square_block(&a, &b, 3, 5).c.max_abs_diff(&oracle) < 1e-9);
}

#[test]
fn lp_load_prediction_matches_measured_hypercube() {
    // The share LP predicts the per-relation load |S_j|/∏ shares; the
    // measured max load must sit within a small constant of it
    // (hashing adds concentration noise, replication counts all atoms).
    let q = Query::triangle();
    let n = 20_000;
    let g = generate::uniform(2, n, 1 << 40, 9);
    let rels = vec![g.clone(), g.clone(), g];
    let p = 64;
    let plan = parqp::lp::plan_shares(&q.hypergraph(), &[n as u64; 3], p);
    let predicted = parqp::lp::predicted_load(&q.hypergraph(), &[n as u64; 3], &plan.shares);
    let run = multiway::hypercube_with_shares(&q, &rels, &plan.shares, 5);
    let measured = run.report.max_load_tuples() as f64;
    // Three relations contribute; each ≈ predicted.
    assert!(
        measured < 3.0 * predicted * 1.5 && measured > predicted,
        "measured {measured}, per-relation prediction {predicted}"
    );
}

#[test]
fn skewhc_load_respects_psi_star_scaling() {
    // Skewed two-way join: SkewHC's load must scale like p^{-1/ψ*} = p^{-1/2}
    // while plain HyperCube stays flat at IN.
    let n = 4000;
    let r = generate::constant_key_pairs(n, 7, 1);
    let s = generate::constant_key_pairs(n, 7, 0);
    let q = Query::two_way();
    let rels = vec![r, s];
    let l16 = skewhc::skewhc(&q, &rels, 16, 3).report.max_load_tuples() as f64;
    let l256 = skewhc::skewhc(&q, &rels, 256, 3).report.max_load_tuples() as f64;
    let ratio = l16 / l256;
    // 16× more servers ⇒ ≈ 4× smaller load (ψ* = 2); allow generous slack
    // for integer shares at small group budgets.
    assert!(
        ratio > 2.0,
        "SkewHC skew scaling ratio {ratio} (l16={l16}, l256={l256})"
    );
    let hc16 = multiway::hypercube(&q, &rels, 16, 3)
        .report
        .max_load_tuples();
    let hc256 = multiway::hypercube(&q, &rels, 256, 3)
        .report
        .max_load_tuples();
    assert_eq!(
        hc16, hc256,
        "plain HyperCube cannot improve under extreme skew"
    );
}

#[test]
fn model_formulas_consistent_with_lp() {
    for q in [
        Query::triangle(),
        Query::two_way(),
        Query::chain(5),
        Query::semijoin_pair(),
    ] {
        let tau = model::tau_star(&q);
        let psi = model::psi_star_of(&q);
        assert!(psi >= tau - 1e-9, "{q}: ψ* ≥ τ*");
        // slide 54: ρ* ≤ … the AGM exponent with equal sizes N is N^{ρ*};
        // verify AGM(N,…,N) = N^{ρ*}.
        let n = 1000u64;
        let sizes = vec![n; q.num_atoms()];
        let agm = parqp::lp::agm_bound(&q.hypergraph(), &sizes);
        let rho = parqp::lp::fractional_edge_cover(&q.hypergraph()).value;
        assert!(
            (agm.ln() - rho * (n as f64).ln()).abs() < 1e-6,
            "{q}: AGM = N^ρ*"
        );
    }
}

#[test]
fn agm_bound_never_violated_empirically() {
    for seed in 0..5 {
        let q = Query::triangle();
        let g = generate::uniform(2, 300, 40, seed);
        let rels = vec![g.clone(), g.clone(), g];
        let out = parqp::query::evaluate(&q, &rels).len() as f64;
        let sizes: Vec<u64> = rels.iter().map(|r| r.len() as u64).collect();
        let agm = parqp::lp::agm_bound(&q.hypergraph(), &sizes);
        assert!(out <= agm + 1e-6, "seed {seed}: OUT {out} > AGM {agm}");
    }
}
