//! # parqp-lp — linear programming for parallel query processing
//!
//! The tutorial's load bounds are all linear programs over the query's
//! hypergraph (slides 39–44, 55):
//!
//! * the **fractional edge packing** number τ\* governs the skew-free
//!   one-round load `L = IN / p^{1/τ*}`;
//! * the **fractional edge cover** number ρ\* gives the AGM output bound
//!   `|OUT| ≤ IN^{ρ*}` and the multi-round communication lower bound;
//! * the **fractional vertex cover** is the LP dual of edge packing
//!   (slide 39: `min Σw = max Σu = τ*`);
//! * the HyperCube **shares** `p₁ … p_k` are the solution of an LP in the
//!   exponents `e_i` with `pᵢ = p^{e_i}` (slide 38).
//!
//! All of these are solved with [`simplex`], a from-scratch dense
//! two-phase primal simplex with Bland's rule. Query LPs have at most a
//! few dozen variables, so the implementation favours numerical
//! robustness and clarity over sparse-matrix performance.

pub mod covers;
pub mod hypergraph;
pub mod shares;
pub mod simplex;

pub use covers::{
    agm_bound, fractional_edge_cover, fractional_edge_packing, fractional_vertex_cover,
};
pub use hypergraph::Hypergraph;
pub use shares::{
    integer_shares, optimal_share_exponents, packing_load_bound, plan_shares, predicted_load,
    ShareAssignment,
};
pub use simplex::{solve, Constraint, ConstraintOp, LinearProgram, LpOutcome, Solution};
