//! Wall-clock benches (parqp-testkit harness) for the multi-round experiments (E11–E12): GYM in
//! both modes, generalized GHD execution, and the binary-join baseline.

use parqp::data::generate;
use parqp::join::{gym, plans};
use parqp::prelude::*;
use parqp_data::Relation;
use parqp_testkit::bench::{BenchmarkId, Criterion};
use parqp_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

fn chain_data(n: usize, tuples: usize) -> Vec<Relation> {
    (0..n)
        .map(|i| generate::key_unique_pairs(tuples, 1, tuples as u64, 90 + i as u64))
        .collect()
}

fn bench_e11_crossover(c: &mut Criterion) {
    let q = Query::chain(3);
    let tree = Ghd::join_tree(&q).expect("acyclic");
    let rels = chain_data(3, 20_000);
    let mut grp = c.benchmark_group("e11_crossover");
    grp.sample_size(10);
    grp.bench_function("gym_chain3", |b| {
        b.iter(|| black_box(gym::gym(&q, &rels, &tree, 64, 5, true)))
    });
    grp.bench_function("hypercube_chain3", |b| {
        b.iter(|| black_box(parqp::join::multiway::hypercube(&q, &rels, 64, 5)))
    });
    grp.bench_function("binary_plan_chain3", |b| {
        b.iter(|| black_box(plans::binary_join_plan(&q, &rels, 64, 5, None)))
    });
    grp.finish();
}

fn bench_e12_gym_modes(c: &mut Criterion) {
    let q = Query::star(6);
    let tree = Ghd::star_flat(&q);
    let rels: Vec<Relation> = (0..6)
        .map(|i| generate::key_unique_pairs(10_000, 0, 10_000, 80 + i as u64))
        .collect();
    let mut grp = c.benchmark_group("e12_gym");
    grp.sample_size(10);
    grp.bench_function("vanilla_star6", |b| {
        b.iter(|| black_box(gym::gym(&q, &rels, &tree, 16, 5, false)))
    });
    grp.bench_function("optimized_star6", |b| {
        b.iter(|| black_box(gym::gym(&q, &rels, &tree, 16, 5, true)))
    });

    // Small instance: the balanced GHD's disconnected bags materialize
    // IN^w Cartesian products (see gym_ghd docs).
    let n = 12;
    let qc = Query::chain(n);
    let rels = chain_data(n, 80);
    for (name, ghd) in [
        ("ghd_w1", Ghd::chain_blocks(n, 1)),
        ("ghd_w3", Ghd::chain_blocks(n, 3)),
        ("ghd_balanced", Ghd::chain_balanced(n)),
    ] {
        grp.bench_with_input(BenchmarkId::new("chain12", name), &ghd, |b, ghd| {
            b.iter(|| black_box(gym::gym_ghd(&qc, &rels, ghd, 16, 7)))
        });
    }
    grp.finish();
}

criterion_group!(benches, bench_e11_crossover, bench_e12_gym_modes);
criterion_main!(benches);
