//! End-to-end rule tests over the seeded sources in `tests/fixtures/`.
//!
//! Each rule family gets a positive fixture (a planted violation that
//! must be reported with the right `PQxxx` ID and `file:line`) and a
//! negative fixture (idiomatic or annotated code that must pass). The
//! fixtures live in a subdirectory so cargo never compiles them, and
//! only `crates/*/src` is walked by the workspace lint, so the planted
//! violations cannot leak into a real run.

use std::collections::BTreeMap;

use parqp_lint::manifest::lint_manifest;
use parqp_lint::ratchet::{count_file, Baseline, PanicCounts};
use parqp_lint::rules::lint_source;
use parqp_lint::tokenize::sanitize;
use parqp_lint::Diagnostic;

/// Reduce diagnostics to comparable `(rule, line)` pairs.
fn hits(diags: &[Diagnostic]) -> Vec<(&'static str, usize)> {
    let mut out: Vec<(&'static str, usize)> = diags.iter().map(|d| (d.rule, d.line)).collect();
    out.sort_unstable();
    out.dedup();
    out
}

// ---------------------------------------------------------------- PQ001–PQ004

#[test]
fn determinism_violations_reported_with_rule_and_line() {
    let src = include_str!("fixtures/determinism_bad.rs");
    let diags = lint_source("join", "fixtures/determinism_bad.rs", &sanitize(src));
    assert_eq!(
        hits(&diags),
        vec![
            ("PQ001", 3),  // use std::collections::HashMap
            ("PQ001", 6),  // HashMap in a signature
            ("PQ001", 7),  // HashMap::new()
            ("PQ002", 4),  // RandomState
            ("PQ003", 11), // Instant::now()
            ("PQ004", 15), // std::thread::spawn
        ]
    );
    // Diagnostics carry the path verbatim for clickable file:line output.
    assert!(diags
        .iter()
        .all(|d| d.path == "fixtures/determinism_bad.rs"));
}

#[test]
fn determinism_clean_file_passes() {
    let src = include_str!("fixtures/determinism_ok.rs");
    let diags = lint_source("join", "fixtures/determinism_ok.rs", &sanitize(src));
    assert_eq!(
        hits(&diags),
        vec![],
        "aliases, allows, and test modules pass"
    );
}

#[test]
fn thread_spawns_are_sanctioned_only_inside_the_testkit_pool() {
    let src = sanitize(include_str!("fixtures/thread_pool.rs"));
    // Under the real pool's path the PQ004 exemption applies.
    let diags = lint_source("testkit", "crates/testkit/src/pool.rs", &src);
    assert_eq!(hits(&diags), vec![], "testkit::pool may spawn");
    // Anywhere else — including elsewhere in testkit, and in a file that
    // merely *names* itself pool.rs in another crate — both PQ004 tokens
    // still fire on the spawn and on the scoped-thread call.
    for path in [
        "fixtures/thread_pool.rs",
        "crates/testkit/src/bench.rs",
        "crates/mpc/src/pool.rs",
    ] {
        let diags = lint_source("testkit", path, &src);
        assert_eq!(
            hits(&diags),
            vec![("PQ004", 8), ("PQ004", 12)],
            "{path} must still be flagged"
        );
    }
    // Crate name alone is not enough either: mpc never gets the pass.
    let diags = lint_source("mpc", "crates/mpc/src/exec.rs", &src);
    assert_eq!(hits(&diags), vec![("PQ004", 8), ("PQ004", 12)]);
}

// ---------------------------------------------------------------- PQ103/PQ104

#[test]
fn side_channel_and_accounting_violations_reported() {
    let src = include_str!("fixtures/side_channel_bad.rs");
    let diags = lint_source("join", "fixtures/side_channel_bad.rs", &sanitize(src));
    assert_eq!(
        hits(&diags),
        vec![
            ("PQ103", 6),  // std::fs in an algorithm crate
            ("PQ104", 3),  // use ... RoundStats
            ("PQ104", 10), // LoadReport { … } literal
            ("PQ104", 12), // RoundStats::zero
        ]
    );
    // Line 9's `-> LoadReport {` return type must NOT be flagged.
    assert!(!hits(&diags).contains(&("PQ104", 9)));
}

#[test]
fn mpc_is_exempt_from_accounting_ownership() {
    // The same file inside `mpc` keeps only the side-channel finding:
    // mpc owns RoundStats/LoadReport, but still may not touch the fs.
    let src = include_str!("fixtures/side_channel_bad.rs");
    let diags = lint_source("mpc", "fixtures/side_channel_bad.rs", &sanitize(src));
    assert_eq!(hits(&diags), vec![("PQ103", 6)]);
}

#[test]
fn combinator_accounting_passes() {
    let src = include_str!("fixtures/side_channel_ok.rs");
    let diags = lint_source("join", "fixtures/side_channel_ok.rs", &sanitize(src));
    assert_eq!(hits(&diags), vec![]);
}

// --------------------------------------------------------------------- PQ106

#[test]
fn fault_runtime_violations_reported() {
    let src = include_str!("fixtures/faults_bad.rs");
    let diags = lint_source("join", "fixtures/faults_bad.rs", &sanitize(src));
    assert_eq!(
        hits(&diags),
        vec![
            ("PQ106", 6),  // next_round_faults
            ("PQ106", 10), // note_injected
            ("PQ106", 11), // note_recovery
        ]
    );
}

#[test]
fn mpc_and_faults_are_exempt_from_fault_runtime_ownership() {
    let src = include_str!("fixtures/faults_bad.rs");
    for owner in ["mpc", "faults"] {
        let diags = lint_source(owner, "fixtures/faults_bad.rs", &sanitize(src));
        assert_eq!(hits(&diags), vec![], "{owner} owns the fault runtime");
    }
}

#[test]
fn fault_plan_installation_passes() {
    let src = include_str!("fixtures/faults_ok.rs");
    let diags = lint_source("core", "fixtures/faults_ok.rs", &sanitize(src));
    assert_eq!(hits(&diags), vec![]);
}

// --------------------------------------------------------------------- PQ107

#[test]
fn metrics_emission_violation_reported() {
    let src = include_str!("fixtures/metrics_bad.rs");
    let diags = lint_source("join", "fixtures/metrics_bad.rs", &sanitize(src));
    assert_eq!(
        hits(&diags),
        vec![
            ("PQ105", 6), // forging a TraceEvent outside mpc/trace/metrics
            ("PQ107", 6), // metrics::emit outside mpc/metrics
        ]
    );
}

#[test]
fn mpc_and_metrics_are_exempt_from_metrics_emission_ownership() {
    let src = include_str!("fixtures/metrics_bad.rs");
    for owner in ["mpc", "metrics"] {
        let diags = lint_source(owner, "fixtures/metrics_bad.rs", &sanitize(src));
        assert_eq!(hits(&diags), vec![], "{owner} owns metrics emission");
    }
}

#[test]
fn bound_announcement_and_capture_pass() {
    let src = include_str!("fixtures/metrics_ok.rs");
    let diags = lint_source("join", "fixtures/metrics_ok.rs", &sanitize(src));
    assert_eq!(hits(&diags), vec![]);
}

// --------------------------------------------------------------------- PQ110

#[test]
fn serve_cache_and_tenant_ledger_violations_reported() {
    let src = include_str!("fixtures/serve_bad.rs");
    let diags = lint_source("core", "fixtures/serve_bad.rs", &sanitize(src));
    assert_eq!(
        hits(&diags),
        vec![
            ("PQ110", 4),  // importing PlanCache outside serve
            ("PQ110", 7),  // constructing the cache
            ("PQ110", 17), // fabricating a TenantLedger type
            ("PQ110", 21), // returning the forged ledger
            ("PQ110", 22), // filling in invented counters
        ]
    );
}

#[test]
fn serve_is_exempt_from_plan_cache_ownership() {
    let src = include_str!("fixtures/serve_bad.rs");
    let diags = lint_source("serve", "fixtures/serve_bad.rs", &sanitize(src));
    assert_eq!(hits(&diags), vec![], "serve owns the plan cache");
}

#[test]
fn serve_report_consumption_passes() {
    let src = include_str!("fixtures/serve_ok.rs");
    let diags = lint_source("core", "fixtures/serve_ok.rs", &sanitize(src));
    assert_eq!(hits(&diags), vec![]);
}

// --------------------------------------------------------------------- PQ111

#[test]
fn observation_fabrication_reported_outside_serve_and_obs() {
    let src = include_str!("fixtures/obs_bad.rs");
    let diags = lint_source("core", "fixtures/obs_bad.rs", &sanitize(src));
    assert_eq!(
        hits(&diags),
        vec![
            ("PQ111", 5),  // importing QueryObs / SeriesRecorder
            ("PQ111", 13), // constructing the recorder
            ("PQ111", 14), // fabricating an observation
            ("PQ111", 32), // feeding the runtime
            ("PQ111", 33), // installing a recorder
            ("PQ111", 34), // capturing a series
        ]
    );
}

#[test]
fn serve_and_obs_are_exempt_from_observation_ownership() {
    let src = include_str!("fixtures/obs_bad.rs");
    for owner in ["serve", "obs"] {
        let diags = lint_source(owner, "fixtures/obs_bad.rs", &sanitize(src));
        assert_eq!(hits(&diags), vec![], "{owner} owns the observation path");
    }
}

#[test]
fn series_consumption_passes() {
    let src = include_str!("fixtures/obs_ok.rs");
    let diags = lint_source("core", "fixtures/obs_ok.rs", &sanitize(src));
    assert_eq!(hits(&diags), vec![]);
}

// ---------------------------------------------------------------- PQ101/PQ102

#[test]
fn layering_dag_violations_reported() {
    let toml = include_str!("fixtures/layering_bad.toml");
    let diags = lint_manifest("sort", "fixtures/layering_bad.toml", toml);
    assert_eq!(
        hits(&diags),
        vec![
            ("PQ101", 7), // sort → join is not a DAG edge
            ("PQ102", 8), // testkit as a runtime dependency
        ]
    );
}

#[test]
fn layering_clean_manifest_passes() {
    let toml = include_str!("fixtures/layering_ok.toml");
    let diags = lint_manifest("sort", "fixtures/layering_ok.toml", toml);
    assert_eq!(hits(&diags), vec![]);
}

// --------------------------------------------------------------------- PQ201

#[test]
fn ratchet_reports_growth_and_only_growth() {
    let counts = count_file(&sanitize(include_str!("fixtures/panics.rs")));
    assert_eq!(
        counts,
        PanicCounts {
            unwrap: 1,
            expect: 1,
            panic: 1,
            index: 1,
        },
        "test-module panic sites are not counted"
    );

    let mut actual = BTreeMap::new();
    actual.insert("join".to_string(), counts);

    // Baseline at zero: every counter grew → four PQ201 diagnostics.
    let mut zero = Baseline::default();
    zero.crates
        .insert("join".to_string(), PanicCounts::default());
    let grown = zero.compare(&actual);
    assert_eq!(grown.diagnostics.len(), 4);
    assert!(grown.diagnostics.iter().all(|d| d.rule == "PQ201"));
    assert!(grown.diagnostics.iter().all(|d| d.path == "crates/join"));

    // Baseline at the actual counts: clean, nothing stale.
    let mut exact = Baseline::default();
    exact.crates.insert("join".to_string(), counts);
    let level = exact.compare(&actual);
    assert!(level.diagnostics.is_empty());
    assert!(level.stale.is_empty());

    // Baseline above the actual counts: no failure, but a stale nudge.
    let mut above = Baseline::default();
    above.crates.insert(
        "join".to_string(),
        PanicCounts {
            unwrap: 5,
            ..counts
        },
    );
    let shrunk = above.compare(&actual);
    assert!(shrunk.diagnostics.is_empty());
    assert_eq!(shrunk.stale, vec!["join.unwrap 5 → 1"]);
}

// --------------------------------------------------------------- PQ301/PQ302

#[test]
fn offline_violations_reported() {
    let toml = include_str!("fixtures/offline_bad.toml");
    let diags = lint_manifest("sort", "fixtures/offline_bad.toml", toml);
    assert_eq!(
        hits(&diags),
        vec![
            ("PQ301", 7),  // serde = "1.0" — registry dependency
            ("PQ302", 10), // rand, banned even as a path dependency
        ]
    );
}
