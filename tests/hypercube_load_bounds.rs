//! The paper's headline guarantee, checked end to end: on skew-free
//! input, one round of HyperCube/Shares keeps every server's load
//! within a constant factor of `IN / p^{1/τ*}`, where `τ*` is the
//! fractional edge packing value of the query (Beame–Koutris–Suciu).
//! For the triangle query `τ* = 3/2`, so the bound is `IN / p^{2/3}`.
//!
//! We run the triangle on seeded uniform inputs for the three perfect
//! cubes `p ∈ {8, 27, 64}` (where the share vector is exactly
//! `(p^{1/3}, p^{1/3}, p^{1/3})` and the theory constant is smallest)
//! and also assert the whole run is deterministic: same seed, same
//! bytes, same `(L, r, C)` report.

use parqp::data::generate;
use parqp::join::multiway;
use parqp::lp::fractional_edge_packing;
use parqp::query::Query;

/// Allowed constant over the `IN / p^{1/τ*}` expectation. The analytic
/// load for the triangle is `3·IN/3 / p^{2/3}` = `IN / p^{2/3}` in
/// expectation; hashing variance on finite inputs adds a little, so we
/// accept 2x before declaring the algorithm out of spec.
const SLACK: f64 = 2.0;

fn triangle_input(n_per_rel: usize, seed: u64) -> Vec<parqp::data::Relation> {
    // Domain ≫ n keeps degrees near 1 — the skew-free regime the
    // one-round bound is stated for.
    let domain = 1 << 30;
    (0..3)
        .map(|i| generate::uniform(2, n_per_rel, domain, seed + i))
        .collect()
}

#[test]
fn hypercube_triangle_load_within_constant_of_paper_bound() {
    let q = Query::triangle();
    let tau_star = fractional_edge_packing(&q.hypergraph()).value;
    assert!(
        (tau_star - 1.5).abs() < 1e-9,
        "triangle τ* must be 3/2, LP said {tau_star}"
    );

    let n_per_rel = 30_000;
    let rels = triangle_input(n_per_rel, 0xC0FFEE);
    let input_size: usize = rels.iter().map(parqp::data::Relation::len).sum();

    for p in [8usize, 27, 64] {
        let run = multiway::hypercube(&q, &rels, p, 42);
        let bound = input_size as f64 / (p as f64).powf(1.0 / tau_star);
        let max_load = run.report.max_load_tuples() as f64;
        assert!(
            max_load <= SLACK * bound,
            "p = {p}: max load {max_load} exceeds {SLACK}× the paper bound {bound:.0} \
             (IN = {input_size}, τ* = {tau_star})"
        );
        // One communication round — the other half of the guarantee.
        assert_eq!(run.report.num_rounds(), 1, "HyperCube must be one round");
        // Sanity: the load bound is not vacuous — every server holding
        // everything would be p^{2/3}·SLACK× over it.
        assert!(
            max_load >= bound / SLACK,
            "load suspiciously far under bound"
        );
    }
}

#[test]
fn hypercube_load_decreases_with_p() {
    let q = Query::triangle();
    let rels = triangle_input(20_000, 7);
    let loads: Vec<u64> = [8usize, 27, 64]
        .iter()
        .map(|&p| {
            multiway::hypercube(&q, &rels, p, 42)
                .report
                .max_load_tuples()
        })
        .collect();
    assert!(
        loads.windows(2).all(|w| w[1] < w[0]),
        "max load must strictly improve along p = 8, 27, 64: {loads:?}"
    );
}

#[test]
fn hypercube_runs_are_byte_identical_across_invocations() {
    let q = Query::triangle();
    let rels = triangle_input(5_000, 99);
    for p in [8usize, 27, 64] {
        let a = multiway::hypercube(&q, &rels, p, 1234);
        let b = multiway::hypercube(&q, &rels, p, 1234);
        // Identical (L, r, C): same per-round, per-server tuple and
        // word counts...
        assert_eq!(a.report, b.report, "load reports must replay exactly");
        // ...and identical output bytes, fragment by fragment.
        assert_eq!(
            a.gathered().to_rows(),
            b.gathered().to_rows(),
            "output must replay exactly"
        );
        // A different seed re-randomizes the hash family but not the
        // result set.
        let c = multiway::hypercube(&q, &rels, p, 4321);
        assert_eq!(
            a.gathered().canonical(),
            c.gathered().canonical(),
            "seed must not change join semantics"
        );
    }
}
