//! Serial-vs-parallel differential suite: the tentpole proof that
//! `ExecMode::Parallel` is *observationally invisible*.
//!
//! Every observe experiment is run at p ∈ {8, 27, 64} in serial mode
//! and under worker pools of 1, 2, 4 and NCPU threads, with a trace
//! recorder and a metrics registry installed simultaneously — and the
//! output digest, the `LoadReport` ledger (every `RoundStats`), the
//! exported trace JSONL, and a canonical snapshot of the metrics
//! registry must all be byte-identical to the serial run. A second
//! matrix repeats the comparison under seeded fault plans with both
//! recovery strategies, so recovery replays parallelize identically
//! too.
//!
//! Also here: the pool-stress satellites — submit-order merging under
//! adversarial completion order, panic-in-worker surfacing as a typed
//! [`MpcError::WorkerPanic`] instead of a hang, and pool reuse across
//! repeated runs and `Cluster::reset`.

use std::rc::Rc;

use parqp::faults::{capture as fault_capture, FaultLog, FaultPlan, FaultSpec, RecoveryStrategy};
use parqp::mpc::exec;
use parqp::mpc::metrics::{LoadUnit, MetricsRegistry};
use parqp::mpc::{Cluster, ExecMode, LoadReport, MpcError};
use parqp::trace::export;
use parqp_testkit::pool::{ncpu, WorkerPool};

/// The full cluster-size axis of the acceptance criterion.
const SIZES: &[usize] = &[8, 27, 64];

/// Worker counts to differentiate against serial: degenerate (1),
/// small (2, 4), and whatever this machine actually has.
fn worker_counts() -> Vec<usize> {
    let mut w = vec![1, 2, 4, ncpu()];
    w.sort_unstable();
    w.dedup();
    w
}

/// A canonical, total rendering of a metrics registry. Two registries
/// that print identically observed identical event streams.
fn registry_snapshot(reg: &MetricsRegistry) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for (name, v) in reg.counters() {
        let _ = writeln!(s, "counter {name} = {v}");
    }
    for (name, v) in reg.gauges() {
        let _ = writeln!(s, "gauge {name} = {v}");
    }
    for b in reg.bounds() {
        let _ = writeln!(s, "bound {b:?}");
    }
    let _ = writeln!(
        s,
        "load_max tuples={} words={} rounds={} skew={} hist={:?}",
        reg.load_max(LoadUnit::Tuples),
        reg.load_max(LoadUnit::Words),
        reg.rounds(),
        reg.max_skew_ratio(),
        reg.recv_histogram()
    );
    s
}

/// Everything observable about one experiment run.
struct Observed {
    digest: u64,
    report: LoadReport,
    jsonl: String,
    registry: String,
}

/// Run `name` at `p` under `mode` with trace + metrics installed.
fn observe(name: &str, p: usize, seed: u64, mode: ExecMode) -> Observed {
    exec::with_mode(mode, || {
        let (registry, run) =
            parqp::mpc::metrics::capture(|| parqp::observe::run_experiment_full(name, p, seed));
        let run = run.expect("known experiment");
        Observed {
            digest: run.digest,
            report: run.report,
            jsonl: export::jsonl(&run.recorder),
            registry: registry_snapshot(&registry),
        }
    })
}

fn assert_identical(label: &str, serial: &Observed, parallel: &Observed) {
    assert_eq!(serial.digest, parallel.digest, "{label}: output digest");
    assert_eq!(
        serial.report, parallel.report,
        "{label}: ledger (RoundStats sequence)"
    );
    assert_eq!(serial.jsonl, parallel.jsonl, "{label}: trace JSONL");
    assert_eq!(
        serial.registry, parallel.registry,
        "{label}: metrics registry"
    );
}

#[test]
fn every_experiment_is_byte_identical_across_worker_counts() {
    for e in parqp::observe::EXPERIMENTS {
        for &p in SIZES {
            let serial = observe(e.name, p, 42, ExecMode::Serial);
            assert!(!serial.jsonl.is_empty(), "{}/p{p}: empty trace", e.name);
            for w in worker_counts() {
                let parallel = observe(e.name, p, 42, ExecMode::Parallel { workers: w });
                let label = format!("{}/p{p} workers={w}", e.name);
                assert_identical(&label, &serial, &parallel);
            }
        }
    }
}

#[test]
fn fault_recovery_is_byte_identical_in_parallel_mode() {
    let spec = FaultSpec {
        crashes: 1,
        drops: 1,
        duplicates: 1,
        stragglers: 1,
        max_batch: 8,
    };
    let strategies = [
        RecoveryStrategy::Checkpoint { every: 2 },
        RecoveryStrategy::Replication { replicas: 2 },
    ];
    let mut fired_total = 0usize;
    for e in parqp::observe::EXPERIMENTS {
        for &p in SIZES {
            for strategy in strategies {
                let plan = FaultPlan::random(42, p, 6, &spec);
                let run = |mode: ExecMode| -> (FaultLog, Observed) {
                    exec::with_mode(mode, || {
                        let (registry, (log, run)) = parqp::mpc::metrics::capture(|| {
                            fault_capture(plan.clone(), strategy, || {
                                parqp::observe::run_experiment_full(e.name, p, 42)
                            })
                        });
                        let run = run.expect("known experiment");
                        (
                            log,
                            Observed {
                                digest: run.digest,
                                report: run.report,
                                jsonl: export::jsonl(&run.recorder),
                                registry: registry_snapshot(&registry),
                            },
                        )
                    })
                };
                let (serial_log, serial) = run(ExecMode::Serial);
                let (parallel_log, parallel) = run(ExecMode::Parallel { workers: 0 });
                let label = format!("{}/p{p} {strategy:?}", e.name);
                assert_eq!(serial_log, parallel_log, "{label}: fault log");
                assert_identical(&label, &serial, &parallel);
                fired_total += serial_log.injected.len();
            }
        }
    }
    assert!(
        fired_total > 0,
        "the fault matrix never fired a fault — the differential is vacuous"
    );
}

#[test]
fn parallel_metrics_reconcile_with_ledger_and_trace_under_faults() {
    // Satellite: trace recorder + fault clock + metrics registry
    // installed *together* under parallel mode must reconcile exactly
    // as tests/trace_invariants.rs pins for serial runs.
    let _exec = exec::install(ExecMode::Parallel { workers: 0 });
    let spec = FaultSpec {
        crashes: 1,
        drops: 1,
        duplicates: 1,
        stragglers: 1,
        max_batch: 8,
    };
    for e in parqp::observe::EXPERIMENTS {
        let plan = FaultPlan::random(7, 8, 4, &spec);
        let (registry, (_log, run)) = parqp::mpc::metrics::capture(|| {
            fault_capture(plan, RecoveryStrategy::Checkpoint { every: 2 }, || {
                parqp::observe::run_experiment_full(e.name, 8, 42)
            })
        });
        let run = run.expect("known experiment");
        let totals = parqp::trace::analyze::totals(&run.recorder);
        let name = e.name;
        assert_eq!(
            registry.counter("tuples"),
            run.report.total_tuples(),
            "{name}: metrics vs ledger Σ tuples"
        );
        assert_eq!(
            registry.counter("words"),
            run.report.total_words(),
            "{name}: metrics vs ledger Σ words"
        );
        assert_eq!(
            registry.counter("tuples"),
            totals.tuples,
            "{name}: metrics vs trace Σ tuples"
        );
        assert_eq!(
            registry.counter("words"),
            totals.words,
            "{name}: metrics vs trace Σ words"
        );
        assert_eq!(
            registry.rounds() as usize,
            totals.rounds,
            "{name}: metrics vs trace rounds"
        );
        assert_eq!(
            registry.load_max(LoadUnit::Tuples),
            run.report.max_load_tuples(),
            "{name}: metrics vs ledger L_max (tuples)"
        );
        assert_eq!(
            registry.load_max(LoadUnit::Words),
            run.report.max_load_words(),
            "{name}: metrics vs ledger L_max (words)"
        );
    }
}

#[test]
fn compute_bound_experiment_speeds_up_on_multicore_hosts() {
    // The perf half of the acceptance bar: matmul-square/p64 is
    // compute-bound (Θ(n³) block multiplies against Θ(n²·H) words on
    // the wire), so with ≥ 4 workers its wall clock must beat serial.
    // Speedup is only physically observable when the host has the
    // hardware threads to back it — a single-core container runs every
    // "parallel" worker on the same core — so hosts with fewer than 4
    // CPUs skip the timing assertion (the differential tests above
    // still prove correctness there). The official 1.5× bar is
    // measured in release mode by `bench tables --metrics`
    // (BENCH_parqp.json); here a best-of-3 debug run asserts a
    // conservative 1.25×.
    let workers = ncpu();
    if workers < 4 {
        eprintln!("skipping speedup assertion: {workers} hardware thread(s) < 4");
        return;
    }
    let wall = |mode: ExecMode| {
        exec::with_mode(mode, || {
            let mut best = u64::MAX;
            for _ in 0..3 {
                let t0 = parqp_testkit::bench::time_ns();
                let run = parqp::observe::run_experiment_full("matmul-square", 64, 42)
                    .expect("known experiment");
                let dt = parqp_testkit::bench::time_ns().saturating_sub(t0);
                std::hint::black_box(run.digest);
                best = best.min(dt);
            }
            best
        })
    };
    let serial = wall(ExecMode::Serial);
    let parallel = wall(ExecMode::Parallel { workers });
    assert!(
        serial as f64 >= 1.25 * parallel as f64,
        "no parallel speedup on a {workers}-thread host: serial {serial} ns vs parallel {parallel} ns"
    );
}

// ------------------------------------------------------------------ pool

#[test]
fn map_merges_in_server_order_under_adversarial_completion_order() {
    exec::with_mode(ExecMode::Parallel { workers: 4 }, || {
        let cluster = Cluster::new(16);
        // Low-ranked servers get the heaviest work, so completion order
        // inverts submit order; the merged output must not care.
        let out = cluster.map((0..16u64).collect(), |s, v| {
            let mut acc = 0u64;
            for i in 0..(16 - s as u64) * 50_000 {
                acc = acc.wrapping_add(i);
            }
            std::hint::black_box(acc);
            (s, v)
        });
        let expect: Vec<(usize, u64)> = (0..16u64).map(|i| (i as usize, i)).collect();
        assert_eq!(out, expect);
    });
}

#[test]
fn worker_panic_is_a_typed_mpc_error_not_a_hang() {
    let dying_map = |cluster: &Cluster| {
        cluster.try_map((0..8u64).collect(), |s, v| {
            assert!(s != 5, "server five rejects tuple {v}");
            v * 2
        })
    };
    for mode in [ExecMode::Serial, ExecMode::Parallel { workers: 3 }] {
        exec::with_mode(mode, || {
            let cluster = Cluster::new(8);
            match dying_map(&cluster) {
                Err(MpcError::WorkerPanic { server, message }) => {
                    assert_eq!(server, 5, "{mode:?}");
                    assert!(
                        message.contains("server five rejects tuple 5"),
                        "{mode:?}: message {message:?}"
                    );
                }
                other => panic!("{mode:?}: expected WorkerPanic, got {other:?}"),
            }
            // The pool survives the panicking batch: the same cluster
            // keeps computing.
            let ok = cluster.map(vec![1u64, 2, 3], |_, v| v + 1);
            assert_eq!(ok, vec![2, 3, 4]);
        });
    }
}

#[test]
fn pool_is_reused_across_runs_and_cluster_reset() {
    let pool = Rc::new(WorkerPool::new(3));
    let _guard = exec::install_pool(pool.clone());

    // Repeated experiment runs share the one pool and stay identical.
    let digests: Vec<u64> = (0..3)
        .map(|_| {
            parqp::observe::run_experiment_full("psrs", 8, 42)
                .expect("known experiment")
                .digest
        })
        .collect();
    assert_eq!(digests[0], digests[1]);
    assert_eq!(digests[1], digests[2]);

    // Regression: a Cluster::reset between runs must not detach or
    // wedge the snapshotted pool.
    let mut cluster = Cluster::new(4);
    assert_eq!(cluster.exec_mode(), ExecMode::Parallel { workers: 3 });
    let input: Vec<u64> = (0..4000).rev().collect();
    let local = cluster.scatter(input.clone());
    let first = parqp::sort::psrs(&mut cluster, local);
    let first_report = cluster.report();
    cluster.reset();
    let local = cluster.scatter(input);
    let second = parqp::sort::psrs(&mut cluster, local);
    assert_eq!(first, second, "replay after reset diverged");
    assert_eq!(
        first_report,
        cluster.report(),
        "ledger after reset diverged"
    );
    // The guard and the cluster both still hold the original pool.
    assert!(Rc::strong_count(&pool) >= 2, "pool was dropped mid-session");
}
