//! A deterministic log₂-bucketed histogram sketch.
//!
//! Bucket convention matches `MetricsRegistry`'s recv histogram: bucket
//! 0 holds the value 0, bucket `k ≥ 1` holds `[2^(k−1), 2^k − 1]` —
//! i.e. a value's bucket is `64 − leading_zeros(value)`. Because log₂
//! bucketing is monotone, the buckets partition any sorted sample, and
//! walking the cumulative counts to a nearest-rank finds *exactly* the
//! bucket that contains the rank-th sample. The sketch therefore
//! reports a percentile in the same bucket as the exact nearest-rank
//! percentile — the "within one log₂ bucket" guarantee
//! `tests/obs_invariants.rs` checks against a sorted reference.

/// Number of buckets: the zero bucket plus one per `u64` magnitude.
pub const BUCKETS: usize = 65;

/// A fixed-size log₂ histogram: O([`BUCKETS`]) state however many
/// samples it absorbs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket holding `value` (0 for 0, else `64 − leading_zeros`).
pub fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The largest value bucket `b` can hold.
fn bucket_hi(b: usize) -> u64 {
    match b {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << b) - 1,
    }
}

impl LogHistogram {
    /// An empty sketch.
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            max: 0,
        }
    }

    /// Absorb one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.max = self.max.max(value);
    }

    /// Samples absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample absorbed (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Component-wise sum with another sketch.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Nearest-rank percentile, resolved to the containing bucket.
    ///
    /// Returns a representative value from the bucket that holds the
    /// exact rank-th sample: the bucket's upper bound, clamped to the
    /// sketch maximum (the clamp keeps `percentile(100) == max()` and
    /// can never leave the bucket — the maximum is itself a sample, so
    /// it sits in a bucket at least as high). 0 when empty.
    pub fn percentile(&self, pct: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (u128::from(pct) * u128::from(self.count))
            .div_ceil(100)
            .max(1);
        let mut seen = 0u128;
        for (b, &n) in self.counts.iter().enumerate() {
            seen += u128::from(n);
            if seen >= rank {
                return bucket_hi(b).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank reference (ascending-sorted input).
    fn exact(sorted: &[u64], pct: u64) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let rank = (u128::from(pct) * sorted.len() as u128)
            .div_ceil(100)
            .max(1) as usize;
        sorted[(rank - 1).min(sorted.len() - 1)]
    }

    #[test]
    fn bucket_convention_matches_registry() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_hi(b)), b, "hi of bucket {b}");
        }
    }

    #[test]
    fn empty_sketch_is_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.percentile(99), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn percentile_lands_in_the_exact_bucket() {
        let mut state = 0xD1CEu64;
        let mut samples: Vec<u64> = (0..2000)
            .map(|_| {
                let r = parqp_testkit::splitmix64(&mut state);
                r % (1 << (r % 40))
            })
            .collect();
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for pct in [0, 1, 10, 50, 90, 95, 99, 100] {
            let e = exact(&samples, pct);
            let s = h.percentile(pct);
            assert_eq!(
                bucket_of(e),
                bucket_of(s),
                "pct {pct}: exact {e} vs sketch {s} must share a bucket"
            );
        }
        assert_eq!(h.percentile(100), *samples.last().expect("non-empty"));
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let (mut a, mut b, mut u) = (
            LogHistogram::new(),
            LogHistogram::new(),
            LogHistogram::new(),
        );
        for v in [0u64, 1, 5, 9, 1000] {
            a.record(v);
            u.record(v);
        }
        for v in [3u64, 3, 70_000] {
            b.record(v);
            u.record(v);
        }
        a.merge(&b);
        assert_eq!(a, u);
    }

    #[test]
    fn state_is_constant_size() {
        let mut h = LogHistogram::new();
        for v in 0..100_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100_000);
        assert_eq!(
            std::mem::size_of_val(&h),
            std::mem::size_of::<LogHistogram>()
        );
        assert_eq!(h.counts.len(), BUCKETS);
    }
}
