//! Join-then-aggregate pipelines — the query of slide 52:
//!
//! ```sql
//! SELECT cKey, month, SUM(price)
//! FROM Orders, Customers WHERE …
//! GROUP BY cKey, month
//! ```
//!
//! An [`AggregateQuery`] is a conjunctive join plus a grouping of the
//! output variables with a `COUNT` or `SUM` aggregate. Execution chains
//! the planner-chosen join with one combiner-style aggregation round
//! (local pre-aggregation, then one partial sum per (server, group) —
//! skew-insensitive, see [`parqp_join::aggregate`]); the report
//! concatenates both phases' rounds.

use crate::planner::plan_and_run;
use parqp_data::{FastMap, Relation, Value};
use parqp_mpc::{Cluster, HashFamily, LoadReport, Weight};
use parqp_query::{Query, Var};

/// The aggregate applied per group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Number of join results in the group.
    Count,
    /// Sum of the given output variable over the group.
    Sum(Var),
}

/// A conjunctive join with grouping and aggregation on top.
#[derive(Debug, Clone)]
pub struct AggregateQuery {
    /// The join producing rows over all query variables.
    pub join: Query,
    /// Output variables to group by (distinct, non-empty).
    pub group_by: Vec<Var>,
    /// The aggregate.
    pub agg: Agg,
}

impl AggregateQuery {
    /// Validate shape invariants.
    ///
    /// # Panics
    /// Panics if `group_by` is empty, repeats or exceeds the variables,
    /// or a `Sum` variable is out of range / inside the grouping.
    pub fn new(join: Query, group_by: Vec<Var>, agg: Agg) -> Self {
        assert!(!group_by.is_empty(), "group_by must be non-empty");
        let mut sorted = group_by.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), group_by.len(), "group_by repeats a variable");
        assert!(
            group_by.iter().all(|&v| v < join.num_vars()),
            "group_by variable out of range"
        );
        if let Agg::Sum(v) = agg {
            assert!(v < join.num_vars(), "sum variable out of range");
            assert!(!group_by.contains(&v), "sum variable cannot be grouped");
        }
        Self {
            join,
            group_by,
            agg,
        }
    }

    /// Output arity: the group columns plus the aggregate.
    pub fn output_arity(&self) -> usize {
        self.group_by.len() + 1
    }
}

/// One aggregation message: group key values plus a partial aggregate.
#[derive(Debug, Clone)]
struct Partial {
    key: Vec<Value>,
    agg: u64,
}

impl Weight for Partial {
    fn words(&self) -> u64 {
        self.key.len() as u64 + 1
    }
}

/// Result of running an [`AggregateQuery`].
#[derive(Debug, Clone)]
pub struct AggregateRun {
    /// Per-server result fragments (`group_by` columns ++ aggregate).
    pub outputs: Vec<Relation>,
    /// Combined cost ledger (join phase ++ aggregation round).
    pub report: LoadReport,
    /// The planner's decision for the join phase.
    pub strategy: crate::planner::Strategy,
}

impl AggregateRun {
    /// Gather all fragments (testing/driver convenience).
    pub fn gathered(&self) -> Relation {
        let arity = self.outputs.first().map_or(1, Relation::arity);
        let mut out = Relation::new(arity);
        for part in &self.outputs {
            out.extend_from(part);
        }
        out
    }
}

/// Execute the pipeline on `p` servers.
pub fn run_aggregate(aq: &AggregateQuery, rels: &[Relation], p: usize, seed: u64) -> AggregateRun {
    let (decision, join_run) = plan_and_run(&aq.join, rels, p, seed);

    // Aggregation round over the join's *distributed* outputs: local
    // pre-aggregation, then one partial per (server, group).
    let mut cluster = Cluster::new(join_run.outputs.len());
    let h = HashFamily::new(seed ^ 0xa66, 1);
    let pn = cluster.p();
    let mut ex = cluster.exchange::<Partial>();
    for fragment in &join_run.outputs {
        let mut local: FastMap<Vec<Value>, u64> = FastMap::default();
        for row in fragment.iter() {
            let key: Vec<Value> = aq.group_by.iter().map(|&v| row[v]).collect();
            let inc = match aq.agg {
                Agg::Count => 1,
                Agg::Sum(v) => row[v],
            };
            *local.entry(key).or_insert(0) += inc;
        }
        for (key, agg) in local {
            let dest = h.hash(0, key_digest(&key), pn);
            ex.send(dest, Partial { key, agg });
        }
    }
    let inboxes = ex.finish();

    let outputs: Vec<Relation> = inboxes
        .into_iter()
        .map(|inbox| {
            let mut acc: FastMap<Vec<Value>, u64> = FastMap::default();
            for m in inbox {
                *acc.entry(m.key).or_insert(0) += m.agg;
            }
            let mut rows: Vec<Vec<Value>> = acc
                .into_iter()
                .map(|(mut key, agg)| {
                    key.push(agg);
                    key
                })
                .collect();
            rows.sort_unstable();
            Relation::from_rows(aq.output_arity(), rows)
        })
        .collect();

    let report = LoadReport::sequential(&[join_run.report.padded(pn), cluster.report()]);
    AggregateRun {
        outputs,
        report,
        strategy: decision.strategy,
    }
}

/// Fold a composite group key into one routing digest.
fn key_digest(key: &[Value]) -> u64 {
    key.iter().fold(0xcbf2_9ce4_8422_2325u64, |acc, &v| {
        parqp_mpc::hash::splitmix64(acc ^ v)
    })
}

/// Serial oracle: evaluate the join, aggregate in a hash map.
pub fn aggregate_oracle(aq: &AggregateQuery, rels: &[Relation]) -> Relation {
    let joined = parqp_query::evaluate(&aq.join, rels);
    let mut acc: FastMap<Vec<Value>, u64> = FastMap::default();
    for row in joined.iter() {
        let key: Vec<Value> = aq.group_by.iter().map(|&v| row[v]).collect();
        let inc = match aq.agg {
            Agg::Count => 1,
            Agg::Sum(v) => row[v],
        };
        *acc.entry(key).or_insert(0) += inc;
    }
    let mut rows: Vec<Vec<Value>> = acc
        .into_iter()
        .map(|(mut key, agg)| {
            key.push(agg);
            key
        })
        .collect();
    rows.sort_unstable();
    Relation::from_rows(aq.output_arity(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parqp_data::generate;

    fn sorted(rel: Relation) -> Relation {
        let mut r = rel;
        r.sort();
        r
    }

    #[test]
    fn slide52_orders_customers() {
        // Orders(cKey, price) ⋈ Customers(cKey, region), SUM(price) per cKey.
        let join = parqp_query::parse_query("Orders(c, p), Customers(c, r)").expect("valid");
        let aq = AggregateQuery::new(join, vec![0], Agg::Sum(1));
        let orders = generate::zipf_pairs(3000, 200, 1.1, 0, 3);
        let customers = generate::key_unique_pairs(200, 0, 10, 4);
        let run = run_aggregate(&aq, &[orders.clone(), customers.clone()], 16, 7);
        let expect = aggregate_oracle(&aq, &[orders, customers]);
        assert_eq!(sorted(run.gathered()), expect);
        // One aggregation round beyond the join's.
        assert_eq!(run.report.num_rounds(), 2);
    }

    #[test]
    fn count_per_group_on_triangle() {
        // Triangles per x value.
        let g = generate::random_symmetric_graph(40, 300, 5);
        let aq = AggregateQuery::new(Query::triangle(), vec![0], Agg::Count);
        let rels = vec![g.clone(), g.clone(), g];
        let run = run_aggregate(&aq, &rels, 8, 3);
        let expect = aggregate_oracle(&aq, &rels);
        assert_eq!(sorted(run.gathered()), expect);
    }

    #[test]
    fn multi_column_grouping() {
        let join = parqp_query::parse_query("R(a,b), S(b,c)").expect("valid");
        let aq = AggregateQuery::new(join, vec![0, 2], Agg::Count);
        let r = generate::uniform(2, 400, 30, 8);
        let s = generate::uniform(2, 400, 30, 9);
        let run = run_aggregate(&aq, &[r.clone(), s.clone()], 8, 5);
        assert_eq!(sorted(run.gathered()), aggregate_oracle(&aq, &[r, s]));
    }

    #[test]
    fn skewed_groups_stay_balanced() {
        // All join rows share one group: the combiner sends ≤ p partials.
        let join = parqp_query::parse_query("R(a,b), S(b,c)").expect("valid");
        let aq = AggregateQuery::new(join.clone(), vec![0], Agg::Count);
        let r = generate::constant_key_pairs(2000, 7, 0); // a = 7 everywhere
        let s = generate::key_unique_pairs(500, 0, 10, 5);
        let run = run_aggregate(&aq, &[r, s], 16, 5);
        let last = run.report.rounds.last().expect("agg round");
        assert!(last.max_tuples() <= 16, "aggregation round stays tiny");
        assert_eq!(run.gathered().len(), 1);
    }

    #[test]
    #[should_panic(expected = "sum variable cannot be grouped")]
    fn bad_shape_rejected() {
        AggregateQuery::new(Query::two_way(), vec![0], Agg::Sum(0));
    }
}
