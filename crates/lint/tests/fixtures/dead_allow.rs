//! PQ408 fixture: allow annotations that suppress nothing are
//! themselves findings; justified, vetted, and malformed ones are not.

use std::collections::BTreeMap; // parqp-lint: allow(PQ001)

pub fn clean(v: &BTreeMap<u64, u64>) -> u64 {
    v.len() as u64 // parqp-lint: allow(PQ201)
}

pub fn justified(v: &[u64]) -> u64 {
    v[0] // parqp-lint: allow(PQ201) first element checked by caller
}

pub fn vetted(v: &[u64]) -> u64 {
    v.iter().count() as u64 // parqp-lint: allow(PQ201, PQ408) kept while migrating
}

pub fn lone_dead() -> u64 {
    // parqp-lint: allow(PQ408)
    0
}

pub fn malformed() -> u64 {
    0 // parqp-lint: allow(PQ99)
}
