//! Trace exporters: JSON Lines and Chrome `trace_event`.
//!
//! Both exporters are pure functions from a borrowed [`Recorder`] to a
//! `String`, with hand-written serialization in a fixed field order —
//! no maps, no float formatting, no wall time — so a fixed-seed run
//! exports byte-identical output on every invocation (asserted by
//! `tests/trace_golden.rs`). Writing the string to disk is the
//! caller's business (`core`'s CLI, `bench`'s table writer); this
//! crate performs no I/O.

use crate::event::TraceEvent;
use crate::recorder::Recorder;

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let b = c as u32;
                for shift in [4, 0] {
                    let d = (b >> shift) & 0xf;
                    out.push(char::from_digit(d, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
}

fn push_usize_list(out: &mut String, items: &[usize]) {
    out.push('[');
    for (i, v) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

/// Export the retained events as JSON Lines: one self-describing
/// object per line, tagged with its logical sequence number `seq`
/// (the recorder's event clock; the first retained event's `seq` is
/// [`Recorder::dropped`]).
pub fn jsonl(rec: &Recorder) -> String {
    let mut out = String::new();
    for (i, ev) in rec.events().enumerate() {
        let seq = rec.dropped() + i as u64;
        out.push_str("{\"seq\":");
        out.push_str(&seq.to_string());
        match ev {
            TraceEvent::RoundBegin { round, servers } => {
                out.push_str(&format!(
                    ",\"ev\":\"round_begin\",\"round\":{round},\"servers\":{servers}"
                ));
            }
            TraceEvent::Topology { round, dims } => {
                out.push_str(&format!(",\"ev\":\"topology\",\"round\":{round},\"dims\":"));
                push_usize_list(&mut out, dims);
            }
            TraceEvent::Send {
                round,
                server,
                msgs,
                words,
            } => {
                out.push_str(&format!(
                    ",\"ev\":\"send\",\"round\":{round},\"server\":{server},\"msgs\":{msgs},\"words\":{words}"
                ));
            }
            TraceEvent::Recv {
                round,
                server,
                tuples,
                words,
            } => {
                out.push_str(&format!(
                    ",\"ev\":\"recv\",\"round\":{round},\"server\":{server},\"tuples\":{tuples},\"words\":{words}"
                ));
            }
            TraceEvent::RoundEnd {
                round,
                tuples,
                words,
            } => {
                out.push_str(&format!(
                    ",\"ev\":\"round_end\",\"round\":{round},\"tuples\":{tuples},\"words\":{words}"
                ));
            }
            TraceEvent::FaultInjected {
                round,
                server,
                kind,
            } => {
                out.push_str(&format!(
                    ",\"ev\":\"fault_injected\",\"round\":{round},\"server\":{server},\"kind\":\"{kind}\""
                ));
            }
            TraceEvent::RecoveryBegin {
                round,
                server,
                strategy,
            } => {
                out.push_str(&format!(
                    ",\"ev\":\"recovery_begin\",\"round\":{round},\"server\":{server},\"strategy\":\"{strategy}\""
                ));
            }
            TraceEvent::RecoveryEnd {
                round,
                server,
                rounds,
                tuples,
                words,
            } => {
                out.push_str(&format!(
                    ",\"ev\":\"recovery_end\",\"round\":{round},\"server\":{server},\"rounds\":{rounds},\"tuples\":{tuples},\"words\":{words}"
                ));
            }
            TraceEvent::SpanBegin { label } => {
                out.push_str(",\"ev\":\"span_begin\",\"label\":\"");
                escape_into(&mut out, label);
                out.push('"');
            }
            TraceEvent::SpanEnd { label } => {
                out.push_str(",\"ev\":\"span_end\",\"label\":\"");
                escape_into(&mut out, label);
                out.push('"');
            }
        }
        out.push_str("}\n");
    }
    out
}

/// Export the retained events in Chrome `trace_event` JSON (the
/// format `about://tracing` and [Perfetto](https://ui.perfetto.dev)
/// load directly).
///
/// Mapping, with the logical `seq` as the microsecond timestamp:
///
/// * rounds → duration begin/end pairs (`ph:"B"`/`"E"`) on `tid` 0;
/// * spans → duration pairs on `tid` 1;
/// * grid topology → an instant event (`ph:"i"`) on `tid` 0;
/// * per-server receive load and send fan-out → counter events
///   (`ph:"C"`) named `recv.s<rank>` / `send.s<rank>`, which Perfetto
///   renders as one counter track per server.
pub fn chrome_trace(rec: &Recorder) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for (i, ev) in rec.events().enumerate() {
        let ts = rec.dropped() + i as u64;
        let mut line = String::new();
        match ev {
            TraceEvent::RoundBegin { round, servers } => {
                line.push_str(&format!(
                    "{{\"name\":\"round {round}\",\"cat\":\"round\",\"ph\":\"B\",\"ts\":{ts},\"pid\":0,\"tid\":0,\"args\":{{\"servers\":{servers}}}}}"
                ));
            }
            TraceEvent::RoundEnd {
                round,
                tuples,
                words,
            } => {
                line.push_str(&format!(
                    "{{\"name\":\"round {round}\",\"cat\":\"round\",\"ph\":\"E\",\"ts\":{ts},\"pid\":0,\"tid\":0,\"args\":{{\"tuples\":{tuples},\"words\":{words}}}}}"
                ));
            }
            TraceEvent::Topology { round, dims } => {
                let shape = dims
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("x");
                line.push_str(&format!(
                    "{{\"name\":\"grid {shape}\",\"cat\":\"topology\",\"ph\":\"i\",\"ts\":{ts},\"pid\":0,\"tid\":0,\"s\":\"p\",\"args\":{{\"round\":{round}}}}}"
                ));
            }
            TraceEvent::Send {
                round: _,
                server,
                msgs,
                words,
            } => {
                line.push_str(&format!(
                    "{{\"name\":\"send.s{server}\",\"cat\":\"send\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\"args\":{{\"msgs\":{msgs},\"words\":{words}}}}}"
                ));
            }
            TraceEvent::Recv {
                round: _,
                server,
                tuples,
                words,
            } => {
                line.push_str(&format!(
                    "{{\"name\":\"recv.s{server}\",\"cat\":\"recv\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\"args\":{{\"tuples\":{tuples},\"words\":{words}}}}}"
                ));
            }
            TraceEvent::FaultInjected {
                round,
                server,
                kind,
            } => {
                line.push_str(&format!(
                    "{{\"name\":\"fault {kind} s{server}\",\"cat\":\"fault\",\"ph\":\"i\",\"ts\":{ts},\"pid\":0,\"tid\":2,\"s\":\"p\",\"args\":{{\"round\":{round}}}}}"
                ));
            }
            TraceEvent::RecoveryBegin {
                round,
                server,
                strategy,
            } => {
                line.push_str(&format!(
                    "{{\"name\":\"recover {strategy} s{server}\",\"cat\":\"fault\",\"ph\":\"B\",\"ts\":{ts},\"pid\":0,\"tid\":2,\"args\":{{\"round\":{round}}}}}"
                ));
            }
            TraceEvent::RecoveryEnd {
                round,
                server,
                rounds,
                tuples,
                words,
            } => {
                line.push_str(&format!(
                    "{{\"name\":\"recover s{server}\",\"cat\":\"fault\",\"ph\":\"E\",\"ts\":{ts},\"pid\":0,\"tid\":2,\"args\":{{\"round\":{round},\"rounds\":{rounds},\"tuples\":{tuples},\"words\":{words}}}}}"
                ));
            }
            TraceEvent::SpanBegin { label } => {
                line.push_str("{\"name\":\"");
                escape_into(&mut line, label);
                line.push_str(&format!(
                    "\",\"cat\":\"span\",\"ph\":\"B\",\"ts\":{ts},\"pid\":0,\"tid\":1}}"
                ));
            }
            TraceEvent::SpanEnd { label } => {
                line.push_str("{\"name\":\"");
                escape_into(&mut line, label);
                line.push_str(&format!(
                    "\",\"cat\":\"span\",\"ph\":\"E\",\"ts\":{ts},\"pid\":0,\"tid\":1}}"
                ));
            }
        }
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceSink;

    fn sample() -> Recorder {
        let mut r = Recorder::new();
        r.record(TraceEvent::SpanBegin { label: "t/\"q\"" });
        r.record(TraceEvent::RoundBegin {
            round: 0,
            servers: 2,
        });
        r.record(TraceEvent::Topology {
            round: 0,
            dims: vec![2, 3],
        });
        r.record(TraceEvent::Send {
            round: 0,
            server: 1,
            msgs: 4,
            words: 8,
        });
        r.record(TraceEvent::Recv {
            round: 0,
            server: 0,
            tuples: 4,
            words: 8,
        });
        r.record(TraceEvent::RoundEnd {
            round: 0,
            tuples: 4,
            words: 8,
        });
        r.record(TraceEvent::FaultInjected {
            round: 0,
            server: 1,
            kind: "crash",
        });
        r.record(TraceEvent::RecoveryBegin {
            round: 0,
            server: 1,
            strategy: "checkpoint",
        });
        r.record(TraceEvent::RecoveryEnd {
            round: 1,
            server: 1,
            rounds: 1,
            tuples: 4,
            words: 8,
        });
        r.record(TraceEvent::SpanEnd { label: "t/\"q\"" });
        r
    }

    #[test]
    fn jsonl_one_line_per_event_with_seq() {
        let text = jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines[0].starts_with("{\"seq\":0,\"ev\":\"span_begin\""));
        assert!(lines[0].contains("t/\\\"q\\\""), "labels are escaped");
        assert_eq!(
            lines[1],
            "{\"seq\":1,\"ev\":\"round_begin\",\"round\":0,\"servers\":2}"
        );
        assert_eq!(
            lines[2],
            "{\"seq\":2,\"ev\":\"topology\",\"round\":0,\"dims\":[2,3]}"
        );
        assert_eq!(
            lines[4],
            "{\"seq\":4,\"ev\":\"recv\",\"round\":0,\"server\":0,\"tuples\":4,\"words\":8}"
        );
        assert_eq!(
            lines[6],
            "{\"seq\":6,\"ev\":\"fault_injected\",\"round\":0,\"server\":1,\"kind\":\"crash\"}"
        );
        assert_eq!(
            lines[7],
            "{\"seq\":7,\"ev\":\"recovery_begin\",\"round\":0,\"server\":1,\"strategy\":\"checkpoint\"}"
        );
        assert_eq!(
            lines[8],
            "{\"seq\":8,\"ev\":\"recovery_end\",\"round\":1,\"server\":1,\"rounds\":1,\"tuples\":4,\"words\":8}"
        );
    }

    #[test]
    fn jsonl_seq_starts_at_dropped() {
        let mut r = Recorder::with_capacity(1);
        r.record(TraceEvent::SpanBegin { label: "a" });
        r.record(TraceEvent::SpanEnd { label: "a" });
        let text = jsonl(&r);
        assert!(text.starts_with("{\"seq\":1,"), "got: {text}");
    }

    #[test]
    fn chrome_trace_is_balanced_json() {
        let text = chrome_trace(&sample());
        assert!(text.starts_with("{\"traceEvents\":[\n"));
        assert!(text.ends_with("\n],\"displayTimeUnit\":\"ms\"}\n"));
        // Durations must come in B/E pairs.
        assert_eq!(
            text.matches("\"ph\":\"B\"").count(),
            text.matches("\"ph\":\"E\"").count()
        );
        // Counter events carry no tid (one track per counter name).
        assert!(text.contains("\"name\":\"recv.s0\""));
        assert!(text.contains("\"name\":\"grid 2x3\""));
        // Fault markers land on their own thread lane.
        assert!(text.contains("\"name\":\"fault crash s1\""));
        assert!(text.contains("\"name\":\"recover checkpoint s1\",\"cat\":\"fault\",\"ph\":\"B\""));
    }

    #[test]
    fn exports_are_reproducible() {
        let a = sample();
        let b = sample();
        assert_eq!(jsonl(&a), jsonl(&b));
        assert_eq!(chrome_trace(&a), chrome_trace(&b));
    }

    #[test]
    fn escape_handles_control_chars() {
        let mut s = String::new();
        escape_into(&mut s, "a\x01b\nc");
        assert_eq!(s, "a\\u0001b\\nc");
    }
}
