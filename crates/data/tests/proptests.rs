//! Property tests for the data layer: the Zipf sampler realizes its
//! target skew exponent, and the FxHash partitioner spreads both random
//! and adversarially-regular (sequential) keys uniformly across `p`
//! buckets. Both properties are exactly what the skew-resilience
//! analyses assume about the workload generators, so they are checked
//! here once and relied on everywhere else.

use parqp_data::fasthash::FxHasher;
use parqp_data::zipf::Zipf;
use parqp_data::FastMap;
use parqp_testkit::prelude::*;
use std::hash::Hasher;

/// Least-squares slope of `log freq(k)` against `log k` over the head
/// of the distribution: for Zipf(α) samples this estimates `-α`.
fn estimate_alpha(counts: &FastMap<u64, u64>, head: u64) -> f64 {
    let points: Vec<(f64, f64)> = (1..=head)
        .filter_map(|k| {
            let c = *counts.get(&k)?;
            (c > 0).then(|| ((k as f64).ln(), (c as f64).ln()))
        })
        .collect();
    assert!(points.len() >= 3, "not enough head mass to fit a slope");
    let n = points.len() as f64;
    let (sx, sy): (f64, f64) = points
        .iter()
        .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x, b + y));
    let (sxx, sxy): (f64, f64) = points
        .iter()
        .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x * x, b + x * y));
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    -slope
}

fn fx_bucket(v: u64, p: usize) -> usize {
    let mut h = FxHasher::default();
    h.write_u64(v);
    (h.finish() % p as u64) as usize
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The sampler's empirical head frequencies fall on a `k^{-α}` line
    /// with the α it was asked for.
    #[test]
    fn zipf_hits_target_skew_exponent(
        alpha_tenths in 6u64..16,
        seed in 0u64..1_000_000,
    ) {
        let alpha = alpha_tenths as f64 / 10.0;
        let n_samples = 120_000;
        let z = Zipf::new(5_000, alpha);
        let mut rng = Rng::seed_from_u64(seed);
        let mut counts: FastMap<u64, u64> = FastMap::default();
        for _ in 0..n_samples {
            *counts.entry(z.sample(&mut rng)).or_insert(0) += 1;
        }
        let estimate = estimate_alpha(&counts, 12);
        prop_assert!(
            (estimate - alpha).abs() < 0.12,
            "α = {alpha}, estimated {estimate:.3} from {n_samples} samples"
        );
    }

    /// Empirical frequency of each head value matches the analytic pmf.
    #[test]
    fn zipf_head_matches_pmf(
        alpha_tenths in 0u64..16,
        seed in 0u64..1_000_000,
    ) {
        let alpha = alpha_tenths as f64 / 10.0;
        let n_samples = 60_000u64;
        let z = Zipf::new(1_000, alpha);
        let mut rng = Rng::seed_from_u64(seed);
        let mut counts: FastMap<u64, u64> = FastMap::default();
        for _ in 0..n_samples {
            *counts.entry(z.sample(&mut rng)).or_insert(0) += 1;
        }
        for k in 1..=5u64 {
            let expect = z.pmf(k) * n_samples as f64;
            let got = *counts.get(&k).unwrap_or(&0) as f64;
            // 5 standard deviations of the binomial count, floored so
            // tiny expectations (uniform case) keep a usable band.
            let sd = expect.sqrt().max(4.0);
            prop_assert!(
                (got - expect).abs() <= 5.0 * sd,
                "α = {alpha}, value {k}: expected ≈{expect:.0}, got {got}"
            );
        }
    }

    /// Random keys spread across `p` FxHash buckets with every bucket
    /// near the `n/p` ideal.
    #[test]
    fn fasthash_partitions_random_keys_uniformly(
        p in 2usize..=64,
        seed in 0u64..1_000_000,
    ) {
        let n = 16_384usize;
        let mut rng = Rng::seed_from_u64(seed);
        let mut buckets = vec![0u64; p];
        for _ in 0..n {
            buckets[fx_bucket(rng.next_u64(), p)] += 1;
        }
        let ideal = n as f64 / p as f64;
        let max = *buckets.iter().max().expect("p >= 2") as f64;
        let min = *buckets.iter().min().expect("p >= 2") as f64;
        prop_assert!(
            max <= 1.5 * ideal && min >= 0.5 * ideal,
            "p = {p}: bucket range [{min}, {max}] vs ideal {ideal:.1}"
        );
    }

    /// Sequential keys are the classic failure mode of multiplicative
    /// hashing; FxHash's rotate-and-multiply must still spread them.
    #[test]
    fn fasthash_partitions_sequential_keys_uniformly(
        p in 2usize..=64,
        start in 0u64..1_000_000_000,
    ) {
        let n = 16_384u64;
        let mut buckets = vec![0u64; p];
        for v in start..start + n {
            buckets[fx_bucket(v, p)] += 1;
        }
        let ideal = n as f64 / p as f64;
        let max = *buckets.iter().max().expect("p >= 2") as f64;
        let min = *buckets.iter().min().expect("p >= 2") as f64;
        prop_assert!(
            max <= 1.5 * ideal && min >= 0.5 * ideal,
            "p = {p}, start {start}: bucket range [{min}, {max}] vs ideal {ideal:.1}"
        );
    }

    /// Generators are pure functions of the seed: byte-identical
    /// relations on replay, different relations on a different seed.
    #[test]
    fn generators_deterministic_in_seed(
        n in 1usize..500,
        domain in 1u64..1_000,
        seed in 0u64..1_000_000,
    ) {
        use parqp_data::generate;
        let a = generate::uniform(2, n, domain, seed);
        let b = generate::uniform(2, n, domain, seed);
        prop_assert_eq!(a.to_rows(), b.to_rows());
        let z1 = generate::zipf_pairs(n, domain as usize, 1.1, 0, seed);
        let z2 = generate::zipf_pairs(n, domain as usize, 1.1, 0, seed);
        prop_assert_eq!(z1.to_rows(), z2.to_rows());
    }
}
