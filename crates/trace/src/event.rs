//! The trace event model and the sink trait.
//!
//! Events mirror the simulator's ledger at exchange granularity: one
//! `RoundBegin … RoundEnd` block per recorded round, containing one
//! `Recv` per server that received anything (zero-load servers are
//! elided — `RoundBegin::servers` lets analyses reconstruct the
//! zeros), one `Send` per server whose fan-out was attributed via
//! `Exchange::set_sender`, and at most one `Topology` carrying the
//! grid dimensions when the round used HyperCube addressing. Span
//! events are the only kind algorithm crates trigger (through
//! `parqp_trace::span`); everything else is emitted by `parqp-mpc`
//! alone (lint rule PQ105).

/// One structured observation about a simulated MPC run.
///
/// `round` is the cluster-local round index (the value
/// `Cluster::rounds_so_far()` had when the round was recorded). A
/// capture that spans several clusters — e.g. SkewHC running one
/// residual HyperCube per heavy-hitter combination — simply contains
/// several interleaved numbering sequences; the recorder's `seq`
/// ordering keeps the stream unambiguous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A recorded round is being finalized on a cluster of `servers`.
    RoundBegin {
        /// Cluster-local round index.
        round: usize,
        /// Cluster size `p`.
        servers: usize,
    },
    /// The round routed messages over a `p₁ × … × p_k` grid.
    Topology {
        /// Cluster-local round index.
        round: usize,
        /// Per-dimension grid sizes (the HyperCube shares).
        dims: Vec<usize>,
    },
    /// Server `server` sent `msgs` messages totalling `words` words
    /// this round. Present only when the algorithm attributed senders
    /// via `Exchange::set_sender`; receive-side `Recv` events are the
    /// ground truth the ledger charges.
    Send {
        /// Cluster-local round index.
        round: usize,
        /// Sending server rank.
        server: usize,
        /// Messages sent by `server`.
        msgs: u64,
        /// Words sent by `server`.
        words: u64,
    },
    /// Server `server` received `tuples` tuples (`words` words) this
    /// round. Emitted only for servers with nonzero load.
    Recv {
        /// Cluster-local round index.
        round: usize,
        /// Receiving server rank.
        server: usize,
        /// Tuples received by `server`.
        tuples: u64,
        /// Words received by `server`.
        words: u64,
    },
    /// The round closed with the given communication totals.
    RoundEnd {
        /// Cluster-local round index.
        round: usize,
        /// Total tuples received across all servers this round.
        tuples: u64,
        /// Total words received across all servers this round.
        words: u64,
    },
    /// A scheduled fault fired on `server` while ledger round `round`
    /// was being recorded (see `parqp-faults`). Emitted by `parqp-mpc`
    /// alone, like every non-span event (lint rule PQ106).
    FaultInjected {
        /// Ledger round index the fault was charged to.
        round: usize,
        /// Victim server rank.
        server: usize,
        /// Stable fault name (`"crash"`, `"drop"`, `"duplicate"`,
        /// `"straggle"`).
        kind: &'static str,
    },
    /// Recovery from the fault at `(round, server)` began.
    RecoveryBegin {
        /// Ledger round index of the fault being recovered from.
        round: usize,
        /// Victim server rank.
        server: usize,
        /// Stable mechanism name (`"checkpoint"`, `"replication"`,
        /// `"retransmit"`, `"speculate"`, `"dedup"`).
        strategy: &'static str,
    },
    /// Recovery completed, having appended `rounds` extra ledger
    /// rounds and charged the given extra load.
    RecoveryEnd {
        /// Ledger round index of the *last* round recovery touched.
        round: usize,
        /// Victim server rank.
        server: usize,
        /// Extra ledger rounds appended (0 for same-round recovery).
        rounds: usize,
        /// Extra tuples charged to the ledger.
        tuples: u64,
        /// Extra words charged to the ledger.
        words: u64,
    },
    /// An algorithm phase opened (e.g. `"hypercube/shuffle"`).
    SpanBegin {
        /// Static phase label, conventionally `"algorithm/phase"`.
        label: &'static str,
    },
    /// The matching algorithm phase closed.
    SpanEnd {
        /// Static phase label.
        label: &'static str,
    },
}

/// A consumer of [`TraceEvent`]s.
///
/// The in-tree implementation is the ring-buffered
/// [`Recorder`](crate::Recorder); tests may provide their own. A
/// sink's [`record`](TraceSink::record) must not re-enter the trace
/// registry (calling [`emit`](crate::emit) or opening a
/// [`span`](crate::span) from inside `record` panics on the registry's
/// `RefCell`).
pub trait TraceSink {
    /// Observe one event. Called in deterministic program order.
    fn record(&mut self, event: TraceEvent);
}
