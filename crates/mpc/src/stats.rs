//! Per-round communication statistics and the final load report.
//!
//! The MPC cost of an algorithm is the pair `(L, r)` — maximum per-server
//! per-round communication, and number of rounds (slides 12–20). The
//! cluster records a [`RoundStats`] for every exchange; [`LoadReport`]
//! summarizes a full run.

/// Communication received in one round, per server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundStats {
    /// Tuples (messages) received by each server this round.
    pub tuples: Vec<u64>,
    /// Words received by each server this round (see [`crate::Weight`]).
    pub words: Vec<u64>,
}

impl RoundStats {
    /// A round in which no server received anything, on `p` servers.
    pub fn zero(p: usize) -> Self {
        Self {
            tuples: vec![0; p],
            words: vec![0; p],
        }
    }

    /// Maximum number of tuples received by any single server.
    pub fn max_tuples(&self) -> u64 {
        self.tuples.iter().copied().max().unwrap_or(0)
    }

    /// Maximum number of words received by any single server.
    pub fn max_words(&self) -> u64 {
        self.words.iter().copied().max().unwrap_or(0)
    }

    /// Total tuples communicated this round.
    pub fn total_tuples(&self) -> u64 {
        self.tuples.iter().sum()
    }

    /// Total words communicated this round.
    pub fn total_words(&self) -> u64 {
        self.words.iter().sum()
    }
}

/// Summary of a complete MPC run: the quantities the paper's theorems bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// Number of servers `p`.
    pub servers: usize,
    /// One entry per communication round.
    pub rounds: Vec<RoundStats>,
}

impl LoadReport {
    /// Number of communication rounds `r`.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// The load `L` in tuples: max over servers and rounds of tuples received.
    pub fn max_load_tuples(&self) -> u64 {
        self.rounds
            .iter()
            .map(RoundStats::max_tuples)
            .max()
            .unwrap_or(0)
    }

    /// The load `L` in words: max over servers and rounds of words received.
    pub fn max_load_words(&self) -> u64 {
        self.rounds
            .iter()
            .map(RoundStats::max_words)
            .max()
            .unwrap_or(0)
    }

    /// Total communication `C` in tuples, summed over all rounds and servers.
    pub fn total_tuples(&self) -> u64 {
        self.rounds.iter().map(RoundStats::total_tuples).sum()
    }

    /// Total communication `C` in words.
    pub fn total_words(&self) -> u64 {
        self.rounds.iter().map(RoundStats::total_words).sum()
    }

    /// Sum over rounds of the per-round *maximum* tuple load.
    ///
    /// This is the `r × L`-style cost when rounds have unequal loads: the
    /// critical-path communication volume through the most loaded server.
    pub fn sum_of_round_maxima(&self) -> u64 {
        self.rounds.iter().map(RoundStats::max_tuples).sum()
    }

    /// Per-round maximum tuple loads, one entry per round.
    pub fn round_max_tuples(&self) -> Vec<u64> {
        self.rounds.iter().map(RoundStats::max_tuples).collect()
    }

    /// Compose reports of algorithms that ran **side by side on disjoint
    /// server groups** in the same global rounds (e.g. the per-heavy-hitter
    /// Cartesian grids of the skew join, or SkewHC's residual queries).
    ///
    /// Round `i` of the result contains the concatenation of every group's
    /// round `i` (groups that finished early contribute zero); the total
    /// server count is the sum of group sizes.
    pub fn parallel(reports: &[LoadReport]) -> LoadReport {
        let servers = reports.iter().map(|r| r.servers).sum();
        let rounds = reports
            .iter()
            .map(LoadReport::num_rounds)
            .max()
            .unwrap_or(0);
        let mut out = Vec::with_capacity(rounds);
        for i in 0..rounds {
            let mut tuples = Vec::with_capacity(servers);
            let mut words = Vec::with_capacity(servers);
            for r in reports {
                match r.rounds.get(i) {
                    Some(rs) => {
                        tuples.extend_from_slice(&rs.tuples);
                        words.extend_from_slice(&rs.words);
                    }
                    None => {
                        tuples.resize(tuples.len() + r.servers, 0);
                        words.resize(words.len() + r.servers, 0);
                    }
                }
            }
            out.push(RoundStats { tuples, words });
        }
        LoadReport {
            servers,
            rounds: out,
        }
    }

    /// Compose reports of algorithm phases that ran **one after another on
    /// the same servers**: rounds are concatenated.
    ///
    /// # Panics
    /// Panics if the reports disagree on the server count.
    pub fn sequential(reports: &[LoadReport]) -> LoadReport {
        let servers = reports.first().map_or(0, |r| r.servers);
        let mut rounds = Vec::new();
        for r in reports {
            assert_eq!(
                r.servers, servers,
                "sequential phases must share the cluster"
            );
            rounds.extend(r.rounds.iter().cloned());
        }
        LoadReport { servers, rounds }
    }
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p={} r={} L={} tuples ({} words) C={} tuples",
            self.servers,
            self.num_rounds(),
            self.max_load_tuples(),
            self.max_load_words(),
            self.total_tuples()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LoadReport {
        LoadReport {
            servers: 3,
            rounds: vec![
                RoundStats {
                    tuples: vec![5, 2, 1],
                    words: vec![10, 4, 2],
                },
                RoundStats {
                    tuples: vec![0, 7, 3],
                    words: vec![0, 14, 6],
                },
            ],
        }
    }

    #[test]
    fn max_load() {
        let r = sample();
        assert_eq!(r.max_load_tuples(), 7);
        assert_eq!(r.max_load_words(), 14);
    }

    #[test]
    fn totals() {
        let r = sample();
        assert_eq!(r.total_tuples(), 18);
        assert_eq!(r.total_words(), 36);
        assert_eq!(r.num_rounds(), 2);
        assert_eq!(r.sum_of_round_maxima(), 12);
        assert_eq!(r.round_max_tuples(), vec![5, 7]);
    }

    #[test]
    fn empty_report() {
        let r = LoadReport {
            servers: 4,
            rounds: vec![],
        };
        assert_eq!(r.max_load_tuples(), 0);
        assert_eq!(r.total_tuples(), 0);
        assert_eq!(r.num_rounds(), 0);
    }

    #[test]
    fn zero_round() {
        let z = RoundStats::zero(3);
        assert_eq!(z.max_tuples(), 0);
        assert_eq!(z.total_words(), 0);
        assert_eq!(z.tuples.len(), 3);
    }

    #[test]
    fn parallel_composition_pads_and_concats() {
        let a = LoadReport {
            servers: 2,
            rounds: vec![
                RoundStats {
                    tuples: vec![1, 2],
                    words: vec![1, 2],
                },
                RoundStats {
                    tuples: vec![3, 0],
                    words: vec![3, 0],
                },
            ],
        };
        let b = LoadReport {
            servers: 1,
            rounds: vec![RoundStats {
                tuples: vec![9],
                words: vec![9],
            }],
        };
        let m = LoadReport::parallel(&[a, b]);
        assert_eq!(m.servers, 3);
        assert_eq!(m.num_rounds(), 2);
        assert_eq!(m.rounds[0].tuples, vec![1, 2, 9]);
        assert_eq!(m.rounds[1].tuples, vec![3, 0, 0]);
        assert_eq!(m.max_load_tuples(), 9);
    }

    #[test]
    fn sequential_composition_concats_rounds() {
        let a = LoadReport {
            servers: 2,
            rounds: vec![RoundStats {
                tuples: vec![1, 2],
                words: vec![1, 2],
            }],
        };
        let b = LoadReport {
            servers: 2,
            rounds: vec![RoundStats {
                tuples: vec![5, 0],
                words: vec![5, 0],
            }],
        };
        let s = LoadReport::sequential(&[a, b]);
        assert_eq!(s.num_rounds(), 2);
        assert_eq!(s.max_load_tuples(), 5);
        assert_eq!(s.total_tuples(), 8);
    }

    #[test]
    fn parallel_of_nothing_is_empty() {
        let m = LoadReport::parallel(&[]);
        assert_eq!(m.servers, 0);
        assert_eq!(m.num_rounds(), 0);
    }

    #[test]
    fn display_mentions_everything() {
        let s = sample().to_string();
        assert!(s.contains("p=3"));
        assert!(s.contains("r=2"));
        assert!(s.contains("L=7"));
    }
}
