//! Planner integration: the decision procedure picks sensible strategies
//! and the chosen strategy is never grossly worse than the alternatives
//! it rejected; plus empirical validation of the analytic model.

use parqp::data::generate;
use parqp::join::{multiway, twoway};
use parqp::model;
use parqp::planner::{plan, plan_and_run, run_plan, Strategy};
use parqp::prelude::*;
use parqp_data::Relation;
use parqp_mpc::HashFamily;

#[test]
fn planner_correct_on_a_matrix_of_shapes_and_skews() {
    let cases: Vec<(Query, Vec<Relation>)> = vec![
        (
            Query::two_way(),
            vec![
                generate::uniform(2, 300, 1 << 20, 1),
                generate::uniform(2, 300, 1 << 20, 2),
            ],
        ),
        (
            Query::two_way(),
            vec![
                generate::zipf_pairs(300, 50, 1.3, 1, 3),
                generate::zipf_pairs(300, 50, 1.3, 0, 4),
            ],
        ),
        (
            Query::product(),
            vec![
                generate::uniform(1, 40, 100, 5),
                generate::uniform(1, 50, 100, 6),
            ],
        ),
        (
            Query::triangle(),
            vec![
                generate::random_symmetric_graph(40, 300, 7),
                generate::random_symmetric_graph(40, 300, 7),
                generate::random_symmetric_graph(40, 300, 7),
            ],
        ),
        (
            Query::star(3),
            (0..3)
                .map(|i| generate::key_unique_pairs(200, 0, 200, 8 + i))
                .collect(),
        ),
    ];
    for (q, rels) in cases {
        for p in [2, 8, 32] {
            let (d, run) = plan_and_run(&q, &rels, p, 42);
            let expect = parqp::query::evaluate(&q, &rels);
            assert_eq!(
                run.gathered().canonical(),
                expect.canonical(),
                "{q} at p={p}: {:?} gave a wrong answer",
                d.strategy
            );
        }
    }
}

#[test]
fn planner_never_picks_catastrophic_strategy_under_skew() {
    // Under extreme two-way skew the planner must not pick HashJoin.
    let r = generate::constant_key_pairs(1000, 7, 1);
    let s = generate::constant_key_pairs(1000, 7, 0);
    let q = Query::two_way();
    let d = plan(&q, &[r.clone(), s.clone()], 16);
    assert_ne!(d.strategy, Strategy::HashJoin, "{}", d.reason);
    // And the chosen strategy beats hash join's load by a wide margin.
    let chosen = run_plan(&q, &[r.clone(), s.clone()], 16, 3, &d.strategy);
    let hash = twoway::hash_join(&r, 1, &s, 0, 16, 3);
    assert!(chosen.report.max_load_tuples() * 2 < hash.report.max_load_tuples());
}

#[test]
fn planner_reasons_mention_slides() {
    let r = generate::uniform(2, 100, 1 << 20, 9);
    let s = generate::uniform(2, 100, 1 << 20, 10);
    let d = plan(&Query::two_way(), &[r, s], 8);
    assert!(
        d.reason.contains("slide"),
        "reasons cite the paper: {}",
        d.reason
    );
}

#[test]
fn chernoff_bound_validated_empirically() {
    // Hash-partition a no-skew input many times; the frequency of
    // exceeding (1+ε)·IN/p must not beat the Chernoff bound of slide 24.
    let input = 20_000u64;
    let p = 16usize;
    let eps = 0.5;
    let trials = 60u32;
    let mut exceed = 0u32;
    for seed in 0..trials {
        let h = HashFamily::new(u64::from(seed), 1);
        let mut counts = vec![0u64; p];
        for v in 0..input {
            counts[h.hash(0, v, p)] += 1;
        }
        let max = *counts.iter().max().expect("nonempty");
        if (max as f64) >= (1.0 + eps) * input as f64 / p as f64 {
            exceed += 1;
        }
    }
    let bound = model::hash_partition_tail_bound(input as f64, p as f64, 1.0, eps);
    let freq = f64::from(exceed) / f64::from(trials);
    assert!(
        freq <= bound + 0.05,
        "empirical exceedance {freq} violates Chernoff bound {bound}"
    );
}

#[test]
fn degree_threshold_marks_real_transition() {
    // Partition inputs of varying uniform degree; loads stay near IN/p
    // below the slide 26 threshold and blow past it for degrees far above.
    let input = 40_000usize;
    let p = 16usize;
    let eps = 0.3;
    let threshold = model::degree_threshold(input as f64, p as f64, eps, 0.05);
    let measure = |d: usize| -> f64 {
        let rel = generate::uniform_degree_pairs(input, d, 0, 1 << 30, d as u64);
        let run = twoway::hash_join(&rel, 0, &generate::key_unique_pairs(1, 0, 2, 1), 0, p, 7);
        run.report.max_load_tuples() as f64 / (rel.len() as f64 / p as f64)
    };
    let low = measure((threshold / 4.0).max(1.0) as usize);
    let high = measure(input / 4); // only 4 distinct keys
    assert!(low < 1.0 + 2.0 * eps, "low-degree load ratio {low}");
    assert!(high > 2.0, "high-degree load ratio {high} should blow up");
}

#[test]
fn hypercube_speedup_curve_shape() {
    // Slide 45: measured speedup approaches p^{1/τ*} from above as p
    // grows (integer shares give extra speedup at small p).
    let q = Query::triangle();
    let n = 20_000;
    let g = generate::uniform(2, n, 1 << 40, 11);
    let rels = vec![g.clone(), g.clone(), g];
    let l1 = multiway::hypercube(&q, &rels, 1, 5)
        .report
        .max_load_tuples() as f64;
    assert_eq!(l1 as u64, 3 * n as u64, "p=1 holds the whole input");
    for p in [8usize, 64, 512] {
        let l = multiway::hypercube(&q, &rels, p, 5)
            .report
            .max_load_tuples() as f64;
        let speedup = l1 / l;
        let ideal = model::hypercube_speedup(p as f64, model::tau_star(&q));
        assert!(
            speedup > 0.5 * ideal && speedup < 3.0 * ideal,
            "p={p}: speedup {speedup} vs ideal {ideal}"
        );
    }
}
