//! The [`MetricsRegistry`]: counters, gauges, a power-of-two receive
//! histogram, and announced bounds, all fed by the simulator's
//! [`TraceEvent`] stream.
//!
//! The registry is a [`TraceSink`], so it can also be filled offline
//! from a captured `Recorder` via [`MetricsRegistry::ingest`]. Every
//! container is a `BTreeMap` or a dense vector — iteration order is
//! deterministic by construction (PQ001).

use std::collections::BTreeMap;

use parqp_trace::{TraceEvent, TraceSink};

use crate::bound::{BoundProvider, LoadUnit};

/// One announced bound, as recorded by [`MetricsRegistry::announce_bound`].
#[derive(Debug, Clone, PartialEq)]
pub struct BoundRecord {
    /// Stable algorithm name.
    pub algorithm: &'static str,
    /// Predicted per-server per-round load in `unit`.
    pub predicted_load: f64,
    /// Predicted round count.
    pub predicted_rounds: usize,
    /// Unit of `predicted_load`.
    pub unit: LoadUnit,
}

/// Counters, gauges, histograms, and bound-adherence state for one
/// observed run (or one experiment's worth of runs).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<String, f64>,
    /// Power-of-two histogram of per-server per-round receive loads in
    /// tuples: bucket 0 counts zero loads, bucket `k ≥ 1` counts loads
    /// in `[2^(k−1), 2^k − 1]` — the same shape `parqp_trace::analyze`
    /// uses, so the two stay comparable.
    recv_hist: Vec<u64>,
    bounds: Vec<BoundRecord>,
    load_max_tuples: u64,
    load_max_words: u64,
    round_servers: usize,
    round_max_tuples: u64,
    max_skew_ratio: f64,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe one simulator event (the [`TraceSink`] entry point).
    pub fn observe_event(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::RoundBegin { servers, .. } => {
                self.add("rounds", 1);
                self.round_servers = servers;
                self.round_max_tuples = 0;
            }
            TraceEvent::Topology { .. } => self.add("topologies", 1),
            TraceEvent::Send { msgs, words, .. } => {
                self.add("sends", msgs);
                self.add("send_words", words);
            }
            TraceEvent::Recv { tuples, words, .. } => {
                self.add("recvs", 1);
                self.bump_hist(tuples);
                self.load_max_tuples = self.load_max_tuples.max(tuples);
                self.load_max_words = self.load_max_words.max(words);
                self.round_max_tuples = self.round_max_tuples.max(tuples);
            }
            TraceEvent::RoundEnd { tuples, words, .. } => {
                self.add("tuples", tuples);
                self.add("words", words);
                if self.round_servers > 0 && tuples > 0 {
                    let mean = tuples as f64 / self.round_servers as f64;
                    let ratio = self.round_max_tuples as f64 / mean;
                    self.max_skew_ratio = self.max_skew_ratio.max(ratio);
                }
            }
            TraceEvent::FaultInjected { .. } => self.add("faults_injected", 1),
            TraceEvent::RecoveryBegin { .. } => self.add("recoveries", 1),
            TraceEvent::RecoveryEnd {
                rounds,
                tuples,
                words,
                ..
            } => {
                self.add("recovery_rounds", rounds as u64);
                self.add("recovery_tuples", tuples);
                self.add("recovery_words", words);
            }
            TraceEvent::SpanBegin { .. } => self.add("spans", 1),
            TraceEvent::SpanEnd { .. } => {}
        }
    }

    /// Observe a drained page-IO delta from the store ledger: counters
    /// `io_reads`, `io_misses` and `io_evictions` accumulate exactly
    /// what the buffer pools measured (the second cost axis beside
    /// communication load). Zero deltas are recorded as-is.
    pub fn observe_io(&mut self, reads: u64, misses: u64, evictions: u64) {
        self.add("io_reads", reads);
        self.add("io_misses", misses);
        self.add("io_evictions", evictions);
    }

    /// Total logical page reads observed (counter `io_reads`).
    pub fn io_reads(&self) -> u64 {
        self.counter("io_reads")
    }

    /// Buffer-pool hit rate `1 − io_misses/io_reads`; 0 when no paged
    /// scan ran.
    pub fn io_hit_rate(&self) -> f64 {
        let reads = self.counter("io_reads");
        if reads == 0 {
            0.0
        } else {
            1.0 - self.counter("io_misses") as f64 / reads as f64
        }
    }

    /// Feed every event of an already-captured stream into the
    /// registry (offline filling, e.g. from a `Recorder`).
    pub fn ingest<'a>(&mut self, events: impl IntoIterator<Item = &'a TraceEvent>) {
        for event in events {
            self.observe_event(event);
        }
    }

    /// Record an announced bound: the first announcement of a capture
    /// is the run's *primary* bound (outermost algorithm announces
    /// before any sub-algorithm it delegates to).
    pub fn announce_bound(&mut self, bound: &dyn BoundProvider) {
        let record = BoundRecord {
            algorithm: bound.algorithm(),
            predicted_load: bound.predicted_load(),
            predicted_rounds: bound.predicted_rounds(),
            unit: bound.unit(),
        };
        self.set_gauge(
            format!("bound.{}.predicted_load", record.algorithm),
            record.predicted_load,
        );
        self.set_gauge(
            format!("bound.{}.predicted_rounds", record.algorithm),
            record.predicted_rounds as f64,
        );
        self.bounds.push(record);
    }

    /// Set gauge `name` to `value` (overwrites).
    pub fn set_gauge(&mut self, name: impl Into<String>, value: f64) {
        self.gauges.insert(name.into(), value);
    }

    /// Counter value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Every announced bound, in announcement order.
    pub fn bounds(&self) -> &[BoundRecord] {
        &self.bounds
    }

    /// The first announced bound — the outermost algorithm of the
    /// capture, whose prediction the run is judged against.
    pub fn primary_bound(&self) -> Option<&BoundRecord> {
        self.bounds.first()
    }

    /// Maximum per-server per-round receive load observed, in `unit`.
    pub fn load_max(&self, unit: LoadUnit) -> u64 {
        match unit {
            LoadUnit::Tuples => self.load_max_tuples,
            LoadUnit::Words => self.load_max_words,
        }
    }

    /// Rounds observed (counter `rounds`).
    pub fn rounds(&self) -> u64 {
        self.counter("rounds")
    }

    /// `measured_L / predicted_L` against the primary bound, in the
    /// bound's own unit. `None` without a (positive) announced bound.
    pub fn bound_ratio(&self) -> Option<f64> {
        let bound = self.primary_bound()?;
        if bound.predicted_load <= 0.0 {
            return None;
        }
        Some(self.load_max(bound.unit) as f64 / bound.predicted_load)
    }

    /// Largest per-round `max / mean` receive-load ratio observed (1.0
    /// is perfectly balanced; 0.0 when no round carried load).
    pub fn max_skew_ratio(&self) -> f64 {
        self.max_skew_ratio
    }

    /// The power-of-two receive histogram: bucket 0 counts zero loads,
    /// bucket `k ≥ 1` counts loads in `[2^(k−1), 2^k − 1]` tuples.
    pub fn recv_histogram(&self) -> &[u64] {
        &self.recv_hist
    }

    fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    fn bump_hist(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        if self.recv_hist.len() <= bucket {
            self.recv_hist.resize(bucket + 1, 0);
        }
        self.recv_hist[bucket] += 1;
    }
}

impl TraceSink for MetricsRegistry {
    fn record(&mut self, event: TraceEvent) {
        self.observe_event(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::PaperBound;

    fn round(reg: &mut MetricsRegistry, round: usize, servers: usize, loads: &[u64]) {
        reg.observe_event(&TraceEvent::RoundBegin { round, servers });
        let mut total = 0;
        for (server, &tuples) in loads.iter().enumerate() {
            if tuples > 0 {
                reg.observe_event(&TraceEvent::Recv {
                    round,
                    server,
                    tuples,
                    words: 2 * tuples,
                });
            }
            total += tuples;
        }
        reg.observe_event(&TraceEvent::RoundEnd {
            round,
            tuples: total,
            words: 2 * total,
        });
    }

    #[test]
    fn counters_and_maxima_track_the_stream() {
        let mut reg = MetricsRegistry::new();
        round(&mut reg, 0, 4, &[10, 20, 0, 30]);
        round(&mut reg, 1, 4, &[5, 5, 5, 5]);
        assert_eq!(reg.rounds(), 2);
        assert_eq!(reg.counter("tuples"), 80);
        assert_eq!(reg.counter("words"), 160);
        assert_eq!(reg.counter("recvs"), 7);
        assert_eq!(reg.load_max(LoadUnit::Tuples), 30);
        assert_eq!(reg.load_max(LoadUnit::Words), 60);
        // Round 0: max 30 over mean 15 ⇒ skew 2; round 1 is balanced.
        assert_eq!(reg.max_skew_ratio(), 2.0);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut reg = MetricsRegistry::new();
        round(&mut reg, 0, 4, &[1, 2, 3, 8]);
        // value 1 → bucket 1; values 2,3 → bucket 2; value 8 → bucket 4.
        assert_eq!(reg.recv_histogram(), &[0, 1, 2, 0, 1]);
    }

    #[test]
    fn first_announcement_is_primary() {
        let mut reg = MetricsRegistry::new();
        reg.announce_bound(&PaperBound::tuples("skew_join", 100.0, 1));
        reg.announce_bound(&PaperBound::tuples("hash_join", 40.0, 1));
        round(&mut reg, 0, 2, &[110, 90]);
        assert_eq!(reg.primary_bound().map(|b| b.algorithm), Some("skew_join"));
        assert_eq!(reg.bound_ratio(), Some(1.1));
        assert_eq!(reg.gauge("bound.hash_join.predicted_load"), Some(40.0));
        assert_eq!(reg.bounds().len(), 2);
    }

    #[test]
    fn word_denominated_bounds_use_word_loads() {
        let mut reg = MetricsRegistry::new();
        reg.announce_bound(&PaperBound::words("matmul_square", 80.0, 3));
        round(&mut reg, 0, 2, &[20, 50]); // words = 2 × tuples = 100 max
        assert_eq!(reg.bound_ratio(), Some(100.0 / 80.0));
    }

    #[test]
    fn fault_and_recovery_events_are_counted() {
        let mut reg = MetricsRegistry::new();
        reg.observe_event(&TraceEvent::FaultInjected {
            round: 0,
            server: 1,
            kind: "crash",
        });
        reg.observe_event(&TraceEvent::RecoveryBegin {
            round: 0,
            server: 1,
            strategy: "checkpoint",
        });
        reg.observe_event(&TraceEvent::RecoveryEnd {
            round: 1,
            server: 1,
            rounds: 1,
            tuples: 25,
            words: 50,
        });
        reg.observe_event(&TraceEvent::SpanBegin { label: "x/y" });
        reg.observe_event(&TraceEvent::SpanEnd { label: "x/y" });
        assert_eq!(reg.counter("faults_injected"), 1);
        assert_eq!(reg.counter("recoveries"), 1);
        assert_eq!(reg.counter("recovery_rounds"), 1);
        assert_eq!(reg.counter("recovery_tuples"), 25);
        assert_eq!(reg.counter("recovery_words"), 50);
        assert_eq!(reg.counter("spans"), 1);
    }

    #[test]
    fn io_deltas_accumulate_into_counters() {
        let mut reg = MetricsRegistry::new();
        assert_eq!(reg.io_reads(), 0);
        assert_eq!(reg.io_hit_rate(), 0.0);
        reg.observe_io(80, 10, 2);
        reg.observe_io(20, 10, 3);
        assert_eq!(reg.io_reads(), 100);
        assert_eq!(reg.counter("io_misses"), 20);
        assert_eq!(reg.counter("io_evictions"), 5);
        assert!((reg.io_hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn zero_predicted_load_yields_no_ratio() {
        let mut reg = MetricsRegistry::new();
        reg.announce_bound(&PaperBound::tuples("empty", 0.0, 0));
        assert_eq!(reg.bound_ratio(), None);
        assert!(MetricsRegistry::new().bound_ratio().is_none());
    }
}
