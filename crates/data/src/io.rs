//! Loading and saving relations as delimited text.
//!
//! A downstream user's data rarely starts as `Vec<u64>`s; this module
//! reads and writes relations as CSV/TSV-style text with one tuple per
//! line. Values must be unsigned integers (the engine is
//! integer-encoded; dictionary-encode strings upstream).

use crate::relation::{Relation, Value};
use std::io::{BufWriter, Write};
use std::path::Path;

/// An I/O or parse failure while reading a relation.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "relation I/O error: {e}"),
            IoError::Parse { line, message } => {
                write!(f, "relation parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parse a relation from delimited text: one tuple per line, values
/// separated by `delim`, `#`-prefixed lines and blank lines ignored.
/// The arity is fixed by the first data line.
pub fn parse_relation(text: &str, delim: char) -> Result<Relation, IoError> {
    let mut rel: Option<Relation> = None;
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut row: Vec<Value> = Vec::new();
        for field in line.split(delim) {
            let field = field.trim();
            row.push(field.parse::<Value>().map_err(|e| IoError::Parse {
                line: idx + 1,
                message: format!("bad value {field:?}: {e}"),
            })?);
        }
        match &mut rel {
            None => rel = Some(Relation::from_rows(row.len(), [row])),
            Some(r) => {
                if row.len() != r.arity() {
                    return Err(IoError::Parse {
                        line: idx + 1,
                        message: format!(
                            "arity mismatch: expected {}, found {}",
                            r.arity(),
                            row.len()
                        ),
                    });
                }
                r.push(&row);
            }
        }
    }
    rel.ok_or(IoError::Parse {
        line: 0,
        message: "no data lines".into(),
    })
}

/// Read a relation from a file; the delimiter is inferred from the
/// extension (`.tsv` → tab, anything else → comma).
pub fn read_relation(path: impl AsRef<Path>) -> Result<Relation, IoError> {
    let path = path.as_ref();
    let delim = if path.extension().is_some_and(|e| e == "tsv") {
        '\t'
    } else {
        ','
    };
    let text = std::fs::read_to_string(path)?;
    parse_relation(&text, delim)
}

/// Write a relation to a file (delimiter by extension, as in
/// [`read_relation`]).
pub fn write_relation(rel: &Relation, path: impl AsRef<Path>) -> Result<(), IoError> {
    let path = path.as_ref();
    let delim = if path.extension().is_some_and(|e| e == "tsv") {
        '\t'
    } else {
        ','
    };
    let file = std::fs::File::create(path)?;
    let mut out = BufWriter::new(file);
    for row in rel.iter() {
        let mut first = true;
        for v in row {
            if !first {
                write!(out, "{delim}")?;
            }
            write!(out, "{v}")?;
            first = false;
        }
        writeln!(out)?;
    }
    out.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_csv() {
        let r = parse_relation("1,2\n3,4\n", ',').expect("valid");
        assert_eq!(r.to_rows(), vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn comments_blanks_whitespace() {
        let r = parse_relation("# header\n\n 1 , 2 \n#x\n3,4", ',').expect("valid");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn arity_mismatch_reported_with_line() {
        let e = parse_relation("1,2\n3\n", ',').unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 2") && msg.contains("arity"), "{msg}");
    }

    #[test]
    fn bad_value_reported() {
        let e = parse_relation("1,x\n", ',').unwrap_err();
        assert!(e.to_string().contains("bad value"));
    }

    #[test]
    fn empty_input_is_error() {
        assert!(parse_relation("# only comments\n", ',').is_err());
    }

    #[test]
    fn file_roundtrip_csv_and_tsv() {
        let rel = crate::generate::uniform(3, 50, 100, 7);
        let dir = std::env::temp_dir().join("parqp_io_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        for name in ["r.csv", "r.tsv"] {
            let path = dir.join(name);
            write_relation(&rel, &path).expect("write");
            let back = read_relation(&path).expect("read");
            assert_eq!(back, rel, "{name}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
