//! Per-round communication statistics and the final load report.
//!
//! The MPC cost of an algorithm is the pair `(L, r)` — maximum per-server
//! per-round communication, and number of rounds (slides 12–20). The
//! cluster records a [`RoundStats`] for every exchange; [`LoadReport`]
//! summarizes a full run.

/// Communication received in one round, per server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundStats {
    /// Tuples (messages) received by each server this round.
    pub tuples: Vec<u64>,
    /// Words received by each server this round (see [`crate::Weight`]).
    pub words: Vec<u64>,
}

impl RoundStats {
    /// A round in which no server received anything, on `p` servers.
    pub fn zero(p: usize) -> Self {
        Self {
            tuples: vec![0; p],
            words: vec![0; p],
        }
    }

    /// Maximum number of tuples received by any single server.
    pub fn max_tuples(&self) -> u64 {
        self.tuples.iter().copied().max().unwrap_or(0)
    }

    /// Maximum number of words received by any single server.
    pub fn max_words(&self) -> u64 {
        self.words.iter().copied().max().unwrap_or(0)
    }

    /// Total tuples communicated this round.
    pub fn total_tuples(&self) -> u64 {
        self.tuples.iter().sum()
    }

    /// Total words communicated this round.
    pub fn total_words(&self) -> u64 {
        self.words.iter().sum()
    }
}

/// Summary of a complete MPC run: the quantities the paper's theorems bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// Number of servers `p`.
    pub servers: usize,
    /// One entry per communication round.
    pub rounds: Vec<RoundStats>,
}

impl LoadReport {
    /// A report of zero rounds on `servers` servers: the cost of an
    /// algorithm that never communicated (e.g. a join with an empty
    /// input). Algorithm crates must use this (or [`LoadReport::idle`])
    /// instead of fabricating report literals — constructing accounting
    /// outside `parqp-mpc` is a layering violation (`parqp-lint` PQ104).
    #[must_use]
    pub fn empty(servers: usize) -> LoadReport {
        LoadReport {
            servers,
            rounds: Vec::new(),
        }
    }

    /// A report of `rounds` rounds in which nobody received anything:
    /// the cost of servers that sat out phases other groups spent
    /// communicating (round synchronization is global in the MPC model).
    #[must_use]
    pub fn idle(servers: usize, rounds: usize) -> LoadReport {
        LoadReport {
            servers,
            rounds: vec![RoundStats::zero(servers); rounds],
        }
    }

    /// Re-shape this report onto a cluster of `p ≥ servers` servers: the
    /// extra servers received nothing in every round. Used when a phase
    /// ran on a sub-cluster (e.g. the light half of a skew join) and its
    /// cost must be composed with full-cluster phases.
    ///
    /// # Panics
    /// Panics if `p` is smaller than the report's server count —
    /// shrinking a report would silently drop recorded load.
    #[must_use = "padded consumes the report and returns the re-shaped one"]
    pub fn padded(mut self, p: usize) -> LoadReport {
        assert!(
            p >= self.servers,
            "cannot pad a report of {} servers down to {p}",
            self.servers
        );
        for round in &mut self.rounds {
            round.tuples.resize(p, 0);
            round.words.resize(p, 0);
        }
        self.servers = p;
        self
    }

    /// Re-shape this report onto a cluster of exactly `p` servers by
    /// assigning virtual server `i` to physical server `i % p`. Used when
    /// parallel sub-cluster blocks are laid out over the real cluster:
    /// with more blocks than servers the blocks time-share, and a
    /// physical server's load in a round is the sum of its virtual
    /// servers' loads. Total load `C` is preserved; when `p >= servers`
    /// this is exactly [`LoadReport::padded`].
    ///
    /// # Panics
    /// Panics if `p` is zero.
    #[must_use = "folded consumes the report and returns the re-shaped one"]
    pub fn folded(self, p: usize) -> LoadReport {
        assert!(p > 0, "cluster must have at least one server");
        if p >= self.servers {
            return self.padded(p);
        }
        let rounds = self
            .rounds
            .into_iter()
            .map(|rs| {
                let mut tuples = vec![0; p];
                let mut words = vec![0; p];
                for (i, t) in rs.tuples.into_iter().enumerate() {
                    tuples[i % p] += t;
                }
                for (i, w) in rs.words.into_iter().enumerate() {
                    words[i % p] += w;
                }
                RoundStats { tuples, words }
            })
            .collect();
        LoadReport { servers: p, rounds }
    }

    /// Number of communication rounds `r`.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// The load `L` in tuples: max over servers and rounds of tuples received.
    pub fn max_load_tuples(&self) -> u64 {
        self.rounds
            .iter()
            .map(RoundStats::max_tuples)
            .max()
            .unwrap_or(0)
    }

    /// The load `L` in words: max over servers and rounds of words received.
    pub fn max_load_words(&self) -> u64 {
        self.rounds
            .iter()
            .map(RoundStats::max_words)
            .max()
            .unwrap_or(0)
    }

    /// Total communication `C` in tuples, summed over all rounds and servers.
    pub fn total_tuples(&self) -> u64 {
        self.rounds.iter().map(RoundStats::total_tuples).sum()
    }

    /// Total communication `C` in words.
    pub fn total_words(&self) -> u64 {
        self.rounds.iter().map(RoundStats::total_words).sum()
    }

    /// Sum over rounds of the per-round *maximum* tuple load.
    ///
    /// This is the `r × L`-style cost when rounds have unequal loads: the
    /// critical-path communication volume through the most loaded server.
    pub fn sum_of_round_maxima(&self) -> u64 {
        self.rounds.iter().map(RoundStats::max_tuples).sum()
    }

    /// Per-round maximum tuple loads, one entry per round.
    pub fn round_max_tuples(&self) -> Vec<u64> {
        self.rounds.iter().map(RoundStats::max_tuples).collect()
    }

    /// Compose reports of algorithms that ran **side by side on disjoint
    /// server groups** in the same global rounds (e.g. the per-heavy-hitter
    /// Cartesian grids of the skew join, or SkewHC's residual queries).
    ///
    /// Round `i` of the result contains the concatenation of every group's
    /// round `i` (groups that finished early contribute zero); the total
    /// server count is the sum of group sizes.
    pub fn parallel(reports: &[LoadReport]) -> LoadReport {
        let servers = reports.iter().map(|r| r.servers).sum();
        let rounds = reports
            .iter()
            .map(LoadReport::num_rounds)
            .max()
            .unwrap_or(0);
        let mut out = Vec::with_capacity(rounds);
        for i in 0..rounds {
            let mut tuples = Vec::with_capacity(servers);
            let mut words = Vec::with_capacity(servers);
            for r in reports {
                match r.rounds.get(i) {
                    Some(rs) => {
                        tuples.extend_from_slice(&rs.tuples);
                        words.extend_from_slice(&rs.words);
                    }
                    None => {
                        tuples.resize(tuples.len() + r.servers, 0);
                        words.resize(words.len() + r.servers, 0);
                    }
                }
            }
            out.push(RoundStats { tuples, words });
        }
        LoadReport {
            servers,
            rounds: out,
        }
    }

    /// Compose reports of algorithm phases that ran **one after another on
    /// the same servers**: rounds are concatenated.
    ///
    /// # Panics
    /// Panics if the reports disagree on the server count.
    pub fn sequential(reports: &[LoadReport]) -> LoadReport {
        let servers = reports.first().map_or(0, |r| r.servers);
        let mut rounds = Vec::new();
        for r in reports {
            assert_eq!(
                r.servers, servers,
                "sequential phases must share the cluster"
            );
            rounds.extend(r.rounds.iter().cloned());
        }
        LoadReport { servers, rounds }
    }
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p={} r={} L={} tuples ({} words) C={} tuples",
            self.servers,
            self.num_rounds(),
            self.max_load_tuples(),
            self.max_load_words(),
            self.total_tuples()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LoadReport {
        LoadReport {
            servers: 3,
            rounds: vec![
                RoundStats {
                    tuples: vec![5, 2, 1],
                    words: vec![10, 4, 2],
                },
                RoundStats {
                    tuples: vec![0, 7, 3],
                    words: vec![0, 14, 6],
                },
            ],
        }
    }

    #[test]
    fn max_load() {
        let r = sample();
        assert_eq!(r.max_load_tuples(), 7);
        assert_eq!(r.max_load_words(), 14);
    }

    #[test]
    fn totals() {
        let r = sample();
        assert_eq!(r.total_tuples(), 18);
        assert_eq!(r.total_words(), 36);
        assert_eq!(r.num_rounds(), 2);
        assert_eq!(r.sum_of_round_maxima(), 12);
        assert_eq!(r.round_max_tuples(), vec![5, 7]);
    }

    #[test]
    fn empty_report() {
        let r = LoadReport {
            servers: 4,
            rounds: vec![],
        };
        assert_eq!(r.max_load_tuples(), 0);
        assert_eq!(r.total_tuples(), 0);
        assert_eq!(r.num_rounds(), 0);
    }

    #[test]
    fn zero_round() {
        let z = RoundStats::zero(3);
        assert_eq!(z.max_tuples(), 0);
        assert_eq!(z.total_words(), 0);
        assert_eq!(z.tuples.len(), 3);
    }

    #[test]
    fn parallel_composition_pads_and_concats() {
        let a = LoadReport {
            servers: 2,
            rounds: vec![
                RoundStats {
                    tuples: vec![1, 2],
                    words: vec![1, 2],
                },
                RoundStats {
                    tuples: vec![3, 0],
                    words: vec![3, 0],
                },
            ],
        };
        let b = LoadReport {
            servers: 1,
            rounds: vec![RoundStats {
                tuples: vec![9],
                words: vec![9],
            }],
        };
        let m = LoadReport::parallel(&[a, b]);
        assert_eq!(m.servers, 3);
        assert_eq!(m.num_rounds(), 2);
        assert_eq!(m.rounds[0].tuples, vec![1, 2, 9]);
        assert_eq!(m.rounds[1].tuples, vec![3, 0, 0]);
        assert_eq!(m.max_load_tuples(), 9);
    }

    #[test]
    fn folded_time_shares_virtual_servers() {
        let r = LoadReport {
            servers: 5,
            rounds: vec![RoundStats {
                tuples: vec![1, 2, 3, 4, 5],
                words: vec![1, 2, 3, 4, 5],
            }],
        };
        let total = r.total_tuples();
        let f = r.folded(2);
        assert_eq!(f.servers, 2);
        // Virtual servers 0,2,4 → physical 0; 1,3 → physical 1.
        assert_eq!(f.rounds[0].tuples, vec![1 + 3 + 5, 2 + 4]);
        assert_eq!(f.total_tuples(), total, "folding preserves C");
    }

    #[test]
    fn folded_up_equals_padded() {
        let r = LoadReport {
            servers: 2,
            rounds: vec![RoundStats {
                tuples: vec![7, 8],
                words: vec![7, 8],
            }],
        };
        let f = r.folded(4);
        assert_eq!(f.servers, 4);
        assert_eq!(f.rounds[0].tuples, vec![7, 8, 0, 0]);
    }

    #[test]
    fn sequential_composition_concats_rounds() {
        let a = LoadReport {
            servers: 2,
            rounds: vec![RoundStats {
                tuples: vec![1, 2],
                words: vec![1, 2],
            }],
        };
        let b = LoadReport {
            servers: 2,
            rounds: vec![RoundStats {
                tuples: vec![5, 0],
                words: vec![5, 0],
            }],
        };
        let s = LoadReport::sequential(&[a, b]);
        assert_eq!(s.num_rounds(), 2);
        assert_eq!(s.max_load_tuples(), 5);
        assert_eq!(s.total_tuples(), 8);
    }

    #[test]
    fn empty_and_idle_reports() {
        let e = LoadReport::empty(4);
        assert_eq!(e.servers, 4);
        assert_eq!(e.num_rounds(), 0);
        let i = LoadReport::idle(3, 2);
        assert_eq!(i.num_rounds(), 2);
        assert_eq!(i.max_load_tuples(), 0);
        assert_eq!(i.rounds[0].tuples.len(), 3);
    }

    #[test]
    fn padded_extends_every_round() {
        let p = sample().padded(5);
        assert_eq!(p.servers, 5);
        assert_eq!(p.rounds[0].tuples, vec![5, 2, 1, 0, 0]);
        assert_eq!(p.rounds[1].words, vec![0, 14, 6, 0, 0]);
        // Padding preserves the measured cost.
        assert_eq!(p.max_load_tuples(), sample().max_load_tuples());
        assert_eq!(p.total_words(), sample().total_words());
    }

    #[test]
    #[should_panic(expected = "cannot pad")]
    fn padding_down_rejected() {
        let _ = sample().padded(2);
    }

    #[test]
    fn parallel_of_nothing_is_empty() {
        let m = LoadReport::parallel(&[]);
        assert_eq!(m.servers, 0);
        assert_eq!(m.num_rounds(), 0);
    }

    #[test]
    fn display_mentions_everything() {
        let s = sample().to_string();
        assert!(s.contains("p=3"));
        assert!(s.contains("r=2"));
        assert!(s.contains("L=7"));
    }
}
