//! Mutation fixture: a worker closure that mutates state captured
//! through a `RefCell` — a data race the moment two pool threads share
//! it. PQ402 must anchor at the root line.

use std::cell::RefCell;

pub fn scratch_phase(cluster: &Cluster, parts: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
    let scratch = RefCell::new(Vec::new());
    cluster.map(parts, |_sid, part| {
        scratch.borrow_mut().push(part.len());
        part
    })
}
