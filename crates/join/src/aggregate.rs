//! Distributed grouping and aggregation (slide 52's
//! `SELECT cKey, month, SUM(price) … GROUP BY` and the aggregation side
//! of the matmul lower bound, slide 125).
//!
//! Three strategies for `SELECT key, SUM(val) GROUP BY key`:
//!
//! * [`hash_group_sum`] — repartition raw tuples by key hash, aggregate
//!   locally. One round, load `Θ(IN/p)` without skew but `Θ(deg)` for a
//!   heavy group — the same failure mode as the hash join.
//! * [`combiner_group_sum`] — pre-aggregate locally (the classic
//!   MapReduce combiner), then shuffle partial sums: at most one message
//!   per (server, group), so a group of any degree costs at most `p`
//!   messages and the receive load is `O(min(IN, G·p)/p + G/p)` for `G`
//!   distinct groups. Still one round.
//! * [`tree_group_sum`] — aggregate partial sums up a fan-in-`f` tree in
//!   `⌈log_f p⌉` rounds with per-round load `O(f·G_local)`: the
//!   `log_L N` round/load trade-off of slides 105/125 in its simplest
//!   form.
//!
//! All return per-server `(key, sum)` relations plus the usual report.

use crate::common::JoinRun;
use parqp_data::{FastMap, Relation, Value};
use parqp_mpc::{Cluster, HashFamily};

/// Serial oracle: exact `(key, sum)` pairs, sorted by key.
pub fn group_sum_oracle(rel: &Relation, key_col: usize, val_col: usize) -> Relation {
    let mut acc: FastMap<Value, u64> = FastMap::default();
    for row in rel.iter() {
        *acc.entry(row[key_col]).or_insert(0) += row[val_col];
    }
    let mut rows: Vec<[Value; 2]> = acc.into_iter().map(|(k, v)| [k, v]).collect();
    rows.sort_unstable();
    Relation::from_rows(2, rows)
}

fn finish_outputs(parts: Vec<FastMap<Value, u64>>) -> Vec<Relation> {
    parts
        .into_iter()
        .map(|acc| {
            let mut rows: Vec<[Value; 2]> = acc.into_iter().map(|(k, v)| [k, v]).collect();
            rows.sort_unstable();
            Relation::from_rows(2, rows)
        })
        .collect()
}

/// Shuffle raw tuples by key hash; aggregate at the receiver. One round.
pub fn hash_group_sum(
    rel: &Relation,
    key_col: usize,
    val_col: usize,
    p: usize,
    seed: u64,
) -> JoinRun {
    let mut cluster = Cluster::new(p);
    let h = HashFamily::new(seed, 1);
    let parts = crate::common::scatter(rel, p);
    let mut ex = cluster.exchange::<[Value; 2]>();
    for part in &parts {
        for row in part.iter() {
            ex.send(h.hash(0, row[key_col], p), [row[key_col], row[val_col]]);
        }
    }
    let inboxes = ex.finish();
    let accs: Vec<FastMap<Value, u64>> = inboxes
        .into_iter()
        .map(|inbox| {
            let mut acc: FastMap<Value, u64> = FastMap::default();
            for [k, v] in inbox {
                *acc.entry(k).or_insert(0) += v;
            }
            acc
        })
        .collect();
    JoinRun {
        outputs: finish_outputs(accs),
        report: cluster.report(),
    }
}

/// Pre-aggregate locally, then shuffle one partial sum per
/// (server, group). One round; skew-insensitive receive loads.
pub fn combiner_group_sum(
    rel: &Relation,
    key_col: usize,
    val_col: usize,
    p: usize,
    seed: u64,
) -> JoinRun {
    let mut cluster = Cluster::new(p);
    let h = HashFamily::new(seed, 1);
    let parts = crate::common::scatter(rel, p);
    let mut ex = cluster.exchange::<[Value; 2]>();
    for part in &parts {
        let mut local: FastMap<Value, u64> = FastMap::default();
        for row in part.iter() {
            *local.entry(row[key_col]).or_insert(0) += row[val_col];
        }
        for (k, v) in local {
            ex.send(h.hash(0, k, p), [k, v]);
        }
    }
    let inboxes = ex.finish();
    let accs: Vec<FastMap<Value, u64>> = inboxes
        .into_iter()
        .map(|inbox| {
            let mut acc: FastMap<Value, u64> = FastMap::default();
            for [k, v] in inbox {
                *acc.entry(k).or_insert(0) += v;
            }
            acc
        })
        .collect();
    JoinRun {
        outputs: finish_outputs(accs),
        report: cluster.report(),
    }
}

/// Aggregate partial sums up a fan-in-`f` reduction tree: round `i`
/// merges every group of `f` consecutive "active" servers into its
/// first. `⌈log_f p⌉` rounds; final sums land on server 0.
///
/// # Panics
/// Panics if `fanin < 2`.
pub fn tree_group_sum(
    rel: &Relation,
    key_col: usize,
    val_col: usize,
    p: usize,
    fanin: usize,
) -> JoinRun {
    assert!(fanin >= 2, "fan-in must be at least 2");
    let mut cluster = Cluster::new(p);
    let parts = crate::common::scatter(rel, p);
    let mut partials: Vec<FastMap<Value, u64>> = parts
        .iter()
        .map(|part| {
            let mut acc: FastMap<Value, u64> = FastMap::default();
            for row in part.iter() {
                *acc.entry(row[key_col]).or_insert(0) += row[val_col];
            }
            acc
        })
        .collect();

    // Active servers hold partials; each round they merge f-to-1.
    let mut stride = 1usize;
    while stride < p {
        let mut ex = cluster.exchange::<[Value; 2]>();
        for src in (0..p).step_by(stride) {
            let block = src / stride;
            if block.is_multiple_of(fanin) {
                continue; // this server is a receiver this round
            }
            let dest = (block - block % fanin) * stride;
            for (&k, &v) in &partials[src] {
                ex.send(dest, [k, v]);
            }
            partials[src].clear();
        }
        let inboxes = ex.finish();
        for (sid, inbox) in inboxes.into_iter().enumerate() {
            for [k, v] in inbox {
                *partials[sid].entry(k).or_insert(0) += v;
            }
        }
        stride *= fanin;
    }
    JoinRun {
        outputs: finish_outputs(partials),
        report: cluster.report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parqp_data::generate;

    fn gathered_sorted(run: &JoinRun) -> Relation {
        let mut all = run.gathered();
        all.sort();
        all
    }

    #[test]
    fn all_strategies_match_oracle() {
        let rel = generate::zipf_pairs(5000, 300, 1.1, 0, 3);
        let expect = group_sum_oracle(&rel, 0, 1);
        for run in [
            hash_group_sum(&rel, 0, 1, 8, 7),
            combiner_group_sum(&rel, 0, 1, 8, 7),
            tree_group_sum(&rel, 0, 1, 8, 2),
            tree_group_sum(&rel, 0, 1, 8, 4),
        ] {
            assert_eq!(gathered_sorted(&run), expect);
        }
    }

    #[test]
    fn combiner_beats_hash_under_skew() {
        // One group holds almost everything: hash shuffles IN to one
        // server, the combiner at most p partial sums per group.
        let rel = generate::constant_key_pairs(8000, 7, 0);
        let hash = hash_group_sum(&rel, 0, 1, 16, 5);
        let comb = combiner_group_sum(&rel, 0, 1, 16, 5);
        assert_eq!(hash.report.max_load_tuples(), 8000);
        assert!(comb.report.max_load_tuples() <= 16);
        assert_eq!(gathered_sorted(&hash), gathered_sorted(&comb));
    }

    #[test]
    fn tree_rounds_follow_fanin() {
        let rel = generate::uniform(2, 2000, 50, 9);
        let t2 = tree_group_sum(&rel, 0, 1, 16, 2);
        let t4 = tree_group_sum(&rel, 0, 1, 16, 4);
        let t16 = tree_group_sum(&rel, 0, 1, 16, 16);
        assert_eq!(t2.report.num_rounds(), 4); // log2(16)
        assert_eq!(t4.report.num_rounds(), 2); // log4(16)
        assert_eq!(t16.report.num_rounds(), 1);
        assert_eq!(gathered_sorted(&t2), gathered_sorted(&t16));
    }

    #[test]
    fn tree_result_lands_on_root() {
        let rel = generate::uniform(2, 500, 20, 11);
        let run = tree_group_sum(&rel, 0, 1, 8, 2);
        assert!(!run.outputs[0].is_empty());
        assert!(run.outputs[1..].iter().all(Relation::is_empty));
    }

    #[test]
    fn non_power_of_fanin_p() {
        let rel = generate::uniform(2, 1000, 30, 13);
        for p in [3usize, 5, 7, 12] {
            let run = tree_group_sum(&rel, 0, 1, p, 3);
            assert_eq!(gathered_sorted(&run), group_sum_oracle(&rel, 0, 1), "p={p}");
        }
    }

    #[test]
    fn empty_relation() {
        let rel = Relation::new(2);
        let run = combiner_group_sum(&rel, 0, 1, 4, 1);
        assert_eq!(run.output_size(), 0);
    }
}
