//! # parqp-data — relations, data generators and statistics
//!
//! The storage and workload layer underneath the parallel query processing
//! algorithms:
//!
//! * [`relation`] — arity-tagged flat row-major relations over `u64`
//!   values (the unit in which the MPC model measures load);
//! * [`fasthash`] — a fast non-cryptographic hasher and map/set aliases
//!   used on hot paths (join build sides, degree counting);
//! * [`generate`] — seeded workload generators: uniform relations, Zipf
//!   skew, planted heavy hitters, random graphs — the input classes the
//!   tutorial's analyses distinguish (no skew / bounded degree / heavy
//!   hitters / extreme skew);
//! * [`zipf`] — a standalone Zipf(α) sampler built on inverse-CDF tables;
//! * [`stats`] — exact degree statistics, heavy-hitter extraction with the
//!   paper's `IN/p` threshold (slide 29), and exact two-way join output
//!   cardinality;
//! * [`sampling`] — Bernoulli-sample degree estimation, the way a real
//!   system would detect heavy hitters (slide 46);
//! * [`io`] — CSV/TSV relation loading and saving;
//! * [`paged`] — paged relation scans over `parqp-store`'s bounded
//!   buffer pools, charging an exact page-IO ledger beside the
//!   communication ledger (inert unless a store runtime is installed).

pub mod fasthash;
pub mod generate;
pub mod io;
pub mod paged;
pub mod relation;
pub mod sampling;
pub mod stats;
pub mod zipf;

pub use fasthash::{FastMap, FastSet};
pub use relation::{Relation, Value};
