//! # parqp-matmul — conventional matrix multiplication in the MPC model
//!
//! Slides 107–127: dense `n × n` matrix multiplication with all `n³`
//! elementary products (Strassen-like algorithms are out of scope, as in
//! the tutorial), analyzed by communication `C`, load `L` and rounds `r`:
//!
//! | algorithm | communication | rounds |
//! |---|---|---|
//! | [`rect_block`] (rectangle-block, 1 round) | `C = Θ(n⁴/L)` | 1 |
//! | [`square_block`] (square-block, multi-round) | `C = Θ(n³/√L)` | `Θ(n³/(p·L^{3/2}))` (+ aggregation) |
//!
//! plus non-square and sparse multiplication and block LU decomposition
//! ([`rectmm`], [`lu`] — slide 127's "Other Results") and the SQL
//! formulation of slide 108 (`SELECT A.i, B.k,
//! SUM(A.v*B.v) FROM A, B WHERE A.j = B.j GROUP BY A.i, B.k`) executed
//! through the join crate as a cross-check, and the closed-form cost
//! model behind the slide 126 `C`-vs-`L` frontier.

pub mod cost;
pub mod dense;
pub mod lu;
pub mod rect;
pub mod rectmm;
pub mod sqlmm;
pub mod square;

pub use dense::Matrix;
pub use lu::{block_lu, lu_serial, LuRun};
pub use rect::rect_block;
pub use rectmm::{rect_block_nonsquare, sql_matmul_rect, MatMulRun2, RectMatrix};
pub use sqlmm::sql_matmul;
pub use square::square_block;

/// Result of a distributed matrix multiplication.
#[derive(Debug, Clone)]
pub struct MatMulRun {
    /// The product matrix, gathered (verification convenience).
    pub c: Matrix,
    /// Communication ledger of the run.
    pub report: parqp_mpc::LoadReport,
}
