//! The thread-local metrics runtime: install a registry, let the
//! simulator feed it, collect it back.
//!
//! Mirrors `parqp_trace::recorder` and `parqp_faults::runtime`: the
//! simulator is single-threaded by design (PQ004), so a thread-local
//! slot is the whole "global" state. [`install`] puts a fresh
//! [`MetricsRegistry`] in the slot and returns a [`MetricsGuard`] that
//! restores the previous registry on drop (panic-safe). `parqp-mpc` is
//! the only caller of [`emit`] (lint rule PQ107 — the metrics twin of
//! PQ105's trace-emission monopoly); algorithm crates call
//! [`announce`], and everything else uses [`capture`] and reads the
//! returned registry.

use std::cell::RefCell;
use std::rc::Rc;

use parqp_trace::TraceEvent;

use crate::bound::BoundProvider;
use crate::registry::MetricsRegistry;

thread_local! {
    static ACTIVE: RefCell<Option<Rc<RefCell<MetricsRegistry>>>> = const { RefCell::new(None) };
}

/// Restores the previously installed registry when dropped.
#[must_use = "dropping the guard immediately uninstalls the registry"]
pub struct MetricsGuard {
    previous: Option<Rc<RefCell<MetricsRegistry>>>,
}

impl Drop for MetricsGuard {
    fn drop(&mut self) {
        ACTIVE.with(|slot| {
            *slot.borrow_mut() = self.previous.take();
        });
    }
}

/// Install `registry` as this thread's metrics sink until the returned
/// guard drops. Nesting is allowed; the innermost install wins and the
/// outer registry resumes when the inner guard drops.
pub fn install(registry: MetricsRegistry) -> MetricsGuard {
    install_shared(registry).0
}

/// [`install`], also returning a handle so [`capture`] can collect the
/// registry after the guard drops.
fn install_shared(registry: MetricsRegistry) -> (MetricsGuard, Rc<RefCell<MetricsRegistry>>) {
    let shared = Rc::new(RefCell::new(registry));
    let previous = ACTIVE.with(|slot| slot.borrow_mut().replace(shared.clone()));
    (MetricsGuard { previous }, shared)
}

/// Whether a registry is currently installed. The simulator checks
/// this to skip event forwarding entirely on the unobserved path, and
/// algorithms check it before computing expensive bounds (the SkewHC
/// ψ\* LP, for instance).
pub fn is_enabled() -> bool {
    ACTIVE.with(|slot| slot.borrow().is_some())
}

/// Forward one simulator event to the installed registry, if any.
/// Simulator-only (lint rule PQ107); a no-op when nothing is installed.
pub fn emit(event: &TraceEvent) {
    ACTIVE.with(|slot| {
        if let Some(reg) = slot.borrow().as_ref() {
            reg.borrow_mut().observe_event(event);
        }
    });
}

/// Forward a drained page-IO delta (summed across servers) to the
/// installed registry, if any. Like [`emit`], this is simulator-only:
/// `parqp-mpc` drains the store ledger at round boundaries and on
/// `Cluster::report` (lint rule PQ109 — counters must come from the
/// store runtime, never be fabricated). A no-op when nothing is
/// installed.
pub fn emit_io(reads: u64, misses: u64, evictions: u64) {
    ACTIVE.with(|slot| {
        if let Some(reg) = slot.borrow().as_ref() {
            reg.borrow_mut().observe_io(reads, misses, evictions);
        }
    });
}

/// Announce a paper bound to the installed registry, if any. Unlike
/// [`emit`], algorithm crates call this freely — it is the metrics
/// analogue of `trace::span`. A no-op when nothing is installed.
pub fn announce(bound: &dyn BoundProvider) {
    ACTIVE.with(|slot| {
        if let Some(reg) = slot.borrow().as_ref() {
            reg.borrow_mut().announce_bound(bound);
        }
    });
}

/// Run `f` with a fresh registry installed and return the filled
/// registry alongside `f`'s result. The previous registry (if any) is
/// restored afterwards, even if `f` panics.
pub fn capture<R>(f: impl FnOnce() -> R) -> (MetricsRegistry, R) {
    let (guard, shared) = install_shared(MetricsRegistry::new());
    let result = {
        let _guard = guard;
        f()
    };
    let registry = Rc::try_unwrap(shared)
        .expect("capture's registry must not be retained past the closure")
        .into_inner();
    (registry, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::PaperBound;

    #[test]
    fn disabled_runtime_is_inert() {
        assert!(!is_enabled());
        emit(&TraceEvent::RoundBegin {
            round: 0,
            servers: 4,
        }); // must not panic
        announce(&PaperBound::tuples("hash_join", 1.0, 1));
    }

    #[test]
    fn capture_collects_events_and_bounds() {
        let (reg, out) = capture(|| {
            assert!(is_enabled());
            announce(&PaperBound::tuples("hash_join", 50.0, 1));
            emit(&TraceEvent::RoundBegin {
                round: 0,
                servers: 2,
            });
            emit(&TraceEvent::Recv {
                round: 0,
                server: 0,
                tuples: 60,
                words: 120,
            });
            emit(&TraceEvent::RoundEnd {
                round: 0,
                tuples: 60,
                words: 120,
            });
            7
        });
        assert!(!is_enabled());
        assert_eq!(out, 7);
        assert_eq!(reg.rounds(), 1);
        assert_eq!(reg.bound_ratio(), Some(1.2));
    }

    #[test]
    fn nested_capture_restores_outer_registry() {
        let (outer, ()) = capture(|| {
            emit(&TraceEvent::RoundBegin {
                round: 0,
                servers: 2,
            });
            let (inner, ()) = capture(|| {
                emit(&TraceEvent::RoundBegin {
                    round: 0,
                    servers: 2,
                });
                emit(&TraceEvent::RoundBegin {
                    round: 1,
                    servers: 2,
                });
            });
            assert_eq!(inner.rounds(), 2);
            emit(&TraceEvent::RoundBegin {
                round: 1,
                servers: 2,
            });
        });
        assert_eq!(outer.rounds(), 2, "inner events must not leak out");
    }

    #[test]
    fn guard_restores_on_panic() {
        let caught = std::panic::catch_unwind(|| {
            let _ = capture(|| panic!("boom"));
        });
        assert!(caught.is_err());
        assert!(!is_enabled(), "panic must not leave a registry installed");
    }
}
