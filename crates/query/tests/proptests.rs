//! Property tests for the query layer: Generic Join ≡ the binding-table
//! oracle under set semantics, Yannakakis ≡ the oracle on acyclic
//! queries, residual bookkeeping stays consistent, and GYO agrees with
//! the textbook (a)cyclicity of the named query shapes.

use parqp_data::Relation;
use parqp_query::{
    all_residuals, evaluate, generic_join, parse_query, psi_star, yannakakis_serial, Ghd, Query,
};
use parqp_testkit::prelude::*;

fn arb_rel(arity: usize, max_rows: usize) -> impl Strategy<Value = Relation> {
    (1usize..=max_rows, 1u64..20).prop_flat_map(move |(rows, domain)| {
        collection::vec(collection::vec(0..domain, arity), rows)
            .prop_map(move |data| Relation::from_rows(arity, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generic_join_equals_oracle_on_triangles(
        r in arb_rel(2, 80),
        s in arb_rel(2, 80),
        t in arb_rel(2, 80),
    ) {
        let q = Query::triangle();
        let rels = vec![r, s, t];
        let wco = generic_join(&q, &rels).canonical();
        let oracle = evaluate(&q, &rels).canonical();
        prop_assert_eq!(wco, oracle);
    }

    #[test]
    fn yannakakis_equals_oracle_on_random_stars(
        n in 2usize..5,
        seed in 0u64..500,
        rows in 5usize..80,
    ) {
        let q = Query::star(n);
        let rels: Vec<Relation> = (0..n)
            .map(|i| {
                let h = parqp_mpc::HashFamily::new(seed + i as u64, 2);
                Relation::from_rows(
                    2,
                    (0..rows).map(|j| {
                        [h.digest(0, j as u64) % 15, h.digest(1, j as u64) % 15]
                    }),
                )
            })
            .collect();
        let tree = Ghd::join_tree(&q).expect("stars are acyclic");
        let fast = yannakakis_serial(&q, &rels, &tree).canonical();
        let slow = evaluate(&q, &rels).canonical();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn residuals_partition_heavy_masks(q_pick in 0usize..4) {
        let q = match q_pick {
            0 => Query::triangle(),
            1 => Query::two_way(),
            2 => Query::semijoin_pair(),
            _ => Query::chain(3),
        };
        let residuals = all_residuals(&q);
        prop_assert_eq!(residuals.len(), 1 << q.num_vars());
        for (mask, res) in residuals.iter().enumerate() {
            // heavy_vars matches the mask.
            let expect: Vec<usize> =
                (0..q.num_vars()).filter(|&v| mask & (1 << v) != 0).collect();
            prop_assert_eq!(&res.heavy_vars, &expect);
            // var_map renumbers exactly the light variables, densely.
            let light: Vec<usize> = res
                .var_map
                .iter()
                .filter_map(|m| *m)
                .collect();
            let mut sorted = light.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..light.len()).collect::<Vec<_>>());
            // τ* is non-negative and at most the number of surviving atoms.
            let tau = res.tau_star();
            let atoms = res.query.as_ref().map_or(0, Query::num_atoms);
            prop_assert!(tau >= -1e-9 && tau <= atoms as f64 + 1e-9);
        }
        // ψ* is the max over residual τ*.
        let psi = psi_star(&q);
        let max_tau = residuals.iter().map(|r| r.tau_star()).fold(0.0, f64::max);
        prop_assert!((psi - max_tau).abs() < 1e-9);
    }

    #[test]
    fn parser_roundtrips_display(n in 2usize..6) {
        // chain-n rendered by Display re-parses to the same query modulo
        // variable naming (Display uses x0..; map them back).
        let q = Query::chain(n);
        let shown = q.to_string().replace('⋈', ",").replace("x", "v");
        let reparsed = parse_query(&shown).expect("display output parses");
        prop_assert_eq!(reparsed.num_atoms(), q.num_atoms());
        prop_assert_eq!(reparsed.num_vars(), q.num_vars());
        prop_assert_eq!(reparsed.hypergraph(), q.hypergraph());
    }

    #[test]
    fn gyo_consistent_with_shapes(n in 3usize..8) {
        prop_assert!(Ghd::join_tree(&Query::chain(n)).is_some());
        prop_assert!(Ghd::join_tree(&Query::star(n)).is_some());
        prop_assert!(Ghd::join_tree(&Query::cycle(n)).is_none());
    }
}
