//! Seeded workload generators.
//!
//! The tutorial's analyses distinguish input classes by the *degree* of
//! join-attribute values: no skew (every value appears once, slide 24),
//! bounded degree `d` (slide 25), heavy hitters (degree > IN/p, slide 29),
//! and extreme skew (a single value everywhere, slide 27). Each generator
//! here produces one of those classes deterministically from a seed.

use crate::relation::{Relation, Value};
use crate::zipf::Zipf;
use parqp_testkit::Rng;

/// `n` tuples of the given arity with attributes drawn uniformly from
/// `0..domain`.
pub fn uniform(arity: usize, n: usize, domain: u64, seed: u64) -> Relation {
    assert!(domain > 0, "empty domain");
    let mut rng = Rng::seed_from_u64(seed);
    let mut rel = Relation::with_capacity(arity, n);
    let mut row = vec![0; arity];
    for _ in 0..n {
        for v in &mut row {
            *v = rng.gen_range(0..domain);
        }
        rel.push(&row);
    }
    rel
}

/// A binary relation whose *join column* (`key_col`, 0 or 1) takes each of
/// the values `0..n` exactly once — the "no skew" case of slide 24. The
/// other column is uniform in `0..domain`.
pub fn key_unique_pairs(n: usize, key_col: usize, domain: u64, seed: u64) -> Relation {
    assert!(key_col < 2, "key column of a binary relation is 0 or 1");
    let mut rng = Rng::seed_from_u64(seed);
    let mut rel = Relation::with_capacity(2, n);
    for k in 0..n as u64 {
        let other = rng.gen_range(0..domain);
        let row = if key_col == 0 { [k, other] } else { [other, k] };
        rel.push(&row);
    }
    rel
}

/// A binary relation where every join-column value in `0..n/d` appears
/// exactly `d` times — the uniform-degree-`d` case of slide 25.
///
/// Produces `(n / d) * d` tuples (i.e. `n` rounded down to a multiple of `d`).
pub fn uniform_degree_pairs(
    n: usize,
    d: usize,
    key_col: usize,
    domain: u64,
    seed: u64,
) -> Relation {
    assert!(d > 0, "degree must be positive");
    assert!(key_col < 2, "key column of a binary relation is 0 or 1");
    let keys = n / d;
    let mut rng = Rng::seed_from_u64(seed);
    let mut rel = Relation::with_capacity(2, keys * d);
    for k in 0..keys as u64 {
        for _ in 0..d {
            let other = rng.gen_range(0..domain);
            let row = if key_col == 0 { [k, other] } else { [other, k] };
            rel.push(&row);
        }
    }
    rel
}

/// A binary relation with `n` tuples whose join column follows Zipf(α)
/// over `1..=domain` — the realistic skew case.
pub fn zipf_pairs(n: usize, domain: usize, alpha: f64, key_col: usize, seed: u64) -> Relation {
    assert!(key_col < 2, "key column of a binary relation is 0 or 1");
    let z = Zipf::new(domain, alpha);
    let mut rng = Rng::seed_from_u64(seed);
    let mut rel = Relation::with_capacity(2, n);
    for _ in 0..n {
        let key = z.sample(&mut rng);
        let other = rng.gen_range(0..domain as u64);
        let row = if key_col == 0 {
            [key, other]
        } else {
            [other, key]
        };
        rel.push(&row);
    }
    rel
}

/// A binary relation with planted heavy hitters: `heavy.len()` designated
/// key values each receive `heavy_degree` tuples, and the remaining
/// `n - heavy.len()*heavy_degree` tuples get unique light keys (disjoint
/// from the heavy ones). This reproduces slide 29's heavy/light split
/// exactly, with full control over who is heavy.
///
/// # Panics
/// Panics if the heavy tuples alone exceed `n`.
pub fn planted_heavy_pairs(
    n: usize,
    heavy: &[Value],
    heavy_degree: usize,
    key_col: usize,
    domain: u64,
    seed: u64,
) -> Relation {
    assert!(key_col < 2, "key column of a binary relation is 0 or 1");
    let heavy_total = heavy.len() * heavy_degree;
    assert!(
        heavy_total <= n,
        "heavy tuples ({heavy_total}) exceed n ({n})"
    );
    let mut rng = Rng::seed_from_u64(seed);
    let mut rel = Relation::with_capacity(2, n);
    for &h in heavy {
        for _ in 0..heavy_degree {
            let other = rng.gen_range(0..domain);
            let row = if key_col == 0 { [h, other] } else { [other, h] };
            rel.push(&row);
        }
    }
    // Light keys: values above the largest heavy value, each used once.
    let base = heavy.iter().copied().max().map_or(0, |m| m + 1);
    for i in 0..(n - heavy_total) as u64 {
        let other = rng.gen_range(0..domain);
        let key = base + i;
        let row = if key_col == 0 {
            [key, other]
        } else {
            [other, key]
        };
        rel.push(&row);
    }
    rel
}

/// The extreme-skew relation of slide 27: all `n` tuples share the single
/// join-column value `key`; the other column enumerates `0..n`.
pub fn constant_key_pairs(n: usize, key: Value, key_col: usize) -> Relation {
    assert!(key_col < 2, "key column of a binary relation is 0 or 1");
    let mut rel = Relation::with_capacity(2, n);
    for i in 0..n as u64 {
        let row = if key_col == 0 { [key, i] } else { [i, key] };
        rel.push(&row);
    }
    rel
}

/// A unary relation enumerating `0..n`.
pub fn unary_range(n: usize) -> Relation {
    let mut rel = Relation::with_capacity(1, n);
    for i in 0..n as u64 {
        rel.push(&[i]);
    }
    rel
}

/// `m` distinct directed edges over `nodes` vertices, sampled uniformly
/// without self-loops — the edge relation for subgraph (triangle) queries.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges.
pub fn random_graph(nodes: u64, m: usize, seed: u64) -> Relation {
    assert!(nodes >= 2, "need at least two nodes");
    let max_edges = (nodes as u128) * (nodes as u128 - 1);
    assert!((m as u128) <= max_edges, "too many edges requested");
    let mut rng = Rng::seed_from_u64(seed);
    let mut seen = crate::fasthash::FastSet::default();
    let mut rel = Relation::with_capacity(2, m);
    while seen.len() < m {
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        if a != b && seen.insert((a, b)) {
            rel.push(&[a, b]);
        }
    }
    rel
}

/// A small star-schema warehouse: `Orders(custkey, prodkey)`,
/// `Customers(custkey, region)`, `Products(prodkey, category)`.
///
/// Customer keys in `Orders` follow Zipf(`alpha`) — a few customers
/// place most orders, the realistic skew of slide 52's analytics query.
/// Regions and categories are small dimensions (`0..16`).
pub fn warehouse(
    n_orders: usize,
    n_customers: usize,
    n_products: usize,
    alpha: f64,
    seed: u64,
) -> (Relation, Relation, Relation) {
    assert!(
        n_customers > 0 && n_products > 0,
        "dimensions must be non-empty"
    );
    let zc = Zipf::new(n_customers, alpha);
    let mut rng = Rng::seed_from_u64(seed);
    let mut orders = Relation::with_capacity(2, n_orders);
    for _ in 0..n_orders {
        let c = zc.sample(&mut rng);
        let p = rng.gen_range(0..n_products as u64);
        orders.push(&[c, p]);
    }
    let mut customers = Relation::with_capacity(2, n_customers);
    for c in 1..=n_customers as u64 {
        customers.push(&[c, rng.gen_range(0..16u64)]);
    }
    let mut products = Relation::with_capacity(2, n_products);
    for p in 0..n_products as u64 {
        products.push(&[p, rng.gen_range(0..16u64)]);
    }
    (orders, customers, products)
}

/// An undirected-style graph stored as both `(a,b)` and `(b,a)` with
/// **distinct** directed edges: convenient for triangle queries
/// `R(x,y) ⋈ S(y,z) ⋈ T(z,x)` where `R = S = T`. Produces at most `m`
/// directed edges (fewer when a sampled edge's reverse was also drawn).
pub fn random_symmetric_graph(nodes: u64, m: usize, seed: u64) -> Relation {
    let half = random_graph(nodes, m / 2, seed);
    let mut seen = crate::fasthash::FastSet::default();
    let mut rel = Relation::with_capacity(2, 2 * half.len());
    for row in half.iter() {
        if seen.insert((row[0], row[1])) {
            rel.push(row);
        }
        if seen.insert((row[1], row[0])) {
            rel.push(&[row[1], row[0]]);
        }
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_counts;

    #[test]
    fn uniform_shape() {
        let r = uniform(3, 100, 50, 1);
        assert_eq!(r.arity(), 3);
        assert_eq!(r.len(), 100);
        assert!(r.iter().all(|row| row.iter().all(|&v| v < 50)));
    }

    #[test]
    fn uniform_deterministic() {
        assert_eq!(uniform(2, 10, 100, 5), uniform(2, 10, 100, 5));
        assert_ne!(uniform(2, 10, 100, 5), uniform(2, 10, 100, 6));
    }

    #[test]
    fn key_unique_has_degree_one() {
        let r = key_unique_pairs(100, 1, 1000, 2);
        let deg = degree_counts(&r, 1);
        assert_eq!(deg.len(), 100);
        assert!(deg.values().all(|&d| d == 1));
    }

    #[test]
    fn uniform_degree_exact() {
        let r = uniform_degree_pairs(100, 5, 0, 10, 3);
        assert_eq!(r.len(), 100);
        let deg = degree_counts(&r, 0);
        assert_eq!(deg.len(), 20);
        assert!(deg.values().all(|&d| d == 5));
    }

    #[test]
    fn planted_heavy_degrees() {
        let r = planted_heavy_pairs(100, &[1, 2], 20, 0, 10, 4);
        assert_eq!(r.len(), 100);
        let deg = degree_counts(&r, 0);
        assert_eq!(deg[&1], 20);
        assert_eq!(deg[&2], 20);
        // 60 light tuples, each with its own key
        let lights = deg.iter().filter(|&(_, &d)| d == 1).count();
        assert_eq!(lights, 60);
    }

    #[test]
    fn constant_key_is_extreme_skew() {
        let r = constant_key_pairs(50, 7, 0);
        let deg = degree_counts(&r, 0);
        assert_eq!(deg.len(), 1);
        assert_eq!(deg[&7], 50);
    }

    #[test]
    fn zipf_pairs_skewed() {
        let r = zipf_pairs(10_000, 1000, 1.2, 0, 9);
        let deg = degree_counts(&r, 0);
        let max = deg.values().copied().max().unwrap();
        // With α=1.2 the top value takes a large constant fraction.
        assert!(max > 500, "max degree {max} unexpectedly small");
    }

    #[test]
    fn graph_edges_distinct_no_loops() {
        let g = random_graph(20, 100, 11);
        assert_eq!(g.len(), 100);
        let mut seen = std::collections::BTreeSet::new();
        for e in g.iter() {
            assert_ne!(e[0], e[1]);
            assert!(seen.insert((e[0], e[1])));
        }
    }

    #[test]
    fn symmetric_graph_closed_under_reversal() {
        let g = random_symmetric_graph(20, 60, 13);
        let set: std::collections::BTreeSet<(u64, u64)> = g.iter().map(|e| (e[0], e[1])).collect();
        for &(a, b) in &set {
            assert!(set.contains(&(b, a)));
        }
    }

    #[test]
    fn warehouse_shapes() {
        let (orders, customers, products) = warehouse(5000, 300, 100, 1.1, 7);
        assert_eq!(orders.len(), 5000);
        assert_eq!(customers.len(), 300);
        assert_eq!(products.len(), 100);
        // Order custkeys must be valid foreign keys into Customers.
        let keys: std::collections::BTreeSet<u64> = customers.iter().map(|row| row[0]).collect();
        assert!(orders.iter().all(|row| keys.contains(&row[0])));
        // Zipf head: the busiest customer dominates.
        let deg = degree_counts(&orders, 0);
        assert!(*deg.values().max().expect("non-empty") > 200);
    }

    #[test]
    fn unary_range_enumerates() {
        let r = unary_range(5);
        assert_eq!(
            r.to_rows(),
            vec![vec![0], vec![1], vec![2], vec![3], vec![4]]
        );
    }
}
