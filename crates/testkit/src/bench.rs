//! A tiny wall-clock micro-benchmark harness.
//!
//! Replaces `criterion` for this workspace's `harness = false` bench
//! targets. It mirrors the slice of criterion's API the benches use —
//! [`Criterion`], [`BenchmarkId`], groups with `sample_size`,
//! `bench_function` / `bench_with_input`, and the
//! [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros — so a bench file
//! only swaps its import line.
//!
//! Measurement model: per benchmark we run one untimed warm-up call,
//! calibrate the per-iteration cost, then take `sample_size` samples
//! (each a timed batch sized to ~5 ms, or a single iteration for slow
//! benchmarks) and report min / mean / max per-iteration time.
//!
//! CLI behavior (args come from `cargo bench -- <args>`):
//! * a bare substring argument filters benchmarks by name;
//! * `--test` or `--quick` runs every benchmark exactly once (used by
//!   `cargo test --benches`-style smoke runs and CI);
//! * other `--flags` cargo passes (e.g. `--bench`) are ignored.

use std::time::{Duration, Instant};

/// A benchmark's display name, optionally `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`, mirroring criterion's parameterized IDs.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Top-level harness state: CLI filter and mode.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    filter: Option<String>,
    quick: bool,
    benchmarks_run: usize,
}

impl Criterion {
    /// Build from the process arguments (see module docs for the CLI).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            if arg == "--test" || arg == "--quick" {
                c.quick = true;
            } else if !arg.starts_with('-') {
                c.filter = Some(arg);
            }
        }
        if std::env::var("PARQP_BENCH_QUICK").is_ok() {
            c.quick = true;
        }
        c
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmark without a group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
    }

    /// Print a closing line (called by `criterion_main!`).
    pub fn final_summary(&self) {
        println!(
            "\n{} benchmark(s) run{}",
            self.benchmarks_run,
            if self.quick { " (quick mode)" } else { "" }
        );
    }

    fn run_one(
        &mut self,
        group: &str,
        id: &BenchmarkId,
        sample_size: usize,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        let full = if group.is_empty() {
            id.name.clone()
        } else {
            format!("{group}/{}", id.name)
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            quick: self.quick,
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        self.benchmarks_run += 1;
        report(&full, &bencher.samples);
    }
}

/// A named collection of benchmarks sharing a `sample_size`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark; the closure drives a [`Bencher`].
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.criterion
            .run_one(&self.name, &id, self.sample_size, &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        self.criterion
            .run_one(&self.name, &id, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// End the group (kept for criterion API parity; printing happens
    /// per benchmark).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    quick: bool,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time the routine. Call exactly once per benchmark closure.
    ///
    /// Wall-clock reads are sanctioned here and only here: the bench
    /// harness measures real time by definition, and timing never feeds
    /// back into algorithm results, so determinism is unaffected.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Untimed warm-up (page-in, branch predictors, allocator).
        std::hint::black_box(f());
        if self.quick {
            let t = Instant::now(); // parqp-lint: allow(PQ003)
            std::hint::black_box(f());
            self.samples.push(t.elapsed());
            return;
        }
        // Calibrate one iteration to size the timed batches.
        let t = Instant::now(); // parqp-lint: allow(PQ003)
        std::hint::black_box(f());
        let per_iter = t.elapsed().max(Duration::from_nanos(1));
        let target_sample = Duration::from_millis(5);
        let iters_per_sample = (target_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000);
        for _ in 0..self.sample_size {
            let t = Instant::now(); // parqp-lint: allow(PQ003)
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples
                .push(t.elapsed() / u32::try_from(iters_per_sample).expect("clamped to 100k"));
        }
    }
}

/// Monotonic nanoseconds since the first call, for wall-clock
/// profiling (`parqp-bench tables --metrics`).
///
/// Wall-clock reads are sanctioned in this module and only here (see
/// [`Bencher::iter`]): timings are reported, never fed back into
/// algorithm results, so determinism is unaffected. Committed metrics
/// baselines zero this field out so the CI gate stays byte-exact.
#[allow(clippy::disallowed_methods)]
pub fn time_ns() -> u64 {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now); // parqp-lint: allow(PQ003)
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<56} (no samples — did the closure call iter()?)");
        return;
    }
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    let mean = samples.iter().sum::<Duration>() / u32::try_from(samples.len()).expect("small");
    println!(
        "{name:<56} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::bench::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Generate `fn main` driving the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::bench::Criterion::from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_once_per_sample() {
        let mut b = Bencher {
            quick: true,
            sample_size: 20,
            samples: Vec::new(),
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.samples.len(), 1);
        assert_eq!(calls, 2, "one warm-up + one timed call");
    }

    #[test]
    fn group_filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("match_me".into()),
            quick: true,
            benchmarks_run: 0,
        };
        let mut g = c.benchmark_group("grp");
        g.bench_function("match_me_exactly", |b| b.iter(|| 1 + 1));
        g.bench_function("something_else", |b| b.iter(|| 1 + 1));
        g.finish();
        assert_eq!(c.benchmarks_run, 1);
    }

    #[test]
    fn benchmark_id_formats_parameter() {
        let id = BenchmarkId::new("hypercube", 64);
        assert_eq!(id.name, "hypercube/64");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.00 s");
    }
}
