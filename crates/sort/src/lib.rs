//! # parqp-sort — parallel sorting in the MPC model
//!
//! Sorting underlies merge joins, similarity joins and aggregation
//! (slide 99). Two algorithms:
//!
//! * [`mod@psrs`] — Parallel Sorting by Regular Sampling (slides 100–102):
//!   each server sorts locally, broadcasts a regular sample, all servers
//!   deterministically agree on `p−1` splitters, route, and sort locally.
//!   Load `Θ(N/p)` when `p ≪ N^{1/3}`; 2 communication rounds.
//! * [`multiround`] — a splitter-tree distribution sort with bounded
//!   fan-out, the laptop-scale stand-in for Goodrich's BSP sort
//!   (slides 104–105): with per-round fan-out `f` it runs in
//!   `O(log_f p)` rounds, exhibiting the `Ω(log_L N)` round/load
//!   trade-off of the sorting lower bound.

pub mod multiround;
pub mod psrs;

pub use multiround::{multiround_sort, multiround_sort_with_oversample};
pub use psrs::{psrs, psrs_by};
