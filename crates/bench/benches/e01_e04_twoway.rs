//! Wall-clock benches (parqp-testkit harness) for the two-way join experiments
//! (E01–E04). The paper's quantities (L, r, C) come from the `tables`
//! binary; these measure the simulator's throughput on the same
//! workloads so regressions in the implementations show up.

use parqp::data::generate;
use parqp::join::{baselines, twoway};
use parqp_testkit::bench::{BenchmarkId, Criterion};
use parqp_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_e01_regimes(c: &mut Criterion) {
    let n = 20_000;
    let p = 16;
    let r = generate::key_unique_pairs(n, 1, 1 << 40, 1);
    let s = generate::key_unique_pairs(n, 0, 1 << 40, 2);
    let mut g = c.benchmark_group("e01_regimes");
    g.bench_function("ideal_hash_join", |b| {
        b.iter(|| black_box(twoway::hash_join(&r, 1, &s, 0, p, 42)))
    });
    g.bench_function("naive1_one_server", |b| {
        b.iter(|| black_box(baselines::naive_one_server(&r, 1, &s, 0, p)))
    });
    g.bench_function("naive2_ring", |b| {
        b.iter(|| black_box(baselines::naive_ring(&r, 1, &s, 0, p)))
    });
    g.finish();
}

fn bench_e02_partitioning(c: &mut Criterion) {
    let mut g = c.benchmark_group("e02_skew_threshold");
    for d in [1usize, 64, 4096] {
        let rel = generate::uniform_degree_pairs(40_000, d, 0, 1 << 30, d as u64);
        let probe = generate::key_unique_pairs(1, 0, 2, 1);
        g.bench_with_input(BenchmarkId::new("hash_partition_degree", d), &d, |b, _| {
            b.iter(|| black_box(twoway::hash_join(&rel, 0, &probe, 0, 16, 7)))
        });
    }
    g.finish();
}

fn bench_e03_cartesian(c: &mut Criterion) {
    let r = generate::uniform(1, 1000, 1 << 30, 1);
    let s = generate::uniform(1, 1000, 1 << 30, 2);
    let mut g = c.benchmark_group("e03_cartesian");
    for p in [16usize, 64] {
        g.bench_with_input(BenchmarkId::new("grid", p), &p, |b, &p| {
            b.iter(|| black_box(twoway::cartesian(&r, &s, p, 42)))
        });
    }
    g.finish();
}

fn bench_e04_skew(c: &mut Criterion) {
    let n = 20_000;
    let p = 64;
    let r = generate::zipf_pairs(n, n / 4, 1.2, 1, 5);
    let s = generate::zipf_pairs(n, n / 4, 1.2, 0, 6);
    let mut g = c.benchmark_group("e04_skew_join");
    g.bench_function("hash_join_zipf", |b| {
        b.iter(|| black_box(twoway::hash_join(&r, 1, &s, 0, p, 42)))
    });
    g.bench_function("skew_join_zipf", |b| {
        b.iter(|| black_box(twoway::skew_join(&r, 1, &s, 0, p, 42)))
    });
    g.bench_function("sort_merge_join_zipf", |b| {
        b.iter(|| black_box(twoway::sort_merge_join(&r, 1, &s, 0, p, 42)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_e01_regimes,
    bench_e02_partitioning,
    bench_e03_cartesian,
    bench_e04_skew
);
criterion_main!(benches);
